"""Engine scaling benchmarks: slots/sec as the cell grows.

The paper evaluates 40 users; related work (Bethanabhotla et al.,
Abou-zeid et al.) evaluates hundreds.  These benches time full
``Simulation.run()`` calls for RTMA and EMA at n_users in
{10, 50, 200, 1000}, holding the paper's *per-user* load constant
(512 KB/s of serving capacity per user, 250-500 MB sessions that
outlast the horizon, 60 s client buffers, VBR rates) so every slot
carries a full-cell scheduling problem.

Round timings land in ``BENCH_scaling.json`` (next to this file, or at
``$BENCH_SCALING_JSON``) as ``bench.scaling.<sched>.u<n>.seconds``
histograms plus ``scaling.<sched>.u<n>.slots_per_sec`` gauges, a
``scaling.backend`` gauge naming the kernel backend that produced the
snapshot, and ``scaling.<sched>.u<n>.phase.<phase>_total_s`` gauges
splitting one instrumented (untimed) run into the engine's pipeline
phases — the scheduler DP lives in ``schedule``, client playback in
``playback``, and the gateway observe/transmit legs in their own
phases.  Gate a fresh run against the committed baseline with::

    PYTHONPATH=src python -m pytest benchmarks/bench_scaling.py \\
        --check-scaling benchmarks/baseline_scaling.json

The gate is backend-aware (see ``conftest.py``): same-backend runs
compare p50s and hold the n=1000 slots/sec floor; a numba candidate
against the numpy baseline instead asserts the >= 3x EMA speedup.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.ema import EMAScheduler
from repro.core.rtma import RTMAScheduler
from repro.kernels import resolved_backend
from repro.obs import Instrumentation
from repro.obs.metrics import MetricsRegistry
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.workload import generate_workload

#: Shared registry all scaling benches report into (one file per session).
SCALING_REGISTRY = MetricsRegistry()

#: The paper's per-user serving capacity: 20 MB/s across 40 users.
PER_USER_CAPACITY_KBPS = 512.0

N_USERS = (10, 50, 200, 1000, 2000)
#: Horizon per size, chosen so each round stays in benchmark territory.
N_SLOTS = {10: 400, 50: 300, 200: 150, 1000: 40, 2000: 20}
ROUNDS = {10: 4, 50: 4, 200: 3, 1000: 2, 2000: 2}

_WORKLOADS: dict[int, object] = {}


@pytest.fixture(scope="session", autouse=True)
def _write_scaling_timings():
    """Dump the registry to BENCH_scaling.json once the session ends."""
    yield
    if not len(SCALING_REGISTRY):
        return
    default = Path(__file__).resolve().parent / "BENCH_scaling.json"
    path = Path(os.environ.get("BENCH_SCALING_JSON", default))
    SCALING_REGISTRY.write_json(path)


def scaling_config(n_users: int) -> SimConfig:
    return SimConfig(
        n_users=n_users,
        n_slots=N_SLOTS[n_users],
        capacity_kbps=PER_USER_CAPACITY_KBPS * n_users,
        buffer_capacity_s=60.0,
        vbr_segments=30,
        seed=7,
    )


def _workload(cfg: SimConfig):
    wl = _WORKLOADS.get(cfg.n_users)
    if wl is None:
        wl = _WORKLOADS[cfg.n_users] = generate_workload(cfg)
    return wl


def _record(benchmark, sched_name: str, n_users: int) -> None:
    data = list(benchmark.stats.stats.data)
    hist = SCALING_REGISTRY.histogram(
        f"bench.scaling.{sched_name}.u{n_users:04d}.seconds"
    )
    for sample in data:
        hist.observe(sample)
    SCALING_REGISTRY.gauge(
        f"scaling.{sched_name}.u{n_users:04d}.slots_per_sec"
    ).set(N_SLOTS[n_users] / float(np.median(data)))
    SCALING_REGISTRY.gauge("scaling.backend").set(resolved_backend())


def _record_phase_split(cfg: SimConfig, sched_name: str, wl) -> None:
    """One instrumented run (outside any timer) to split the wall
    clock across the engine's phases — where does a slot go as n grows?
    """
    instr = Instrumentation()
    Simulation(cfg, _make_scheduler(sched_name, cfg), wl,
               instrumentation=instr).run()
    for phase, stats in instr.profiler.summary().items():
        SCALING_REGISTRY.gauge(
            f"scaling.{sched_name}.u{cfg.n_users:04d}.phase.{phase}_total_s"
        ).set(stats["total_s"])


def _make_scheduler(sched_name: str, cfg: SimConfig):
    if sched_name == "rtma":
        return RTMAScheduler(sig_threshold_dbm=-95.0)
    return EMAScheduler(cfg.n_users, v_param=0.05, tau_s=cfg.tau_s)


@pytest.mark.parametrize("n_users", N_USERS)
@pytest.mark.parametrize("sched_name", ["rtma", "ema"])
def test_engine_scaling(benchmark, sched_name, n_users):
    cfg = scaling_config(n_users)
    wl = _workload(cfg)

    def run():
        return Simulation(cfg, _make_scheduler(sched_name, cfg), wl).run()

    res = benchmark.pedantic(
        run, rounds=ROUNDS[n_users], iterations=1, warmup_rounds=1
    )
    assert res.delivered_kb.sum() > 0
    _record(benchmark, sched_name, n_users)
    _record_phase_split(cfg, sched_name, wl)
