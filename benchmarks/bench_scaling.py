"""Engine scaling benchmarks: slots/sec as the cell grows.

The paper evaluates 40 users; related work (Bethanabhotla et al.,
Abou-zeid et al.) evaluates hundreds.  These benches time full
``Simulation.run()`` calls for RTMA and EMA at n_users in
{10, 50, 200, 1000}, holding the paper's *per-user* load constant
(512 KB/s of serving capacity per user, 250-500 MB sessions that
outlast the horizon, 60 s client buffers, VBR rates) so every slot
carries a full-cell scheduling problem.

Round timings land in ``BENCH_scaling.json`` (next to this file, or at
``$BENCH_SCALING_JSON``) as ``bench.scaling.<sched>.u<n>.seconds``
histograms plus ``scaling.<sched>.u<n>.slots_per_sec`` gauges, a
``scaling.backend`` gauge naming the kernel backend that produced the
snapshot, and ``scaling.<sched>.u<n>.phase.<phase>_total_s`` gauges
splitting one instrumented (untimed) run into the engine's pipeline
phases — the scheduler DP lives in ``schedule``, client playback in
``playback``, and the gateway observe/transmit legs in their own
phases.  Gate a fresh run against the committed baseline with::

    PYTHONPATH=src python -m pytest benchmarks/bench_scaling.py \\
        --check-scaling benchmarks/baseline_scaling.json

The gate is backend-aware (see ``conftest.py``): same-backend runs
compare p50s and hold the n=1000 slots/sec floor; a numba candidate
against the numpy baseline instead asserts the >= 3x EMA speedup.

``--batch`` additionally runs the run-stacked throughput benches:
R=16 multi_seed-shaped runs at N=50 executed serially vs through one
:func:`repro.sim.batch.run_batch` slot loop, recording
``scaling.batch.<sched>.r0016.{runs_per_sec,serial_runs_per_sec,
slots_per_sec,speedup}`` gauges and asserting the same-backend
speedup floors in :data:`BATCH_SPEEDUP_FLOOR` (2x for RTMA)::

    PYTHONPATH=src python -m pytest benchmarks/bench_scaling.py \\
        -k batch_throughput --batch
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.ema import EMAScheduler
from repro.core.rtma import RTMAScheduler
from repro.kernels import resolved_backend
from repro.obs import Instrumentation
from repro.obs.metrics import MetricsRegistry
from repro.sim.batch import run_batch
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.executor import RunTask
from repro.sim.workload import generate_workload

#: Shared registry all scaling benches report into (one file per session).
SCALING_REGISTRY = MetricsRegistry()

#: The paper's per-user serving capacity: 20 MB/s across 40 users.
PER_USER_CAPACITY_KBPS = 512.0

N_USERS = (10, 50, 200, 1000, 2000)
#: Horizon per size, chosen so each round stays in benchmark territory.
N_SLOTS = {10: 400, 50: 300, 200: 150, 1000: 40, 2000: 20}
ROUNDS = {10: 4, 50: 4, 200: 3, 1000: 2, 2000: 2}

_WORKLOADS: dict[int, object] = {}


@pytest.fixture(scope="session", autouse=True)
def _write_scaling_timings():
    """Dump the registry to BENCH_scaling.json once the session ends."""
    yield
    if not len(SCALING_REGISTRY):
        return
    default = Path(__file__).resolve().parent / "BENCH_scaling.json"
    path = Path(os.environ.get("BENCH_SCALING_JSON", default))
    SCALING_REGISTRY.write_json(path)


def scaling_config(n_users: int) -> SimConfig:
    return SimConfig(
        n_users=n_users,
        n_slots=N_SLOTS[n_users],
        capacity_kbps=PER_USER_CAPACITY_KBPS * n_users,
        buffer_capacity_s=60.0,
        vbr_segments=30,
        seed=7,
    )


def _workload(cfg: SimConfig):
    wl = _WORKLOADS.get(cfg.n_users)
    if wl is None:
        wl = _WORKLOADS[cfg.n_users] = generate_workload(cfg)
    return wl


def _record(benchmark, sched_name: str, n_users: int) -> None:
    data = list(benchmark.stats.stats.data)
    hist = SCALING_REGISTRY.histogram(
        f"bench.scaling.{sched_name}.u{n_users:04d}.seconds"
    )
    for sample in data:
        hist.observe(sample)
    SCALING_REGISTRY.gauge(
        f"scaling.{sched_name}.u{n_users:04d}.slots_per_sec"
    ).set(N_SLOTS[n_users] / float(np.median(data)))
    SCALING_REGISTRY.gauge("scaling.backend").set(resolved_backend())


def _record_phase_split(cfg: SimConfig, sched_name: str, wl) -> None:
    """One instrumented run (outside any timer) to split the wall
    clock across the engine's phases — where does a slot go as n grows?
    """
    instr = Instrumentation()
    Simulation(cfg, _make_scheduler(sched_name, cfg), wl,
               instrumentation=instr).run()
    for phase, stats in instr.profiler.summary().items():
        SCALING_REGISTRY.gauge(
            f"scaling.{sched_name}.u{cfg.n_users:04d}.phase.{phase}_total_s"
        ).set(stats["total_s"])


def _make_scheduler(sched_name: str, cfg: SimConfig):
    if sched_name == "rtma":
        return RTMAScheduler(sig_threshold_dbm=-95.0)
    return EMAScheduler(cfg.n_users, v_param=0.05, tau_s=cfg.tau_s)


@pytest.mark.parametrize("n_users", N_USERS)
@pytest.mark.parametrize("sched_name", ["rtma", "ema"])
def test_engine_scaling(benchmark, sched_name, n_users):
    cfg = scaling_config(n_users)
    wl = _workload(cfg)

    def run():
        return Simulation(cfg, _make_scheduler(sched_name, cfg), wl).run()

    res = benchmark.pedantic(
        run, rounds=ROUNDS[n_users], iterations=1, warmup_rounds=1
    )
    assert res.delivered_kb.sum() > 0
    _record(benchmark, sched_name, n_users)
    _record_phase_split(cfg, sched_name, wl)


# --- run-stacked batch throughput (``--batch``) --------------------------

#: multi_seed-shaped batch workload: R runs of the same config at
#: different seeds, stacked into one slot loop by repro.sim.batch.
BATCH_R = 16
BATCH_N = 50
BATCH_SLOTS = 200
BATCH_ROUNDS = 3

#: Same-backend speedup floors for run_batch over serial at R=16, N=50.
#: RTMA amortises the whole slot loop across runs (>= 4x measured on
#: numpy); EMA's per-run DP kernel cannot stack across runs, so only
#: the surrounding pipeline vectorises — its floor is a non-regression
#: bound, not a headline.
BATCH_SPEEDUP_FLOOR = {"rtma": 2.0, "ema": 1.2}


@pytest.fixture
def batch_enabled(request):
    if not request.config.getoption("--batch"):
        pytest.skip("run-stacked batch benches need --batch")


def _batch_tasks(sched_name: str):
    configs = [
        SimConfig(
            n_users=BATCH_N,
            n_slots=BATCH_SLOTS,
            capacity_kbps=PER_USER_CAPACITY_KBPS * BATCH_N,
            buffer_capacity_s=60.0,
            vbr_segments=30,
            seed=s,
        )
        for s in range(BATCH_R)
    ]
    wls = _WORKLOADS.get(("batch", BATCH_N))
    if wls is None:
        wls = _WORKLOADS[("batch", BATCH_N)] = [
            generate_workload(c) for c in configs
        ]
    return [
        RunTask(cfg, _make_scheduler(sched_name, cfg), wl)
        for cfg, wl in zip(configs, wls)
    ]


@pytest.mark.parametrize("sched_name", ["rtma", "ema"])
def test_batch_throughput(benchmark, batch_enabled, sched_name):
    """Serial run-by-run vs one stacked slot loop for the same R runs.

    Records ``scaling.batch.<sched>.r0016.*`` gauges — batched and
    serial runs/sec, the stacked slots/sec, and the speedup — and
    gates the speedup against :data:`BATCH_SPEEDUP_FLOOR` (serial and
    batched legs always share a backend, so the gate is same-backend
    by construction).
    """
    # Serial reference: best of BATCH_ROUNDS full run-by-run passes
    # (fresh schedulers per pass — they are stateful).
    serial_times = []
    for _ in range(BATCH_ROUNDS):
        tasks = _batch_tasks(sched_name)
        t0 = time.perf_counter()
        for t in tasks:
            Simulation(t.config, t.scheduler, t.workload).run()
        serial_times.append(time.perf_counter() - t0)
    t_serial = float(np.median(serial_times))

    results = benchmark.pedantic(
        lambda: run_batch(_batch_tasks(sched_name)),
        rounds=BATCH_ROUNDS,
        iterations=1,
        warmup_rounds=1,
    )
    assert len(results) == BATCH_R
    assert all(r.delivered_kb.sum() > 0 for r in results)

    data = list(benchmark.stats.stats.data)
    t_batch = float(np.median(data))
    hist = SCALING_REGISTRY.histogram(
        f"bench.scaling.batch.{sched_name}.r{BATCH_R:04d}.seconds"
    )
    for sample in data:
        hist.observe(sample)
    prefix = f"scaling.batch.{sched_name}.r{BATCH_R:04d}"
    SCALING_REGISTRY.gauge(f"{prefix}.runs_per_sec").set(BATCH_R / t_batch)
    SCALING_REGISTRY.gauge(f"{prefix}.serial_runs_per_sec").set(
        BATCH_R / t_serial
    )
    SCALING_REGISTRY.gauge(f"{prefix}.slots_per_sec").set(
        BATCH_R * BATCH_SLOTS / t_batch
    )
    speedup = t_serial / t_batch
    SCALING_REGISTRY.gauge(f"{prefix}.speedup").set(speedup)
    SCALING_REGISTRY.gauge("scaling.backend").set(resolved_backend())

    floor = BATCH_SPEEDUP_FLOOR[sched_name]
    assert speedup >= floor, (
        f"run_batch speedup {speedup:.2f}x for {sched_name} at "
        f"R={BATCH_R}, N={BATCH_N} is below the {floor:.1f}x floor"
    )
