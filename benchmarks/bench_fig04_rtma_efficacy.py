"""Fig. 4 bench: RTMA efficacy across user counts and data amounts.

Shape assertions: rebuffering grows with load on the default; RTMA
with a loose budget (alpha = 1.2) beats the default at every point,
and a looser budget never does worse than a tighter one on average.
"""

import numpy as np

from repro.experiments import fig04_rtma_efficacy

from conftest import run_once


def test_fig04_alpha_sweep(benchmark, bench_scale):
    result = run_once(benchmark, fig04_rtma_efficacy.run, scale=bench_scale)
    for axis in ("by_users", "by_size"):
        series = result.data[axis]
        default = np.array(series["default"])
        loose = np.array(series["alpha=1.2"])
        tight = np.array(series["alpha=0.8"])
        # The loose-budget RTMA beats the default everywhere.
        assert (loose < default).all(), axis
        # Budget monotonicity in the mean: more energy, less stalling.
        assert loose.mean() <= tight.mean() + 1e-9, axis

    # Load monotonicity on the default: more users, more rebuffering.
    by_users = result.data["by_users"]
    assert by_users["default"][-1] > by_users["default"][0]
