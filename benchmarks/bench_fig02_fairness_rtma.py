"""Fig. 2 bench: fairness CDF, RTMA vs default.

Shape assertions: the default's per-slot Jain index collapses under
contention (below 0.2 for a large share of slots) while RTMA's is
higher in the mean and never that degenerate; loosening the energy
budget (alpha = 1.2) recovers more fairness still.
"""

from repro.experiments import fig02_fairness_rtma

from conftest import run_once


def test_fig02_fairness(benchmark, bench_scale):
    result = run_once(benchmark, fig02_fairness_rtma.run, scale=bench_scale)
    default = result.data["default"]
    rtma = result.data["rtma"]
    rtma12 = result.data["rtma (a=1.2)"]

    # Paper: default below 0.2 for ~50% of slots.
    assert default["lt_02"] > 0.4
    # RTMA strictly fairer in the mean, and never as degenerate.
    assert rtma["mean"] > default["mean"] + 0.2
    assert rtma["lt_02"] < 0.1
    # A looser energy budget buys more fairness (Fig. 4 direction).
    assert rtma12["mean"] >= rtma["mean"]
    assert rtma12["gt_07"] >= rtma["gt_07"]
