"""Fig. 3 bench: rebuffering-time CDF, RTMA vs default.

Shape assertions: the default's per-user total rebuffering is heavy
and spread out (a large fraction past the paper's 11 s marker); RTMA
shifts the whole CDF left.
"""

from repro.experiments import fig03_rebuffering_cdf

from conftest import run_once


def test_fig03_rebuffering(benchmark, bench_scale):
    result = run_once(benchmark, fig03_rebuffering_cdf.run, scale=bench_scale)
    default = result.data["default"]
    rtma = result.data["rtma"]
    rtma12 = result.data["rtma (a=1.2)"]

    # Paper: >20% of default users stall for more than 11 s total.
    assert default["frac_above_11s"] > 0.2
    # RTMA reduces mean total rebuffering substantially even at the
    # binding alpha=1 budget, and further with alpha=1.2.
    assert rtma["mean_total_s"] < default["mean_total_s"]
    assert rtma12["mean_total_s"] < default["mean_total_s"] * 0.6
    assert rtma["frac_above_11s"] < default["frac_above_11s"]
    assert result.data["reduction"] > 0.2
