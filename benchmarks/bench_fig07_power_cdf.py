"""Fig. 7 bench: per-slot aggregate power CDF, EMA vs default.

Shape assertion: EMA's per-slot power distribution sits left of the
default's (median and mean), the paper's "about 50% of EMA's slots
below 25 J" statement translated to a relative claim.
"""

from repro.experiments import fig07_power_cdf

from conftest import run_once


def test_fig07_power(benchmark, bench_scale):
    result = run_once(benchmark, fig07_power_cdf.run, scale=bench_scale)
    default = result.data["default"]
    ema = result.data["ema"]

    assert ema["median_j"] < default["median_j"]
    assert ema["mean_j"] < default["mean_j"]
