"""Fig. 10 bench: the rebuffering-energy trade-off panel.

Shape assertions: relative to the default's (energy, rebuffering)
point at each user count, RTMA moves down the *rebuffering* axis
and EMA moves down the *energy* axis — the two complementary drifts
of the paper's panel.
"""

from repro.experiments import fig10_tradeoff_panel

from conftest import run_once


def test_fig10_tradeoff(benchmark, bench_scale):
    result = run_once(benchmark, fig10_tradeoff_panel.run, scale=bench_scale)
    points = result.data["points"]

    for (pe_d, pc_d), (pe_r, pc_r), (pe_e, pc_e) in zip(
        points["default"], points["rtma"], points["ema"]
    ):
        # RTMA: less rebuffering than the default at comparable energy.
        assert pc_r < pc_d
        assert pe_r < 1.5 * pe_d
        # EMA: less energy than the default at comparable rebuffering.
        assert pe_e < pe_d
        assert pc_e < max(2.5 * pc_d, pc_d + 0.02)
