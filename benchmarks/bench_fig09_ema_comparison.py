"""Fig. 9 bench: EMA vs SALSA / EStreamer / Default.

Shape assertions at the most contended sweep point: EMA has the
lowest energy of the four (paper: >= 48% vs SALSA/default, >= 27% vs
EStreamer); EStreamer's rebuffering stays small (its bursts are sized
to the buffer), SALSA's deferral costs rebuffering.
"""

from repro.experiments import fig09_ema_comparison

from conftest import run_once


def test_fig09_comparison(benchmark, bench_scale):
    result = run_once(benchmark, fig09_ema_comparison.run, scale=bench_scale)
    pe = result.data["pe"]
    pc = result.data["pc"]

    # Energy ordering at 40 users (last sweep point).
    assert pe["ema"][-1] < pe["default"][-1]
    assert pe["ema"][-1] < pe["salsa"][-1]
    assert pe["ema"][-1] < pe["estreamer"][-1]
    # Meaningful margins (bench-scale floor of the paper's 48%/27%).
    assert pe["ema"][-1] < 0.75 * pe["default"][-1]
    assert pe["ema"][-1] < 0.85 * pe["estreamer"][-1]

    # SALSA defers: its rebuffering exceeds EStreamer's.
    assert pc["salsa"][-1] > pc["estreamer"][-1]
