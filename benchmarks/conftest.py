"""Shared infrastructure for the figure benchmarks.

Each ``bench_figNN`` module regenerates one paper figure at bench
scale inside the benchmark timer (one round — these are end-to-end
reproductions, not micro-benchmarks) and then asserts the figure's
*shape*: who wins, in which direction, and roughly by how much.
Micro-benchmarks of the hot kernels live in ``bench_kernels.py``.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def bench_scale() -> str:
    return "bench"
