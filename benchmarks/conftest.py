"""Shared infrastructure for the figure benchmarks.

Each ``bench_figNN`` module regenerates one paper figure at bench
scale inside the benchmark timer (one round — these are end-to-end
reproductions, not micro-benchmarks) and then asserts the figure's
*shape*: who wins, in which direction, and roughly by how much.
Micro-benchmarks of the hot kernels live in ``bench_kernels.py``.

Passing ``--check <baseline.json>`` turns the session into a
performance gate: after the benches finish (and have written their
``BENCH_kernels.json``), every kernel's p50 is compared against the
committed baseline via :func:`repro.obs.compare.compare_bench` and the
session exits nonzero if any kernel slowed by more than 25%::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py \\
        --benchmark-enable --check benchmarks/baseline_kernels.json
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--check",
        action="store",
        default=None,
        metavar="BASELINE_JSON",
        help="gate the session's BENCH_kernels.json against this baseline "
        "(fail on any kernel p50 slowdown > 25%)",
    )
    parser.addoption(
        "--check-scaling",
        action="store",
        default=None,
        metavar="BASELINE_JSON",
        help="gate the session's BENCH_scaling.json against this baseline "
        "(fail on any scaling-point p50 slowdown > 50%; the committed "
        "baseline is the pre-fleet object path, so small-n points are "
        "allowed a bounded constant vectorisation overhead while any "
        "real fleet regression shows up at n >= 200, where the fleet "
        "path is several times faster)",
    )


def _gate(
    session, option: str, env_var: str, default_name: str, threshold: float
) -> None:
    baseline = session.config.getoption(option)
    if baseline is None:
        return
    # The session fixtures in bench_kernels.py / bench_scaling.py have
    # already torn down (fixture finalisers run before sessionfinish),
    # so the fresh snapshots are on disk by now.
    default = Path(__file__).resolve().parent / default_name
    candidate = Path(os.environ.get(env_var, default))
    if not candidate.exists():
        print(f"\n{option}: no timings were written at {candidate}")
        session.exitstatus = 1
        return
    from repro.obs.compare import compare_bench

    report = compare_bench(baseline, candidate, threshold=threshold)
    print(f"\nbench regression gate vs {baseline}:")
    print(report.render())
    if not report.ok:
        session.exitstatus = 1


def pytest_sessionfinish(session, exitstatus):
    if exitstatus != 0:
        return
    _gate(session, "--check", "BENCH_KERNELS_JSON", "BENCH_kernels.json", 0.25)
    _gate(
        session,
        "--check-scaling",
        "BENCH_SCALING_JSON",
        "BENCH_scaling.json",
        0.50,
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def bench_scale() -> str:
    return "bench"
