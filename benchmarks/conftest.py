"""Shared infrastructure for the figure benchmarks.

Each ``bench_figNN`` module regenerates one paper figure at bench
scale inside the benchmark timer (one round — these are end-to-end
reproductions, not micro-benchmarks) and then asserts the figure's
*shape*: who wins, in which direction, and roughly by how much.
Micro-benchmarks of the hot kernels live in ``bench_kernels.py``.

Passing ``--check <baseline.json>`` turns the session into a
performance gate: after the benches finish (and have written their
``BENCH_kernels.json``), every kernel's p50 is compared against the
committed baseline via :func:`repro.obs.compare.compare_bench` and the
session exits nonzero if any kernel slowed by more than 25%::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py \\
        --benchmark-enable --check benchmarks/baseline_kernels.json
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--check",
        action="store",
        default=None,
        metavar="BASELINE_JSON",
        help="gate the session's BENCH_kernels.json against this baseline "
        "(fail on any kernel p50 slowdown > 25%)",
    )
    parser.addoption(
        "--batch",
        action="store_true",
        default=False,
        help="enable the run-stacked batch throughput benches in "
        "bench_scaling.py (serial vs run_batch at R=16, N=50; gauges land "
        "in BENCH_scaling.json under scaling.batch.*)",
    )
    parser.addoption(
        "--check-scaling",
        action="store",
        default=None,
        metavar="BASELINE_JSON",
        help="gate the session's BENCH_scaling.json against this baseline. "
        "Backend-aware: same-backend runs fail on any scaling-point p50 "
        "slowdown > 50% or an n=1000 slots/sec drop > 5%; a numba "
        "candidate vs a numpy baseline skips p50s and instead requires "
        "EMA n=1000 slots/sec >= 3x the baseline",
    )


#: Same-backend floor: the n=1000 EMA/RTMA throughput may not drop
#: below this fraction of the baseline (the numpy non-regression gate).
SLOTS_PER_SEC_FLOOR = 0.95
#: Cross-backend floor: a numba candidate must beat the numpy baseline
#: EMA n=1000 throughput by at least this factor.
NUMBA_SPEEDUP_FLOOR = 3.0
#: The scaling points held to the slots/sec floors.
GATED_SCALING_POINTS = ("scaling.ema.u1000.slots_per_sec",
                        "scaling.rtma.u1000.slots_per_sec")


def _resolve_candidate(session, option: str, env_var: str, default_name: str):
    baseline = session.config.getoption(option)
    if baseline is None:
        return None, None
    # The session fixtures in bench_kernels.py / bench_scaling.py have
    # already torn down (fixture finalisers run before sessionfinish),
    # so the fresh snapshots are on disk by now.
    default = Path(__file__).resolve().parent / default_name
    candidate = Path(os.environ.get(env_var, default))
    if not candidate.exists():
        print(f"\n{option}: no timings were written at {candidate}")
        session.exitstatus = 1
        return None, None
    return baseline, candidate


def _gate(
    session, option: str, env_var: str, default_name: str, threshold: float
) -> None:
    baseline, candidate = _resolve_candidate(session, option, env_var, default_name)
    if candidate is None:
        return
    from repro.obs.compare import compare_bench

    report = compare_bench(baseline, candidate, threshold=threshold)
    print(f"\nbench regression gate vs {baseline}:")
    print(report.render())
    compared = sum(1 for d in report.deltas if d.status != "added")
    if compared == 0:
        # Zero overlap (e.g. a numba candidate against a numpy-only
        # baseline: every entry is "added") means the gate verified
        # nothing — say so instead of passing quietly.
        from repro.obs.perf import warn_gate_skipped

        warn_gate_skipped(
            f"{option} compared 0 metric(s) against {baseline} — "
            "no baseline entries for this backend"
        )
    if not report.ok:
        session.exitstatus = 1


def _scaling_gauges(path) -> dict:
    from repro.obs.compare import load_metrics

    # Merge the numeric "gauges" section with the non-numeric "info"
    # partition; committed baselines predating the split keep string
    # gauges (scaling.backend) under "gauges".
    metrics = load_metrics(path)
    merged = dict(metrics.get("gauges") or {})
    merged.update(metrics.get("info") or {})
    return merged


def _gate_scaling(session, threshold: float) -> None:
    """Backend-aware scaling gate.

    Same backend on both sides: the usual p50 comparison, plus a
    slots/sec floor at n=1000 so a uniform slowdown below the p50
    threshold still cannot erode the scaling headline.  Candidate on
    the numba backend vs a numpy baseline: p50s are incomparable
    across backends, so instead enforce the JIT acceptance bar — EMA
    at n=1000 must run >= NUMBA_SPEEDUP_FLOOR times the numpy
    baseline's slots/sec.
    """
    baseline, candidate = _resolve_candidate(
        session, "--check-scaling", "BENCH_SCALING_JSON", "BENCH_scaling.json"
    )
    if candidate is None:
        return
    base_g, cand_g = _scaling_gauges(baseline), _scaling_gauges(candidate)
    base_backend = base_g.get("scaling.backend", "numpy")
    cand_backend = cand_g.get("scaling.backend", "numpy")

    failed = False
    if base_backend == cand_backend:
        from repro.obs.compare import compare_bench

        report = compare_bench(baseline, candidate, threshold=threshold)
        print(f"\nscaling regression gate vs {baseline} [{base_backend}]:")
        print(report.render())
        failed = not report.ok
        for name in GATED_SCALING_POINTS:
            base_v, cand_v = base_g.get(name), cand_g.get(name)
            if base_v is None or cand_v is None:
                from repro.obs.perf import warn_gate_skipped

                missing = "baseline" if base_v is None else "candidate"
                warn_gate_skipped(
                    f"--check-scaling: {name} missing from {missing} — "
                    "slots/sec floor not enforced"
                )
                continue
            floor = float(base_v) * SLOTS_PER_SEC_FLOOR
            verdict = "ok" if float(cand_v) >= floor else "REGRESSED"
            print(f"{name}: {float(cand_v):.1f} vs floor {floor:.1f} ({verdict})")
            failed = failed or float(cand_v) < floor
    else:
        print(
            f"\nscaling gate: candidate backend {cand_backend!r} vs baseline "
            f"{base_backend!r} — skipping p50s, checking JIT speedup"
        )
        name = "scaling.ema.u1000.slots_per_sec"
        base_v, cand_v = base_g.get(name), cand_g.get(name)
        if base_v is None or cand_v is None:
            print(f"{name}: missing from baseline or candidate")
            failed = True
        else:
            speedup = float(cand_v) / float(base_v)
            verdict = "ok" if speedup >= NUMBA_SPEEDUP_FLOOR else "TOO SLOW"
            print(
                f"{name}: {speedup:.2f}x vs required "
                f"{NUMBA_SPEEDUP_FLOOR:.1f}x ({verdict})"
            )
            failed = failed or speedup < NUMBA_SPEEDUP_FLOOR
    if failed:
        session.exitstatus = 1


def pytest_sessionfinish(session, exitstatus):
    if exitstatus != 0:
        return
    _gate(session, "--check", "BENCH_KERNELS_JSON", "BENCH_kernels.json", 0.25)
    _gate_scaling(session, 0.50)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def bench_scale() -> str:
    return "bench"
