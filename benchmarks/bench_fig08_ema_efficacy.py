"""Fig. 8 bench: EMA energy across user counts and data amounts,
beta in {0.8, 1.0, 1.2}.

Shape assertions: EMA (beta = 1) saves substantial energy vs the
default at every sweep point (paper: > 48%); a looser rebuffering
bound saves at least as much on average.
"""

import numpy as np

from repro.experiments import fig08_ema_efficacy

from conftest import run_once


def test_fig08_beta_sweep(benchmark, bench_scale):
    result = run_once(benchmark, fig08_ema_efficacy.run, scale=bench_scale)
    for axis in ("by_users", "by_size"):
        series = result.data[axis]
        default = np.array(series["default"])
        beta1 = np.array(series["beta=1.0"])
        loose = np.array(series["beta=1.2"])
        # EMA at beta=1 saves energy everywhere; >= 30% at bench scale
        # (paper: >= 48% at full scale).
        assert (beta1 < default).all(), axis
        assert (beta1 < 0.7 * default).all(), axis
        # Looser bound, at least as much saving on average.
        assert loose.mean() <= beta1.mean() * 1.05, axis
