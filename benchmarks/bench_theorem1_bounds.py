"""Theorem 1 bench: the O(1/V) energy / O(V) rebuffering trade-off.

Shape assertions: as V grows, measured energy is non-increasing and
measured rebuffering non-decreasing; both stay below the analytic
Theorem 1 bounds computed from conservative (E*, B, eps) estimates.
"""

import numpy as np

from repro.core.lyapunov import theorem1_energy_bound, theorem1_rebuffering_bound
from repro.experiments import theorem1_bounds

from conftest import run_once


def test_theorem1_tradeoff(benchmark, bench_scale):
    result = run_once(benchmark, theorem1_bounds.run, scale=bench_scale)
    data = result.data

    assert data["energy_declines"], data["pe"]
    assert data["rebuffering_monotone_up"], data["pc"]

    # Measured values respect the analytic bounds (E* is a lower bound
    # on the optimum, so the energy bound as computed is conservative
    # only for large V; check the direction-of-scaling instead at the
    # small end, the literal bound at the large end).
    v_big = data["v_sweep"][-1]
    pe_bound = theorem1_energy_bound(data["e_star"], data["b_const"], v_big)
    assert data["pe"][-1] <= pe_bound * 10  # order-of-magnitude sanity
    pc_bound = theorem1_rebuffering_bound(
        data["e_star"], data["b_const"], v_big, 0.1
    )
    assert data["pc"][-1] <= pc_bound
