"""Fig. 6 bench: fairness CDF, EMA vs default.

Shape assertions: on the windowed horizon (where the virtual queues
equalise users) EMA is fairer than the default; per-slot EMA is at
least not degenerate-unfair relative to the default.
"""

from repro.experiments import fig06_fairness_ema

from conftest import run_once


def test_fig06_fairness(benchmark, bench_scale):
    result = run_once(benchmark, fig06_fairness_ema.run, scale=bench_scale)
    default = result.data["default"]
    ema = result.data["ema"]

    # Windowed shares: EMA's negative-queue mechanism equalises users.
    assert ema["mean_windowed"] > default["mean_windowed"]
    assert ema["win_gt07"] >= default["win_gt07"]
