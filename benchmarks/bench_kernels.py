"""Micro-benchmarks of the hot kernels.

These are proper repeated-timing benchmarks (unlike the one-shot
figure reproductions): the per-slot cost of each scheduler's allocate,
the RRC fleet step, and a full engine slot.  They guard the
performance envelope that makes the full-scale (Gamma = 10000)
experiments tractable.

Every benchmark's round timings are also recorded into a
:class:`~repro.obs.metrics.MetricsRegistry`; at session end the
registry snapshot is written to ``BENCH_kernels.json`` (next to this
file, or at ``$BENCH_KERNELS_JSON``) so the performance trajectory is
machine-readable run over run.

Every bench is parameterised over the kernel backends importable on
this machine (numpy always; numba when installed), so histogram names
carry a ``[numpy]`` / ``[numba]`` suffix and the ``--check`` gate only
ever compares a backend against itself — a numpy-only baseline treats
numba entries as "added", never as a cross-backend regression.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.default import DefaultScheduler
from repro.core.ema import EMAScheduler, trailing_window_min
from repro.core.rtma import RTMAScheduler
from repro.kernels import available_backends, use_backend
from repro.net.gateway import SlotObservation
from repro.obs import Instrumentation, MetricsRegistry, NullTracer
from repro.radio.rrc import RRCFleet
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation

#: Shared registry all kernel benches report into (one file per session).
KERNEL_REGISTRY = MetricsRegistry()

#: Timed backends: the interpreted "python" loops are a correctness
#: tool, not a performance configuration, so they are never benched.
BENCH_BACKENDS = [b for b in available_backends() if b != "python"]


@pytest.fixture(params=BENCH_BACKENDS, autouse=True)
def kernel_backend(request):
    """Run every bench once per importable backend (suffixes the node
    name, and with it the recorded histogram, with the backend)."""
    with use_backend(request.param):
        yield request.param


@pytest.fixture(scope="session", autouse=True)
def _write_kernel_timings():
    """Dump the registry to BENCH_kernels.json once the session ends."""
    yield
    if not len(KERNEL_REGISTRY):
        return
    default = Path(__file__).resolve().parent / "BENCH_kernels.json"
    path = Path(os.environ.get("BENCH_KERNELS_JSON", default))
    KERNEL_REGISTRY.write_json(path)


@pytest.fixture(autouse=True)
def _record_kernel_timing(request):
    """Feed each benchmark's raw round timings into the shared registry."""
    bench = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    yield
    if bench is None or bench.stats is None:
        return
    hist = KERNEL_REGISTRY.histogram(f"bench.{request.node.name}.seconds")
    for sample in bench.stats.stats.data:
        hist.observe(sample)


def paper_slot_observation(n_users=40, budget=512, seed=0) -> SlotObservation:
    rng = np.random.default_rng(seed)
    sig = rng.uniform(-110, -50, n_users)
    return SlotObservation(
        slot=0,
        tau_s=1.0,
        delta_kb=40.0,
        capacity_kbps=budget * 40.0,
        unit_budget=budget,
        sig_dbm=sig,
        rate_kbps=rng.uniform(300, 600, n_users),
        link_units=np.floor((65.8 * sig + 7567.0) / 40.0).astype(np.int64),
        p_mj_per_kb=-0.167 + 1560.0 / (65.8 * sig + 7567.0),
        active=np.ones(n_users, dtype=bool),
        buffer_s=rng.uniform(0, 60, n_users),
        remaining_kb=rng.uniform(1e5, 5e5, n_users),
        idle_tail_cost_mj=rng.uniform(0, 733, n_users),
        receivable_kb=rng.uniform(1e3, 3e4, n_users),
    )


def test_rtma_allocate_slot(benchmark):
    obs = paper_slot_observation()
    sched = RTMAScheduler(sig_threshold_dbm=-100.0)
    phi = benchmark(sched.allocate, obs)
    assert phi.sum() > 0


def test_ema_allocate_slot(benchmark):
    obs = paper_slot_observation()
    sched = EMAScheduler(40, v_param=0.1)
    sched.allocate(obs)  # seed queues outside the timer
    sched.queues.values = np.random.default_rng(1).normal(0, 10, 40)
    phi = benchmark(sched.allocate, obs)
    assert phi.shape == (40,)


def test_default_allocate_slot(benchmark):
    obs = paper_slot_observation()
    sched = DefaultScheduler()
    phi = benchmark(sched.allocate, obs)
    assert phi.sum() > 0


def test_trailing_window_min_kernel(benchmark):
    values = np.random.default_rng(0).normal(size=513)
    out = benchmark(trailing_window_min, values, 107)
    assert out.shape == values.shape


def test_rrc_fleet_step(benchmark):
    fleet = RRCFleet(40)
    tx = np.random.default_rng(0).random(40) < 0.5

    def step():
        return fleet.step(tx, 1.0)

    tail = benchmark(step)
    assert tail.shape == (40,)


@pytest.mark.parametrize("sched_name", ["default", "rtma", "ema"])
def test_engine_100_slots(benchmark, sched_name):
    cfg = SimConfig(
        n_users=20,
        n_slots=100,
        video_size_range_kb=(50_000.0, 100_000.0),
        buffer_capacity_s=60.0,
        seed=1,
    )
    factories = {
        "default": lambda: DefaultScheduler(),
        "rtma": lambda: RTMAScheduler(),
        "ema": lambda: EMAScheduler(20, v_param=0.1),
    }

    def run():
        return Simulation(cfg, factories[sched_name]()).run()

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert res.delivered_kb.sum() > 0


@pytest.mark.parametrize(
    "mode",
    ["plain", "null-tracer", "live", "spans"],
    ids=["plain", "null-tracer", "live", "spans"],
)
def test_engine_200_slots_instrumentation_overhead(benchmark, mode):
    """The observability acceptance gates, against the "plain" run:

    * ``null-tracer`` — an Instrumentation bundle with the default
      ``NullTracer`` must cost < 2% wall clock;
    * ``live`` — a full live telemetry plane (streaming aggregators on
      four channels plus an SLO watchdog evaluated every 64 slots)
      must cost < 3%;
    * ``spans`` — the hierarchical span profiler (derived phase spans,
      per-call kernel spans, 64-slot block spans) must add < 2% over the
      ``null-tracer`` baseline — its bundle is null-tracer plus the
      recorder, so the delta isolates the recording cost (CI's
      perf-smoke job bounds it analytically: tight-loop floors of the
      recording primitives times a real run's span counts).

    All on a 200-slot / 20-user run; compare the parametrisations.
    """
    cfg = SimConfig(
        n_users=20,
        n_slots=200,
        video_size_range_kb=(50_000.0, 100_000.0),
        buffer_capacity_s=60.0,
        seed=1,
    )

    def make_instr():
        if mode == "plain":
            return None
        if mode == "live":
            from repro.obs.live import LiveTelemetry

            live = LiveTelemetry(
                rules=("p95(rebuffer_s) < 1e12", "mean(slot_energy_mj) >= 0")
            )
            return Instrumentation(tracer=NullTracer(), live=live)
        if mode == "spans":
            from repro.obs.spans import SpanRecorder

            return Instrumentation(tracer=NullTracer(), spans=SpanRecorder())
        return Instrumentation(tracer=NullTracer())

    def run():
        return Simulation(
            cfg, DefaultScheduler(), instrumentation=make_instr()
        ).run()

    res = benchmark.pedantic(run, rounds=5, warmup_rounds=2, iterations=1)
    assert res.delivered_kb.sum() > 0
