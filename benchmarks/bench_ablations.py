"""Ablation benches for the design choices DESIGN.md calls out.

* frame size ``delta`` — discretisation granularity vs results and
  EMA DP cost;
* EMA queue initialisation — literal Eq. (16) zero-init vs the
  place-holder backlog ("auto"): the cold-start stall artifact;
* signal models — the paper's sinusoid vs Markov vs random-walk:
  the RTMA-vs-default ordering must be robust to the trace family;
* RRC profiles — 3G vs LTE vs fast-dormancy: shorter tails shrink
  the batching advantage.
"""

import numpy as np
import pytest

from repro.baselines.default import DefaultScheduler
from repro.core.ema import EMAScheduler
from repro.core.rtma import RTMAScheduler
from repro.radio.signal import MarkovSignalModel, RandomWalkSignalModel
from repro.sim.config import SimConfig
from repro.sim.runner import compare_schedulers, run_scheduler

from conftest import run_once


def small_cfg(**overrides) -> SimConfig:
    base = dict(
        n_users=16,
        n_slots=600,
        capacity_kbps=8_192.0,
        video_size_range_kb=(60_000.0, 120_000.0),
        vbr_segments=30,
        buffer_capacity_s=60.0,
        seed=9,
    )
    base.update(overrides)
    return SimConfig(**base)


@pytest.mark.parametrize("delta_kb", [20.0, 40.0, 80.0])
def test_ablation_delta(benchmark, delta_kb):
    """Results must be stable across the frame-size discretisation."""
    cfg = small_cfg(delta_kb=delta_kb)

    def run():
        return run_scheduler(cfg, EMAScheduler(cfg.n_users, v_param=0.1))

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    # Within a factor-2 band of the delta=40 reference behaviour.
    assert 0.0 <= res.pc_session_s < 0.5
    assert res.summary().completion_rate == 1.0


def test_ablation_ema_queue_init(benchmark):
    """Zero-initialised queues produce the O(V) cold-start stall; the
    place-holder backlog removes it at equal-or-better energy."""
    cfg = small_cfg()
    v = 0.5

    def run_both():
        auto = run_scheduler(cfg, EMAScheduler(cfg.n_users, v_param=v, queue_init="auto"))
        zero = run_scheduler(cfg, EMAScheduler(cfg.n_users, v_param=v, queue_init=0.0))
        return auto, zero

    auto, zero = run_once(benchmark, run_both)
    assert auto.pc_session_s < zero.pc_session_s
    # The stall artifact is concentrated at session start: the
    # zero-init run stalls heavily in its first minutes.
    early_zero = zero.rebuffering_s[:120].mean()
    early_auto = auto.rebuffering_s[:120].mean()
    assert early_zero > 2 * early_auto


@pytest.mark.parametrize(
    "signal_model",
    [None, MarkovSignalModel(), RandomWalkSignalModel()],
    ids=["sinusoid", "markov", "random-walk"],
)
def test_ablation_signal_models(benchmark, signal_model):
    """The RTMA < default rebuffering ordering holds across trace
    families (robustness of the headline claim)."""
    cfg = small_cfg(signal_model=signal_model)

    def run():
        return compare_schedulers(
            cfg,
            {"default": DefaultScheduler(), "rtma": RTMAScheduler()},
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results["rtma"].pc_session_s <= results["default"].pc_session_s * 1.05


@pytest.mark.parametrize("profile", ["umts-3g", "lte", "3g-fast-dormancy"])
def test_ablation_rrc_profiles(benchmark, profile):
    """EMA's energy advantage persists across RRC parameterisations,
    shrinking as tails get shorter (fast dormancy)."""
    cfg = small_cfg(profile=profile)

    def run():
        return compare_schedulers(
            cfg,
            {
                "default": DefaultScheduler(),
                "ema": EMAScheduler(cfg.n_users, v_param=0.1),
            },
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results["ema"].pe_session_mj < results["default"].pe_session_mj
