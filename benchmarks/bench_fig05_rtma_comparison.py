"""Fig. 5 bench: RTMA vs Throttling / ON-OFF / Default.

Shape assertions: at the highest contention point RTMA has the lowest
rebuffering of the four policies (the paper's >= 68% claim holds
against the *default*, whose head-of-line starvation dominates);
every policy's energy stays within sane bounds and the tail component
of RTMA is small (it transmits nearly continuously).
"""

import numpy as np

from repro.experiments import fig05_rtma_comparison

from conftest import run_once


def test_fig05_comparison(benchmark, bench_scale):
    result = run_once(benchmark, fig05_rtma_comparison.run, scale=bench_scale)
    pc = result.data["pc"]
    pe = result.data["pe"]

    # At the most contended point (last sweep entry = 40 users):
    assert pc["rtma"][-1] < pc["default"][-1]
    assert pc["rtma"][-1] < pc["on-off"][-1]
    # Meaningful reduction vs the default baseline even at the binding
    # alpha=1 budget (the paper's 68% needs the looser regime — see
    # EXPERIMENTS.md on the Eq. 12 budget divergence).
    assert pc["rtma"][-1] < 0.7 * pc["default"][-1]

    # Energy sanity: all policies in the same order of magnitude.
    all_pe = np.concatenate([np.asarray(v) for v in pe.values()])
    assert (all_pe > 10.0).all() and (all_pe < 5000.0).all()

    # RTMA's tail never dominates completely: the threshold idles users
    # during weak-signal slots (paying partial tails), but scheduling
    # still carries a majority-or-near share of the energy.
    tail_share = np.asarray(result.data["tail"]["rtma"]) / np.asarray(pe["rtma"])
    assert (tail_share < 0.75).all()
