"""Shared fixtures for the observability tests.

The traced quickstart run is expensive enough (three schedulers x 300
slots) that the analyze/compare/report tests share one session-scoped
run directory instead of re-tracing per test.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def traced_quickstart_dir(tmp_path_factory):
    """One quickstart run directory: trace.jsonl + manifest + metrics."""
    from repro.obs.cli import main

    out = tmp_path_factory.mktemp("quickstart_run") / "run"
    assert main(["quickstart", "--out", str(out)]) == 0
    return out
