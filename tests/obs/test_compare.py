"""Tests for tolerance-aware run comparison and the bench gate."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.errors import ConfigurationError
from repro.obs.compare import (
    Tolerance,
    compare_bench,
    compare_metrics,
    compare_runs,
    direction_for,
    flatten_metrics,
    main,
)


def _bench_snapshot(**p50s) -> dict:
    return {
        "histograms": {
            name: {"count": 5, "p50": p50, "mean": p50} for name, p50 in p50s.items()
        }
    }


class TestDirections:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("counters.energy.trans_mj", "lower"),
            ("counters.rrc.tail_mj", "lower"),
            ("pe_mj", "lower"),
            ("pc_s", "lower"),
            ("total_rebuffering_s", "lower"),
            ("mean_fairness", "higher"),
            ("completion_rate", "higher"),
            ("delivered_total_kb", "higher"),
            ("counters.engine.slots", "equal"),
        ],
    )
    def test_direction_for(self, name, expected):
        assert direction_for(name) == expected


class TestFlatten:
    def test_nested_and_indexed(self):
        flat = flatten_metrics(
            {
                "counters": {"a.b": 1},
                "gauges": {"vec": [1.0, 2.0], "none": None, "flag": True},
                "histograms": {"x": {"count": 2, "p50": 0.5}},
            }
        )
        assert flat["counters.a.b"] == 1.0
        assert flat["gauges.vec[0]"] == 1.0 and flat["gauges.vec[1]"] == 2.0
        assert "gauges.none" not in flat and "gauges.flag" not in flat

    def test_timings_skipped_by_default(self):
        snapshot = {
            "histograms": {
                "phase.schedule.seconds": {"p50": 0.1},
                "calibration.ema.pc_s": {"p50": 0.4},
            },
            "wall_time_s": 3.2,
        }
        flat = flatten_metrics(snapshot)
        assert not any("seconds" in k or "wall_time" in k for k in flat)
        assert "histograms.calibration.ema.pc_s.p50" in flat
        kept = flatten_metrics(snapshot, skip_timings=False)
        assert "histograms.phase.schedule.seconds.p50" in kept


class TestCompareMetrics:
    BASE = {
        "counters": {"engine.slots": 600, "energy.trans_mj": 1000.0},
        "gauges": {"mean_fairness": 0.8},
    }

    def test_identical_ok(self):
        report = compare_metrics(self.BASE, json.loads(json.dumps(self.BASE)))
        assert report.ok and len(report.deltas) == 3

    def test_energy_increase_regresses(self):
        cand = json.loads(json.dumps(self.BASE))
        cand["counters"]["energy.trans_mj"] = 1010.0
        report = compare_metrics(self.BASE, cand)
        assert not report.ok
        (failure,) = report.failures
        assert failure.name == "counters.energy.trans_mj"
        assert failure.status == "regressed"

    def test_energy_decrease_improves(self):
        cand = json.loads(json.dumps(self.BASE))
        cand["counters"]["energy.trans_mj"] = 990.0
        report = compare_metrics(self.BASE, cand)
        assert report.ok and len(report.improvements) == 1

    def test_fairness_drop_regresses(self):
        cand = json.loads(json.dumps(self.BASE))
        cand["gauges"]["mean_fairness"] = 0.5
        report = compare_metrics(self.BASE, cand)
        assert [d.name for d in report.failures] == ["gauges.mean_fairness"]

    def test_neutral_drift_is_changed(self):
        cand = json.loads(json.dumps(self.BASE))
        cand["counters"]["engine.slots"] = 601
        report = compare_metrics(self.BASE, cand)
        assert report.failures[0].status == "changed"

    def test_within_tolerance_passes(self):
        cand = json.loads(json.dumps(self.BASE))
        cand["counters"]["energy.trans_mj"] = 1000.0 * (1 + 1e-8)
        assert compare_metrics(self.BASE, cand).ok
        loose = Tolerance(rel_tol=0.05)
        cand["counters"]["energy.trans_mj"] = 1040.0
        assert compare_metrics(self.BASE, cand, loose).ok

    def test_added_and_removed_reported_not_failed(self):
        cand = {"counters": {"engine.slots": 600, "new.counter": 1}}
        report = compare_metrics(self.BASE, cand)
        statuses = {d.name: d.status for d in report.deltas}
        assert statuses["counters.new.counter"] == "added"
        assert statuses["counters.energy.trans_mj"] == "removed"
        assert statuses["gauges.mean_fairness"] == "removed"
        assert report.ok


class TestCompareBench:
    def test_slowdown_over_threshold_fails(self, tmp_path):
        (tmp_path / "base.json").write_text(json.dumps(_bench_snapshot(k=0.010)))
        (tmp_path / "cand.json").write_text(json.dumps(_bench_snapshot(k=0.013)))
        report = compare_bench(tmp_path / "base.json", tmp_path / "cand.json")
        assert not report.ok

    def test_slowdown_under_threshold_passes(self, tmp_path):
        (tmp_path / "base.json").write_text(json.dumps(_bench_snapshot(k=0.010)))
        (tmp_path / "cand.json").write_text(json.dumps(_bench_snapshot(k=0.012)))
        assert compare_bench(tmp_path / "base.json", tmp_path / "cand.json").ok

    def test_missing_kernel_lenient_vs_strict(self, tmp_path):
        (tmp_path / "base.json").write_text(
            json.dumps(_bench_snapshot(k=0.010, gone=0.5))
        )
        (tmp_path / "cand.json").write_text(json.dumps(_bench_snapshot(k=0.010)))
        lenient = compare_bench(tmp_path / "base.json", tmp_path / "cand.json")
        assert lenient.ok and lenient.notes
        strict = compare_bench(
            tmp_path / "base.json", tmp_path / "cand.json", strict_missing=True
        )
        assert not strict.ok

    def test_bad_threshold_rejected(self, tmp_path):
        (tmp_path / "base.json").write_text(json.dumps(_bench_snapshot(k=1.0)))
        with pytest.raises(ConfigurationError):
            compare_bench(tmp_path / "base.json", tmp_path / "base.json", threshold=0)


class TestCompareCli:
    def test_identical_quickstart_runs_pass(self, traced_quickstart_dir, tmp_path, capsys):
        clone = tmp_path / "clone"
        clone.mkdir()
        shutil.copy(traced_quickstart_dir / "metrics.json", clone / "metrics.json")
        assert main([str(traced_quickstart_dir), str(clone)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_energy_regression_fails(self, traced_quickstart_dir, tmp_path, capsys):
        worse = tmp_path / "worse"
        worse.mkdir()
        metrics = json.loads((traced_quickstart_dir / "metrics.json").read_text())
        metrics["counters"]["energy.trans_mj"] *= 1.05
        (worse / "metrics.json").write_text(json.dumps(metrics))
        assert main([str(traced_quickstart_dir), str(worse)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "energy.trans_mj" in out

    def test_missing_metrics_errors(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no metrics"):
            compare_runs(tmp_path, tmp_path)

    def test_bench_mode_roundtrip(self, tmp_path, capsys):
        base = tmp_path / "b.json"
        base.write_text(json.dumps(_bench_snapshot(k1=0.01, k2=0.02)))
        cand = tmp_path / "c.json"
        cand.write_text(json.dumps(_bench_snapshot(k1=0.02, k2=0.02)))
        assert main(["--bench", str(base), str(base)]) == 0
        assert main(["--bench", str(base), str(cand)]) == 1
        assert main(["--bench", "--threshold", "1.5", str(base), str(cand)]) == 0
