"""Tests of the benchmark history ledger and change-point detection
(:mod:`repro.obs.perf`) plus the ``repro-bench`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.bench_cli import main as bench_main
from repro.obs.metrics import MetricsRegistry
from repro.obs.perf import (
    BenchRecord,
    bench_entries,
    bootstrap_median_ci,
    check_against_history,
    classify_change,
    load_ledger,
    machine_fingerprint,
    record_snapshot,
    trend_html,
    warn_gate_skipped,
)

KERNEL_HIST = "bench.test_rtma_allocate_slot[numpy].seconds"


def _snapshot(p50: float = 1e-3) -> dict:
    return {
        "counters": {},
        "gauges": {"scaling.rtma.u200.slots_per_sec": 5000.0},
        "info": {},
        "histograms": {
            KERNEL_HIST: {
                "count": 30,
                "mean": p50 * 1.05,
                "p50": p50,
                "p95": p50 * 1.3,
                "min": p50 * 0.8,
                "max": p50 * 1.5,
            }
        },
    }


def _write_snapshot(tmp_path, p50=1e-3, name="BENCH_kernels.json"):
    path = tmp_path / name
    path.write_text(json.dumps(_snapshot(p50)))
    return path


class TestFingerprint:
    def test_stable_and_short(self):
        a, b = machine_fingerprint(), machine_fingerprint()
        assert a["id"] == b["id"]
        assert len(a["id"]) == 12
        assert a["python"] and a["numpy"]


class TestBenchEntries:
    def test_histograms_and_gauges_flatten(self):
        entries = bench_entries(_snapshot())
        assert entries[KERNEL_HIST]["p50"] == 1e-3
        assert entries["scaling.rtma.u200.slots_per_sec"] == {"value": 5000.0}

    def test_empty_histograms_skipped(self):
        entries = bench_entries({"histograms": {"x": {"count": 0}}, "gauges": {}})
        assert entries == {}


class TestLedger:
    def test_record_and_load_round_trip(self, tmp_path):
        snap = _write_snapshot(tmp_path)
        ledger = tmp_path / "history.jsonl"
        record = record_snapshot(snap, ledger)
        assert record.source == "kernels"
        # Detected from the "[numpy]" token inside the histogram name.
        assert record.backend == "numpy"
        assert record.machine_id == machine_fingerprint()["id"]
        loaded = load_ledger(ledger)
        assert len(loaded) == 1
        assert loaded[0].entries == record.entries

    def test_append_preserves_order(self, tmp_path):
        snap = _write_snapshot(tmp_path)
        ledger = tmp_path / "history.jsonl"
        first = record_snapshot(snap, ledger)
        second = record_snapshot(snap, ledger)
        assert first.recorded_at <= second.recorded_at
        assert len(load_ledger(ledger)) == 2

    def test_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            record_snapshot(tmp_path / "nope.json", tmp_path / "history.jsonl")

    def test_malformed_lines_skipped(self, tmp_path):
        snap = _write_snapshot(tmp_path)
        ledger = tmp_path / "history.jsonl"
        record_snapshot(snap, ledger)
        with ledger.open("a") as fh:
            fh.write("not json\n")
        assert len(load_ledger(ledger)) == 1

    def test_load_missing_ledger_is_empty(self, tmp_path):
        assert load_ledger(tmp_path / "absent.jsonl") == []


class TestChangePoint:
    def test_insufficient_window(self):
        point = classify_change("m", [1.0, 1.0], 2.0)
        assert point.verdict == "insufficient"
        assert not point.is_failure

    def test_regression_detected(self):
        point = classify_change("m", [1.0] * 6, 2.0)
        assert point.verdict == "regressed"
        assert point.is_failure
        assert point.rel_delta == pytest.approx(1.0)

    def test_improvement_detected(self):
        point = classify_change("m", [1.0] * 6, 0.5)
        assert point.verdict == "improved"

    def test_small_delta_inside_min_effect_is_ok(self):
        # 3% above a perfectly tight window: outside the (degenerate)
        # CI but under the 5% minimum-effect floor.
        point = classify_change("m", [1.0] * 6, 1.03)
        assert point.verdict == "ok"

    def test_noisy_window_widens_ci(self):
        window = [1.0, 1.4, 0.7, 1.2, 0.9, 1.3, 0.8, 1.1]
        point = classify_change("m", window, 1.25)
        assert point.verdict == "ok"  # inside the bootstrap CI

    def test_higher_is_better_direction(self):
        point = classify_change(
            "scaling.ema.u1000.slots_per_sec",
            [5000.0] * 6,
            2000.0,
            lower_is_better=False,
        )
        assert point.verdict == "regressed"

    def test_bootstrap_deterministic(self):
        sample = [1.0, 1.1, 0.9, 1.05, 0.95]
        assert bootstrap_median_ci(sample, seed=7) == bootstrap_median_ci(
            sample, seed=7
        )

    def test_bootstrap_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            bootstrap_median_ci([])
        with pytest.raises(ConfigurationError):
            bootstrap_median_ci([1.0], confidence=2.0)


def _record(ts, p50, backend="numpy", machine="m1", source="kernels"):
    return BenchRecord(
        recorded_at=ts,
        source=source,
        git_rev="abc",
        backend=backend,
        numba_version=None,
        machine={"id": machine},
        entries={"k.p50": {"p50": p50}},
    )


class TestHistoryCheck:
    def test_regression_against_trailing_window(self):
        ledger = [_record(float(i), 1.0) for i in range(6)]
        check = check_against_history(ledger, _record(10.0, 2.0))
        assert not check.ok
        assert check.failures[0].name == "k.p50"

    def test_steady_candidate_ok(self):
        ledger = [_record(float(i), 1.0) for i in range(6)]
        check = check_against_history(ledger, _record(10.0, 1.01))
        assert check.ok and check.compared == 1

    def test_other_backend_never_compared(self):
        ledger = [_record(float(i), 1.0, backend="numba") for i in range(6)]
        check = check_against_history(ledger, _record(10.0, 2.0))
        assert check.compared == 0
        assert check.skipped == 1
        assert check.notes  # "no ledger history ..."

    def test_other_machine_never_compared_by_default(self):
        ledger = [_record(float(i), 1.0, machine="other") for i in range(6)]
        assert check_against_history(ledger, _record(10.0, 2.0)).compared == 0
        relaxed = check_against_history(
            ledger, _record(10.0, 2.0), match_machine=False
        )
        assert not relaxed.ok

    def test_candidate_reloaded_from_disk_excluded(self, tmp_path):
        """A freshly-appended candidate must not feed its own window."""
        ledger_path = tmp_path / "history.jsonl"
        snap = _write_snapshot(tmp_path, p50=1e-3)
        for _ in range(5):
            record_snapshot(snap, ledger_path)
        snap = _write_snapshot(tmp_path, p50=2e-3)
        candidate = record_snapshot(snap, ledger_path)
        check = check_against_history(ledger_path, candidate)
        point = next(p for p in check.points if p.name == KERNEL_HIST)
        assert point.window == 5  # not 6
        assert point.verdict == "regressed"


class TestTrendHtml:
    def test_dashboard_renders_sparklines_and_verdicts(self, tmp_path):
        ledger = [_record(float(i), 1.0) for i in range(6)]
        ledger.append(_record(10.0, 2.0))
        html = trend_html(ledger)
        assert "<svg" in html
        assert "regressed" in html
        assert "k.p50" in html

    def test_empty_ledger_message(self):
        assert "ledger is empty" in trend_html([])


class TestGateSkipWarn:
    def test_counter_and_warn_line(self, capsys, caplog):
        registry = MetricsRegistry()
        warn_gate_skipped("no baseline for backend numba", registry)
        assert registry.counter("perf.gate_skipped").value == 1
        assert "perf gate skipped" in capsys.readouterr().out

    def test_ambient_metrics_fallback(self, capsys):
        from repro.obs.instrument import Instrumentation, use_instrumentation

        instr = Instrumentation()
        with use_instrumentation(instr):
            warn_gate_skipped("missing ledger")
        assert instr.metrics.counter("perf.gate_skipped").value == 1


class TestBenchCli:
    def test_record_trend_check_end_to_end(self, tmp_path, capsys):
        ledger = tmp_path / "history.jsonl"
        for i in range(4):
            snap = _write_snapshot(tmp_path, p50=1e-3)
            assert bench_main(
                ["record", str(snap), "--ledger", str(ledger)]
            ) == 0
        out = capsys.readouterr().out
        assert "recorded kernels" in out

        trend_out = tmp_path / "trend.html"
        assert bench_main(
            ["trend", "--ledger", str(ledger), "--out", str(trend_out)]
        ) == 0
        assert "<svg" in trend_out.read_text()

        # Steady history: check passes.
        assert bench_main(["check", "--ledger", str(ledger)]) == 0
        assert "repro-bench check: ok" in capsys.readouterr().out

        # Append a 3x regression: check exits 3.
        snap = _write_snapshot(tmp_path, p50=3e-3)
        assert bench_main(["record", str(snap), "--ledger", str(ledger)]) == 0
        assert bench_main(["check", "--ledger", str(ledger)]) == 3
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.err

    def test_check_empty_ledger_warns_not_fails(self, tmp_path, capsys):
        rc = bench_main(["check", "--ledger", str(tmp_path / "none.jsonl")])
        assert rc == 0
        assert "perf gate skipped" in capsys.readouterr().out

    def test_check_short_history_warns(self, tmp_path, capsys):
        ledger = tmp_path / "history.jsonl"
        snap = _write_snapshot(tmp_path)
        for _ in range(2):
            assert bench_main(
                ["record", str(snap), "--ledger", str(ledger)]
            ) == 0
        assert bench_main(["check", "--ledger", str(ledger)]) == 0
        assert "perf gate skipped" in capsys.readouterr().out

    def test_record_rejects_empty_snapshot(self, tmp_path, capsys):
        bad = tmp_path / "empty.json"
        bad.write_text("{}")
        assert bench_main(
            ["record", str(bad), "--ledger", str(tmp_path / "h.jsonl")]
        ) == 2
        assert "error" in capsys.readouterr().err

    def test_trend_empty_ledger_errors(self, tmp_path, capsys):
        assert bench_main(
            ["trend", "--ledger", str(tmp_path / "none.jsonl"),
             "--out", str(tmp_path / "t.html")]
        ) == 2

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            bench_main(["--version"])
        assert exc.value.code == 0
        assert "repro-bench" in capsys.readouterr().out
