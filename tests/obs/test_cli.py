"""End-to-end tests of the ``repro-trace`` CLI (quickstart target)."""

import gzip
import json

import pytest

from repro.obs.cli import main


class TestReproTrace:
    def test_quickstart_writes_all_artifacts(self, tmp_path, capsys):
        out = tmp_path / "trace_out"
        rc = main(["quickstart", "--out", str(out)])
        assert rc == 0

        trace = out / "trace.jsonl"
        manifest_path = out / "manifest.json"
        metrics_path = out / "metrics.json"
        assert trace.exists() and manifest_path.exists() and metrics_path.exists()

        events = [json.loads(line) for line in trace.read_text().splitlines()]
        slot_events = [e for e in events if e["kind"] == "slot"]
        # >= 1 event per simulated slot: three schedulers x 300 slots.
        assert len(slot_events) >= 900
        # Run boundaries frame each scheduler's run.
        starts = [e for e in events if e["kind"] == "run.start"]
        ends = [e for e in events if e["kind"] == "run.end"]
        assert [e["scheduler"] for e in starts] == ["default", "rtma", "ema"]
        assert len(ends) == 3
        # Per-user payloads ride on every slot event.
        assert all(len(e["users"]["phi"]) == 8 for e in slot_events)

        manifest = json.loads(manifest_path.read_text())
        assert len(manifest["config_hash"]) == 64
        assert manifest["seed"] == 0
        assert manifest["package_version"]
        assert manifest["wall_time_s"] > 0
        assert manifest["extra"]["n_trace_events"] == len(events)

        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["engine.slots"] == 900
        assert metrics["counters"]["scheduler.invocations"] == 900

        printed = capsys.readouterr().out
        # Phase table covers the full pipeline.
        for phase in ("playback", "observe", "schedule", "transmit", "rrc", "feedback"):
            assert phase in printed
        assert "scheduler" in printed  # summary table header

    def test_refuses_to_overwrite_without_force(self, tmp_path, capsys):
        out = tmp_path / "trace_out"
        assert main(["quickstart", "--out", str(out)]) == 0
        first = (out / "trace.jsonl").read_bytes()

        assert main(["quickstart", "--out", str(out)]) == 2
        assert (out / "trace.jsonl").read_bytes() == first
        assert "--force" in capsys.readouterr().err

        assert main(["quickstart", "--out", str(out), "--force", "--seed", "1"]) == 0
        assert (out / "trace.jsonl").read_bytes() != first

    def test_gzip_output_and_force_swaps_format(self, tmp_path):
        out = tmp_path / "trace_out"
        assert main(["quickstart", "--out", str(out), "--gzip"]) == 0
        gz = out / "trace.jsonl.gz"
        assert gz.exists() and not (out / "trace.jsonl").exists()
        with gzip.open(gz, "rt", encoding="utf-8") as f:
            first = json.loads(f.readline())
        assert first["kind"] == "run.start"

        # The guard also covers format changes: switching to plain
        # output must not leave the stale .gz behind.
        assert main(["quickstart", "--out", str(out)]) == 2
        assert main(["quickstart", "--out", str(out), "--force"]) == 0
        assert (out / "trace.jsonl").exists() and not gz.exists()

    def test_report_flag_writes_selfcontained_html(self, tmp_path):
        out = tmp_path / "trace_out"
        assert main(["quickstart", "--out", str(out), "--report"]) == 0
        html = (out / "report.html").read_text()
        assert "<svg" in html
        for marker in ("http://", "https://", "<script", "src="):
            assert marker not in html


class TestVersionFlag:
    """Every console script answers ``--version`` with the package
    version (satellite of the performance-observatory issue; the flag
    is wired through :func:`repro.obs.cli.add_version_argument`)."""

    CLIS = {
        "repro-trace": "repro.obs.cli",
        "repro-analyze": "repro.obs.analyze",
        "repro-compare": "repro.obs.compare",
        "repro-report": "repro.obs.report",
        "repro-watch": "repro.obs.live.watch",
        "repro-experiments": "repro.experiments.registry",
        "repro-bench": "repro.obs.bench_cli",
    }

    @pytest.mark.parametrize("prog", sorted(CLIS))
    def test_version_prints_prog_and_version(self, prog, capsys):
        import importlib

        from repro import __version__

        cli_main = importlib.import_module(self.CLIS[prog]).main
        with pytest.raises(SystemExit) as exc:
            cli_main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"{prog} {__version__}"
