"""End-to-end test of the ``repro-trace`` CLI (quickstart target)."""

import json

from repro.obs.cli import main


class TestReproTrace:
    def test_quickstart_writes_all_artifacts(self, tmp_path, capsys):
        out = tmp_path / "trace_out"
        rc = main(["quickstart", "--out", str(out)])
        assert rc == 0

        trace = out / "trace.jsonl"
        manifest_path = out / "manifest.json"
        metrics_path = out / "metrics.json"
        assert trace.exists() and manifest_path.exists() and metrics_path.exists()

        events = [json.loads(line) for line in trace.read_text().splitlines()]
        slot_events = [e for e in events if e["kind"] == "slot"]
        # >= 1 event per simulated slot: two schedulers x 300 slots.
        assert len(slot_events) >= 600

        manifest = json.loads(manifest_path.read_text())
        assert len(manifest["config_hash"]) == 64
        assert manifest["seed"] == 0
        assert manifest["package_version"]
        assert manifest["wall_time_s"] > 0
        assert manifest["extra"]["n_trace_events"] == len(events)

        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["engine.slots"] == 600
        assert metrics["counters"]["scheduler.invocations"] == 600

        printed = capsys.readouterr().out
        # Phase table covers the full pipeline.
        for phase in ("playback", "observe", "schedule", "transmit", "rrc", "feedback"):
            assert phase in printed
        assert "scheduler" in printed  # summary table header
