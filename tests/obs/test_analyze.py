"""Tests for trace analysis and invariant checking.

Two families:

* **clean runs** — quickstart-config traces of RTMA and EMA must
  produce *zero* invariant violations (the simulator respects its own
  constraint system);
* **seeded fault injection** — corrupt one recorded grid cell at known
  coordinates (negative buffer, over-capacity allocation, a slot that
  busts the RTMA energy envelope, an EMA queue snapshot drifted off
  the Eq. 16 update) and assert the checker reports exactly that
  invariant at exactly those slot/user coordinates.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro.baselines.default import DefaultScheduler
from repro.core.ema import EMAScheduler
from repro.core.rtma import RTMAScheduler
from repro.errors import ConfigurationError
from repro.obs.analyze import (
    CapacityChecker,
    EMAQueueChecker,
    NonNegativeBufferChecker,
    RTMAEnergyBudgetChecker,
    check_invariants,
    check_trace,
    main,
    timeline_from_result,
    timelines_from_events,
    timelines_from_trace,
)
from repro.obs.instrument import Instrumentation, use_instrumentation
from repro.obs.tracer import JsonlTraceWriter, RecordingTracer
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation


def small_config(**overrides) -> SimConfig:
    base = dict(
        n_users=5,
        n_slots=80,
        capacity_kbps=3 * 1024.0,
        video_size_range_kb=(5_000.0, 9_000.0),
        vbr_segments=8,
        buffer_capacity_s=45.0,
        seed=3,
    )
    base.update(overrides)
    return SimConfig(**base)


def traced_timeline(scheduler, cfg=None):
    """Run one scheduler traced in memory; return its RunTimeline."""
    cfg = cfg or small_config()
    tracer = RecordingTracer()
    with use_instrumentation(Instrumentation(tracer=tracer)):
        Simulation(cfg, scheduler).run()
    (timeline,) = timelines_from_events(tracer.events)
    return timeline


class TestTimelineReconstruction:
    def test_grids_match_in_memory_result(self):
        cfg = small_config()
        tracer = RecordingTracer()
        with use_instrumentation(Instrumentation(tracer=tracer)):
            result = Simulation(cfg, RTMAScheduler()).run()
        (tl,) = timelines_from_events(tracer.events)

        assert tl.scheduler == "rtma"
        assert tl.n_users == cfg.n_users and tl.n_slots == cfg.n_slots
        # -inf threshold survives the JSON round-trip via the sanitiser.
        assert tl.params["sig_threshold_dbm"] == float("-inf")
        for key, expected in timeline_from_result(result).grids.items():
            np.testing.assert_allclose(
                tl.grids[key], np.asarray(expected, dtype=float), atol=1e-9,
                err_msg=key,
            )

    def test_multi_run_segmentation_and_rebuffer_events(self):
        cfg = small_config()
        tracer = RecordingTracer()
        with use_instrumentation(Instrumentation(tracer=tracer)):
            for sched in (DefaultScheduler(), RTMAScheduler()):
                Simulation(cfg, sched).run()
        timelines = timelines_from_events(tracer.events)
        assert [tl.scheduler for tl in timelines] == ["default", "rtma"]
        for tl in timelines:
            assert tl.end_summary["delivered_total_kb"] > 0
            events = tl.rebuffer_events()
            # Events partition the positive rebuffering mass.
            total = sum(e.total_s for e in events)
            assert total == pytest.approx(float(tl.grids["rebuffering_s"].sum()))
            for e in events:
                assert 0 <= e.start_slot <= e.end_slot < tl.n_slots

    def test_rrc_residency_and_energy_split_consistent(self):
        tl = traced_timeline(RTMAScheduler())
        residency = tl.rrc_residency()
        assert sum(int(v.sum()) for v in residency.values()) == tl.n_slots * tl.n_users
        split = tl.energy_split_mj()
        assert split["tail_dch_mj"] + split["tail_fach_mj"] == pytest.approx(
            float(tl.grids["energy_tail_mj"].sum())
        )

    def test_gzip_and_magic_byte_sniffing(self, tmp_path):
        cfg = small_config(n_slots=30)
        path = tmp_path / "trace.jsonl.gz"
        tracer = JsonlTraceWriter(path)
        with use_instrumentation(Instrumentation(tracer=tracer)):
            Simulation(cfg, DefaultScheduler()).run()
        tracer.close()
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        (tl,) = timelines_from_trace(path)
        assert tl.n_slots == 30

        # A gz payload under a .jsonl name is detected by magic bytes.
        renamed = tmp_path / "renamed" / "trace.jsonl"
        renamed.parent.mkdir()
        shutil.copy(path, renamed)
        (tl2,) = timelines_from_trace(renamed.parent)
        assert tl2.n_slots == 30

    def test_corrupt_line_is_located(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "slot", "slot": 0}\nnot json\n')
        with pytest.raises(ConfigurationError, match="trace.jsonl:2"):
            timelines_from_trace(path)

    def test_missing_trace_errors(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no trace"):
            timelines_from_trace(tmp_path)


class TestCleanRuns:
    """The simulator must not violate its own paper-derived invariants."""

    def test_quickstart_trace_is_violation_free(self, traced_quickstart_dir):
        reports = check_trace(traced_quickstart_dir)
        assert [tl.scheduler for tl, _ in reports] == ["default", "rtma", "ema"]
        for tl, report in reports:
            assert report.ok, report.render()
        # The scheduler-specific invariants actually ran (not skipped).
        by_name = {tl.scheduler: rep for tl, rep in reports}
        assert "rtma.energy_budget" in by_name["rtma"].checked
        assert "ema.virtual_queues" in by_name["ema"].checked

    def test_rtma_with_real_energy_budget_is_clean(self):
        tl = traced_timeline(RTMAScheduler(energy_budget_mj_per_slot=1000.0))
        assert np.isfinite(tl.params["sig_threshold_dbm"])
        report = check_invariants(tl)
        assert "rtma.energy_budget" in report.checked
        assert report.ok, report.render()

    def test_ema_with_floor_is_clean(self):
        tl = traced_timeline(
            EMAScheduler(5, v_param=0.5, queue_floor_s=-30.0)
        )
        assert tl.params["queue_floor_s"] == -30.0
        report = check_invariants(tl)
        assert "ema.virtual_queues" in report.checked
        assert report.ok, report.render()


class TestFaultInjection:
    """Corrupted grids must be flagged at the corrupted coordinates."""

    def test_negative_buffer_detected(self):
        tl = traced_timeline(DefaultScheduler())
        tl.grids["buffer_s"][17, 2] = -0.25
        violations = NonNegativeBufferChecker().check(tl)
        assert [(v.slot, v.user) for v in violations] == [(17, 2)]
        assert violations[0].expected == 0.0
        assert violations[0].actual == pytest.approx(-0.25)

    def test_over_capacity_allocation_detected(self):
        tl = traced_timeline(DefaultScheduler())
        tl.grids["phi"][9, 1] = tl.grids["link_units"][9, 1] + 7
        violations = CapacityChecker().check(tl)
        link = [v for v in violations if "per-link" in v.message]
        assert [(v.slot, v.user) for v in link] == [(9, 1)]
        assert link[0].actual == link[0].expected + 7

    def test_bs_budget_violation_detected(self):
        tl = traced_timeline(DefaultScheduler())
        slot = 11
        tl.grids["phi"][slot, 0] += int(tl.totals["unit_budget"][slot]) + 1
        violations = CapacityChecker().check(tl)
        budget = [v for v in violations if "unit budget" in v.message]
        assert budget and budget[0].slot == slot and budget[0].user is None

    def test_phi_energy_violation_detected(self):
        tl = traced_timeline(RTMAScheduler(energy_budget_mj_per_slot=1000.0))
        tl.grids["energy_trans_mj"][23, 3] = 2 * 1000.0 + 50.0
        violations = RTMAEnergyBudgetChecker().check(tl)
        assert [(v.slot, v.user) for v in violations] == [(23, 3)]
        assert violations[0].expected == pytest.approx(2000.0)
        assert violations[0].actual > 2000.0

    def test_sub_threshold_scheduling_detected(self):
        tl = traced_timeline(RTMAScheduler(energy_budget_mj_per_slot=1000.0))
        scheduled = np.argwhere(tl.grids["phi"] > 0)
        slot, user = map(int, scheduled[len(scheduled) // 2])
        tl.grids["sig_dbm"][slot, user] = tl.params["sig_threshold_dbm"] - 5.0
        violations = RTMAEnergyBudgetChecker().check(tl)
        assert (slot, user) in [(v.slot, v.user) for v in violations]
        assert all("threshold" in v.message for v in violations)

    def test_ema_queue_drift_detected(self):
        tl = traced_timeline(EMAScheduler(5, v_param=0.5))
        j = tl.ema_queues.shape[0] // 2
        slot = int(tl.ema_queue_slots[j])
        tl.ema_queues[j, 4] += 5.0
        violations = EMAQueueChecker().check(tl)
        coords = [(v.slot, v.user) for v in violations]
        # The tampered snapshot breaks Eq. (16) at slot j (observed
        # value too high) and at slot j+1 (expected recomputed from
        # the tampered value) for the same user.
        assert (slot, 4) in coords
        assert all(u in (4, None) for _, u in coords)

    def test_skip_reasons_when_grids_absent(self):
        tl = traced_timeline(DefaultScheduler())
        report = check_invariants(tl)
        assert report.skipped["rtma.energy_budget"]
        assert report.skipped["ema.virtual_queues"]
        tl.grids.clear()
        report = check_invariants(tl)
        assert set(report.skipped) >= {"buffer.non_negative", "allocation.capacity"}


class TestFaultPlaneChecker:
    """fault.injection verifies the trace honours its declared plan."""

    PLAN = None  # built lazily; FaultPlan import kept local to the class

    @classmethod
    def _plan(cls):
        from repro.faults import CapacityFault, FaultPlan, FlowStall, SignalBlackout

        if cls.PLAN is None:
            cls.PLAN = FaultPlan(
                signal=(SignalBlackout(start_slot=10, n_slots=10),),
                capacity=(CapacityFault(start_slot=30, n_slots=10),),
                stalls=(FlowStall(start_slot=50, n_slots=10, users=(1, 3)),),
            )
        return cls.PLAN

    def _faulted_timeline(self):
        return traced_timeline(
            DefaultScheduler(), cfg=small_config(faults=self._plan())
        )

    def test_faulted_run_is_clean(self):
        tl = self._faulted_timeline()
        assert tl.faults == self._plan().spec()
        assert len(tl.fault_windows) == 3
        report = check_invariants(tl)
        assert "fault.injection" in report.checked
        assert report.ok, report.render()

    def test_healthy_run_skips_checker(self):
        tl = traced_timeline(DefaultScheduler())
        assert tl.faults is None
        report = check_invariants(tl)
        assert "no fault plan" in report.skipped["fault.injection"]

    def test_delivery_to_stalled_flow_detected(self):
        tl = self._faulted_timeline()
        tl.grids["delivered_kb"][55, 3] = 120.0
        report = check_invariants(tl)
        coords = [
            (v.slot, v.user)
            for v in report.violations
            if v.invariant == "fault.injection"
        ]
        assert (55, 3) in coords

    def test_signal_grid_off_blackout_level_detected(self):
        tl = self._faulted_timeline()
        tl.grids["sig_dbm"][12, 0] += 40.0
        report = check_invariants(tl)
        coords = [
            (v.slot, v.user)
            for v in report.violations
            if v.invariant == "fault.injection"
        ]
        assert (12, 0) in coords

    def test_budget_in_outage_window_detected(self):
        tl = self._faulted_timeline()
        tl.totals["unit_budget"][33] = 50.0
        report = check_invariants(tl)
        slots = [
            v.slot
            for v in report.violations
            if v.invariant == "fault.injection"
        ]
        assert 33 in slots


class TestAnalyzeCli:
    def test_clean_run_exits_zero(self, traced_quickstart_dir, capsys):
        assert main([str(traced_quickstart_dir)]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out
        assert "energy split" in out

    def test_corrupted_trace_exits_nonzero(self, traced_quickstart_dir, tmp_path, capsys):
        src = traced_quickstart_dir / "trace.jsonl"
        dst = tmp_path / "trace.jsonl"
        # Drive one slot event's buffer negative for user 5.
        import json

        lines = src.read_text().splitlines()
        n_slot = 0
        for i, line in enumerate(lines):
            event = json.loads(line)
            if event["kind"] == "slot":
                n_slot += 1
                if n_slot == 100:
                    event["users"]["buffer_s"][5] = -3.0
                    lines[i] = json.dumps(event)
        dst.write_text("\n".join(lines) + "\n")
        assert main([str(tmp_path)]) == 1
        assert "negative buffer occupancy" in capsys.readouterr().out
