"""Tests for the structured event tracers."""

import json
import math

import numpy as np
import pytest

from repro.obs.tracer import JsonlTraceWriter, NullTracer, RecordingTracer


class TestNullTracer:
    def test_disabled_flag(self):
        assert NullTracer().enabled is False

    def test_emit_is_noop(self):
        t = NullTracer()
        t.emit("slot", slot=0, value=1.0)
        t.close()

    def test_context_manager(self):
        with NullTracer() as t:
            t.emit("x")


class TestRecordingTracer:
    def test_records_kind_and_fields(self):
        t = RecordingTracer()
        t.emit("slot", slot=3, delivered_kb=12.5)
        t.emit("calibration.point", v=0.1)
        assert len(t.events) == 2
        assert t.events[0]["kind"] == "slot"
        assert t.events[0]["slot"] == 3
        assert t.of_kind("slot") == [t.events[0]]
        assert t.of_kind("missing") == []

    def test_enabled(self):
        assert RecordingTracer().enabled is True


class TestJsonlTraceWriter:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceWriter(path) as t:
            t.emit("slot", slot=0, delivered_kb=1.5)
            t.emit("slot", slot=1, delivered_kb=0.0)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        events = [json.loads(line) for line in lines]
        assert events[0]["kind"] == "slot"
        assert events[1]["slot"] == 1
        assert t.n_events == 2

    def test_numpy_values_serialised(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceWriter(path) as t:
            t.emit(
                "queues",
                vec=np.array([1.0, 2.0]),
                count=np.int64(7),
                scalar=np.float64(0.5),
            )
        event = json.loads(path.read_text())
        assert event["vec"] == [1.0, 2.0]
        assert event["count"] == 7
        assert event["scalar"] == 0.5

    def test_non_finite_floats_survive_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceWriter(path) as t:
            t.emit("edge", value=float("inf"), other=float("nan"))
        # Strict JSON: no bare Infinity/NaN tokens in the file.
        event = json.loads(path.read_text(), parse_constant=lambda s: pytest.fail(s))
        assert isinstance(event["value"], str)
        assert isinstance(event["other"], str)
        assert math.isinf(float(event["value"]))

    def test_enabled_and_path(self, tmp_path):
        t = JsonlTraceWriter(tmp_path / "t.jsonl")
        assert t.enabled is True
        assert t.path == tmp_path / "t.jsonl"
        t.close()
