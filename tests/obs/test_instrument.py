"""Tests for the Instrumentation bundle and the ambient context."""

from repro.obs.instrument import (
    Instrumentation,
    current_instrumentation,
    use_instrumentation,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, RecordingTracer


class TestBundle:
    def test_defaults(self):
        instr = Instrumentation()
        assert isinstance(instr.tracer, NullTracer)
        assert len(instr.metrics) == 0
        assert instr.profiler.phases == []

    def test_explicit_facets_kept(self):
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        instr = Instrumentation(tracer=tracer, metrics=metrics)
        assert instr.tracer is tracer
        assert instr.metrics is metrics

    def test_context_manager_closes_tracer(self, tmp_path):
        from repro.obs.tracer import JsonlTraceWriter

        writer = JsonlTraceWriter(tmp_path / "t.jsonl")
        with Instrumentation(tracer=writer):
            writer.emit("x")
        assert writer._file.closed


class TestAmbient:
    def test_none_by_default(self):
        assert current_instrumentation() is None

    def test_use_sets_and_restores(self):
        instr = Instrumentation()
        with use_instrumentation(instr) as active:
            assert active is instr
            assert current_instrumentation() is instr
        assert current_instrumentation() is None

    def test_nesting_innermost_wins(self):
        outer, inner = Instrumentation(), Instrumentation()
        with use_instrumentation(outer):
            with use_instrumentation(inner):
                assert current_instrumentation() is inner
            assert current_instrumentation() is outer

    def test_restored_on_exception(self):
        instr = Instrumentation()
        try:
            with use_instrumentation(instr):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_instrumentation() is None

    def test_engine_prefers_explicit_over_ambient(self, small_config):
        from repro.baselines.default import DefaultScheduler
        from repro.sim.engine import Simulation

        ambient = Instrumentation()
        explicit = Instrumentation()
        cfg = small_config.with_(n_slots=20)
        with use_instrumentation(ambient):
            Simulation(cfg, DefaultScheduler(), instrumentation=explicit).run()
        assert explicit.metrics.counter("engine.slots").value == 20
        assert len(ambient.metrics) == 0
