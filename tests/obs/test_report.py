"""Tests for the self-contained HTML run report."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.report import main, render_report, svg_cdf, svg_sparkline, write_report


class TestSvgPrimitives:
    def test_sparkline_has_one_polyline(self):
        svg = svg_sparkline([1.0, 2.0, 0.5, 3.0], caption="buffer (s)")
        assert svg.count("<polyline") == 1
        assert "buffer (s)" in svg

    def test_sparkline_skips_nonfinite(self):
        svg = svg_sparkline([1.0, float("nan"), 2.0, float("inf"), 3.0])
        assert "nan" not in svg.lower().replace("fill='none'", "")
        assert "<polyline" in svg

    def test_degenerate_series(self):
        assert "no data" in svg_sparkline([1.0])
        assert "no data" in svg_cdf([])
        # A constant series must not divide by zero.
        assert "<polyline" in svg_sparkline([2.0, 2.0, 2.0])

    def test_cdf_monotone_x(self):
        svg = svg_cdf([3.0, 1.0, 2.0])
        xs = [float(p.split(",")[0]) for p in svg.split("points='")[1].split("'")[0].split()]
        assert xs == sorted(xs)

    def test_caption_escaped(self):
        assert "<b>" not in svg_sparkline([1.0, 2.0], caption="<b>bold</b>")


class TestRenderReport:
    @pytest.fixture(scope="class")
    def html(self, traced_quickstart_dir):
        return render_report(traced_quickstart_dir)

    def test_self_contained(self, html):
        for marker in ("http://", "https://", "<script", "src=", "@import"):
            assert marker not in html
        assert html.startswith("<!DOCTYPE html>")

    def test_one_section_per_run(self, html):
        for scheduler in ("default", "rtma", "ema"):
            assert f"<code>{scheduler}</code>" in html

    def test_charts_and_tables_present(self, html):
        assert html.count("<svg") >= 12  # 4 charts x 3 runs
        assert "CDF of per-user total rebuffering" in html
        assert "<table>" in html
        assert "Energy split" in html
        assert "RRC residency" in html

    def test_invariants_reported_clean(self, html):
        assert html.count("0 violations") == 3
        assert "violation(s) found" not in html

    def test_provenance_from_manifest(self, html):
        assert "config_hash" in html

    def test_violations_rendered(self, traced_quickstart_dir, monkeypatch):
        from repro.obs import analyze

        def corrupt(path):
            timelines = timelines_orig(path)
            for tl in timelines:
                tl.grids["buffer_s"][5, 0] = -1.0
            return timelines

        timelines_orig = analyze.timelines_from_trace
        monkeypatch.setattr("repro.obs.report.timelines_from_trace", corrupt)
        html = render_report(traced_quickstart_dir)
        assert "violation(s) found" in html
        assert "negative buffer occupancy" in html


class TestWriteReport:
    def test_default_output_next_to_trace(self, traced_quickstart_dir):
        path = write_report(traced_quickstart_dir)
        assert path == traced_quickstart_dir / "report.html"
        assert path.stat().st_size > 1000

    def test_cli(self, traced_quickstart_dir, tmp_path, capsys):
        out = tmp_path / "r.html"
        assert main([str(traced_quickstart_dir), "--out", str(out), "--title", "T"]) == 0
        assert "<title>T</title>" in out.read_text()
        assert str(out) in capsys.readouterr().out

    def test_missing_run_dir_errors(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_report(tmp_path)

    def test_empty_trace_renders_gracefully(self, tmp_path):
        (tmp_path / "trace.jsonl").write_text("")
        html = render_report(tmp_path)
        assert "No runs found" in html
