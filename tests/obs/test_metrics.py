"""Tests for the metrics registry primitives."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import Counter, Histogram, MetricsRegistry, percentile


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50.0) == 2.0
        assert percentile(values, 95.0) == 4.0
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 4.0

    def test_empty_is_nan(self):
        assert np.isnan(percentile([], 50.0))

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101.0)


class TestCounter:
    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("x").inc(-1.0)


class TestHistogram:
    def test_summary(self):
        h = Histogram("h")
        for v in [3.0, 1.0, 2.0]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["p50"] == 2.0
        assert s["mean"] == pytest.approx(2.0)

    def test_empty_summary(self):
        assert Histogram("h").summary() == {"count": 0}


class TestRegistry:
    def test_get_or_create_returns_same_handle(self):
        reg = MetricsRegistry()
        a = reg.counter("engine.slots")
        b = reg.counter("engine.slots")
        assert a is b
        a.inc(5)
        assert b.value == 5

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_contains_len_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert "a" in reg and "b" in reg and "c" not in reg
        assert len(reg) == 2
        assert reg.names() == ["a", "b"]

    def test_snapshot_sections(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(np.array([1.0, 2.0]))
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 2
        assert snap["gauges"]["g"] == [1.0, 2.0]
        assert snap["histograms"]["h"]["count"] == 1

    def test_write_json_round_trips(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("scalar").set(np.float64(1.5))
        path = reg.write_json(tmp_path / "sub" / "metrics.json")
        data = json.loads(path.read_text())
        assert data["counters"]["c"] == 1
        assert data["gauges"]["scalar"] == 1.5
