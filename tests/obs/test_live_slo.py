"""SLO rule parsing and the online watchdog: firing, edge-triggering,
re-arming at run boundaries, and the abort action.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SloViolation
from repro.obs.live import SloWatchdog, parse_rule, rules_from_spec
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RecordingTracer


class TestParseRule:
    def test_full_grammar(self):
        rule = parse_rule("p95(rebuffer_s) < 0.5")
        assert rule.agg == "p95"
        assert rule.channel == "rebuffer_s"
        assert rule.op == "<"
        assert rule.threshold == 0.5
        assert rule.key == "p95(rebuffer_s)"

    def test_bare_channel_means_last(self):
        rule = parse_rule("slot_energy_mj <= 120")
        assert rule.agg == "last"
        assert rule.channel == "slot_energy_mj"

    def test_unit_suffix_is_cosmetic(self):
        assert parse_rule("max(rebuffer_s) < 2s").threshold == 2.0
        assert parse_rule("mean(slot_energy_mj) <= 1.5e2mj").threshold == 150.0

    @pytest.mark.parametrize(
        "op,holds_at_1,holds_at_3",
        [("<", True, False), ("<=", True, False), (">", False, True), (">=", False, True)],
    )
    def test_operators(self, op, holds_at_1, holds_at_3):
        rule = parse_rule(f"mean(x) {op} 2")
        assert rule.holds(1.0) is holds_at_1
        assert rule.holds(3.0) is holds_at_3

    @pytest.mark.parametrize(
        "bad",
        ["", "p95(rebuffer_s)", "p95(rebuffer_s) ~ 0.5", "median(x) < 1", "p999(x) < 1"],
    )
    def test_rejects_bad_rules(self, bad):
        with pytest.raises(ConfigurationError):
            parse_rule(bad)

    def test_dotted_channel_names(self):
        rule = parse_rule("engine.slots >= 100")
        assert rule.channel == "engine.slots"


def _resolver(values):
    """Resolver over a {channel: value} dict (None for missing)."""

    def resolve(agg, channel):
        return values.get(channel)

    return resolve


class TestSloWatchdog:
    def test_fires_once_per_violation_edge(self):
        metrics = MetricsRegistry()
        tracer = RecordingTracer()
        dog = SloWatchdog(["mean(x) < 1"], metrics=metrics, tracer=tracer)
        assert dog.evaluate(_resolver({"x": 0.5})) == []
        fired = dog.evaluate(_resolver({"x": 2.0}))
        assert len(fired) == 1
        assert fired[0]["observed"] == 2.0
        # Still violated: no new alert.
        assert dog.evaluate(_resolver({"x": 3.0})) == []
        assert dog.n_alerts == 1
        assert metrics.counter("slo.alerts").value == 1
        assert metrics.counter("slo.alerts.mean(x)").value == 1
        events = [e for e in tracer.events if e["kind"] == "slo.alert"]
        assert len(events) == 1

    def test_clear_and_refire(self):
        tracer = RecordingTracer()
        dog = SloWatchdog(["mean(x) < 1"], tracer=tracer)
        dog.evaluate(_resolver({"x": 2.0}))
        dog.evaluate(_resolver({"x": 0.5}))  # recovers -> slo.clear
        assert [e["kind"] for e in tracer.events] == ["slo.alert", "slo.clear"]
        assert len(dog.evaluate(_resolver({"x": 2.0}))) == 1
        assert dog.n_alerts == 2

    def test_rearm_refires_across_runs(self):
        dog = SloWatchdog(["mean(x) < 1"])
        assert len(dog.evaluate(_resolver({"x": 2.0}))) == 1
        dog.rearm()  # run boundary: same violation must fire again
        assert len(dog.evaluate(_resolver({"x": 2.0}))) == 1
        assert dog.n_alerts == 2

    def test_no_data_skips_rule(self):
        dog = SloWatchdog(["p95(rebuffer_s) < 0.5"])
        assert dog.evaluate(_resolver({})) == []
        assert dog.evaluate(_resolver({"rebuffer_s": float("nan")})) == []
        assert dog.n_alerts == 0

    def test_abort_raises_after_emitting(self):
        metrics = MetricsRegistry()
        dog = SloWatchdog(["max(e) <= 10"], action="abort", metrics=metrics)
        with pytest.raises(SloViolation) as err:
            dog.evaluate(_resolver({"e": 50.0}), slot=7)
        assert err.value.observed == 50.0
        assert metrics.counter("slo.alerts").value == 1
        assert dog.alerts[-1]["slot"] == 7

    def test_alert_tail_is_bounded(self):
        dog = SloWatchdog(["mean(x) < 1"])
        for _ in range(200):
            dog.evaluate(_resolver({"x": 2.0}))
            dog.rearm()
        assert dog.n_alerts == 200
        assert len(dog.alerts) <= 64

    def test_bad_action_rejected(self):
        with pytest.raises(ConfigurationError):
            SloWatchdog([], action="explode")

    def test_spec_round_trip(self):
        dog = SloWatchdog(["p95(x) < 1", "mean(y) >= 0"], action="abort")
        rebuilt = rules_from_spec(dog.spec())
        assert [r.text for r in rebuilt.rules] == [r.text for r in dog.rules]
        assert rebuilt.action == "abort"
        assert rules_from_spec(None) is None
        assert rules_from_spec({"rules": []}) is None
