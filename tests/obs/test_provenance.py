"""Tests for config hashing and the run manifest."""

import json

from repro.obs.provenance import RunManifest, build_manifest, config_hash, git_revision
from repro.sim.config import SimConfig


class TestConfigHash:
    def test_stable_across_equal_configs(self):
        a = SimConfig(n_users=4, n_slots=50, seed=3)
        b = SimConfig(n_users=4, n_slots=50, seed=3)
        assert config_hash(a) == config_hash(b)
        assert len(config_hash(a)) == 64

    def test_sensitive_to_any_field(self):
        base = SimConfig(n_users=4, n_slots=50, seed=3)
        assert config_hash(base) != config_hash(base.with_(seed=4))
        assert config_hash(base) != config_hash(base.with_(n_slots=51))
        assert config_hash(base) != config_hash(base.with_(capacity_kbps=1.0))


class TestGitRevision:
    def test_returns_hash_in_this_repo(self):
        rev = git_revision()
        assert rev is None or (len(rev) == 40 and all(c in "0123456789abcdef" for c in rev))

    def test_none_outside_a_repo(self, tmp_path):
        assert git_revision(tmp_path) is None


class TestManifest:
    def test_build_manifest_fields(self):
        cfg = SimConfig(n_users=4, n_slots=50, seed=3)
        m = build_manifest(cfg, target="quickstart")
        assert m.config_hash == config_hash(cfg)
        assert m.seed == 3
        assert m.n_users == 4
        assert m.n_slots == 50
        assert m.package_version
        assert m.python_version
        assert m.extra == {"target": "quickstart"}

    def test_write_json(self, tmp_path):
        cfg = SimConfig(n_users=2, n_slots=10, seed=1)
        m = build_manifest(cfg)
        m.wall_time_s = 1.25
        path = m.write_json(tmp_path / "out" / "manifest.json")
        data = json.loads(path.read_text())
        assert data["config_hash"] == m.config_hash
        assert data["wall_time_s"] == 1.25

    def test_manifest_is_plain_dataclass(self):
        m = RunManifest(
            config_hash="x",
            seed=0,
            n_users=1,
            n_slots=1,
            package_version="0",
            git_rev=None,
            python_version="3",
            numpy_version="2",
            platform="p",
            created_at=0.0,
        )
        assert m.as_dict()["git_rev"] is None


class TestLiveSloProvenance:
    def test_ambient_watchdog_rules_are_recorded(self):
        from repro.obs import Instrumentation, use_instrumentation
        from repro.obs.live import LiveTelemetry
        from repro.sim.config import SimConfig

        cfg = SimConfig(n_users=2, n_slots=10)
        live = LiveTelemetry(
            rules=("p95(rebuffer_s) < 0.5", "max(slot_energy_mj) <= 100"),
            action="abort",
        )
        with use_instrumentation(Instrumentation(live=live)):
            m = build_manifest(cfg)
        assert m.live_slo_rules == (
            "p95(rebuffer_s) < 0.5",
            "max(slot_energy_mj) <= 100",
        )
        assert m.live_slo_action == "abort"
        assert json.loads(
            json.dumps(m.as_dict())
        )["live_slo_rules"] == list(m.live_slo_rules)

    def test_no_live_plane_records_nothing(self):
        from repro.sim.config import SimConfig

        m = build_manifest(SimConfig(n_users=2, n_slots=10))
        assert m.live_slo_rules == ()
        assert m.live_slo_action is None
