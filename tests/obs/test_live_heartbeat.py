"""Worker heartbeats and stall detection.

Uses plain ``queue.Queue`` objects — the monitor only needs the queue
interface, and in-process queues keep these tests fast and
deterministic.  The cross-process path is covered by the executor
integration test below.
"""

from __future__ import annotations

import queue
import time

import numpy as np
import pytest

from repro.obs.live import HeartbeatEmitter, HeartbeatMonitor
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RecordingTracer


class TestHeartbeatEmitter:
    def test_beat_payload(self):
        q = queue.Queue()
        emitter = HeartbeatEmitter(q, worker="w-test", every_s=0.0)
        emitter.task = 3
        emitter.beat("slots", slots_done=128, n_slots=400)
        record = q.get_nowait()
        assert record["worker"] == "w-test"
        assert record["phase"] == "slots"
        assert record["task"] == 3
        assert record["slots_done"] == 128
        assert "ts" in record

    def test_due_gates_by_time(self):
        emitter = HeartbeatEmitter(queue.Queue(), every_s=3600.0)
        assert emitter.due()
        emitter.beat("idle")
        assert not emitter.due()
        assert emitter.maybe_beat("slots") is False

    def test_broken_queue_never_raises(self):
        class Broken:
            def put_nowait(self, record):
                raise OSError("pipe closed")

        emitter = HeartbeatEmitter(Broken(), every_s=0.0)
        emitter.beat("slots")  # must swallow


class TestHeartbeatMonitor:
    def test_ingest_and_snapshot(self):
        q = queue.Queue()
        metrics = MetricsRegistry()
        monitor = HeartbeatMonitor(q, stall_after_s=30.0, metrics=metrics)
        emitter = HeartbeatEmitter(q, worker="w-1", every_s=0.0)
        with monitor:
            emitter.beat("slots", slots_done=10)
            emitter.beat("slots", slots_done=20)
            deadline = time.monotonic() + 5.0
            while monitor.n_beats < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
        snap = monitor.snapshot()
        assert snap["n_beats"] == 2
        assert snap["n_workers"] == 1
        assert snap["workers"]["w-1"]["slots_done"] == 20
        assert snap["workers"]["w-1"]["stalled"] is False
        assert metrics.counter("executor.heartbeats").value == 2

    def test_stall_detection_and_recovery(self):
        q = queue.Queue()
        metrics = MetricsRegistry()
        tracer = RecordingTracer()
        monitor = HeartbeatMonitor(
            q, stall_after_s=0.05, metrics=metrics, tracer=tracer, poll_s=0.01
        )
        emitter = HeartbeatEmitter(q, worker="w-1", every_s=0.0)
        with monitor:
            emitter.beat("slots", slots_done=10)
            deadline = time.monotonic() + 5.0
            while not monitor.stalled and time.monotonic() < deadline:
                time.sleep(0.01)
            assert "w-1" in monitor.stalled
            # Recovery clears the flag and emits executor.resume.
            emitter.beat("slots", slots_done=11)
            while monitor.stalled and time.monotonic() < deadline:
                time.sleep(0.01)
        assert not monitor.stalled
        assert metrics.counter("executor.stalls").value >= 1
        kinds = [e["kind"] for e in tracer.events]
        assert "executor.stall" in kinds
        assert "executor.resume" in kinds

    def test_idle_workers_never_stall(self):
        q = queue.Queue()
        monitor = HeartbeatMonitor(q, stall_after_s=0.01, poll_s=0.01)
        emitter = HeartbeatEmitter(q, worker="w-1", every_s=0.0)
        with monitor:
            emitter.beat("idle")
            time.sleep(0.1)
        assert not monitor.stalled

    def test_slots_per_s_aggregates_active_workers(self):
        q = queue.Queue()
        monitor = HeartbeatMonitor(q, stall_after_s=30.0)
        monitor._ingest({"worker": "w-1", "phase": "slots", "slots_per_s": 100.0})
        monitor._ingest({"worker": "w-2", "phase": "slots", "slots_per_s": 50.0})
        monitor._ingest({"worker": "w-3", "phase": "idle", "slots_per_s": 999.0})
        assert monitor.slots_per_s() == pytest.approx(150.0)

    def test_slots_per_s_excludes_stalled_workers(self):
        # Regression: a stalled worker's last-known rate used to stay
        # in the aggregate, overstating fleet throughput forever.
        q = queue.Queue()
        monitor = HeartbeatMonitor(q, stall_after_s=30.0)
        monitor._ingest({"worker": "w-1", "phase": "slots", "slots_per_s": 100.0})
        monitor._ingest({"worker": "w-2", "phase": "slots", "slots_per_s": 50.0})
        monitor.stalled.add("w-1")
        assert monitor.slots_per_s() == pytest.approx(50.0)

    def test_task_change_clears_stale_progress(self):
        # Regression: entry.update() carried slots_done/n_slots/
        # slots_per_s over from the previous task, so a worker's first
        # beat on a new task showed the *old* task's progress.
        q = queue.Queue()
        monitor = HeartbeatMonitor(q, stall_after_s=30.0)
        monitor._ingest(
            {
                "worker": "w-1",
                "phase": "slots",
                "task": 0,
                "slots_done": 900,
                "n_slots": 1000,
                "slots_per_s": 450.0,
            }
        )
        monitor._ingest({"worker": "w-1", "phase": "task.start", "task": 1})
        entry = monitor.snapshot()["workers"]["w-1"]
        assert entry["task"] == 1
        assert "slots_done" not in entry
        assert "slots_per_s" not in entry
        assert monitor.slots_per_s() == 0.0

    def test_same_task_keeps_progress(self):
        q = queue.Queue()
        monitor = HeartbeatMonitor(q, stall_after_s=30.0)
        monitor._ingest(
            {"worker": "w-1", "phase": "slots", "task": 2, "slots_done": 10,
             "n_slots": 100}
        )
        monitor._ingest({"worker": "w-1", "phase": "slots", "task": 2,
                         "slots_done": 20})
        entry = monitor.snapshot()["workers"]["w-1"]
        assert entry["slots_done"] == 20
        assert entry["n_slots"] == 100

    def test_blocking_tracer_cannot_deadlock_drain(self):
        """Regression: stall/resume events were emitted while holding
        the monitor lock, so a tracer that itself reads the monitor
        (e.g. a live exporter snapshotting the worker table) deadlocked
        the drain thread.  Both events must land even when emit()
        re-enters snapshot()."""

        class SnapshottingTracer:
            enabled = True

            def __init__(self):
                self.events = []
                self.monitor = None

            def emit(self, kind, /, **fields):
                # Re-enter the monitor under its own lock path.
                self.monitor.snapshot()
                self.monitor.slots_per_s()
                self.events.append({"kind": kind, **fields})

        q = queue.Queue()
        tracer = SnapshottingTracer()
        monitor = HeartbeatMonitor(
            q, stall_after_s=0.05, tracer=tracer, poll_s=0.01
        )
        tracer.monitor = monitor
        emitter = HeartbeatEmitter(q, worker="w-1", every_s=0.0)
        with monitor:
            emitter.beat("slots", slots_done=1)
            deadline = time.monotonic() + 5.0
            while not monitor.stalled and time.monotonic() < deadline:
                time.sleep(0.01)
            emitter.beat("slots", slots_done=2)
            kinds = lambda: [e["kind"] for e in tracer.events]  # noqa: E731
            while "executor.resume" not in kinds() and time.monotonic() < deadline:
                time.sleep(0.01)
        assert "executor.stall" in kinds()
        assert "executor.resume" in kinds()

    def test_retire_workers(self):
        q = queue.Queue()
        monitor = HeartbeatMonitor(q, stall_after_s=0.01, poll_s=0.01)
        monitor._ingest({"worker": "w-1", "phase": "slots", "task": 0,
                         "slots_per_s": 80.0})
        monitor._ingest({"worker": "w-2", "phase": "slots", "task": 1,
                         "slots_per_s": 20.0})
        monitor.stalled.add("w-1")
        retired = monitor.retire_workers("pool-broken")
        assert retired == ["w-1", "w-2"]
        assert not monitor.stalled
        assert monitor.slots_per_s() == 0.0
        snap = monitor.snapshot()
        for name in ("w-1", "w-2"):
            assert snap["workers"][name]["phase"] == "retired"
            assert snap["workers"][name]["stalled"] is False
        # Retired entries never re-enter stall detection.
        monitor._check_stalls()
        assert not monitor.stalled


class TestExecutorHeartbeats:
    def test_pool_emits_heartbeats(self):
        """A pooled run with heartbeat_s set produces >=1 beat and a
        worker table, and still matches the serial results."""
        from repro.core.rtma import RTMAScheduler
        from repro.obs.instrument import Instrumentation
        from repro.obs.live import LiveTelemetry
        from repro.sim.config import SimConfig
        from repro.sim.executor import RunExecutor, RunTask
        from repro.sim.workload import generate_workload

        cfg = SimConfig(n_users=4, n_slots=150, seed=5)
        wl = generate_workload(cfg)
        tasks = [
            RunTask(cfg, RTMAScheduler(sig_threshold_dbm=t), wl)
            for t in (-110.0, -100.0, -95.0)
        ]
        serial = RunExecutor(jobs=1).map_runs(tasks)

        live = LiveTelemetry()
        instr = Instrumentation(live=live)
        pooled = RunExecutor(jobs=2, heartbeat_s=0.0).map_runs(
            tasks, instrumentation=instr
        )
        for a, b in zip(serial, pooled):
            assert np.array_equal(a.energy_trans_mj, b.energy_trans_mj)
            assert np.array_equal(a.rebuffering_s, b.rebuffering_s)
        assert instr.metrics.counter("executor.heartbeats").value >= 1
        executor_snap = live.snapshot().get("executor")
        assert executor_snap is not None
        assert executor_snap["n_workers"] >= 1

    def test_no_heartbeats_by_default(self):
        """Without heartbeat_s the executor stays metrics-silent, so
        --jobs 1 and --jobs N metrics dumps stay byte-identical."""
        from repro.core.rtma import RTMAScheduler
        from repro.obs.instrument import Instrumentation
        from repro.sim.config import SimConfig
        from repro.sim.executor import RunExecutor, RunTask
        from repro.sim.workload import generate_workload

        cfg = SimConfig(n_users=4, n_slots=60, seed=5)
        wl = generate_workload(cfg)
        tasks = [
            RunTask(cfg, RTMAScheduler(sig_threshold_dbm=t), wl)
            for t in (-110.0, -95.0)
        ]
        instr = Instrumentation()
        RunExecutor(jobs=2).map_runs(tasks, instrumentation=instr)
        assert "executor.heartbeats" not in instr.metrics
        assert "executor.stalls" not in instr.metrics
