"""LiveTelemetry end-to-end against the engine: per-slot feeding,
abort-path trace hygiene, and snapshot structure.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines.default import DefaultScheduler
from repro.errors import SloViolation
from repro.obs.instrument import Instrumentation
from repro.obs.live import LiveTelemetry
from repro.obs.tracer import JsonlTraceWriter, RecordingTracer
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.workload import generate_workload


def small_config(**kw):
    kw.setdefault("n_users", 4)
    kw.setdefault("n_slots", 120)
    kw.setdefault("seed", 11)
    return SimConfig(**kw)


class FailingScheduler(DefaultScheduler):
    """Raises mid-run to exercise the engine's abort path."""

    def __init__(self, fail_at_call: int = 40):
        super().__init__()
        self.fail_at_call = fail_at_call
        self._calls = 0

    def allocate(self, obs):
        self._calls += 1
        if self._calls >= self.fail_at_call:
            raise RuntimeError("synthetic scheduler crash")
        return super().allocate(obs)


class TestLiveFeeding:
    def test_engine_feeds_every_slot(self):
        cfg = small_config()
        live = LiveTelemetry()
        instr = Instrumentation(live=live)
        Simulation(cfg, DefaultScheduler(), instrumentation=instr).run()
        assert live.total_slots == cfg.n_slots
        assert live.stats["rebuffer_s"].count == cfg.n_slots
        assert live.stats["slot_energy_mj"].count == cfg.n_slots
        progress = live.snapshot()["progress"]
        assert progress["runs_started"] == progress["runs_finished"] == 1
        assert progress["run_slots"] == cfg.n_slots

    def test_run_stats_reset_per_run(self):
        cfg = small_config()
        live = LiveTelemetry()
        instr = Instrumentation(live=live)
        for _ in range(2):
            Simulation(cfg, DefaultScheduler(), instrumentation=instr).run()
        assert live.total_slots == 2 * cfg.n_slots
        # Per-run channels only hold the latest run.
        assert live.stats["rebuffer_s"].count == cfg.n_slots

    def test_registry_fallback_resolution(self):
        cfg = small_config()
        live = LiveTelemetry()
        instr = Instrumentation(live=live)
        Simulation(cfg, DefaultScheduler(), instrumentation=instr).run()
        assert live.resolve("last", "engine.slots") == float(cfg.n_slots)
        assert live.resolve("last", "no.such.metric") is None

    def test_live_plane_values_match_result_grids(self):
        cfg = small_config()
        wl = generate_workload(cfg)
        live = LiveTelemetry()
        instr = Instrumentation(live=live)
        result = Simulation(
            cfg, DefaultScheduler(), wl, instrumentation=instr
        ).run()
        stat = live.stats["rebuffer_s"]
        per_slot = result.rebuffering_s.sum(axis=1)
        assert stat.welford.mean == pytest.approx(float(per_slot.mean()))
        assert stat.max == pytest.approx(float(per_slot.max()))
        energy = live.stats["slot_energy_mj"]
        total = (result.energy_trans_mj + result.energy_tail_mj).sum(axis=1)
        assert energy.welford.mean == pytest.approx(float(total.mean()))


class TestAbortPath:
    def test_slo_abort_raises_and_counts(self):
        cfg = small_config()
        live = LiveTelemetry(
            rules=("count(rebuffer_s) < 50",), action="abort", watch_every=16
        )
        instr = Instrumentation(tracer=RecordingTracer(), live=live)
        with pytest.raises(SloViolation):
            Simulation(cfg, DefaultScheduler(), instrumentation=instr).run()
        kinds = [e["kind"] for e in instr.tracer.events]
        assert "slo.alert" in kinds
        assert kinds[-1] == "run.abort"
        abort = instr.tracer.events[-1]
        assert abort["error"] == "SloViolation"

    def test_crashed_run_leaves_valid_trace_prefix(self, tmp_path):
        cfg = small_config()
        trace_path = tmp_path / "trace.jsonl"
        tracer = JsonlTraceWriter(trace_path)
        live = LiveTelemetry()
        instr = Instrumentation(tracer=tracer, live=live)
        with pytest.raises(RuntimeError, match="synthetic scheduler crash"):
            Simulation(
                cfg, FailingScheduler(fail_at_call=40), instrumentation=instr
            ).run()
        # The engine closed the writer on the way out: every line must
        # parse, and the stream must end with run.abort.
        events = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if line
        ]
        assert events, "crashed run left an empty trace"
        assert events[0]["kind"] == "run.start"
        assert events[-1]["kind"] == "run.abort"
        assert events[-1]["error"] == "RuntimeError"
        assert "synthetic scheduler crash" in events[-1]["message"]
        slot_events = [e for e in events if e["kind"] == "slot"]
        assert len(slot_events) == 39  # every completed slot made it out

    def test_abort_pushes_final_snapshot(self, tmp_path):
        from repro.obs.live import SnapshotExporter

        cfg = small_config()
        live = LiveTelemetry(
            exporter=SnapshotExporter(tmp_path / "prom.txt", every_s=3600.0)
        )
        instr = Instrumentation(live=live)
        with pytest.raises(RuntimeError):
            Simulation(
                cfg, FailingScheduler(fail_at_call=40), instrumentation=instr
            ).run()
        snap = json.loads((tmp_path / "prom.json").read_text())
        assert snap["progress"]["runs_started"] == 1
        assert snap["progress"]["runs_finished"] == 0

    def test_uninstrumented_crash_unchanged(self):
        cfg = small_config()
        with pytest.raises(RuntimeError, match="synthetic scheduler crash"):
            Simulation(cfg, FailingScheduler(fail_at_call=40)).run()


class TestObserverEffect:
    def test_live_on_off_bit_identical_single_run(self):
        cfg = small_config()
        wl = generate_workload(cfg)
        plain = Simulation(cfg, DefaultScheduler(), wl).run()
        live = LiveTelemetry(rules=("p95(rebuffer_s) < 1e9",), watch_every=8)
        instr = Instrumentation(live=live)
        watched = Simulation(
            cfg, DefaultScheduler(), wl, instrumentation=instr
        ).run()
        for name in ("allocation_units", "delivered_kb", "rebuffering_s",
                     "energy_trans_mj", "energy_tail_mj", "buffer_s"):
            a, b = getattr(plain, name), getattr(watched, name)
            assert a.tobytes() == b.tobytes(), name
        assert np.array_equal(plain.completion_slot, watched.completion_slot)
