"""Streaming aggregators: EWMA, Welford, P² sketches, StreamStat.

The P² estimator is approximate by construction; the property tests
bound its error against exact percentiles on random streams rather
than pinning values.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.obs.live import Ewma, P2Quantile, StreamStat, Welford


class TestEwma:
    def test_first_update_seeds(self):
        e = Ewma(halflife_s=5.0)
        assert not e.initialized
        assert e.update(10.0, dt_s=1.0) == 10.0
        assert e.initialized

    def test_halflife_semantics(self):
        # One update a full half-life later moves halfway to the target.
        e = Ewma(halflife_s=2.0)
        e.update(0.0)
        e.update(100.0, dt_s=2.0)
        assert e.value == pytest.approx(50.0)

    def test_converges_to_constant(self):
        e = Ewma(halflife_s=1.0)
        for _ in range(60):
            e.update(7.0, dt_s=1.0)
        assert e.value == pytest.approx(7.0, rel=1e-6)

    def test_rejects_bad_halflife(self):
        with pytest.raises(ConfigurationError):
            Ewma(halflife_s=0.0)


class TestWelford:
    @given(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=200,
        )
    )
    def test_matches_numpy(self, values):
        w = Welford()
        for v in values:
            w.add(v)
        arr = np.array(values)
        assert w.count == len(values)
        assert w.mean == pytest.approx(float(arr.mean()), rel=1e-9, abs=1e-6)
        assert w.variance == pytest.approx(float(arr.var()), rel=1e-6, abs=1e-6)
        assert w.std == pytest.approx(float(arr.std()), rel=1e-6, abs=1e-6)

    def test_single_sample(self):
        w = Welford()
        w.add(3.5)
        assert w.mean == 3.5
        assert w.variance == 0.0


class TestP2Quantile:
    def test_rejects_degenerate_q(self):
        for q in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ConfigurationError):
                P2Quantile(q)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    def test_exact_below_five_samples(self):
        sketch = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0):
            sketch.add(v)
        # Nearest-rank median of {1, 3, 5}.
        assert sketch.value == 3.0

    @settings(max_examples=50, deadline=None)
    @given(
        data=st.lists(
            st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
            min_size=50,
            max_size=500,
        ),
        q=st.sampled_from([0.5, 0.9, 0.95]),
    )
    def test_tracks_exact_percentile(self, data, q):
        sketch = P2Quantile(q)
        for v in data:
            sketch.add(v)
        exact = float(np.percentile(data, q * 100.0))
        spread = max(data) - min(data)
        # P² error is bounded by the local sample spread; on arbitrary
        # streams a 15%-of-range tolerance is a conservative envelope.
        assert abs(sketch.value - exact) <= max(0.15 * spread, 1e-9)
        assert min(data) <= sketch.value <= max(data)
        assert sketch.count == len(data)

    def test_accurate_on_uniform_stream(self):
        rng = np.random.default_rng(42)
        data = rng.uniform(0.0, 1.0, size=5000)
        sketch = P2Quantile(0.95)
        for v in data:
            sketch.add(v)
        assert sketch.value == pytest.approx(
            float(np.percentile(data, 95.0)), abs=0.02
        )


class TestStreamStat:
    def test_aggregates(self):
        stat = StreamStat("rebuffer_s", quantiles=(0.5, 0.95))
        for v in (1.0, 2.0, 3.0, 4.0):
            stat.add(v)
        assert stat.count == 4
        assert stat.aggregate("last") == 4.0
        assert stat.aggregate("min") == 1.0
        assert stat.aggregate("max") == 4.0
        assert stat.aggregate("mean") == pytest.approx(2.5)
        assert stat.aggregate("count") == 4.0
        assert stat.aggregate("p50") == stat.quantile(0.5)

    def test_unknown_aggregate_raises(self):
        with pytest.raises(ConfigurationError):
            StreamStat("x").aggregate("median")

    def test_snapshot_shape(self):
        stat = StreamStat("energy", quantiles=(0.5, 0.95))
        stat.add(10.0)
        snap = stat.snapshot()
        assert snap["count"] == 1
        assert "mean" in snap and "p50" in snap and "p95" in snap
        assert all(isinstance(v, (int, float)) for v in snap.values())

    def test_empty_min_max_are_nan(self):
        stat = StreamStat("x")
        assert math.isnan(stat.aggregate("min"))
        assert math.isnan(stat.aggregate("max"))


class TestBatchedFeeds:
    """The ``add_array`` block paths the engine's batched tick uses.

    ``P2Quantile.add_array`` must be *float-exact* against per-sample
    ``add`` (same marker state, same interpolation operation order) —
    the live plane's observer-effect contract extends to its own
    aggregates.  Welford's Chan merge is exact up to rounding.
    """

    @given(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=400,
        ),
        st.sampled_from([0.5, 0.9, 0.95, 0.99]),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_p2_add_array_float_exact(self, values, q, rnd):
        ref = P2Quantile(q)
        for v in values:
            ref.add(v)
        batched = P2Quantile(q)
        i = 0
        while i < len(values):
            step = rnd.randint(1, 50)
            batched.add_array([float(v) for v in values[i : i + step]])
            i += step
        assert batched.count == ref.count
        assert batched._heights == ref._heights
        assert batched._pos == ref._pos
        assert batched._desired == ref._desired
        if values:
            assert batched.value == ref.value

    def test_p2_add_array_zero_inflated_stream(self):
        # Rebuffering channels are mostly zeros; the repeated-equal-value
        # paths must stay exact too.
        rng = np.random.default_rng(7)
        data = np.where(rng.random(900) < 0.85, 0.0, rng.random(900))
        ref = P2Quantile(0.95)
        for v in data:
            ref.add(float(v))
        batched = P2Quantile(0.95)
        for start in range(0, 900, 64):
            batched.add_array(data[start : start + 64].tolist())
        assert batched._heights == ref._heights
        assert batched._pos == ref._pos

    def test_p2_add_array_empty_is_noop(self):
        p = P2Quantile(0.5)
        p.add_array([])
        assert p.count == 0
        assert math.isnan(p.value)

    @given(
        st.lists(
            st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=300,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_welford_add_array_matches_sequential(self, values):
        seq = Welford()
        for v in values:
            seq.add(v)
        # Feed in two unequal halves to exercise the merge both ways.
        half = len(values) // 2
        merged = Welford()
        merged.add_array(np.asarray(values[:half]))
        merged.add_array(np.asarray(values[half:]))
        assert merged.count == seq.count
        assert merged.mean == pytest.approx(seq.mean, rel=1e-9, abs=1e-9)
        assert merged.variance == pytest.approx(seq.variance, rel=1e-7, abs=1e-7)

    def test_stream_stat_add_array_matches_add(self):
        rng = np.random.default_rng(3)
        data = rng.normal(5.0, 2.0, 512)
        one = StreamStat("x", quantiles=(0.5, 0.95))
        for v in data:
            one.add(float(v))
        batched = StreamStat("x", quantiles=(0.5, 0.95))
        for start in range(0, 512, 64):
            batched.add_array(data[start : start + 64])
        assert batched.count == one.count
        assert batched.last == one.last
        assert batched.min == one.min and batched.max == one.max
        assert batched.welford.mean == pytest.approx(one.welford.mean, rel=1e-12)
        assert batched.quantile(0.95) == one.quantile(0.95)
        assert batched.quantile(0.5) == one.quantile(0.5)

    def test_stream_stat_add_array_empty_is_noop(self):
        s = StreamStat("x")
        s.add_array(np.array([]))
        assert s.count == 0
