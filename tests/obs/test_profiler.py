"""Tests for the phase profiler."""

from repro.obs.profiler import PhaseProfiler, null_phase


class TestNullPhase:
    def test_noop_context(self):
        with null_phase("anything"):
            pass


class TestPhaseProfiler:
    def test_phase_times_entries(self):
        prof = PhaseProfiler()
        for _ in range(3):
            with prof.phase("work"):
                pass
        s = prof.summary()["work"]
        assert s["count"] == 3
        assert s["total_s"] >= 0.0
        assert s["p50_s"] <= s["p95_s"] <= s["max_s"]

    def test_phase_returns_cached_timer(self):
        prof = PhaseProfiler()
        assert prof.phase("a") is prof.phase("a")

    def test_samples_feeds_same_phase(self):
        prof = PhaseProfiler()
        raw = prof.samples("hot")
        raw.append(0.25)
        raw.append(0.75)
        s = prof.summary()["hot"]
        assert s["count"] == 2
        assert s["total_s"] == 1.0
        assert s["mean_s"] == 0.5

    def test_phase_registration_order_is_first_use(self):
        prof = PhaseProfiler()
        prof.samples("playback")
        prof.samples("observe")
        prof.record("calibrate", 0.1)
        prof.samples("playback").append(0.1)
        prof.samples("observe").append(0.1)
        assert list(prof.summary()) == ["playback", "observe", "calibrate"]

    def test_record_external_sample(self):
        prof = PhaseProfiler()
        prof.record("calibrate_rtma", 1.5)
        assert prof.summary()["calibrate_rtma"]["total_s"] == 1.5

    def test_render_table_lists_phases(self):
        prof = PhaseProfiler()
        prof.record("rrc", 0.001)
        text = prof.render_table()
        assert "rrc" in text
        assert "p95 (us)" in text

    def test_reset(self):
        prof = PhaseProfiler()
        prof.record("x", 1.0)
        prof.reset()
        assert prof.summary() == {}
