"""Prometheus/JSON export: round-trip fidelity, atomic file push, and
the stdlib HTTP pull endpoint.

The load-bearing guarantee: every numeric metric in a registry
snapshot appears in the Prometheus text with a matching value.
"""

from __future__ import annotations

import json
import math
import urllib.request

import numpy as np
import pytest

from repro.obs.live import (
    MetricsServer,
    SnapshotExporter,
    prometheus_name,
    prometheus_text,
)
from repro.obs.metrics import MetricsRegistry


def _populated_registry() -> MetricsRegistry:
    metrics = MetricsRegistry()
    metrics.counter("engine.slots").inc(400)
    metrics.counter("energy.trans_mj").inc(123.456)
    metrics.gauge("ema.virtual_queues").set(np.array([1.5, 2.5, 3.5]))
    metrics.gauge("calibration.threshold_dbm").set(-95.0)
    metrics.gauge("kernels.backend").set("numpy")  # info, not numeric
    hist = metrics.histogram("phase.schedule_ms")
    for v in (1.0, 2.0, 3.0, 4.0, 100.0):
        hist.observe(v)
    return metrics


def _parse_prom(text: str) -> dict[str, float]:
    """{'name' or 'name{labels}': value} for every sample line."""
    out: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        out[name] = float(value)
    return out


class TestPrometheusText:
    def test_name_sanitisation(self):
        assert prometheus_name("engine.slots") == "repro_engine_slots"
        assert prometheus_name("slo.alerts.p95(rebuffer_s)") == (
            "repro_slo_alerts_p95_rebuffer_s"
        )
        assert prometheus_name("x", prefix="") == "x"

    def test_every_numeric_metric_round_trips(self):
        snapshot = _populated_registry().snapshot()
        samples = _parse_prom(prometheus_text(snapshot))

        for name, value in snapshot["counters"].items():
            assert samples[prometheus_name(name) + "_total"] == value
        for name, value in snapshot["gauges"].items():
            pname = prometheus_name(name)
            if isinstance(value, list):
                for i, item in enumerate(value):
                    assert samples[f'{pname}{{index="{i}"}}'] == item
            else:
                assert samples[pname] == value
        for name, summary in snapshot["histograms"].items():
            pname = prometheus_name(name)
            assert samples[f"{pname}_count"] == summary["count"]
            assert samples[f"{pname}_sum"] == summary["total"]
            assert samples[f'{pname}{{quantile="0.5"}}'] == summary["p50"]
            assert samples[f'{pname}{{quantile="0.95"}}'] == summary["p95"]
            assert samples[f"{pname}_mean"] == summary["mean"]

    def test_info_gauges_become_label_metrics(self):
        text = prometheus_text(_populated_registry().snapshot())
        assert 'repro_kernels_backend_info{value="numpy"} 1' in text
        # The string value never appears as a sample value.
        assert "repro_kernels_backend numpy" not in text

    def test_non_finite_values_render(self):
        text = prometheus_text({"gauges": {"a": float("nan"), "b": float("inf")}})
        samples = dict(
            line.rsplit(" ", 1)
            for line in text.splitlines()
            if line and not line.startswith("#")
        )
        assert samples["repro_a"] == "NaN"
        assert samples["repro_b"] == "+Inf"

    def test_live_and_executor_sections(self):
        snap = {
            "live": {
                "rebuffer_s": {"count": 10, "mean": 0.5, "p95": 1.25},
                "slots_per_s": 812.5,
            },
            "executor": {
                "n_workers": 2,
                "stalled": ["w-2"],
                "workers": {
                    "w-1": {"slots_done": 100, "slots_per_s": 50.0},
                    "w-2": {"slots_done": 3},
                },
            },
            "alerts": [{"rule": "x < 1"}],
        }
        samples = _parse_prom(prometheus_text(snap))
        assert samples['repro_live_rebuffer_s{quantile="0.95"}'] == 1.25
        assert samples["repro_live_rebuffer_s_count"] == 10
        assert samples["repro_live_slots_per_s"] == 812.5
        assert samples["repro_executor_workers"] == 2
        assert samples["repro_executor_stalled_workers"] == 1
        assert samples['repro_executor_worker_slots_done{worker="w-1"}'] == 100
        assert samples["repro_slo_alerts_recent"] == 1


class TestSnapshotExporter:
    def test_push_writes_both_files_atomically(self, tmp_path):
        exporter = SnapshotExporter(tmp_path / "out" / "prom.txt", every_s=0.0)
        snap = _populated_registry().snapshot()
        exporter.push(snap)
        prom = (tmp_path / "out" / "prom.txt").read_text()
        assert "repro_engine_slots_total 400" in prom
        loaded = json.loads((tmp_path / "out" / "prom.json").read_text())
        assert loaded["counters"]["engine.slots"] == 400
        assert not list((tmp_path / "out").glob("*.tmp"))
        assert exporter.n_pushes == 1

    def test_maybe_push_is_time_gated(self, tmp_path):
        exporter = SnapshotExporter(tmp_path / "prom.txt", every_s=3600.0)
        assert exporter.maybe_push({"counters": {}}) is True
        assert exporter.maybe_push({"counters": {}}) is False
        assert exporter.n_pushes == 1

    def test_numpy_values_serialise(self, tmp_path):
        exporter = SnapshotExporter(tmp_path / "prom.txt")
        exporter.push({"gauges": {"vec": np.array([1.0, 2.0])}})
        loaded = json.loads((tmp_path / "prom.json").read_text())
        assert loaded["gauges"]["vec"] == [1.0, 2.0]

    def test_oserror_degrades_without_raising(self, tmp_path, monkeypatch):
        exporter = SnapshotExporter(tmp_path / "prom.txt")
        import repro.obs.live.exporter as exporter_mod

        def boom(path, text):
            raise OSError("disk full")

        monkeypatch.setattr(exporter_mod, "_atomic_write", boom)
        exporter.push({"counters": {}})  # must not raise
        assert exporter.n_pushes == 0


class TestMetricsServer:
    def test_serves_prom_and_json(self):
        snap = {"counters": {"engine.slots": 42.0}, "n_alerts": 0}
        with MetricsServer(lambda: snap, port=0) as server:
            with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as resp:
                assert resp.headers["Content-Type"].startswith("text/plain")
                body = resp.read().decode()
            assert "repro_engine_slots_total 42.0" in body
            with urllib.request.urlopen(
                f"{server.url}/metrics.json", timeout=5
            ) as resp:
                fetched = json.loads(resp.read())
            assert fetched == snap
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{server.url}/nope", timeout=5)
            assert err.value.code == 404

    def test_ephemeral_port_and_stop(self):
        server = MetricsServer(lambda: {}, port=0).start()
        port = server.port
        assert port != 0
        server.stop()
        with pytest.raises(OSError):
            urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics", timeout=1)


def test_watch_dashboard_renders_snapshot():
    """repro-watch renders a frame from a pushed snapshot without error."""
    from repro.obs.live.watch import render_dashboard

    snap = {
        "progress": {
            "runs_started": 2,
            "runs_finished": 1,
            "total_slots": 900,
            "run_slots": 300,
            "run_n_slots": 600,
            "scheduler": "ema",
        },
        "live": {
            "rebuffer_s": {"count": 300, "mean": 0.01, "p95": 0.2},
            "slots_per_s": 512.0,
        },
        "executor": {
            "n_beats": 12,
            "n_workers": 1,
            "stalled": [],
            "workers": {"w-1": {"phase": "slots", "slots_done": 300, "age_s": 0.5}},
        },
        "alerts": [{"rule": "p95(rebuffer_s) < 0.1", "observed": 0.2, "slot": 64}],
        "n_alerts": 1,
        "counters": {"engine.slots": 900},
    }
    frame = render_dashboard(snap)
    assert "runs 1/2" in frame
    assert "rebuffer_s" in frame
    assert "p95(rebuffer_s) < 0.1" in frame
    assert "engine.slots=900" in frame


def test_watch_once_exit_codes(tmp_path, capsys):
    from repro.obs.live.watch import main

    path = tmp_path / "snap.json"
    path.write_text(json.dumps({"counters": {}, "n_alerts": 0}))
    assert main([str(path), "--once"]) == 0
    path.write_text(json.dumps({"counters": {}, "n_alerts": 2, "alerts": []}))
    assert main([str(path), "--once"]) == 3
    assert main([str(tmp_path / "missing.json"), "--once"]) == 2
