"""Unit tests of the hierarchical span profiler (:mod:`repro.obs.spans`)."""

from __future__ import annotations

import json

import pytest

from repro.obs.spans import (
    NULL_SPAN,
    ROOT,
    SLOT_PREFIX,
    NullSpan,
    SpanRecorder,
    activate_spans,
    current_spans,
    flamegraph_svg,
    tee,
)


class TestInterning:
    def test_same_path_same_node(self):
        r = SpanRecorder()
        a = r.path_node(("run", "slots", "playback"))
        b = r.path_node(("run", "slots", "playback"))
        assert a == b
        assert r.path_node(("run", "slots")) != a

    def test_slot_phase_id_lives_under_slot_prefix(self):
        r = SpanRecorder()
        nid = r.slot_phase_id("schedule")
        assert nid == r.path_node(SLOT_PREFIX + ("schedule",))

    def test_interning_order_is_first_touch(self):
        r = SpanRecorder()
        r.add(r.path_node(("run", "slots", "b")), 0.1)
        r.add(r.path_node(("run", "slots", "a")), 0.1)
        assert list(r.state()) == ["run", "run;slots", "run;slots;b", "run;slots;a"]

    def test_state_skips_registered_but_unused_leaves(self):
        r = SpanRecorder()
        r.add(r.path_node(("run", "slots", "used")), 0.1)
        r.path_node(("run", "slots", "unused"))
        assert "run;slots;unused" not in r.state()

    def test_capacity_growth_beyond_initial(self):
        r = SpanRecorder(capacity=2)
        for i in range(100):
            r.add(r.node(ROOT, f"n{i}"), 0.001)
        assert len(r.state()) == 100
        assert all(v == [1, 0.001] for v in r.state().values())


class TestRecording:
    def test_add_accumulates_count_and_total(self):
        r = SpanRecorder()
        nid = r.path_node(("run",))
        r.add(nid, 0.5)
        r.add(nid, 0.25)
        assert r.state()["run"] == [2, 0.75]

    def test_adder_closure_equivalent_to_add(self):
        r = SpanRecorder()
        nid = r.path_node(("run", "slots"))
        add = r.adder(nid)
        add(0.125)
        add(0.125)
        r.add(nid, 0.25)
        assert r.state()["run;slots"] == [3, 0.5]

    def test_span_context_manager_nests(self):
        r = SpanRecorder()
        with r.span("run"):
            with r.span("slots"):
                with r.span("playback"):
                    pass
                with r.span("playback"):
                    pass
        state = r.state()
        assert state["run"][0] == 1
        assert state["run;slots"][0] == 1
        assert state["run;slots;playback"][0] == 2
        assert state["run;slots;playback"][1] > 0.0

    def test_span_records_on_exception(self):
        r = SpanRecorder()
        with pytest.raises(ValueError):
            with r.span("run"):
                raise ValueError("boom")
        assert r.state()["run"][0] == 1

    def test_self_time_subtracts_children(self):
        r = SpanRecorder()
        parent = r.path_node(("run",))
        child = r.path_node(("run", "slots"))
        r.add(parent, 1.0)
        r.add(child, 0.25)
        assert r.self_total_s(parent) == pytest.approx(0.75)
        assert r.self_total_s(child) == pytest.approx(0.25)

    def test_reset_clears_tree(self):
        r = SpanRecorder()
        r.add(r.path_node(("run",)), 1.0)
        r.reset()
        assert r.state() == {}
        # A reset recorder interns from scratch (old adders are stale).
        r.add(r.path_node(("run",)), 2.0)
        assert r.state()["run"] == [1, 2.0]


class TestMerge:
    def test_merge_state_adds_counts_and_totals(self):
        a = SpanRecorder()
        a.add(a.path_node(("run",)), 1.0)
        a.add(a.path_node(("run", "slots")), 0.5)
        b = SpanRecorder()
        b.merge_state(a.state())
        b.merge_state(a.state())
        assert b.state() == {"run": [2, 2.0], "run;slots": [2, 1.0]}

    def test_merge_interns_in_state_order(self):
        """Merging worker states in task order reproduces the serial
        interning order — the structure side of the pooled-vs-serial
        bit-identity contract."""
        a = SpanRecorder()
        for name in ("playback", "observe", "schedule"):
            a.add(a.slot_phase_id(name), 0.001)
        merged = SpanRecorder()
        merged.merge_state(a.state())
        assert list(merged.state()) == list(a.state())

    def test_merge_into_prepopulated_recorder(self):
        a = SpanRecorder()
        a.add(a.path_node(("run",)), 1.0)
        b = SpanRecorder()
        b.add(b.path_node(("run", "slots", "rrc")), 0.125)
        b.merge_state(a.state())
        state = b.state()
        assert state["run"] == [1, 1.0]
        assert state["run;slots;rrc"] == [1, 0.125]


class TestAmbient:
    def test_activate_and_current(self):
        assert current_spans() is None
        r = SpanRecorder()
        with activate_spans(r):
            assert current_spans() is r
            inner = SpanRecorder()
            with activate_spans(inner):
                assert current_spans() is inner
            assert current_spans() is r
        assert current_spans() is None

    def test_null_span_is_reusable_noop(self):
        with NULL_SPAN:
            with NULL_SPAN:
                pass
        assert isinstance(NULL_SPAN, NullSpan)

    def test_tee_feeds_both_sinks_the_same_value(self):
        left: list[float] = []
        right: list[float] = []
        rec = tee(left.append, right.append)
        rec(0.125)
        rec(0.25)
        assert left == right == [0.125, 0.25]


def _engine_shaped_recorder() -> SpanRecorder:
    r = SpanRecorder()
    r.add(r.path_node(("run",)), 1.0)
    r.add(r.path_node(("run", "slots")), 0.9, )
    r.add(r.slot_phase_id("playback"), 0.2)
    r.add(r.slot_phase_id("schedule"), 0.5)
    r.add(r.path_node(SLOT_PREFIX + ("schedule", "kernel:ema_dp[numpy]")), 0.3)
    return r


class TestExports:
    def test_collapsed_stacks_are_self_time_microseconds(self):
        r = _engine_shaped_recorder()
        lines = dict(
            line.rsplit(" ", 1) for line in r.to_collapsed().splitlines()
        )
        assert lines["run;slots;schedule;kernel:ema_dp[numpy]"] == "300000"
        # schedule's self time = 0.5 - 0.3 child.
        assert lines["run;slots;schedule"] == "200000"

    def test_speedscope_profile_shape(self):
        r = _engine_shaped_recorder()
        profile = r.to_speedscope("unit")
        assert profile["$schema"].startswith("https://www.speedscope.app")
        assert profile["profiles"][0]["type"] == "sampled"
        frames = [f["name"] for f in profile["shared"]["frames"]]
        assert "kernel:ema_dp[numpy]" in frames
        prof = profile["profiles"][0]
        assert len(prof["samples"]) == len(prof["weights"])
        # Weights cover the tree's total self time.
        assert sum(prof["weights"]) == pytest.approx(1.0, rel=1e-6)

    def test_flamegraph_svg_from_recorder_and_state(self):
        r = _engine_shaped_recorder()
        svg_a = flamegraph_svg(r)
        svg_b = flamegraph_svg(r.state())
        for svg in (svg_a, svg_b):
            assert svg.startswith("<svg")
            assert svg.endswith("</svg>")
            assert "kernel:ema_dp[numpy]" in svg
            assert "<script" not in svg  # self-contained, no scripts
        assert svg_a == svg_b

    def test_flamegraph_empty_state(self):
        assert "<svg" in flamegraph_svg({})

    def test_write_artifacts_round_trip(self, tmp_path):
        r = _engine_shaped_recorder()
        paths = r.write_artifacts(tmp_path)
        names = sorted(p.name for p in paths)
        assert names == [
            "spans.collapsed.txt",
            "spans.json",
            "spans.speedscope.json",
        ]
        state = json.loads((tmp_path / "spans.json").read_text())
        assert state == r.state()
        restored = SpanRecorder()
        restored.merge_state(state)
        assert restored.state() == r.state()

    def test_render_table_lists_tree_depth_first(self):
        r = _engine_shaped_recorder()
        table = r.render_table()
        rows = table.splitlines()
        assert any("kernel:ema_dp[numpy]" in row for row in rows)
        # Depth-first: run before slots before phases.
        idx = {name: i for i, row in enumerate(rows)
               for name in ("run", "slots", "schedule") if row.strip().startswith(name)}
        assert idx["run"] < idx["slots"] < idx["schedule"]

    def test_summary_totals(self):
        r = _engine_shaped_recorder()
        summary = r.summary()
        assert summary["run"]["total_s"] == pytest.approx(1.0)
        node = summary["run;slots;schedule"]
        assert node["count"] == 1
        assert node["self_s"] == pytest.approx(0.2)
