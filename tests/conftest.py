"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.gateway import SlotObservation
from repro.sim.config import SimConfig


def make_obs(
    n_users: int = 4,
    slot: int = 0,
    tau_s: float = 1.0,
    delta_kb: float = 40.0,
    unit_budget: int = 64,
    sig_dbm=None,
    rate_kbps=None,
    link_units=None,
    p_mj_per_kb=None,
    active=None,
    buffer_s=None,
    remaining_kb=None,
    idle_tail_cost_mj=None,
    receivable_kb=None,
) -> SlotObservation:
    """Hand-rolled SlotObservation with sensible defaults.

    Defaults model a mid-range channel: -80 dBm, ~2303 KB/s throughput
    (57 units/slot at delta=40), P ~= 0.51 mJ/KB.
    """

    def arr(value, default):
        if value is None:
            value = default
        out = np.asarray(value)
        if out.ndim == 0:
            out = np.full(n_users, value)
        return out

    sig = arr(sig_dbm, -80.0).astype(float)
    rates = arr(rate_kbps, 450.0).astype(float)
    links = arr(link_units, 57).astype(np.int64)
    p = arr(p_mj_per_kb, 0.51).astype(float)
    act = arr(active, True).astype(bool)
    buf = arr(buffer_s, 0.0).astype(float)
    rem = arr(remaining_kb, 1e6).astype(float)
    tail = arr(idle_tail_cost_mj, 0.0).astype(float)
    recv = arr(receivable_kb, np.inf).astype(float)
    return SlotObservation(
        slot=slot,
        tau_s=tau_s,
        delta_kb=delta_kb,
        capacity_kbps=unit_budget * delta_kb / tau_s,
        unit_budget=unit_budget,
        sig_dbm=sig,
        rate_kbps=rates,
        link_units=links,
        p_mj_per_kb=p,
        active=act,
        buffer_s=buf,
        remaining_kb=rem,
        idle_tail_cost_mj=tail,
        receivable_kb=recv,
    )


@pytest.fixture
def small_config() -> SimConfig:
    """A fast 6-user, 200-slot configuration for engine tests."""
    return SimConfig(
        n_users=6,
        n_slots=200,
        video_size_range_kb=(30_000.0, 60_000.0),
        seed=42,
    )


@pytest.fixture
def contended_config() -> SimConfig:
    """A configuration where BS capacity binds (for fairness tests)."""
    return SimConfig(
        n_users=12,
        n_slots=300,
        capacity_kbps=4_000.0,
        video_size_range_kb=(50_000.0, 80_000.0),
        seed=7,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
