"""Bit-identity of the loop (numba-source) kernels vs the numpy kernels.

Every registered kernel has a vectorised numpy implementation and a
loop implementation (the numba source, run interpreted here).  The
backend contract is *bit-identity* — same output bytes for the same
inputs — which is what lets ``SimConfig.kernel_backend`` switch
backends without perturbing any result.  These tests hammer each pair
with randomized instances shaped like the production call sites.

On machines with Numba the same checks run against the JIT-compiled
kernels too (the compiled function executes the loop source).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels import SlotArena, available_backends, registry

RNG_TRIALS = 200

#: Backends to pit against the numpy reference.
ALT_BACKENDS = [b for b in available_backends() if b != "numpy"]


def resolve_pair(name, alt):
    return registry.resolve(name, "numpy"), registry.resolve(name, alt)


@pytest.mark.parametrize("alt", ALT_BACKENDS)
class TestEmaDpParity:
    def test_randomized(self, alt):
        k_np, k_alt = resolve_pair("ema_dp", alt)
        rng = np.random.default_rng(7)
        for _ in range(RNG_TRIALS):
            n_users = int(rng.integers(1, 8))
            n_active = int(rng.integers(1, n_users + 1))
            n_states = int(rng.integers(1, 40))
            active_idx = np.sort(
                rng.choice(n_users, size=n_active, replace=False)
            ).astype(np.int64)
            w_eff = rng.integers(0, n_states + 1, size=n_active).astype(np.int64)
            origin = w_eff - w_eff // 2 - 1
            slope = rng.normal(0.0, 5.0, size=n_active)
            const = rng.uniform(0.0, 10.0, size=n_active)
            idle = rng.uniform(0.0, 5.0, size=n_active)
            m_idx = np.arange(n_states, dtype=float)

            outs = []
            for kern in (k_np, k_alt):
                phi = np.zeros(n_users, dtype=np.int64)
                rows = np.empty((n_active, n_states), dtype=float)
                fscratch = np.empty(4 * n_states, dtype=float)
                iscratch = np.empty(n_states, dtype=np.int64)
                m_star = kern(
                    phi,
                    active_idx,
                    w_eff,
                    origin,
                    slope,
                    const,
                    idle,
                    rows,
                    m_idx,
                    fscratch,
                    iscratch,
                )
                outs.append((int(m_star), phi.tobytes(), rows.tobytes()))
            assert outs[0] == outs[1]


@pytest.mark.parametrize("alt", ALT_BACKENDS)
class TestRtmaRoundsParity:
    def test_randomized(self, alt):
        k_np, k_alt = resolve_pair("rtma_rounds", alt)
        rng = np.random.default_rng(11)
        for _ in range(RNG_TRIALS):
            n = int(rng.integers(1, 12))
            eligible = rng.random(n) < 0.7
            need = rng.integers(1, 10, size=n).astype(np.int64)
            cap = rng.integers(0, 20, size=n).astype(np.int64)
            order = np.argsort(rng.uniform(0, 1, size=n), kind="stable")
            budget = int(rng.integers(0, 60))

            outs = []
            for kern in (k_np, k_alt):
                phi = np.zeros(n, dtype=np.int64)
                left = kern(phi, eligible, need, cap, order, budget)
                outs.append((int(left), phi.tobytes()))
            assert outs[0] == outs[1]


def _fleet_state(rng, n):
    size = rng.uniform(100.0, 5000.0, size=n)
    delivered = np.minimum(rng.uniform(0.0, 6000.0, size=n), size)
    # A fraction of users are exactly fully delivered.
    exact = rng.random(n) < 0.3
    delivered[exact] = size[exact]
    dplay = rng.uniform(0.0, 50.0, size=n)
    elapsed = np.minimum(rng.uniform(0.0, 60.0, size=n), dplay)
    done = rng.random(n) < 0.3
    elapsed[done] = dplay[done]
    return size, delivered, dplay, elapsed


@pytest.mark.parametrize("alt", ALT_BACKENDS)
class TestFleetBeginSlotParity:
    def test_randomized(self, alt):
        k_np, k_alt = resolve_pair("fleet_begin_slot", alt)
        rng = np.random.default_rng(13)
        for trial in range(RNG_TRIALS):
            n = int(rng.integers(1, 12))
            slot = int(rng.integers(0, 30))
            tau = float(rng.uniform(0.5, 2.0))
            cap = np.inf if trial % 3 == 0 else float(rng.uniform(5.0, 60.0))
            arrival = rng.integers(0, 25, size=n).astype(np.int64)
            size, delivered, dplay, elapsed = _fleet_state(rng, n)
            occ = rng.uniform(0.0, 40.0, size=n)
            pend = rng.uniform(0.0, 5.0, size=n)
            began = rng.random(n) < 0.5
            total = rng.uniform(0.0, 20.0, size=n)

            outs = []
            for kern in (k_np, k_alt):
                o = [np.empty(n) for _ in range(5)]
                began_out = np.empty(n, dtype=bool)
                fs, bs = np.empty(2 * n), np.empty(4 * n, dtype=bool)
                kern(
                    slot, tau, cap, arrival, size, delivered, dplay,
                    occ, pend, began, elapsed, total,
                    o[0], o[1], began_out, o[2], o[3], o[4], fs, bs,
                )
                outs.append(
                    b"".join(a.tobytes() for a in o) + began_out.tobytes()
                )
            assert outs[0] == outs[1]


@pytest.mark.parametrize("alt", ALT_BACKENDS)
class TestFleetDeliverParity:
    def test_randomized(self, alt):
        k_np, k_alt = resolve_pair("fleet_deliver", alt)
        rng = np.random.default_rng(17)
        for trial in range(RNG_TRIALS):
            n = int(rng.integers(1, 12))
            tau = float(rng.uniform(0.5, 2.0))
            cap = np.inf if trial % 3 == 0 else float(rng.uniform(5.0, 60.0))
            offer = rng.uniform(0.0, 800.0, size=n)
            rates = rng.uniform(50.0, 700.0, size=n)
            size, delivered, dplay, _ = _fleet_state(rng, n)
            occ = rng.uniform(0.0, 40.0, size=n)
            pend = rng.uniform(0.0, 5.0, size=n)

            outs = []
            for kern in (k_np, k_alt):
                o = [np.empty(n) for _ in range(4)]
                fs, bs = np.empty(2 * n), np.empty(4 * n, dtype=bool)
                err = kern(
                    tau, cap, offer, rates, size, delivered, dplay,
                    occ, pend, o[0], o[1], o[2], o[3], fs, bs,
                )
                outs.append((int(err), b"".join(a.tobytes() for a in o)))
            assert outs[0] == outs[1]

    def test_error_code_on_nonpositive_rate(self, alt):
        k_np, k_alt = resolve_pair("fleet_deliver", alt)
        n = 2
        args = dict(
            offer=np.array([10.0, 10.0]),
            rates=np.array([0.0, 300.0]),
            size=np.array([100.0, 100.0]),
            delivered=np.array([0.0, 0.0]),
            dplay=np.array([0.0, 0.0]),
            occ=np.array([0.0, 0.0]),
            pend=np.array([0.0, 0.0]),
        )
        for kern in (k_np, k_alt):
            o = [np.empty(n) for _ in range(4)]
            fs, bs = np.empty(2 * n), np.empty(4 * n, dtype=bool)
            err = kern(
                1.0, np.inf, args["offer"], args["rates"], args["size"],
                args["delivered"], args["dplay"], args["occ"], args["pend"],
                o[0], o[1], o[2], o[3], fs, bs,
            )
            assert err == 1


@pytest.mark.parametrize("alt", ALT_BACKENDS)
class TestRrcParity:
    def test_step_randomized(self, alt):
        k_np, k_alt = resolve_pair("rrc_step", alt)
        rng = np.random.default_rng(19)
        for _ in range(RNG_TRIALS):
            n = int(rng.integers(1, 12))
            dt = float(rng.uniform(0.5, 2.0))
            pd, pf = float(rng.uniform(0, 1200)), float(rng.uniform(0, 800))
            t1, t2 = float(rng.uniform(0, 8)), float(rng.uniform(0, 8))
            tx = rng.random(n) < 0.4
            age = rng.uniform(0.0, t1 + t2 + 2.0, size=n)
            ever = rng.random(n) < 0.7

            outs = []
            for kern in (k_np, k_alt):
                age_out = np.empty(n)
                ever_out = np.empty(n, dtype=bool)
                tail_out = np.empty(n)
                fs, bs = np.empty(2 * n), np.empty(n, dtype=bool)
                kern(dt, pd, pf, t1, t2, tx, age, ever,
                     age_out, ever_out, tail_out, fs, bs)
                outs.append(
                    age_out.tobytes() + ever_out.tobytes() + tail_out.tobytes()
                )
            assert outs[0] == outs[1]

    def test_idle_cost_randomized(self, alt):
        k_np, k_alt = resolve_pair("rrc_idle_cost", alt)
        rng = np.random.default_rng(23)
        for _ in range(RNG_TRIALS):
            n = int(rng.integers(1, 12))
            dt = float(rng.uniform(0.5, 2.0))
            pd, pf = float(rng.uniform(0, 1200)), float(rng.uniform(0, 800))
            t1, t2 = float(rng.uniform(0, 8)), float(rng.uniform(0, 8))
            age = rng.uniform(0.0, t1 + t2 + 2.0, size=n)
            ever = rng.random(n) < 0.7

            outs = []
            for kern in (k_np, k_alt):
                out = np.empty(n)
                fs, bs = np.empty(2 * n), np.empty(n, dtype=bool)
                kern(dt, pd, pf, t1, t2, age, ever, out, fs, bs)
                outs.append(out.tobytes())
            assert outs[0] == outs[1]


class TestSlotArena:
    def test_buffer_shapes_and_dtypes(self):
        arena = SlotArena(7)
        assert arena.n_users == 7
        assert arena.link_units.dtype == np.int64
        assert arena.active.dtype == bool
        for name in (
            "p_mj_per_kb",
            "remaining_kb",
            "receivable_kb",
            "idle_tail_cost_mj",
            "want_kb",
            "accepted_kb",
            "drained_kb",
            "f8_tmp",
        ):
            buf = getattr(arena, name)
            assert buf.shape == (7,) and buf.dtype == np.float64

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            SlotArena(0)
