"""Backend selection, fallback warning, and registry dispatch."""

import logging

import pytest

from repro.errors import ConfigurationError
from repro.kernels import backend as backend_mod
from repro.kernels import registry
from repro.kernels.ema_dp import ema_dp_loops, ema_dp_numpy
from repro.obs.instrument import Instrumentation, use_instrumentation
from repro.sim.config import SimConfig


@pytest.fixture(autouse=True)
def clean_backend_state(monkeypatch):
    monkeypatch.delenv(backend_mod.ENV_VAR, raising=False)
    backend_mod._reset_for_testing()
    yield
    backend_mod._reset_for_testing()


class TestPrecedence:
    def test_default_is_auto(self):
        assert backend_mod.requested_backend() == "auto"
        expected = "numba" if backend_mod.NUMBA_AVAILABLE else "numpy"
        assert backend_mod.resolved_backend() == expected

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(backend_mod.ENV_VAR, "python")
        assert backend_mod.requested_backend() == "python"
        assert backend_mod.resolved_backend() == "python"

    def test_invalid_env_var_raises(self, monkeypatch):
        monkeypatch.setenv(backend_mod.ENV_VAR, "fortran")
        with pytest.raises(ConfigurationError):
            backend_mod.requested_backend()

    def test_set_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(backend_mod.ENV_VAR, "python")
        backend_mod.set_backend("numpy")
        assert backend_mod.requested_backend() == "numpy"
        backend_mod.set_backend(None)
        assert backend_mod.requested_backend() == "python"

    def test_use_backend_beats_set_backend(self):
        backend_mod.set_backend("numpy")
        with backend_mod.use_backend("python"):
            assert backend_mod.requested_backend() == "python"
            with backend_mod.use_backend("numpy"):
                assert backend_mod.requested_backend() == "numpy"
            assert backend_mod.requested_backend() == "python"
        assert backend_mod.requested_backend() == "numpy"

    def test_invalid_names_raise(self):
        with pytest.raises(ConfigurationError):
            backend_mod.set_backend("rust")
        with pytest.raises(ConfigurationError):
            with backend_mod.use_backend("rust"):
                pass  # pragma: no cover - never entered
        # A rejected use_backend must not leave a dangling ambient entry.
        assert backend_mod.requested_backend() == "auto"


class TestAvailability:
    def test_available_backends_shape(self):
        avail = backend_mod.available_backends()
        assert "numpy" in avail and "python" in avail
        assert ("numba" in avail) == backend_mod.NUMBA_AVAILABLE

    def test_numba_version_consistent(self):
        version = backend_mod.numba_version()
        assert (version is not None) == backend_mod.NUMBA_AVAILABLE

    def test_backend_info_keys(self):
        info = backend_mod.backend_info()
        assert set(info) == {
            "requested",
            "resolved",
            "available",
            "numba_version",
            "compile_times_s",
        }
        assert info["resolved"] in ("numpy", "numba", "python")


@pytest.mark.skipif(
    backend_mod.NUMBA_AVAILABLE, reason="fallback only happens without numba"
)
class TestMissingNumbaFallback:
    def test_resolves_to_numpy_with_one_time_warning(self, caplog):
        backend_mod.set_backend("numba")
        with caplog.at_level(logging.WARNING, logger="repro.kernels"):
            assert backend_mod.resolved_backend() == "numpy"
            assert backend_mod.resolved_backend() == "numpy"
        warnings = [r for r in caplog.records if "falling back" in r.getMessage()]
        assert len(warnings) == 1
        assert "repro[speed]" in warnings[0].getMessage()

    def test_fallback_counter_on_ambient_instrumentation(self):
        instr = Instrumentation()
        backend_mod.set_backend("numba")
        with use_instrumentation(instr):
            backend_mod.resolved_backend()
        assert instr.metrics.counter("kernels.backend_fallback").value == 1

    def test_resolve_falls_back_to_numpy_impl(self):
        with backend_mod.use_backend("numba"):
            assert registry.resolve("ema_dp") is ema_dp_numpy


class TestRegistry:
    def test_all_kernels_registered(self):
        names = registry.kernel_names()
        for expected in (
            "ema_dp",
            "rtma_rounds",
            "fleet_begin_slot",
            "fleet_deliver",
            "rrc_step",
            "rrc_idle_cost",
        ):
            assert expected in names

    def test_explicit_backend_resolution(self):
        assert registry.resolve("ema_dp", "numpy") is ema_dp_numpy
        assert registry.resolve("ema_dp", "python") is ema_dp_loops

    def test_ambient_backend_resolution(self):
        with backend_mod.use_backend("python"):
            assert registry.resolve("ema_dp") is ema_dp_loops
        with backend_mod.use_backend("numpy"):
            assert registry.resolve("ema_dp") is ema_dp_numpy

    def test_unknown_kernel_raises(self):
        with pytest.raises(ConfigurationError):
            registry.resolve("matmul")

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError):
            registry.resolve("ema_dp", "rust")

    def test_double_register_raises(self):
        with pytest.raises(ConfigurationError):
            registry.register(
                "ema_dp", numpy=ema_dp_numpy, python=ema_dp_loops
            )


class TestCompileTimes:
    def test_record_keeps_first_observation(self):
        backend_mod.record_compile_time("unit_test_kernel", 1.5)
        backend_mod.record_compile_time("unit_test_kernel", 99.0)
        assert backend_mod.compile_times()["unit_test_kernel"] == 1.5

    def test_time_first_call_records(self):
        out = backend_mod.time_first_call("unit_test_timed", lambda x: x + 1, 41)
        assert out == 42
        assert backend_mod.compile_times()["unit_test_timed"] >= 0.0


class TestConfigValidation:
    def test_config_accepts_known_backends(self):
        for name in ("auto", "numpy", "numba", "python"):
            cfg = SimConfig(n_users=2, n_slots=5, kernel_backend=name)
            assert cfg.kernel_backend == name

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            SimConfig(n_users=2, n_slots=5, kernel_backend="rust")

    def test_config_default_defers(self):
        assert SimConfig(n_users=2, n_slots=5).kernel_backend is None
