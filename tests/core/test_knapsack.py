"""Tests for the reference knapsack solvers."""

import numpy as np
import pytest

from repro.core.knapsack import brute_force_slot_minimum, exact_slot_minimum
from repro.errors import ConfigurationError


def random_instance(rng, n_max=4, cap_max=6):
    n = int(rng.integers(1, n_max + 1))
    tables = [rng.normal(0, 10, int(rng.integers(1, cap_max + 1))) for _ in range(n)]
    budget = int(rng.integers(0, 12))
    return tables, budget


class TestBruteForce:
    def test_single_user(self):
        val, alloc = brute_force_slot_minimum([np.array([5.0, 3.0, 7.0])], 10)
        assert val == 3.0
        assert alloc.tolist() == [1]

    def test_budget_binds(self):
        # Both users want phi=2 but budget only allows 2 total.
        t = np.array([10.0, 5.0, 0.0])
        val, alloc = brute_force_slot_minimum([t, t], 2)
        assert val == 10.0  # (0,2) or (2,0) or (1,1) -> best is 0+10 or 5+5
        assert alloc.sum() <= 2

    def test_zero_budget(self):
        val, alloc = brute_force_slot_minimum(
            [np.array([2.0, -9.0]), np.array([4.0, -9.0])], 0
        )
        assert val == 6.0
        assert alloc.sum() == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            brute_force_slot_minimum([], 5)
        with pytest.raises(ConfigurationError):
            brute_force_slot_minimum([np.array([1.0])], -1)
        with pytest.raises(ConfigurationError):
            brute_force_slot_minimum([np.array([np.nan])], 1)


class TestExactDP:
    def test_matches_brute_force(self, rng):
        for _ in range(150):
            tables, budget = random_instance(rng)
            bf_val, _ = brute_force_slot_minimum(tables, budget)
            dp_val, dp_alloc = exact_slot_minimum(tables, budget)
            assert dp_val == pytest.approx(bf_val, abs=1e-9)
            # Returned allocation achieves the value and fits budget.
            achieved = sum(t[a] for t, a in zip(tables, dp_alloc))
            assert achieved == pytest.approx(dp_val, abs=1e-9)
            assert dp_alloc.sum() <= budget
            assert all(0 <= a < len(t) for t, a in zip(tables, dp_alloc))

    def test_prefers_smaller_phi_on_ties(self):
        t = np.array([1.0, 1.0, 1.0])
        _, alloc = exact_slot_minimum([t], 2)
        assert alloc[0] == 0
