"""Tests for RTMA (Algorithm 1) and the Eq. (12) threshold."""

import numpy as np
import pytest

from repro.core.allocation import check_constraints
from repro.core.rtma import RTMAScheduler, signal_threshold_for_energy_budget
from repro.errors import ConfigurationError
from repro.radio.power import EnviPowerModel

from tests.conftest import make_obs


class TestEq12Threshold:
    def test_in_band_budget_roundtrip(self):
        model = EnviPowerModel()
        # Pick a budget from a known threshold and invert.
        for sig in (-100.0, -80.0, -60.0):
            radio_power = float(model.radio_power_mw(sig))
            phi_budget = 0.5 * (radio_power * 1.0 + 1.0 * 732.83)
            thr = signal_threshold_for_energy_budget(phi_budget, model)
            assert thr == pytest.approx(sig, abs=1e-6)

    def test_loose_budget_unrestricted(self):
        model = EnviPowerModel()
        # Budget implying radio power above the fit's supremum (1560 mW).
        thr = signal_threshold_for_energy_budget(2000.0, model)
        assert thr == float("-inf")

    def test_tight_budget_unattainable(self):
        model = EnviPowerModel()
        thr = signal_threshold_for_energy_budget(1.0, model)
        assert thr == float("inf")

    def test_tighter_budget_stronger_threshold(self):
        model = EnviPowerModel()
        t_tight = signal_threshold_for_energy_budget(800.0, model)
        t_loose = signal_threshold_for_energy_budget(1000.0, model)
        assert t_tight > t_loose  # tighter budget demands stronger signal

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            signal_threshold_for_energy_budget(0.0, EnviPowerModel())
        with pytest.raises(ConfigurationError):
            signal_threshold_for_energy_budget(1.0, EnviPowerModel(), tau_s=0.0)
        with pytest.raises(ConfigurationError):
            signal_threshold_for_energy_budget(
                1.0, EnviPowerModel(), p_tail_mw=-1.0
            )

    def test_budget_exactly_at_power_supremum(self):
        # Phi chosen so the required radio power equals the fit's
        # supremum (= scale, since radio power is offset*v + scale with
        # offset < 0).  The >= boundary must already be unrestricted.
        model = EnviPowerModel()
        tau = 1.0
        p_tail = 732.83
        phi_budget = 0.5 * tau * (model.scale + p_tail)
        thr = signal_threshold_for_energy_budget(
            phi_budget, model, tau_s=tau, p_tail_mw=p_tail
        )
        assert thr == float("-inf")
        # An epsilon below the supremum demands a finite (or +inf)
        # threshold — never -inf.
        thr_below = signal_threshold_for_energy_budget(
            phi_budget - 1e-9, model, tau_s=tau, p_tail_mw=p_tail
        )
        assert thr_below > float("-inf")


class TestRTMAAllocation:
    def test_satisfies_constraints(self, rng):
        sched = RTMAScheduler()
        for _ in range(30):
            n = int(rng.integers(1, 10))
            obs = make_obs(
                n_users=n,
                unit_budget=int(rng.integers(0, 80)),
                link_units=rng.integers(0, 30, n),
                rate_kbps=rng.uniform(300, 600, n),
                sig_dbm=rng.uniform(-110, -50, n),
                active=rng.random(n) < 0.8,
                remaining_kb=rng.uniform(0, 5000, n),
            )
            phi = sched.allocate(obs)
            check_constraints(phi, obs)

    def test_needs_met_when_capacity_suffices(self):
        obs = make_obs(
            n_users=4, unit_budget=500, rate_kbps=[300.0, 400.0, 500.0, 600.0]
        )
        phi = RTMAScheduler().allocate(obs)
        need = np.ceil(obs.rate_kbps / 40.0)
        assert (phi >= need).all()

    def test_ascending_rate_priority_under_scarcity(self):
        # Budget covers only the cheapest user's need.
        obs = make_obs(
            n_users=3, unit_budget=8, rate_kbps=[600.0, 300.0, 450.0]
        )
        phi = RTMAScheduler().allocate(obs)
        # User 1 (300 KB/s -> 8 units) is served first and fully.
        assert phi[1] == 8
        assert phi[0] == 0 and phi[2] == 0

    def test_extra_rounds_use_leftover_capacity(self):
        # One user, plenty of budget: rounds keep granting need-sized
        # chunks up to the link cap.
        obs = make_obs(n_users=1, unit_budget=100, link_units=[50])
        phi = RTMAScheduler().allocate(obs)
        assert phi[0] == 50  # link-capped, not need-capped

    def test_threshold_excludes_weak_signals(self):
        obs = make_obs(n_users=2, sig_dbm=[-100.0, -60.0], unit_budget=100)
        sched = RTMAScheduler(sig_threshold_dbm=-70.0)
        phi = sched.allocate(obs)
        assert phi[0] == 0
        assert phi[1] > 0

    def test_user_exactly_at_threshold_is_eligible(self):
        # Eq. (12) eligibility is inclusive: sig >= phi_sig schedules.
        obs = make_obs(
            n_users=3, sig_dbm=[-70.0, np.nextafter(-70.0, -np.inf), -60.0],
            unit_budget=100,
        )
        phi = RTMAScheduler(sig_threshold_dbm=-70.0).allocate(obs)
        assert phi[0] > 0  # exactly at phi_sig
        assert phi[1] == 0  # one ulp below
        assert phi[2] > 0

    def test_infinite_thresholds_from_extreme_budgets(self):
        # A loose budget degenerates to "no threshold": everyone
        # eligible.  An unattainable one excludes the whole cell.
        obs = make_obs(n_users=2, sig_dbm=[-109.0, -51.0], unit_budget=100)
        loose = RTMAScheduler(energy_budget_mj_per_slot=2000.0)
        assert loose.sig_threshold_dbm == float("-inf")
        assert (loose.allocate(obs) > 0).all()
        tight = RTMAScheduler(energy_budget_mj_per_slot=1.0)
        assert tight.sig_threshold_dbm == float("inf")
        assert tight.allocate(obs).sum() == 0

    def test_no_threshold_means_all_eligible(self):
        obs = make_obs(n_users=2, sig_dbm=[-109.0, -51.0], unit_budget=100)
        phi = RTMAScheduler().allocate(obs)
        assert (phi > 0).all()

    def test_never_allocates_past_video_end(self):
        obs = make_obs(n_users=1, remaining_kb=[70.0], unit_budget=100)
        phi = RTMAScheduler().allocate(obs)
        assert phi[0] == 2  # ceil(70/40)

    def test_inactive_and_zero_budget(self):
        obs = make_obs(n_users=2, active=[False, False])
        assert RTMAScheduler().allocate(obs).sum() == 0
        obs = make_obs(n_users=2, unit_budget=0)
        assert RTMAScheduler().allocate(obs).sum() == 0

    def test_budget_exhausted_in_rate_order(self):
        # Two users, budget covers 1.5 needs: cheaper user fully served,
        # the other gets the remainder.
        obs = make_obs(n_users=2, unit_budget=12, rate_kbps=[300.0, 600.0])
        phi = RTMAScheduler().allocate(obs)
        assert phi[0] == 8  # ceil(300/40) = 8 per round
        assert phi[1] == 4

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            RTMAScheduler(energy_budget_mj_per_slot=900.0, sig_threshold_dbm=-80.0)

    def test_budget_constructor_derives_threshold(self):
        sched = RTMAScheduler(energy_budget_mj_per_slot=1000.0)
        assert -110.0 < sched.sig_threshold_dbm < -50.0
