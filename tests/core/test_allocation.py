"""Tests for constraint validation and repair (Eqs. 1-2)."""

import numpy as np
import pytest

from repro.core.allocation import check_constraints, clip_to_constraints
from repro.errors import ConstraintViolationError

from tests.conftest import make_obs


class TestCheck:
    def test_valid_allocation_passes(self):
        obs = make_obs(n_users=3, unit_budget=30, link_units=[10, 10, 10])
        check_constraints(np.array([10, 10, 10]), obs)

    def test_link_cap_violation(self):
        obs = make_obs(n_users=2, link_units=[5, 5])
        with pytest.raises(ConstraintViolationError, match="Eq. 1"):
            check_constraints(np.array([6, 0]), obs)

    def test_budget_violation(self):
        obs = make_obs(n_users=2, unit_budget=8, link_units=[5, 5])
        with pytest.raises(ConstraintViolationError, match="Eq. 2"):
            check_constraints(np.array([5, 4]), obs)

    def test_negative_rejected(self):
        obs = make_obs(n_users=2)
        with pytest.raises(ConstraintViolationError, match="negative"):
            check_constraints(np.array([-1, 0]), obs)

    def test_float_dtype_rejected(self):
        obs = make_obs(n_users=2)
        with pytest.raises(ConstraintViolationError, match="dtype"):
            check_constraints(np.array([1.0, 0.0]), obs)

    def test_inactive_user_allocation_rejected(self):
        obs = make_obs(n_users=2, active=[True, False])
        with pytest.raises(ConstraintViolationError, match="inactive"):
            check_constraints(np.array([0, 1]), obs)

    def test_shape_mismatch(self):
        obs = make_obs(n_users=2)
        with pytest.raises(ConstraintViolationError, match="shape"):
            check_constraints(np.array([1, 1, 1]), obs)


class TestClip:
    def test_within_limits_untouched(self):
        obs = make_obs(n_users=3, unit_budget=100, link_units=[20, 20, 20])
        phi = clip_to_constraints(np.array([5, 5, 5]), obs)
        np.testing.assert_array_equal(phi, [5, 5, 5])

    def test_per_user_cap_applied(self):
        obs = make_obs(n_users=2, unit_budget=100, link_units=[3, 3])
        phi = clip_to_constraints(np.array([10, 10]), obs)
        np.testing.assert_array_equal(phi, [3, 3])

    def test_head_of_line_truncation(self):
        obs = make_obs(n_users=3, unit_budget=10, link_units=[8, 8, 8])
        phi = clip_to_constraints(np.array([8, 8, 8]), obs)
        np.testing.assert_array_equal(phi, [8, 2, 0])
        assert phi.sum() == 10

    def test_inactive_zeroed(self):
        obs = make_obs(n_users=2, active=[False, True], unit_budget=100)
        phi = clip_to_constraints(np.array([5, 5]), obs)
        assert phi[0] == 0 and phi[1] == 5

    def test_fractional_desired_floored(self):
        obs = make_obs(n_users=1, unit_budget=100)
        phi = clip_to_constraints(np.array([4.9]), obs)
        assert phi[0] == 4

    def test_result_always_valid(self, rng):
        for _ in range(50):
            n = int(rng.integers(1, 8))
            obs = make_obs(
                n_users=n,
                unit_budget=int(rng.integers(0, 40)),
                link_units=rng.integers(0, 20, n),
                active=rng.random(n) < 0.8,
            )
            desired = rng.uniform(-5, 30, n)
            phi = clip_to_constraints(desired, obs)
            check_constraints(phi, obs)
