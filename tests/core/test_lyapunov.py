"""Tests for the Lyapunov machinery and Theorem 1 bounds."""

import numpy as np
import pytest

from repro.core.lyapunov import (
    VirtualQueues,
    drift,
    drift_bound_constant,
    lyapunov_function,
    theorem1_energy_bound,
    theorem1_rebuffering_bound,
)
from repro.errors import ConfigurationError


class TestVirtualQueues:
    def test_eq16_update(self):
        q = VirtualQueues(2, tau_s=1.0)
        q.update(np.array([0.4, 1.5]), np.array([True, True]))
        np.testing.assert_allclose(q.values, [0.6, -0.5])

    def test_masked_users_frozen(self):
        q = VirtualQueues(2, tau_s=1.0)
        q.update(np.array([0.0, 0.0]), np.array([True, False]))
        np.testing.assert_allclose(q.values, [1.0, 0.0])

    def test_accumulation_matches_eq15(self):
        # PC(Gamma) = tau*Gamma - sum(t): queue after Gamma updates.
        q = VirtualQueues(1, tau_s=1.0)
        ts = [0.3, 1.2, 0.8, 0.0, 2.0]
        for t in ts:
            q.update(np.array([t]), np.array([True]))
        assert q.values[0] == pytest.approx(5.0 - sum(ts))

    def test_reset(self):
        q = VirtualQueues(3, tau_s=1.0)
        q.update(np.zeros(3), np.ones(3, dtype=bool))
        q.reset()
        assert (q.values == 0).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VirtualQueues(0, 1.0)
        q = VirtualQueues(2, 1.0)
        with pytest.raises(ConfigurationError):
            q.update(np.array([-0.1, 0.0]), np.array([True, True]))
        with pytest.raises(ConfigurationError):
            q.update(np.zeros(3), np.ones(3, dtype=bool))


class TestLyapunovFunction:
    def test_eq17(self):
        assert lyapunov_function(np.array([3.0, -4.0])) == pytest.approx(12.5)
        assert lyapunov_function(np.zeros(5)) == 0.0

    def test_drift(self):
        before = np.array([1.0, 1.0])
        after = np.array([2.0, 0.0])
        assert drift(before, after) == pytest.approx(2.0 - 1.0)

    def test_queues_lyapunov_method(self):
        q = VirtualQueues(2, 1.0)
        q.values = np.array([1.0, 2.0])
        assert q.lyapunov() == pytest.approx(2.5)


class TestTheorem1:
    def test_b_constant(self):
        # B = 0.5 * N * (tau^2 + t_max^2)
        assert drift_bound_constant(1.0, 3.0, 4) == pytest.approx(0.5 * 4 * 10.0)

    def test_energy_bound_decreases_in_v(self):
        b = 100.0
        assert theorem1_energy_bound(50.0, b, 10.0) > theorem1_energy_bound(
            50.0, b, 100.0
        )
        assert theorem1_energy_bound(50.0, b, 1e12) == pytest.approx(50.0, rel=1e-6)

    def test_rebuffering_bound_increases_in_v(self):
        assert theorem1_rebuffering_bound(50.0, 100.0, 10.0, 1.0) < (
            theorem1_rebuffering_bound(50.0, 100.0, 100.0, 1.0)
        )

    def test_bound_formulas(self):
        assert theorem1_energy_bound(10.0, 20.0, 4.0) == pytest.approx(15.0)
        assert theorem1_rebuffering_bound(10.0, 20.0, 4.0, 2.0) == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            drift_bound_constant(0.0, 1.0, 1)
        with pytest.raises(ConfigurationError):
            theorem1_energy_bound(1.0, 1.0, 0.0)
        with pytest.raises(ConfigurationError):
            theorem1_rebuffering_bound(1.0, 1.0, 1.0, 0.0)

    def test_drift_plus_penalty_inequality_empirical(self, rng):
        """Eq. (18): per-slot drift <= B + sum PC_i (tau - t_i) when
        t <= t_max.  Verified on random queue states and deliveries."""
        n, tau, t_max = 5, 1.0, 4.0
        b = drift_bound_constant(tau, t_max, n)
        for _ in range(200):
            q = VirtualQueues(n, tau)
            q.values = rng.normal(0, 20, n)
            before = q.values.copy()
            t = rng.uniform(0, t_max, n)
            q.update(t, np.ones(n, dtype=bool))
            lhs = drift(before, q.values)
            rhs = b + float(np.sum(before * (tau - t)))
            assert lhs <= rhs + 1e-9
