"""Tests for EMA (Algorithm 2): DP exactness, queue dynamics, behaviour."""

import numpy as np
import pytest

from repro.core.allocation import check_constraints
from repro.core.ema import EMAScheduler, trailing_window_min
from repro.core.knapsack import exact_slot_minimum
from repro.errors import ConfigurationError

from tests.conftest import make_obs


class TestTrailingWindowMin:
    def test_empty_window_at_zero(self):
        out = trailing_window_min(np.array([5.0, 1.0, 3.0]), 2)
        assert np.isinf(out[0])

    def test_matches_naive(self, rng):
        for _ in range(100):
            n = int(rng.integers(1, 60))
            w = int(rng.integers(1, 15))
            v = rng.normal(size=n) * 10
            out = trailing_window_min(v, w)
            ref = np.array(
                [v[max(0, m - w) : m].min() if m > 0 else np.inf for m in range(n)]
            )
            np.testing.assert_allclose(out, ref)

    def test_window_larger_than_array(self):
        v = np.array([3.0, 1.0, 2.0])
        out = trailing_window_min(v, 100)
        np.testing.assert_allclose(out, [np.inf, 3.0, 1.0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            trailing_window_min(np.array([1.0]), 0)


def ema_cost_tables(ema, obs, pc):
    """Rebuild the f(i, phi) tables the DP should be minimising."""
    tables, idx = [], []
    for i in range(obs.n_users):
        if not obs.active[i]:
            continue
        w = int(min(obs.link_units[i], np.ceil(obs.remaining_kb[i] / obs.delta_kb)))
        if not np.isfinite(obs.p_mj_per_kb[i]):
            w = 0
        f = np.empty(w + 1)
        f[0] = pc[i] * obs.tau_s + ema.v_param * obs.idle_tail_cost_mj[i]
        for phi in range(1, w + 1):
            e_trans = ema.v_param * obs.p_mj_per_kb[i] * phi * obs.delta_kb
            t = phi * obs.delta_kb / obs.rate_kbps[i]
            f[phi] = e_trans + pc[i] * (obs.tau_s - t)
        tables.append(f)
        idx.append(i)
    return tables, idx


class TestDPExactness:
    def test_matches_reference_dp(self, rng):
        for trial in range(120):
            n = int(rng.integers(1, 6))
            budget = int(rng.integers(1, 15))
            obs = make_obs(
                n_users=n,
                unit_budget=budget,
                link_units=rng.integers(0, 7, n),
                rate_kbps=rng.uniform(300, 600, n),
                p_mj_per_kb=rng.uniform(0.2, 4.0, n),
                active=rng.random(n) < 0.85,
                remaining_kb=rng.uniform(50, 1e6, n),
                idle_tail_cost_mj=rng.uniform(0, 800, n),
            )
            ema = EMAScheduler(n, v_param=float(rng.uniform(0.01, 2.0)), queue_init=0.0)
            ema.allocate(obs)  # trigger lazy queue seeding first
            pc = rng.normal(0, 40, n)
            ema.queues.values = pc.copy()
            phi = ema.allocate(obs)
            check_constraints(phi, obs)
            tables, idx = ema_cost_tables(ema, obs, pc)
            if not tables:
                assert phi.sum() == 0
                continue
            opt_val, _ = exact_slot_minimum(tables, budget)
            my_val = sum(tables[k][int(phi[i])] for k, i in enumerate(idx))
            assert my_val == pytest.approx(opt_val, abs=1e-8)

    def test_infinite_power_user_excluded(self):
        obs = make_obs(
            n_users=2, p_mj_per_kb=[np.inf, 0.5], link_units=[10, 10], unit_budget=50
        )
        ema = EMAScheduler(2, v_param=0.1)
        ema.queues.values = np.array([100.0, 100.0])
        ema._initialized[:] = True
        phi = ema.allocate(obs)
        assert phi[0] == 0
        assert phi[1] > 0


class TestQueueDynamics:
    def test_notify_applies_eq16(self):
        ema = EMAScheduler(2, v_param=0.1, queue_init=0.0)
        obs = make_obs(n_users=2, rate_kbps=[400.0, 400.0])
        ema.allocate(obs)  # seeds queues (at zero)
        phi = np.array([2, 0])
        delivered = np.array([80.0, 0.0])  # t = 0.2 s and 0 s
        ema.notify(obs, phi, delivered)
        assert ema.queues.values[0] == pytest.approx(1.0 - 0.2)
        assert ema.queues.values[1] == pytest.approx(1.0)

    def test_inactive_queues_frozen(self):
        ema = EMAScheduler(2, v_param=0.1, queue_init=0.0)
        obs = make_obs(n_users=2, active=[True, False])
        ema.allocate(obs)
        ema.notify(obs, np.zeros(2, dtype=np.int64), np.zeros(2))
        assert ema.queues.values[1] == 0.0

    def test_queue_floor_clamps(self):
        ema = EMAScheduler(1, v_param=0.1, queue_floor_s=-5.0, queue_init=0.0)
        obs = make_obs(n_users=1, rate_kbps=[400.0])
        ema.allocate(obs)
        # Deliver a huge shard: raw queue would go far negative.
        ema.notify(obs, np.array([100]), np.array([4000.0]))
        assert ema.queues.values[0] == -5.0

    def test_auto_seed_scales_with_v_and_rate(self):
        ema = EMAScheduler(2, v_param=0.5, typical_p_mj_per_kb=1.0)
        obs = make_obs(n_users=2, rate_kbps=[300.0, 600.0])
        ema.allocate(obs)
        np.testing.assert_allclose(ema.queues.values, [150.0, 300.0])

    def test_reset_clears_state(self):
        ema = EMAScheduler(1, v_param=0.1)
        obs = make_obs(n_users=1)
        ema.allocate(obs)
        ema.reset()
        assert ema.queues.values[0] == 0.0
        assert not ema._initialized.any()


class TestBehaviour:
    def test_positive_queue_pressure_transmits(self):
        ema = EMAScheduler(1, v_param=0.01, queue_init=0.0)
        obs = make_obs(n_users=1, unit_budget=100)
        ema.allocate(obs)
        ema.queues.values = np.array([50.0])  # heavy rebuffering pressure
        phi = ema.allocate(obs)
        assert phi[0] > 0

    def test_deep_negative_queue_idles(self):
        ema = EMAScheduler(1, v_param=0.01, queue_init=0.0)
        obs = make_obs(n_users=1, unit_budget=100, idle_tail_cost_mj=[0.0])
        ema.allocate(obs)
        ema.queues.values = np.array([-500.0])  # huge prefetched credit
        phi = ema.allocate(obs)
        assert phi[0] == 0

    def test_tail_cost_induces_batching(self):
        # Idle-cost pricing: a user in DCH tail keeps transmitting even
        # with mildly negative queue, because idling costs V * tail.
        ema = EMAScheduler(1, v_param=1.0, queue_init=0.0)
        obs = make_obs(
            n_users=1, unit_budget=100, idle_tail_cost_mj=[732.0],
            p_mj_per_kb=[0.2], rate_kbps=[400.0],
        )
        ema.allocate(obs)
        ema.queues.values = np.array([-1.0])
        phi_with_tail = ema.allocate(obs)
        ema.queues.values = np.array([-1.0])
        obs_no_tail = make_obs(
            n_users=1, unit_budget=100, idle_tail_cost_mj=[0.0],
            p_mj_per_kb=[0.2], rate_kbps=[400.0],
        )
        phi_no_tail = ema.allocate(obs_no_tail)
        assert phi_with_tail[0] > 0
        assert phi_no_tail[0] == 0

    def test_larger_v_transmits_less_under_pressure(self):
        obs = make_obs(n_users=1, unit_budget=100, p_mj_per_kb=[2.0])
        allocations = []
        for v in (0.001, 10.0):
            ema = EMAScheduler(1, v_param=v, queue_init=0.0)
            ema.allocate(obs)
            ema.queues.values = np.array([5.0])
            allocations.append(int(ema.allocate(obs)[0]))
        assert allocations[0] > allocations[1]

    def test_user_count_mismatch_raises(self):
        ema = EMAScheduler(3)
        with pytest.raises(ConfigurationError):
            ema.allocate(make_obs(n_users=2))

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            EMAScheduler(1, v_param=0.0)
        with pytest.raises(ConfigurationError):
            EMAScheduler(1, queue_floor_s=1.0)
        with pytest.raises(ConfigurationError):
            EMAScheduler(1, queue_init="bogus")
        with pytest.raises(ConfigurationError):
            EMAScheduler(1, queue_init=-1.0)
        with pytest.raises(ConfigurationError):
            EMAScheduler(1, typical_p_mj_per_kb=0.0)
