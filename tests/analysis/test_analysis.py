"""Tests for analysis helpers: CDF queries, stats, tables."""

import numpy as np
import pytest

from repro.analysis.cdf import cdf_at, quantile, tail_fraction
from repro.analysis.stats import bootstrap_ci, mean_confidence_interval, relative_reduction
from repro.analysis.tables import Table
from repro.errors import ConfigurationError


class TestCDFQueries:
    def test_cdf_at(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert cdf_at(x, 2.0) == 0.5
        assert cdf_at(x, 0.0) == 0.0
        assert cdf_at(x, 10.0) == 1.0

    def test_tail_fraction(self):
        x = np.array([0.1, 0.5, 0.8, 0.9])
        assert tail_fraction(x, 0.7) == 0.5

    def test_quantile(self):
        x = np.arange(101, dtype=float)
        assert quantile(x, 0.5) == 50.0
        with pytest.raises(ConfigurationError):
            quantile(x, 1.5)

    def test_nan_handling(self):
        assert cdf_at(np.array([1.0, np.nan]), 1.0) == 1.0
        with pytest.raises(ConfigurationError):
            cdf_at(np.array([np.nan]), 1.0)


class TestStats:
    def test_mean_ci_contains_mean(self, rng):
        x = rng.normal(10, 2, 40)
        m, lo, hi = mean_confidence_interval(x)
        assert lo <= m <= hi
        assert m == pytest.approx(x.mean())

    def test_mean_ci_width_shrinks_with_samples(self, rng):
        small = rng.normal(0, 1, 10)
        large = rng.normal(0, 1, 1000)
        _, lo_s, hi_s = mean_confidence_interval(small)
        _, lo_l, hi_l = mean_confidence_interval(large)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_degenerate_cases(self):
        m, lo, hi = mean_confidence_interval([5.0])
        assert m == lo == hi == 5.0
        m, lo, hi = mean_confidence_interval([3.0, 3.0, 3.0])
        assert lo == hi == 3.0

    def test_bootstrap_ci(self, rng):
        x = rng.normal(5, 1, 60)
        point, lo, hi = bootstrap_ci(x, rng=rng)
        assert lo <= point <= hi
        assert point == pytest.approx(x.mean())

    def test_relative_reduction(self):
        assert relative_reduction(100.0, 32.0) == pytest.approx(0.68)
        assert relative_reduction(100.0, 120.0) == pytest.approx(-0.2)
        with pytest.raises(ConfigurationError):
            relative_reduction(0.0, 1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([])
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([1.0], confidence=1.5)


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "value"], formats=[None, ".2f"], title="T")
        t.add_row(["alpha", 1.234])
        t.add_row(["b", 10.0])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "1.23" in out and "10.00" in out
        # All data lines share the same width.
        assert len(lines[2]) == len(lines[3])

    def test_markdown(self):
        t = Table(["a", "b"])
        t.add_row([1, 2])
        md = t.to_markdown()
        assert "| a | b |" in md
        assert "| 1 | 2 |" in md

    def test_row_length_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ConfigurationError):
            t.add_row([1])

    def test_format_length_checked(self):
        with pytest.raises(ConfigurationError):
            Table(["a", "b"], formats=[".2f"])

    def test_string_cells_ignore_format(self):
        t = Table(["x"], formats=[".3f"])
        t.add_row(["n/a"])
        assert "n/a" in t.render()
