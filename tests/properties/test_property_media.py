"""Property-based tests for buffer and player invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.media.buffer import PlaybackBuffer
from repro.media.player import StreamingClient
from repro.media.video import ConstantBitrateProfile, VideoSession


@given(
    deliveries=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=100),
    tau=st.floats(0.1, 2.0),
)
def test_buffer_invariants(deliveries, tau):
    """r >= 0 always; c in [0, tau]; r bounded by total delivered."""
    buf = PlaybackBuffer(tau)
    delivered_total = 0.0
    for t in deliveries:
        r = buf.advance(t)
        delivered_total += t
        c = buf.rebuffering_s()
        assert r >= 0.0
        assert 0.0 <= c <= tau
        assert r <= delivered_total + 1e-9
        # Eq. (8): stall and occupancy cover the slot together.
        assert c + min(r, tau) >= tau - 1e-9


@given(
    deliveries=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=60),
    cap=st.floats(0.5, 20.0),
)
def test_buffer_capacity_never_exceeded(deliveries, cap):
    buf = PlaybackBuffer(1.0, capacity_s=cap)
    for t in deliveries:
        r = buf.advance(t)
        assert r <= cap + 1e-12
        assert buf.headroom_s() >= -1e-12


@given(
    size_kb=st.floats(100.0, 20_000.0),
    rate=st.floats(100.0, 1000.0),
    chunks=st.lists(st.floats(0.0, 3000.0), min_size=1, max_size=80),
)
@settings(max_examples=60)
def test_player_conservation(size_kb, rate, chunks):
    """Delivered bytes never exceed the video; elapsed playback never
    exceeds delivered media duration; rebuffering per slot <= tau."""
    client = StreamingClient(
        VideoSession(size_kb, ConstantBitrateProfile(rate)), tau_s=1.0
    )
    for slot, kb in enumerate(chunks):
        rebuf, played = client.begin_slot(slot)
        assert 0.0 <= rebuf <= 1.0
        assert 0.0 <= played <= 1.0
        client.deliver(kb, slot)
        assert client.delivered_kb <= size_kb + 1e-6
        assert client.elapsed_playback_s <= client.delivered_playback_s + 1e-6
        assert client.remaining_kb >= -1e-9

    if client.playback_complete:
        # Completion implies everything was delivered and watched.
        assert client.fully_delivered
        assert client.elapsed_playback_s >= client.delivered_playback_s - 1e-6


@given(
    size_kb=st.floats(100.0, 5000.0),
    rate=st.floats(100.0, 1000.0),
)
def test_player_completes_with_ample_delivery(size_kb, rate):
    client = StreamingClient(
        VideoSession(size_kb, ConstantBitrateProfile(rate)), tau_s=1.0
    )
    duration = size_kb / rate
    client.deliver(size_kb, 0)
    slot = 1
    while not client.playback_complete and slot < duration + 10:
        client.begin_slot(slot)
        slot += 1
    assert client.playback_complete
    # Total playback time equals the video duration.
    assert client.elapsed_playback_s <= duration + 1e-6
