"""Property-based tests over all schedulers: constraints always hold,
and the EMA DP is exactly optimal on arbitrary instances."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.default import DefaultScheduler, NeedRateScheduler
from repro.baselines.estreamer import EStreamerScheduler
from repro.baselines.onoff import OnOffScheduler
from repro.baselines.salsa import SalsaScheduler
from repro.baselines.throttling import ThrottlingScheduler
from repro.core.allocation import check_constraints
from repro.core.ema import EMAScheduler
from repro.core.knapsack import exact_slot_minimum
from repro.core.rtma import RTMAScheduler

from tests.conftest import make_obs


@st.composite
def observations(draw, max_users=8):
    n = draw(st.integers(1, max_users))
    budget = draw(st.integers(0, 80))
    sig = draw(
        st.lists(st.floats(-110.0, -50.0), min_size=n, max_size=n)
    )
    links = draw(st.lists(st.integers(0, 30), min_size=n, max_size=n))
    rates = draw(st.lists(st.floats(300.0, 600.0), min_size=n, max_size=n))
    active = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    buffers = draw(st.lists(st.floats(0.0, 100.0), min_size=n, max_size=n))
    remaining = draw(st.lists(st.floats(0.0, 1e5), min_size=n, max_size=n))
    p = draw(st.lists(st.floats(0.15, 5.0), min_size=n, max_size=n))
    tail = draw(st.lists(st.floats(0.0, 800.0), min_size=n, max_size=n))
    return make_obs(
        n_users=n,
        unit_budget=budget,
        sig_dbm=sig,
        link_units=links,
        rate_kbps=rates,
        active=active,
        buffer_s=buffers,
        remaining_kb=remaining,
        p_mj_per_kb=p,
        idle_tail_cost_mj=tail,
    )


SCHEDULER_FACTORIES = [
    lambda n: DefaultScheduler(),
    lambda n: NeedRateScheduler(),
    lambda n: ThrottlingScheduler(),
    lambda n: OnOffScheduler(),
    lambda n: SalsaScheduler(),
    lambda n: EStreamerScheduler(),
    lambda n: RTMAScheduler(),
    lambda n: RTMAScheduler(sig_threshold_dbm=-80.0),
    lambda n: EMAScheduler(n, v_param=0.1),
]


@given(obs=observations(), factory_idx=st.integers(0, len(SCHEDULER_FACTORIES) - 1))
@settings(max_examples=150, deadline=None)
def test_every_scheduler_satisfies_constraints(obs, factory_idx):
    sched = SCHEDULER_FACTORIES[factory_idx](obs.n_users)
    phi = sched.allocate(obs)
    check_constraints(phi, obs)


@given(
    obs=observations(max_users=5),
    v=st.floats(0.005, 3.0),
    queues=st.lists(st.floats(-80.0, 80.0), min_size=5, max_size=5),
)
@settings(max_examples=80, deadline=None)
def test_ema_dp_optimality(obs, v, queues):
    """The sliding-window DP achieves the brute-force optimum of
    Eq. (22) on arbitrary queue states and observations."""
    if obs.unit_budget > 40:
        obs = make_obs(
            n_users=obs.n_users,
            unit_budget=40,
            sig_dbm=obs.sig_dbm,
            link_units=np.minimum(obs.link_units, 10),
            rate_kbps=obs.rate_kbps,
            active=obs.active,
            buffer_s=obs.buffer_s,
            remaining_kb=obs.remaining_kb,
            p_mj_per_kb=obs.p_mj_per_kb,
            idle_tail_cost_mj=obs.idle_tail_cost_mj,
        )
    ema = EMAScheduler(obs.n_users, v_param=v, queue_init=0.0)
    ema.allocate(obs)  # trigger queue seeding
    pc = np.array(queues[: obs.n_users])
    ema.queues.values = pc.copy()
    phi = ema.allocate(obs)
    check_constraints(phi, obs)

    tables, idx = [], []
    for i in range(obs.n_users):
        if not obs.active[i]:
            assert phi[i] == 0
            continue
        w = int(min(obs.link_units[i], np.ceil(obs.remaining_kb[i] / obs.delta_kb)))
        f = np.empty(w + 1)
        f[0] = pc[i] * obs.tau_s + v * obs.idle_tail_cost_mj[i]
        for ph in range(1, w + 1):
            t = ph * obs.delta_kb / obs.rate_kbps[i]
            f[ph] = v * obs.p_mj_per_kb[i] * ph * obs.delta_kb + pc[i] * (
                obs.tau_s - t
            )
        tables.append(f)
        idx.append(i)
    if not tables:
        return
    opt_val, _ = exact_slot_minimum(tables, obs.unit_budget)
    my_val = sum(tables[k][int(phi[i])] for k, i in enumerate(idx))
    assert my_val <= opt_val + 1e-7
