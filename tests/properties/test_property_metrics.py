"""Property-based tests for the evaluation metrics (Section VI-A)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sim.metrics import empirical_cdf, jain_fairness, per_slot_fairness

finite_shares = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 32),
    elements=st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
)


class TestJainFairness:
    @given(finite_shares)
    def test_bounded_between_one_over_n_and_one(self, shares):
        j = jain_fairness(shares)
        n = shares.size
        assert 1.0 / n - 1e-12 <= j <= 1.0 + 1e-12

    @given(st.integers(1, 32), st.floats(1e-3, 1e6, allow_nan=False))
    def test_equal_shares_are_perfectly_fair(self, n, value):
        assert jain_fairness(np.full(n, value)) == pytest.approx(1.0, rel=1e-9)

    @given(st.integers(2, 32), st.floats(1e-3, 1e6, allow_nan=False))
    def test_single_taker_hits_lower_bound(self, n, value):
        shares = np.zeros(n)
        shares[0] = value
        assert jain_fairness(shares) == pytest.approx(1.0 / n, rel=1e-9)

    def test_all_zero_is_fair(self):
        assert jain_fairness(np.zeros(5)) == 1.0


@st.composite
def fairness_grids(draw):
    n_slots = draw(st.integers(1, 12))
    n_users = draw(st.integers(1, 8))
    shape = (n_slots, n_users)
    delivered = draw(
        hnp.arrays(np.float64, shape, elements=st.floats(0.0, 1e4, allow_nan=False))
    )
    # Positive needs are bounded away from zero: d/need must not
    # overflow (a subnormal need would take F_i to inf).
    need = draw(
        hnp.arrays(
            np.float64,
            shape,
            elements=st.one_of(st.just(0.0), st.floats(0.01, 1e4)),
        )
    )
    active = draw(hnp.arrays(np.bool_, shape))
    min_active = draw(st.integers(1, n_users + 2))
    return delivered, need, active, min_active


class TestPerSlotFairness:
    @given(fairness_grids())
    def test_nan_exactly_where_below_min_active(self, grid):
        delivered, need, active, min_active = grid
        jain = per_slot_fairness(delivered, need, active, min_active=min_active)
        n_active = active.sum(axis=1)
        assert jain.shape == (delivered.shape[0],)
        nan_mask = np.isnan(jain)
        assert np.array_equal(nan_mask, n_active < min_active)

    @given(fairness_grids())
    def test_finite_values_within_jain_bounds(self, grid):
        delivered, need, active, min_active = grid
        jain = per_slot_fairness(delivered, need, active, min_active=min_active)
        finite = jain[~np.isnan(jain)]
        n_users = delivered.shape[1]
        assert np.all(finite >= 1.0 / n_users - 1e-12)
        assert np.all(finite <= 1.0 + 1e-12)


class TestEmpiricalCdf:
    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 200),
            elements=st.floats(-1e9, 1e9, allow_nan=False),
        )
    )
    def test_sorted_and_ends_at_one(self, samples):
        x, p = empirical_cdf(samples)
        assert x.shape == p.shape
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(p) > 0)
        assert p[-1] == 1.0
        assert p[0] > 0.0

    @given(
        hnp.arrays(
            np.float64,
            st.integers(2, 50),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        ),
        st.integers(1, 10),
    )
    def test_nans_dropped(self, samples, n_nans):
        with_nans = np.concatenate([samples, np.full(n_nans, np.nan)])
        x, p = empirical_cdf(with_nans)
        assert x.size == samples.size
        assert p[-1] == 1.0
