"""Property-based tests for the radio substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.radio.power import EnviPowerModel
from repro.radio.rrc import RRCFleet, RRCParams, RRCStateMachine
from repro.radio.tail import max_tail_energy_mj, tail_energy_mj
from repro.radio.throughput import LinearThroughputModel

params_st = st.builds(
    RRCParams,
    pd_mw=st.floats(0.0, 2000.0),
    pf_mw=st.floats(0.0, 2000.0),
    t1_s=st.floats(0.0, 20.0),
    t2_s=st.floats(0.0, 20.0),
)


@given(
    t=st.floats(0.0, 100.0),
    dt=st.floats(0.001, 100.0),
    params=params_st,
)
def test_tail_energy_monotone_and_bounded(t, dt, params):
    e1 = float(tail_energy_mj(t, params.pd_mw, params.pf_mw, params.t1_s, params.t2_s))
    e2 = float(
        tail_energy_mj(t + dt, params.pd_mw, params.pf_mw, params.t1_s, params.t2_s)
    )
    cap = max_tail_energy_mj(params.pd_mw, params.pf_mw, params.t1_s, params.t2_s)
    assert e2 >= e1 - 1e-9
    assert e1 <= cap + 1e-9
    assert e2 <= cap + 1e-9


@given(
    params=params_st,
    tx_pattern=st.lists(st.booleans(), min_size=1, max_size=120),
)
def test_rrc_increments_sum_to_closed_form(params, tx_pattern):
    """Sum of per-slot incremental tails over any idle gap equals Eq. (4)."""
    m = RRCStateMachine(params)
    total_since_tx = 0.0
    gap = 0.0
    for tx in tx_pattern:
        inc = m.step(tx, 1.0)
        if tx:
            total_since_tx = 0.0
            gap = 0.0
        else:
            total_since_tx += inc
            gap += 1.0
            if m._ever_transmitted:
                expected = float(
                    tail_energy_mj(gap, params.pd_mw, params.pf_mw, params.t1_s, params.t2_s)
                )
                assert abs(total_since_tx - expected) < 1e-6


@given(
    params=params_st,
    seed=st.integers(0, 2**31 - 1),
    n_users=st.integers(1, 12),
    n_steps=st.integers(1, 60),
)
@settings(max_examples=40)
def test_fleet_equals_scalar_machines(params, seed, n_users, n_steps):
    rng = np.random.default_rng(seed)
    fleet = RRCFleet(n_users, params)
    machines = [RRCStateMachine(params) for _ in range(n_users)]
    for _ in range(n_steps):
        tx = rng.random(n_users) < 0.5
        got = fleet.step(tx, 1.0)
        want = [machines[i].step(bool(tx[i]), 1.0) for i in range(n_users)]
        np.testing.assert_allclose(got, want, atol=1e-9)


@given(sig=st.floats(-114.9, -50.0))
def test_power_throughput_consistency(sig):
    """P(sig)*v(sig) must equal the affine radio power everywhere the
    fit is positive (modulo the p_floor clamp)."""
    tm = LinearThroughputModel()
    pm = EnviPowerModel(throughput=tm)
    v = float(tm.v(sig))
    if v <= 0:
        return
    p = float(pm.p(sig))
    radio = p * v
    affine = -0.167 * v + 1560.0
    # The clamp only binds at very strong signal (beyond the paper range).
    assert radio >= affine - 1e-6


@given(
    sig=hnp.arrays(
        np.float64,
        st.integers(1, 30),
        elements=st.floats(-110.0, -50.0),
    ),
    tau=st.floats(0.1, 5.0),
    delta=st.floats(1.0, 200.0),
)
def test_link_units_never_exceed_throughput(sig, tau, delta):
    tm = LinearThroughputModel()
    units = tm.max_units(sig, tau, delta)
    assert (units * delta <= tau * tm.v(sig) + 1e-6).all()
    assert (units >= 0).all()
