"""Property-based tests for the growable row space.

The dynamic engine's correctness hangs on two mechanical guarantees:

* **grow is invisible** — doubling a fleet's (or RRC fleet's) capacity
  mid-run changes nothing for the rows that already exist: every state
  value is preserved bit-for-bit and the subsequent evolution matches
  a fleet that never grew;
* **recycle is a reset** — a vacated row reloaded with a fresh session
  behaves exactly like that session in a brand-new fleet.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.media.fleet import ClientFleet
from repro.media.video import ConstantBitrateProfile, VideoSession
from repro.net.flows import VideoFlow
from repro.radio.rrc import RRCFleet

FLEET_STATE = (
    "size_kb",
    "arrival_slot",
    "delivered_kb",
    "delivered_playback_s",
    "elapsed_playback_s",
    "total_rebuffering_s",
    "buffer_occupancy_s",
    "pending_playback_s",
    "last_slot_rebuffering_s",
    "_began",
)


def _flows(sizes, rates):
    return [
        VideoFlow(
            user_id=i,
            video=VideoSession(size, ConstantBitrateProfile(rate)),
            arrival_slot=0,
        )
        for i, (size, rate) in enumerate(zip(sizes, rates))
    ]


def _drive(fleet, slot, offers):
    fleet.begin_slot(slot)
    fleet.deliver(np.asarray(offers, dtype=float), slot)


@given(
    sizes=st.lists(st.floats(500.0, 5_000.0), min_size=2, max_size=5),
    rate=st.floats(100.0, 800.0),
    offers=st.lists(
        st.lists(st.floats(0.0, 400.0), min_size=5, max_size=5),
        min_size=2,
        max_size=12,
    ),
    grow_at=st.integers(0, 11),
    extra=st.integers(1, 8),
)
@settings(max_examples=40, deadline=None)
def test_fleet_grow_is_invisible_to_existing_rows(
    sizes, rate, offers, grow_at, extra
):
    n = len(sizes)
    flows = _flows(sizes, [rate] * n)
    reference = ClientFleet(flows, tau_s=1.0, buffer_capacity_s=30.0)
    grower = ClientFleet(flows, tau_s=1.0, buffer_capacity_s=30.0)
    for slot, row in enumerate(offers):
        if slot == min(grow_at, len(offers) - 1):
            grower.grow(n + extra)
        _drive(reference, slot, row[:n])
        pad = np.zeros(grower.n_users)
        pad[:n] = row[:n]
        _drive(grower, slot, pad)
        for name in FLEET_STATE:
            a = getattr(reference, name)[:n]
            b = getattr(grower, name)[:n]
            assert a.tobytes() == b.tobytes(), (name, slot)
        if grower.n_users > n:
            # Vacant rows never accrue playback or buffer state.
            assert not grower.delivered_kb[n:].any()
            assert not grower.buffer_occupancy_s[n:].any()
            assert not grower.total_rebuffering_s[n:].any()


@given(
    first_size=st.floats(400.0, 2_000.0),
    second_size=st.floats(400.0, 2_000.0),
    rate=st.floats(100.0, 800.0),
    pre=st.lists(st.floats(0.0, 500.0), min_size=1, max_size=8),
    post=st.lists(st.floats(0.0, 500.0), min_size=1, max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_recycled_row_matches_fresh_fleet(first_size, second_size, rate, pre, post):
    recycled = ClientFleet.with_capacity(2, tau_s=1.0, buffer_capacity_s=30.0)
    first = _flows([first_size], [rate])[0]
    recycled.load_row(0, first)
    for slot, kb in enumerate(pre):
        offer = np.zeros(2)
        offer[0] = kb
        _drive(recycled, slot, offer)
    recycled.clear_row(0)

    restart = len(pre)
    second = VideoFlow(
        user_id=1,
        video=VideoSession(second_size, ConstantBitrateProfile(rate)),
        arrival_slot=restart,
    )
    recycled.load_row(0, second)
    fresh = ClientFleet([second], tau_s=1.0, buffer_capacity_s=30.0)
    for k, kb in enumerate(post):
        slot = restart + k
        offer = np.zeros(2)
        offer[0] = kb
        _drive(recycled, slot, offer)
        _drive(fresh, slot, [kb])
        for name in FLEET_STATE:
            got = getattr(recycled, name)[0]
            want = getattr(fresh, name)[0]
            assert got == want, (name, slot, got, want)


@given(
    tx=st.lists(
        st.lists(st.booleans(), min_size=4, max_size=4),
        min_size=2,
        max_size=16,
    ),
    grow_at=st.integers(0, 15),
    extra=st.integers(1, 6),
)
@settings(max_examples=40, deadline=None)
def test_rrc_grow_preserves_state_and_energy(tx, grow_at, extra):
    n = 4
    reference = RRCFleet(n)
    grower = RRCFleet(n)
    for slot, row in enumerate(tx):
        if slot == min(grow_at, len(tx) - 1):
            grower.grow(n + extra)
        mask = np.asarray(row, dtype=bool)
        e_ref = reference.step(mask, 1.0)
        pad = np.zeros(grower.n_users, dtype=bool)
        pad[:n] = mask
        e_grow = grower.step(pad, 1.0)
        assert e_ref.tobytes() == e_grow[:n].tobytes(), slot
        assert reference.idle_age_s.tobytes() == grower.idle_age_s[:n].tobytes()
        assert (
            reference.ever_transmitted.tobytes()
            == grower.ever_transmitted[:n].tobytes()
        )
        if grower.n_users > n:
            # New rows come up cold: no tail energy without a transmission.
            assert not e_grow[n:].any()


@given(
    tx=st.lists(st.booleans(), min_size=1, max_size=10),
    idle_steps=st.integers(1, 6),
)
@settings(max_examples=40, deadline=None)
def test_rrc_reset_rows_ends_the_tail(tx, idle_steps):
    rrc = RRCFleet(2)
    for bit in tx:
        rrc.step(np.array([bit, False]), 1.0)
    rrc.reset_rows([0])
    assert not rrc.ever_transmitted[0]
    for _ in range(idle_steps):
        energy = rrc.step(np.zeros(2, dtype=bool), 1.0)
        assert energy[0] == 0.0, "reset row must not pay tail energy"
