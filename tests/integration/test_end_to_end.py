"""End-to-end integration tests across the full stack."""

import numpy as np
import pytest

from repro import (
    DefaultScheduler,
    EMAScheduler,
    EStreamerScheduler,
    OnOffScheduler,
    RTMAScheduler,
    SalsaScheduler,
    SimConfig,
    ThrottlingScheduler,
    compare_schedulers,
    generate_workload,
    run_scheduler,
)
from repro.baselines.default import NeedRateScheduler
from repro.net.slicing import ConstantBackground


@pytest.fixture(scope="module")
def cfg():
    return SimConfig(
        n_users=10,
        n_slots=400,
        capacity_kbps=5_000.0,
        video_size_range_kb=(60_000.0, 120_000.0),
        vbr_segments=20,
        seed=11,
    )


@pytest.fixture(scope="module")
def all_results(cfg):
    return compare_schedulers(
        cfg,
        {
            "default": DefaultScheduler(),
            "greedy": NeedRateScheduler(),
            "rtma": RTMAScheduler(),
            "ema": EMAScheduler(cfg.n_users, v_param=0.05),
            "onoff": OnOffScheduler(),
            "throttling": ThrottlingScheduler(),
            "salsa": SalsaScheduler(),
            "estreamer": EStreamerScheduler(),
        },
    )


class TestAllSchedulersRun:
    def test_every_policy_completes(self, all_results):
        assert len(all_results) == 8
        for name, res in all_results.items():
            assert np.isfinite(res.pe_mj), name
            assert np.isfinite(res.pc_s), name

    def test_summaries_well_formed(self, all_results):
        for res in all_results.values():
            s = res.summary()
            assert s.pe_mj >= 0 and s.pc_s >= 0
            assert s.pe_mj == pytest.approx(s.pe_trans_mj + s.pe_tail_mj)

    def test_total_bytes_identical_for_completing_policies(self, all_results):
        # Policies that complete all sessions deliver exactly the
        # workload's bytes.
        totals = {
            name: res.delivered_kb.sum()
            for name, res in all_results.items()
            if res.summary().completion_rate == 1.0
        }
        assert len(totals) >= 2
        vals = list(totals.values())
        for v in vals[1:]:
            assert v == pytest.approx(vals[0], rel=1e-9)


class TestCrossSchedulerOrdering:
    def test_rtma_rebuffers_less_than_default(self, all_results):
        assert all_results["rtma"].pc_s < all_results["default"].pc_s

    def test_rtma_fairer_than_default(self, all_results):
        f_rtma = all_results["rtma"].summary().mean_fairness
        f_def = all_results["default"].summary().mean_fairness
        assert f_rtma > f_def

    def test_ema_uses_less_energy_than_default(self, all_results):
        assert (
            all_results["ema"].pe_session_mj
            < all_results["default"].pe_session_mj
        )

    def test_greedy_default_less_fair_than_need_first_policies(self, all_results):
        f_default = all_results["default"].summary().mean_fairness
        for name in ("rtma", "throttling"):
            assert f_default < all_results[name].summary().mean_fairness


class TestExtensions:
    def test_background_traffic_reduces_video_throughput(self, cfg):
        base = run_scheduler(cfg, DefaultScheduler())
        loaded_cfg = cfg.with_(background=ConstantBackground(2_500.0))
        loaded = run_scheduler(loaded_cfg, DefaultScheduler())
        # Less capacity for video -> more rebuffering.
        assert loaded.pc_s > base.pc_s

    def test_lte_profile_runs(self, cfg):
        res = run_scheduler(cfg.with_(profile="lte"), DefaultScheduler())
        assert np.isfinite(res.pe_mj)

    def test_buffer_capacity_limits_prefetch(self, cfg):
        capped = run_scheduler(
            cfg.with_(buffer_capacity_s=15.0), NeedRateScheduler()
        )
        assert capped.buffer_s.max() <= 15.0 + 1e-9

    def test_fetch_ahead_limits_gateway_queue(self, cfg):
        res = run_scheduler(
            cfg.with_(fetch_ahead_kb=200.0), NeedRateScheduler()
        )
        # Per-slot delivery per user bounded by the fetch window plus
        # one refill.
        assert res.delivered_kb.max() <= 400.0 + 1e-9

    def test_staggered_arrivals_respected(self, cfg):
        wl = generate_workload(cfg)
        for i, f in enumerate(wl.flows):
            object.__setattr__(f, "arrival_slot", 0) if False else None
        # Use dataclass replace-style: flows are mutable dataclasses.
        wl.flows[3].arrival_slot = 50
        res = run_scheduler(cfg, DefaultScheduler(), wl)
        assert not res.active[:50, 3].any()
        assert res.delivered_kb[:50, 3].sum() == 0.0
