"""Deterministic replay and the observer-effect guarantee.

Two invariants the rest of the repo leans on:

* the same :class:`~repro.sim.config.SimConfig` (same seed) replayed
  twice produces byte-identical result arrays — figures and calibration
  sweeps are exactly reproducible;
* attaching instrumentation never changes a run — tracing, metrics, and
  profiling are strictly observational.
"""

import numpy as np
import pytest

from repro.baselines.default import DefaultScheduler
from repro.core.ema import EMAScheduler
from repro.core.rtma import RTMAScheduler
from repro.obs import Instrumentation, NullTracer, RecordingTracer
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation

RESULT_ARRAYS = (
    "allocation_units",
    "delivered_kb",
    "rebuffering_s",
    "energy_trans_mj",
    "energy_tail_mj",
    "buffer_s",
    "need_kb",
    "active",
    "completion_slot",
    "arrival_slot",
)


def assert_bytes_equal(a, b):
    for name in RESULT_ARRAYS:
        assert (
            getattr(a, name).tobytes() == getattr(b, name).tobytes()
        ), f"{name} differs between runs"


@pytest.fixture
def replay_config():
    return SimConfig(
        n_users=8,
        n_slots=150,
        capacity_kbps=5_000.0,
        video_size_range_kb=(30_000.0, 60_000.0),
        buffer_capacity_s=60.0,
        seed=11,
    )


class TestDeterministicReplay:
    @pytest.mark.parametrize(
        "make_scheduler",
        [
            lambda: DefaultScheduler(),
            lambda: RTMAScheduler(),
            lambda: EMAScheduler(8, v_param=0.1),
        ],
        ids=["default", "rtma", "ema"],
    )
    def test_same_config_same_seed_is_byte_identical(
        self, replay_config, make_scheduler
    ):
        first = Simulation(replay_config, make_scheduler()).run()
        second = Simulation(replay_config, make_scheduler()).run()
        assert_bytes_equal(first, second)

    def test_different_seed_differs(self, replay_config):
        a = Simulation(replay_config, DefaultScheduler()).run()
        b = Simulation(replay_config.with_(seed=12), DefaultScheduler()).run()
        assert a.delivered_kb.tobytes() != b.delivered_kb.tobytes()


class TestObserverEffect:
    @pytest.mark.parametrize(
        "make_instr",
        [
            lambda: Instrumentation(tracer=NullTracer()),
            lambda: Instrumentation(tracer=RecordingTracer()),
        ],
        ids=["null-tracer", "recording-tracer"],
    )
    def test_instrumented_run_bit_identical_to_plain(self, replay_config, make_instr):
        plain = Simulation(replay_config, DefaultScheduler()).run()
        instr = make_instr()
        observed = Simulation(
            replay_config, DefaultScheduler(), instrumentation=instr
        ).run()
        assert_bytes_equal(plain, observed)

    def test_instrumented_ema_bit_identical(self, replay_config):
        plain = Simulation(replay_config, EMAScheduler(8, v_param=0.2)).run()
        instr = Instrumentation(tracer=RecordingTracer())
        observed = Simulation(
            replay_config, EMAScheduler(8, v_param=0.2), instrumentation=instr
        ).run()
        assert_bytes_equal(plain, observed)
        # The EMA queue trace mirrors the run it observed, without
        # having altered it.
        queue_events = instr.tracer.of_kind("ema.queues")
        assert len(queue_events) == replay_config.n_slots

    def test_summary_unaffected_by_instrumentation(self, replay_config):
        plain = Simulation(replay_config, DefaultScheduler()).run()
        observed = Simulation(
            replay_config, DefaultScheduler(), instrumentation=Instrumentation()
        ).run()
        assert plain.pe_mj == observed.pe_mj
        assert plain.pc_s == observed.pc_s
        assert np.array_equal(plain.completion_slot, observed.completion_slot)
