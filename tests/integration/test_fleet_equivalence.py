"""Cross-path equivalence: the fleet hot path vs the object reference.

The engine's default ``path="fleet"`` drives the vectorized
:class:`~repro.media.fleet.ClientFleet`; ``path="object"`` drives the
original per-user :class:`~repro.media.player.StreamingClient` loop.
The contract is *bit-identity*: every result grid — allocations,
deliveries, rebuffering, transmission and tail energy — must match
byte-for-byte for every scheduler, seed, and workload shape.  This is
what lets the object path survive as the trusted reference while all
figures run on the fleet path.

A second guarantee rides along: a fleet-path trace passes the offline
invariant checkers of :mod:`repro.obs.analyze` with zero violations.
"""

import numpy as np
import pytest

from repro.baselines import (
    DefaultScheduler,
    EStreamerScheduler,
    OnOffScheduler,
    SalsaScheduler,
    ThrottlingScheduler,
)
from repro.core.ema import EMAScheduler
from repro.core.rtma import RTMAScheduler
from repro.errors import ConfigurationError
from repro.media.fleet import ClientFleet
from repro.media.player import PlayerState, StreamingClient
from repro.media.video import ConstantBitrateProfile, VideoSession
from repro.net.flows import VideoFlow
from repro.obs import Instrumentation, JsonlTraceWriter, check_trace
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.workload import Workload, generate_workload

RESULT_ARRAYS = (
    "allocation_units",
    "delivered_kb",
    "rebuffering_s",
    "energy_trans_mj",
    "energy_tail_mj",
    "buffer_s",
    "need_kb",
    "active",
    "completion_slot",
    "arrival_slot",
)

SCHEDULERS = {
    "rtma": lambda cfg: RTMAScheduler(sig_threshold_dbm=-95.0),
    "ema": lambda cfg: EMAScheduler(cfg.n_users, v_param=0.05, tau_s=cfg.tau_s),
    "default": lambda cfg: DefaultScheduler(),
    "on-off": lambda cfg: OnOffScheduler(),
    "throttling": lambda cfg: ThrottlingScheduler(),
    "estreamer": lambda cfg: EStreamerScheduler(),
    "salsa": lambda cfg: SalsaScheduler(),
}


def assert_results_bit_identical(a, b):
    for name in RESULT_ARRAYS:
        assert (
            getattr(a, name).tobytes() == getattr(b, name).tobytes()
        ), f"{name} differs between fleet and object paths"


def run_both(cfg, make_scheduler, workload=None):
    wl = workload if workload is not None else generate_workload(cfg)
    r_obj = Simulation(cfg, make_scheduler(cfg), wl, path="object").run()
    r_fleet = Simulation(cfg, make_scheduler(cfg), wl, path="fleet").run()
    return r_obj, r_fleet


class TestBitIdentity:
    @pytest.mark.parametrize("sched_name", sorted(SCHEDULERS))
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_all_schedulers_all_seeds(self, sched_name, seed):
        cfg = SimConfig(
            n_users=10,
            n_slots=250,
            capacity_kbps=6_000.0,
            video_size_range_kb=(20_000.0, 50_000.0),
            buffer_capacity_s=60.0,
            seed=seed,
        )
        r_obj, r_fleet = run_both(cfg, SCHEDULERS[sched_name])
        assert_results_bit_identical(r_obj, r_fleet)

    @pytest.mark.parametrize("sched_name", ["rtma", "ema", "default"])
    def test_uncapped_buffers(self, sched_name):
        cfg = SimConfig(
            n_users=8, n_slots=200, capacity_kbps=5_000.0, seed=3,
            buffer_capacity_s=None,
        )
        r_obj, r_fleet = run_both(cfg, SCHEDULERS[sched_name])
        assert_results_bit_identical(r_obj, r_fleet)

    @pytest.mark.parametrize("sched_name", ["rtma", "ema", "on-off"])
    def test_vbr_profiles(self, sched_name):
        cfg = SimConfig(
            n_users=8,
            n_slots=200,
            capacity_kbps=5_000.0,
            vbr_segments=15,
            buffer_capacity_s=30.0,
            seed=5,
        )
        r_obj, r_fleet = run_both(cfg, SCHEDULERS[sched_name])
        assert_results_bit_identical(r_obj, r_fleet)

    @pytest.mark.parametrize("sched_name", ["rtma", "ema", "default"])
    def test_staggered_arrivals(self, sched_name):
        cfg = SimConfig(n_users=6, n_slots=220, capacity_kbps=4_000.0, seed=9)
        base = generate_workload(cfg)
        flows = [
            VideoFlow(
                user_id=f.user_id,
                video=f.video,
                arrival_slot=(f.user_id * 25) % 120,
                protocol=f.protocol,
            )
            for f in base.flows
        ]
        wl = Workload(flows=flows, signal_dbm=base.signal_dbm)
        r_obj, r_fleet = run_both(cfg, SCHEDULERS[sched_name], workload=wl)
        assert_results_bit_identical(r_obj, r_fleet)

    def test_tiny_videos_complete_mid_run(self):
        # Sessions finish early: exercises fully_delivered / completion
        # masking on both paths.
        cfg = SimConfig(
            n_users=6,
            n_slots=150,
            capacity_kbps=8_000.0,
            video_size_range_kb=(500.0, 1_500.0),
            buffer_capacity_s=40.0,
            seed=13,
        )
        r_obj, r_fleet = run_both(cfg, SCHEDULERS["default"])
        assert (r_fleet.completion_slot >= 0).any()
        assert_results_bit_identical(r_obj, r_fleet)

    def test_env_var_selects_path(self, monkeypatch):
        cfg = SimConfig(n_users=4, n_slots=50, seed=2)
        wl = generate_workload(cfg)
        monkeypatch.setenv("REPRO_SIM_PATH", "object")
        r_env = Simulation(cfg, DefaultScheduler(), wl).run()
        monkeypatch.delenv("REPRO_SIM_PATH")
        r_obj = Simulation(cfg, DefaultScheduler(), wl, path="object").run()
        assert_results_bit_identical(r_env, r_obj)

    def test_invalid_path_rejected(self):
        cfg = SimConfig(n_users=4, n_slots=50, seed=2)
        with pytest.raises(ConfigurationError):
            Simulation(cfg, DefaultScheduler(), path="vectorised")


class TestFleetTraceInvariants:
    @pytest.mark.parametrize("sched_name", ["rtma", "ema"])
    def test_fleet_trace_is_violation_free(self, tmp_path, sched_name):
        cfg = SimConfig(
            n_users=8, n_slots=200, capacity_kbps=5_000.0,
            buffer_capacity_s=60.0, seed=4,
        )
        path = tmp_path / "trace.jsonl"
        tracer = JsonlTraceWriter(path)
        Simulation(
            cfg,
            SCHEDULERS[sched_name](cfg),
            instrumentation=Instrumentation(tracer=tracer),
            path="fleet",
        ).run()
        tracer.close()
        ((tl, report),) = check_trace(path)
        assert tl.scheduler == sched_name
        assert report.ok, report.render()


class TestFleetClientView:
    """The per-user views mirror StreamingClient stepwise."""

    def _flows(self):
        return [
            VideoFlow(0, VideoSession(400.0, ConstantBitrateProfile(100.0))),
            VideoFlow(1, VideoSession(600.0, ConstantBitrateProfile(150.0)),
                      arrival_slot=3),
        ]

    def test_view_matches_streaming_client(self):
        flows = self._flows()
        fleet = ClientFleet(flows, tau_s=1.0, buffer_capacity_s=10.0)
        clients = [
            StreamingClient(f.video, 1.0, buffer_capacity_s=10.0) for f in flows
        ]
        rng = np.random.default_rng(0)
        for slot in range(12):
            offers = rng.uniform(0.0, 200.0, size=2)
            rebuf = np.zeros(2)
            for i, c in enumerate(clients):
                if slot < flows[i].arrival_slot:
                    continue
                rebuf[i], _ = c.begin_slot(slot)
            fleet_rebuf = fleet.begin_slot(slot)
            np.testing.assert_array_equal(rebuf, fleet_rebuf)

            capped = np.array(
                [
                    min(offers[i], c.remaining_kb, c.receivable_kb(slot))
                    for i, c in enumerate(clients)
                ]
            )
            accepted_obj = np.array(
                [
                    c.deliver(capped[i], slot) if capped[i] > 0 else 0.0
                    for i, c in enumerate(clients)
                ]
            )
            accepted_fleet = fleet.deliver(np.maximum(offers, 0.0), slot)
            np.testing.assert_array_equal(accepted_obj, accepted_fleet)

            for i, c in enumerate(clients):
                view = fleet.view(i)
                assert view.delivered_kb == c.delivered_kb
                assert view.buffer_occupancy_s == c.buffer_occupancy_s
                assert view.elapsed_playback_s == c.elapsed_playback_s
                assert view.total_rebuffering_s == c.total_rebuffering_s
                assert view.remaining_kb == c.remaining_kb
                assert view.fully_delivered == c.fully_delivered
                assert view.needs_data == c.needs_data
                assert view.receivable_kb(slot) == c.receivable_kb(slot)
                assert isinstance(view.state, PlayerState)

    def test_views_are_cached(self):
        fleet = ClientFleet(self._flows(), tau_s=1.0)
        assert fleet.view(0) is fleet.view(0)
        assert len(fleet.clients) == 2
