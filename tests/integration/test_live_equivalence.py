"""Live-telemetry observer effect: watching a run must not change it.

Every scheduler x seed combination runs twice — bare, and under a
:class:`~repro.obs.live.LiveTelemetry` with active SLO rules and a
tight ``watch_every`` — and every result grid must match
byte-for-byte.  A companion test pins the watchdog's behaviour on a
deliberately budget-violating workload: the expected rules fire,
exactly once per violating run, and nothing else does.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    DefaultScheduler,
    EStreamerScheduler,
    OnOffScheduler,
    SalsaScheduler,
    ThrottlingScheduler,
)
from repro.core.ema import EMAScheduler
from repro.core.rtma import RTMAScheduler
from repro.obs import Instrumentation
from repro.obs.live import LiveTelemetry
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.workload import generate_workload

RESULT_ARRAYS = (
    "allocation_units",
    "delivered_kb",
    "rebuffering_s",
    "energy_trans_mj",
    "energy_tail_mj",
    "buffer_s",
    "need_kb",
    "active",
    "completion_slot",
    "arrival_slot",
)

SCHEDULERS = {
    "rtma": lambda cfg: RTMAScheduler(sig_threshold_dbm=-95.0),
    "ema": lambda cfg: EMAScheduler(cfg.n_users, v_param=0.05, tau_s=cfg.tau_s),
    "default": lambda cfg: DefaultScheduler(),
    "on-off": lambda cfg: OnOffScheduler(),
    "throttling": lambda cfg: ThrottlingScheduler(),
    "estreamer": lambda cfg: EStreamerScheduler(),
    "salsa": lambda cfg: SalsaScheduler(),
}


class TestLiveObserverEffect:
    @pytest.mark.parametrize("sched_name", sorted(SCHEDULERS))
    @pytest.mark.parametrize("seed", [1, 23])
    def test_live_on_off_bit_identical(self, sched_name, seed):
        cfg = SimConfig(n_users=6, n_slots=200, seed=seed)
        wl = generate_workload(cfg)
        make = SCHEDULERS[sched_name]

        bare = Simulation(cfg, make(cfg), wl).run()

        live = LiveTelemetry(
            rules=(
                "p95(rebuffer_s) < 1e12",  # never fires; evaluation still runs
                "mean(slot_energy_mj) >= 0",
            ),
            watch_every=8,
        )
        instr = Instrumentation(live=live)
        watched = Simulation(cfg, make(cfg), wl, instrumentation=instr).run()

        for name in RESULT_ARRAYS:
            assert (
                getattr(bare, name).tobytes() == getattr(watched, name).tobytes()
            ), f"{name} differs with live telemetry attached ({sched_name})"
        assert live.total_slots == cfg.n_slots
        assert live.snapshot()["n_alerts"] == 0


class TestWatchdogOnViolatingWorkload:
    def test_expected_alerts_fire_exactly(self):
        """A workload that provably violates a tight per-slot energy
        bound (and rebuffers) fires exactly the expected rules."""
        cfg = SimConfig(n_users=8, n_slots=300, seed=3)
        wl = generate_workload(cfg)

        # Establish ground truth from an unwatched run.
        ref = Simulation(cfg, DefaultScheduler(), wl).run()
        per_slot_energy = (ref.energy_trans_mj + ref.energy_tail_mj).sum(axis=1)
        phi = float(per_slot_energy.max()) * 0.5  # deliberately violated
        assert (per_slot_energy > phi).any()
        total_rebuffer = float(ref.rebuffering_s.sum())

        rules = ["max(slot_energy_mj) <= %r" % phi]
        if total_rebuffer > 0:
            rules.append("count(rebuffer_s) < 1e18")  # holds: no alert
        live = LiveTelemetry(rules=tuple(rules), watch_every=8)
        instr = Instrumentation(live=live)
        watched = Simulation(cfg, DefaultScheduler(), wl, instrumentation=instr).run()

        # Still bit-identical even while alerting.
        assert (
            watched.energy_trans_mj.tobytes() == ref.energy_trans_mj.tobytes()
        )

        snap = live.snapshot()
        fired = {a["key"] for a in snap["alerts"]}
        assert fired == {"max(slot_energy_mj)"}
        # Edge-triggered: one run, one violating rule -> exactly one alert.
        assert snap["n_alerts"] == 1
        assert (
            instr.metrics.counter("slo.alerts").value == 1
        )

    def test_second_violating_run_fires_again(self):
        cfg = SimConfig(n_users=6, n_slots=150, seed=9)
        wl = generate_workload(cfg)
        ref = Simulation(cfg, DefaultScheduler(), wl).run()
        phi = float(
            (ref.energy_trans_mj + ref.energy_tail_mj).sum(axis=1).max()
        ) * 0.5

        live = LiveTelemetry(
            rules=(f"max(slot_energy_mj) <= {phi}",), watch_every=8
        )
        instr = Instrumentation(live=live)
        for _ in range(3):
            Simulation(cfg, DefaultScheduler(), wl, instrumentation=instr).run()
        # One alert per violating run: the edge trigger re-arms at run
        # boundaries, the serial/pooled alert-count contract.
        assert live.snapshot()["n_alerts"] == 3
