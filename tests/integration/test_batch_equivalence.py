"""Run-stacked batching equivalence: ``run_batch`` is invisible.

:mod:`repro.sim.batch` stacks R shape-compatible runs into one
``(R*N)``-row fleet and executes a single slot loop for all of them.
The contract is *bit-identity*: every per-run result grid, every
summary statistic, and the instrumentation metrics (minus the
``batch.*`` bookkeeping counters the stacked path adds) must match a
serial run-by-run execution byte for byte, for every scheduler and
every available kernel backend.  A property test additionally checks
that *how* a task sequence is partitioned into batches — any split
into consecutive groups of any sizes — cannot be observed in the
results.

Locally this exercises numpy and python backends; CI's numba job adds
the compiled backend to the same parametrisation automatically.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import (
    DefaultScheduler,
    EStreamerScheduler,
    OnOffScheduler,
    SalsaScheduler,
    ThrottlingScheduler,
)
from repro.core.ema import EMAScheduler
from repro.core.rtma import RTMAScheduler
from repro.kernels import available_backends
from repro.obs import Instrumentation
from repro.sim.batch import batch_incompatibility, run_batch
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.executor import RunTask
from repro.sim.workload import generate_workload

RESULT_ARRAYS = (
    "allocation_units",
    "delivered_kb",
    "rebuffering_s",
    "energy_trans_mj",
    "energy_tail_mj",
    "buffer_s",
    "need_kb",
    "active",
    "completion_slot",
    "arrival_slot",
)

SCHEDULERS = {
    "rtma": lambda cfg: RTMAScheduler(sig_threshold_dbm=-95.0),
    "ema": lambda cfg: EMAScheduler(cfg.n_users, v_param=0.05, tau_s=cfg.tau_s),
    "default": lambda cfg: DefaultScheduler(),
    "on-off": lambda cfg: OnOffScheduler(),
    "throttling": lambda cfg: ThrottlingScheduler(),
    "estreamer": lambda cfg: EStreamerScheduler(),
    "salsa": lambda cfg: SalsaScheduler(),
}

BACKENDS = list(available_backends())


def _cfg(seed, **overrides):
    base = dict(
        n_users=10,
        n_slots=250,
        capacity_kbps=6_000.0,
        video_size_range_kb=(20_000.0, 50_000.0),
        buffer_capacity_s=60.0,
        seed=seed,
    )
    base.update(overrides)
    return SimConfig(**base)


def _tasks(make_scheduler, configs):
    """One RunTask per config, each with its own scheduler instance."""
    return [
        RunTask(cfg, make_scheduler(cfg), generate_workload(cfg))
        for cfg in configs
    ]


def assert_results_bit_identical(a, b, label):
    for name in RESULT_ARRAYS:
        assert (
            getattr(a, name).tobytes() == getattr(b, name).tobytes()
        ), f"{label}: {name} differs between serial and batched execution"


def _strip_batch_keys(counters):
    return {k: v for k, v in counters.items() if not k.startswith("batch.")}


class TestBatchBitIdentity:
    """run_batch == run-by-run Simulation, per grid byte."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("sched_name", sorted(SCHEDULERS))
    @pytest.mark.parametrize("seeds", [(1, 7), (23, 42)])
    def test_all_schedulers_all_backends(self, backend, sched_name, seeds):
        make = SCHEDULERS[sched_name]
        configs = [_cfg(s, kernel_backend=backend) for s in seeds]
        serial = [
            Simulation(t.config, t.scheduler, t.workload).run()
            for t in _tasks(make, configs)
        ]
        batched = run_batch(_tasks(make, configs))
        assert len(batched) == len(serial)
        for r, (a, b) in enumerate(zip(serial, batched)):
            assert_results_bit_identical(a, b, f"{sched_name}/{backend} run {r}")
            assert a.summary().as_dict() == b.summary().as_dict(), (
                f"{sched_name}/{backend} run {r}: summary differs"
            )

    @pytest.mark.parametrize("sched_name", ["rtma", "ema"])
    def test_per_run_parameter_lanes(self, sched_name):
        """Runs with *different* scheduler parameters still stack."""
        if sched_name == "rtma":
            makes = [
                lambda cfg, t=t: RTMAScheduler(sig_threshold_dbm=t)
                for t in (-95.0, -90.0, -100.0)
            ]
        else:
            makes = [
                lambda cfg, v=v: EMAScheduler(
                    cfg.n_users, v_param=v, tau_s=cfg.tau_s
                )
                for v in (0.05, 0.2, 1.0)
            ]
        configs = [_cfg(s, n_slots=150) for s in (1, 2, 3)]
        serial = [
            Simulation(cfg, make(cfg), generate_workload(cfg)).run()
            for cfg, make in zip(configs, makes)
        ]
        tasks = [
            RunTask(cfg, make(cfg), generate_workload(cfg))
            for cfg, make in zip(configs, makes)
        ]
        batched = run_batch(tasks)
        for r, (a, b) in enumerate(zip(serial, batched)):
            assert_results_bit_identical(a, b, f"{sched_name}-lanes run {r}")


class TestBatchMetricsEquivalence:
    @pytest.mark.parametrize("sched_name", sorted(SCHEDULERS))
    def test_metrics_identical_minus_batch_keys(self, sched_name):
        make = SCHEDULERS[sched_name]
        configs = [_cfg(s, n_slots=150) for s in (4, 5, 6)]
        instr_serial = Instrumentation()
        for t in _tasks(make, configs):
            Simulation(
                t.config, t.scheduler, t.workload,
                instrumentation=instr_serial,
            ).run()
        instr_batch = Instrumentation()
        run_batch(_tasks(make, configs), instrumentation=instr_batch)

        snap_s = instr_serial.metrics.snapshot()
        snap_b = instr_batch.metrics.snapshot()
        # Counters: exact float equality (same accumulation order is
        # part of the contract), minus the batch.* bookkeeping.
        assert snap_s["counters"] == _strip_batch_keys(snap_b["counters"])
        assert snap_b["counters"].get("batch.runs") == len(configs)
        # Gauges: every serially-published gauge must come back with
        # the same final value (last-write-wins order is preserved).
        for key, value in snap_s["gauges"].items():
            got = snap_b["gauges"].get(key)
            if isinstance(value, np.ndarray):
                assert got is not None and np.array_equal(value, got), key
            else:
                assert value == got, f"gauge {key}: {value!r} != {got!r}"


class TestBatchCompatibilityOracle:
    def test_incompatible_shapes_are_rejected(self):
        make = SCHEDULERS["rtma"]
        tasks = _tasks(make, [_cfg(1), _cfg(2, n_users=8)])
        assert batch_incompatibility(tasks) is not None
        with pytest.raises(Exception):
            run_batch(tasks)

    def test_mixed_scheduler_types_are_rejected(self):
        cfgs = [_cfg(1), _cfg(2)]
        tasks = [
            RunTask(cfgs[0], RTMAScheduler(sig_threshold_dbm=-95.0),
                    generate_workload(cfgs[0])),
            RunTask(cfgs[1], DefaultScheduler(), generate_workload(cfgs[1])),
        ]
        assert batch_incompatibility(tasks) is not None

    def test_shared_scheduler_instance_is_rejected(self):
        cfgs = [_cfg(1), _cfg(2)]
        shared = RTMAScheduler(sig_threshold_dbm=-95.0)
        tasks = [
            RunTask(cfg, shared, generate_workload(cfg)) for cfg in cfgs
        ]
        assert batch_incompatibility(tasks) is not None


# --- partition invariance ------------------------------------------------

_PARTITION_SEEDS = (0, 1, 2, 3, 4, 5)
_PARTITION_REFERENCE = None


def _partition_reference():
    """Serial reference grids for the property test, computed once."""
    global _PARTITION_REFERENCE
    if _PARTITION_REFERENCE is None:
        configs = [
            _cfg(s, n_users=5, n_slots=60,
                 video_size_range_kb=(2_000.0, 5_000.0))
            for s in _PARTITION_SEEDS
        ]
        serial = [
            Simulation(t.config, t.scheduler, t.workload).run()
            for t in _tasks(SCHEDULERS["rtma"], configs)
        ]
        _PARTITION_REFERENCE = (
            configs,
            [
                tuple(getattr(r, name).tobytes() for name in RESULT_ARRAYS)
                for r in serial
            ],
        )
    return _PARTITION_REFERENCE


@st.composite
def partitions(draw):
    """A split of the task sequence into consecutive non-empty groups."""
    n = len(_PARTITION_SEEDS)
    cuts = draw(
        st.lists(st.integers(min_value=1, max_value=n - 1),
                 unique=True, max_size=n - 1)
    )
    bounds = [0, *sorted(cuts), n]
    return [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]


class TestPartitionInvariance:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(partition=partitions())
    def test_any_partition_is_invisible(self, partition):
        configs, expected = _partition_reference()
        results = []
        for lo, hi in partition:
            group = _tasks(SCHEDULERS["rtma"], configs[lo:hi])
            if len(group) == 1:
                t = group[0]
                results.append(
                    Simulation(t.config, t.scheduler, t.workload).run()
                )
            else:
                results.extend(run_batch(group))
        assert len(results) == len(expected)
        for r, (got, want) in enumerate(zip(results, expected)):
            got_bytes = tuple(
                getattr(got, name).tobytes() for name in RESULT_ARRAYS
            )
            assert got_bytes == want, (
                f"partition {partition}: run {r} differs from serial"
            )
