"""Dynamic session lifecycle: churn, admission, and zero-churn identity.

Three contracts:

* **Zero-churn bit-identity** — configs without churn (the default
  ``all_at_zero`` / ``accept-all``) take the untouched fixed-population
  body, and making that default explicit changes nothing, for every
  scheduler, seed, and kernel backend.  A stronger pin rides along:
  the *dynamic* body itself, driven by an all-zero arrival trace with
  videos too large to complete (so no retirement), reproduces the
  fixed path byte-for-byte — admission, row mapping, and the
  row-to-session scatter are exact.
* **Churn end-to-end** — a Poisson-arrival, admission-capped scenario
  runs serially and on the process pool with identical results, emits
  session lifecycle events, and passes the offline invariant checkers
  (including session conservation) with zero violations.
* **Session accounting** — admitted/rejected/completed/departure
  bookkeeping is conserved and retirement actually stops a session's
  energy accrual.
"""

import numpy as np
import pytest

from repro.baselines import (
    DefaultScheduler,
    EStreamerScheduler,
    OnOffScheduler,
    SalsaScheduler,
    ThrottlingScheduler,
)
from repro.core.ema import EMAScheduler
from repro.core.rtma import RTMAScheduler
from repro.errors import ConfigurationError
from repro.kernels import available_backends
from repro.obs import Instrumentation, JsonlTraceWriter, check_trace
from repro.sim import RunExecutor, RunTask
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.workload import generate_workload

RESULT_ARRAYS = (
    "allocation_units",
    "delivered_kb",
    "rebuffering_s",
    "energy_trans_mj",
    "energy_tail_mj",
    "buffer_s",
    "need_kb",
    "active",
    "completion_slot",
    "arrival_slot",
)

SCHEDULERS = {
    "rtma": lambda cfg: RTMAScheduler(sig_threshold_dbm=-95.0),
    "ema": lambda cfg: EMAScheduler(cfg.n_users, v_param=0.05, tau_s=cfg.tau_s),
    "default": lambda cfg: DefaultScheduler(),
    "on-off": lambda cfg: OnOffScheduler(),
    "throttling": lambda cfg: ThrottlingScheduler(),
    "estreamer": lambda cfg: EStreamerScheduler(),
    "salsa": lambda cfg: SalsaScheduler(),
}


def assert_results_bit_identical(a, b):
    for name in RESULT_ARRAYS:
        assert (
            getattr(a, name).tobytes() == getattr(b, name).tobytes()
        ), f"{name} differs"


def churn_config(seed=3, **overrides):
    base = dict(
        n_users=16,
        n_slots=400,
        capacity_kbps=4_000.0,
        video_size_range_kb=(3_000.0, 8_000.0),
        buffer_capacity_s=40.0,
        seed=seed,
        arrival_process="poisson",
        arrival_rate_per_slot=0.4,
        admission="capacity-threshold",
        admission_max_active=4,
    )
    base.update(overrides)
    return SimConfig(**base)


class TestZeroChurnIdentity:
    """Explicit all_at_zero/accept-all == the implicit default."""

    @pytest.mark.parametrize("sched_name", sorted(SCHEDULERS))
    @pytest.mark.parametrize("seed", [1, 23])
    def test_explicit_defaults_change_nothing(self, sched_name, seed):
        base = SimConfig(
            n_users=10, n_slots=250, capacity_kbps=6_000.0,
            video_size_range_kb=(20_000.0, 50_000.0),
            buffer_capacity_s=60.0, seed=seed,
        )
        explicit = base.with_(
            arrival_process="all_at_zero", admission="accept-all"
        )
        assert not base.has_churn and not explicit.has_churn
        r_base = Simulation(base, SCHEDULERS[sched_name](base)).run()
        r_explicit = Simulation(explicit, SCHEDULERS[sched_name](explicit)).run()
        assert_results_bit_identical(r_base, r_explicit)
        # Zero-churn runs take the fixed path: no session bookkeeping.
        assert r_base.admitted is None and r_explicit.admitted is None

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("sched_name", sorted(SCHEDULERS))
    def test_dynamic_body_reproduces_fixed_path(self, backend, sched_name):
        # All sessions arrive at slot 0 via a trace (forcing the
        # dynamic body) with videos far too large to complete (no
        # retirement): every grid must match the fixed path
        # byte-for-byte, through the 4 -> 8 capacity growth.
        fixed = SimConfig(
            n_users=8, n_slots=200, capacity_kbps=6_000.0,
            video_size_range_kb=(200_000.0, 400_000.0),
            buffer_capacity_s=60.0, seed=11, kernel_backend=backend,
        )
        dynamic = fixed.with_(arrival_process="trace", arrival_trace=(0,) * 8)
        assert dynamic.has_churn
        r_fixed = Simulation(fixed, SCHEDULERS[sched_name](fixed)).run()
        r_dyn = Simulation(dynamic, SCHEDULERS[sched_name](dynamic)).run()
        assert (r_fixed.completion_slot == -1).all()  # nothing retires
        assert_results_bit_identical(r_fixed, r_dyn)
        assert r_dyn.admitted is not None and r_dyn.admitted.all()
        assert not r_dyn.rejected.any()

    def test_workload_generation_rng_unchanged(self):
        cfg = SimConfig(n_users=6, n_slots=100, seed=5)
        explicit = cfg.with_(arrival_process="all_at_zero")
        wl_a = generate_workload(cfg)
        wl_b = generate_workload(explicit)
        assert wl_a.signal_dbm.tobytes() == wl_b.signal_dbm.tobytes()
        for fa, fb in zip(wl_a.flows, wl_b.flows):
            assert fa.video.size_kb == fb.video.size_kb
            assert fa.arrival_slot == fb.arrival_slot == 0


class TestChurnEndToEnd:
    def test_object_path_rejects_churn(self):
        with pytest.raises(ConfigurationError):
            Simulation(churn_config(), DefaultScheduler(), path="object")

    @pytest.mark.parametrize("sched_name", ["default", "rtma", "ema"])
    def test_poisson_run_conserves_sessions(self, sched_name):
        cfg = churn_config()
        res = Simulation(cfg, SCHEDULERS[sched_name](cfg)).run()
        admitted = res.admitted
        rejected = res.rejected
        completed = res.completion_slot >= 0
        assert admitted is not None and rejected is not None
        assert not (admitted & rejected).any()
        # Completion implies admission; departure pairs with completion.
        assert (completed <= admitted).all()
        assert ((res.departure_slot >= 0) == completed).all()
        assert (res.departure_slot[completed] == res.completion_slot[completed]).all()
        # Offered vs admitted load split (satellite: metrics summary).
        summary = res.to_summary_dict()
        assert summary["sessions_offered"] == cfg.n_users
        assert summary["sessions_admitted"] == int(admitted.sum())
        assert summary["sessions_rejected"] == int(rejected.sum())
        assert summary["offered_video_kb"] >= summary["admitted_video_kb"] > 0
        if rejected.any():
            assert summary["offered_video_kb"] > summary["admitted_video_kb"]

    def test_retired_sessions_accrue_nothing(self):
        cfg = churn_config(seed=9)
        res = Simulation(cfg, DefaultScheduler()).run()
        done = np.flatnonzero(res.completion_slot >= 0)
        assert done.size, "scenario must complete some sessions"
        slots = np.arange(cfg.n_slots)[:, None]
        after = slots > res.completion_slot[None, done]
        for grid in (res.allocation_units[:, done], res.delivered_kb[:, done],
                     res.energy_trans_mj[:, done], res.energy_tail_mj[:, done]):
            assert not grid[after].any()
        # Never-admitted sessions never touch the grids at all.
        out = ~res.admitted
        if out.any():
            assert not res.allocation_units[:, out].any()
            assert not res.energy_trans_mj[:, out].any()

    def test_serial_equals_pooled_under_churn(self):
        cfg = churn_config()
        wl = generate_workload(cfg)
        def tasks():
            return [
                RunTask(cfg, SCHEDULERS[name](cfg), wl)
                for name in ("default", "rtma", "ema")
            ]
        serial = RunExecutor(jobs=1).map_runs(tasks())
        pooled = RunExecutor(jobs=2).map_runs(tasks())
        for a, b in zip(serial, pooled):
            assert_results_bit_identical(a, b)
            assert a.admitted.tobytes() == b.admitted.tobytes()
            assert a.rejected.tobytes() == b.rejected.tobytes()
            assert a.departure_slot.tobytes() == b.departure_slot.tobytes()

    @pytest.mark.parametrize("sched_name", ["rtma", "ema"])
    def test_churn_trace_passes_invariants(self, tmp_path, sched_name):
        cfg = churn_config(seed=4)
        path = tmp_path / "trace.jsonl"
        tracer = JsonlTraceWriter(path)
        Simulation(
            cfg,
            SCHEDULERS[sched_name](cfg),
            instrumentation=Instrumentation(tracer=tracer),
        ).run()
        tracer.close()
        ((tl, report),) = check_trace(path)
        assert report.ok, report.render()
        assert "session.conservation" in report.checked
        assert tl.sessions, "expected session lifecycle events"
        counts = tl.end_summary["sessions"]
        assert counts["offered"] == cfg.n_users
        assert counts["admitted"] == counts["completed"] + counts["active"]
        rows = tl.session_rows()
        assert rows and all(r["outcome"] is not None for r in rows)


class TestAdmissionPolicies:
    def test_capacity_threshold_rejects_over_cap(self):
        cfg = churn_config(seed=3)
        res = Simulation(cfg, DefaultScheduler()).run()
        assert res.rejected.any(), "cap of 4 should reject under this load"

    def test_accept_all_with_poisson_admits_everyone_who_arrives(self):
        cfg = churn_config(seed=3, admission="accept-all",
                           admission_max_active=None)
        res = Simulation(cfg, DefaultScheduler()).run()
        arrived = res.arrival_slot < cfg.n_slots
        assert (res.admitted == arrived).all()
        assert not res.rejected.any()

    def test_budget_aware_policy_caps_population(self):
        cfg = churn_config(
            seed=3,
            admission="budget-aware",
            admission_max_active=None,
            admission_min_units_per_user=2,
        )
        res = Simulation(cfg, DefaultScheduler()).run()
        # The policy admits while (active+1) * min_units <= unit budget;
        # bookkeeping still conserves.
        assert not (res.admitted & res.rejected).any()
