"""Tests for the experiment registry, CLI, and common infrastructure.

The heavyweight figure runs are exercised by benchmarks/; here we
cover dispatch, scale handling, table rendering, and the two fastest
experiment modules end-to-end.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult, paper_config
from repro.experiments.registry import EXPERIMENTS, main, run_experiment
from repro.analysis.tables import Table


class TestPaperConfig:
    def test_full_scale_is_the_paper_setting(self):
        cfg = paper_config("full")
        assert cfg.n_users == 40
        assert cfg.n_slots == 10_000
        assert cfg.vbr_segments == 30
        assert cfg.buffer_capacity_s == 60.0

    def test_bench_scale_preserves_contention(self):
        full, bench = paper_config("full"), paper_config("bench")
        assert bench.n_users == full.n_users
        assert bench.capacity_kbps == full.capacity_kbps
        assert bench.n_slots < full.n_slots

    def test_overrides_apply(self):
        assert paper_config("bench", n_users=8).n_users == 8

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_config("galactic")


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(EXPERIMENTS) == {
            "fig02",
            "fig03",
            "fig04",
            "fig05",
            "fig06",
            "fig07",
            "fig08",
            "fig09",
            "fig10",
            "theorem1",
            "churn",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_fig07_runs_end_to_end(self):
        result = run_experiment("fig07", scale="bench")
        assert isinstance(result, ExperimentResult)
        assert result.exp_id == "fig07"
        assert result.data["ema"]["mean_j"] < result.data["default"]["mean_j"]
        rendered = result.render()
        assert "fig07" in rendered and "ema" in rendered
        assert "| scheduler |" in result.to_markdown()

    def test_fig06_runs_end_to_end(self):
        result = run_experiment("fig06", scale="bench")
        assert result.data["ema"]["mean_windowed"] > result.data["default"]["mean_windowed"]


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out and "theorem1" in out

    def test_run_prints_tables(self, capsys):
        assert main(["run", "fig07", "--scale", "bench"]) == 0
        out = capsys.readouterr().out
        assert "ema" in out

    def test_run_markdown(self, capsys):
        assert main(["run", "fig07", "--scale", "bench", "--markdown"]) == 0
        assert "| scheduler |" in capsys.readouterr().out


class TestExperimentResult:
    def test_render_joins_tables(self):
        t1 = Table(["a"])
        t1.add_row([1])
        t2 = Table(["b"])
        t2.add_row([2])
        res = ExperimentResult("figXX", "two tables", [t1, t2])
        out = res.render()
        assert "figXX" in out and "a" in out and "b" in out
