"""Cross-backend equivalence: every kernel backend yields identical runs.

``SimConfig.kernel_backend`` selects which implementation of the hot
kernels the engine dispatches to — vectorised NumPy, the interpreted
loop source ("python"), or the Numba JIT when installed.  The contract
is *bit-identity*: every result grid must match byte-for-byte across
backends for every scheduler and seed, and the instrumentation
metrics must agree on everything except the ``kernels.*`` bookkeeping
keys (backend name, numba version, compile times), which legitimately
differ.  A backend-selected trace must also pass the offline
invariant checkers with zero violations.

Locally this exercises numpy vs python; CI's numba job adds the
compiled backend to the same parametrisation automatically.
"""

import pytest

from repro.baselines import (
    DefaultScheduler,
    EStreamerScheduler,
    OnOffScheduler,
    SalsaScheduler,
    ThrottlingScheduler,
)
from repro.core.ema import EMAScheduler
from repro.core.rtma import RTMAScheduler
from repro.kernels import available_backends
from repro.obs import Instrumentation, JsonlTraceWriter, check_trace, use_instrumentation
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.workload import generate_workload

RESULT_ARRAYS = (
    "allocation_units",
    "delivered_kb",
    "rebuffering_s",
    "energy_trans_mj",
    "energy_tail_mj",
    "buffer_s",
    "need_kb",
    "active",
    "completion_slot",
    "arrival_slot",
)

SCHEDULERS = {
    "rtma": lambda cfg: RTMAScheduler(sig_threshold_dbm=-95.0),
    "ema": lambda cfg: EMAScheduler(cfg.n_users, v_param=0.05, tau_s=cfg.tau_s),
    "default": lambda cfg: DefaultScheduler(),
    "on-off": lambda cfg: OnOffScheduler(),
    "throttling": lambda cfg: ThrottlingScheduler(),
    "estreamer": lambda cfg: EStreamerScheduler(),
    "salsa": lambda cfg: SalsaScheduler(),
}

#: Backends to compare against the numpy reference on this machine.
ALT_BACKENDS = [b for b in available_backends() if b != "numpy"]


def _cfg(seed, **overrides):
    base = dict(
        n_users=10,
        n_slots=250,
        capacity_kbps=6_000.0,
        video_size_range_kb=(20_000.0, 50_000.0),
        buffer_capacity_s=60.0,
        seed=seed,
    )
    base.update(overrides)
    return SimConfig(**base)


def _run(cfg, make_scheduler, backend, workload, instrumentation=None):
    run_cfg = cfg.with_(kernel_backend=backend)
    return Simulation(
        run_cfg,
        make_scheduler(run_cfg),
        workload,
        instrumentation=instrumentation,
    ).run()


def assert_results_bit_identical(a, b, backend):
    for name in RESULT_ARRAYS:
        assert (
            getattr(a, name).tobytes() == getattr(b, name).tobytes()
        ), f"{name} differs between numpy and {backend} backends"


def _strip_kernel_keys(snapshot):
    return {
        family: {k: v for k, v in metrics.items() if not k.startswith("kernels.")}
        for family, metrics in snapshot.items()
    }


class TestBackendBitIdentity:
    @pytest.mark.parametrize("backend", ALT_BACKENDS)
    @pytest.mark.parametrize("sched_name", sorted(SCHEDULERS))
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_all_schedulers_all_seeds(self, backend, sched_name, seed):
        cfg = _cfg(seed)
        wl = generate_workload(cfg)
        r_np = _run(cfg, SCHEDULERS[sched_name], "numpy", wl)
        r_alt = _run(cfg, SCHEDULERS[sched_name], backend, wl)
        assert_results_bit_identical(r_np, r_alt, backend)

    @pytest.mark.parametrize("backend", ALT_BACKENDS)
    @pytest.mark.parametrize("sched_name", ["rtma", "ema"])
    def test_vbr_uncapped(self, backend, sched_name):
        cfg = _cfg(5, n_users=8, n_slots=200, vbr_segments=15,
                   buffer_capacity_s=None)
        wl = generate_workload(cfg)
        r_np = _run(cfg, SCHEDULERS[sched_name], "numpy", wl)
        r_alt = _run(cfg, SCHEDULERS[sched_name], backend, wl)
        assert_results_bit_identical(r_np, r_alt, backend)


class TestBackendMetricsEquivalence:
    @pytest.mark.parametrize("backend", ALT_BACKENDS)
    @pytest.mark.parametrize("sched_name", ["rtma", "ema"])
    def test_metrics_identical_minus_kernel_keys(self, backend, sched_name):
        cfg = _cfg(4, n_users=8, n_slots=200)
        wl = generate_workload(cfg)
        snaps = []
        for name in ("numpy", backend):
            instr = Instrumentation()
            with use_instrumentation(instr):
                _run(cfg, SCHEDULERS[sched_name], name, wl,
                     instrumentation=instr)
            snaps.append(instr.metrics.snapshot())
        # Backend bookkeeping (kernels.backend, kernels.numba_version,
        # compile times, fallback counters) legitimately differs.
        assert _strip_kernel_keys(snaps[0]) == _strip_kernel_keys(snaps[1])


class TestBackendTraceInvariants:
    @pytest.mark.parametrize("backend", ALT_BACKENDS)
    @pytest.mark.parametrize("sched_name", ["rtma", "ema"])
    def test_backend_trace_is_violation_free(self, tmp_path, backend, sched_name):
        cfg = _cfg(4, n_users=8, n_slots=200, kernel_backend=backend)
        path = tmp_path / "trace.jsonl"
        tracer = JsonlTraceWriter(path)
        Simulation(
            cfg,
            SCHEDULERS[sched_name](cfg),
            instrumentation=Instrumentation(tracer=tracer),
        ).run()
        tracer.close()
        ((tl, report),) = check_trace(path)
        assert tl.scheduler == sched_name
        assert report.ok, report.render()
