"""Failure-injection and boundary-condition tests for the full stack."""

import numpy as np
import pytest

from repro import (
    DefaultScheduler,
    EMAScheduler,
    RTMAScheduler,
    SimConfig,
    run_scheduler,
)
from repro.radio.signal import ConstantSignalModel


class TestDegenerateRadio:
    def test_floor_signal_still_runs(self):
        """At -110 dBm the link carries ~8 units/slot; playback limps
        but nothing crashes and accounting stays consistent."""
        cfg = SimConfig(
            n_users=3,
            n_slots=120,
            video_size_range_kb=(5_000.0, 8_000.0),
            signal_model=ConstantSignalModel(-110.0),
            seed=0,
        )
        res = run_scheduler(cfg, DefaultScheduler())
        assert np.isfinite(res.pe_mj)
        assert res.delivered_kb.sum() > 0
        assert (res.rebuffering_s <= cfg.tau_s).all()

    def test_unit_budget_zero_stalls_everything(self):
        """delta larger than a slot's capacity: no units fit, nobody
        is served, every in-session slot stalls, zero energy."""
        cfg = SimConfig(
            n_users=2,
            n_slots=50,
            capacity_kbps=100.0,
            delta_kb=200.0,
            video_size_range_kb=(1_000.0, 2_000.0),
            seed=1,
        )
        res = run_scheduler(cfg, DefaultScheduler())
        assert res.delivered_kb.sum() == 0.0
        assert res.pc_s == pytest.approx(cfg.tau_s)
        assert res.energy_mj.sum() == 0.0  # never promoted, no tail


class TestBoundaryConfigs:
    def test_single_user_tiny_video(self):
        cfg = SimConfig(
            n_users=1,
            n_slots=60,
            video_size_range_kb=(500.0, 500.0),
            seed=2,
        )
        res = run_scheduler(cfg, RTMAScheduler())
        assert res.completion_slot[0] >= 0
        # 500 KB at 300-600 KB/s plays in ~1-2 s: done almost at once.
        assert res.completion_slot[0] < 10

    def test_subsecond_slots(self):
        cfg = SimConfig(
            n_users=2,
            n_slots=200,
            tau_s=0.5,
            video_size_range_kb=(5_000.0, 8_000.0),
            seed=3,
        )
        res = run_scheduler(cfg, DefaultScheduler())
        assert (res.rebuffering_s <= 0.5 + 1e-9).all()
        assert res.summary().completion_rate == 1.0

    def test_ema_on_lte_profile(self):
        cfg = SimConfig(
            n_users=4,
            n_slots=200,
            profile="lte",
            video_size_range_kb=(20_000.0, 40_000.0),
            buffer_capacity_s=60.0,
            seed=4,
        )
        res = run_scheduler(cfg, EMAScheduler(4, v_param=0.1))
        assert np.isfinite(res.pe_mj)
        assert res.summary().completion_rate == 1.0

    def test_tight_buffer_cap_forces_continuous_delivery(self):
        """A 3-second client buffer leaves no batching room: delivery
        must track playback nearly slot-by-slot, and the cap is never
        violated."""
        cfg = SimConfig(
            n_users=2,
            n_slots=150,
            video_size_range_kb=(10_000.0, 12_000.0),
            buffer_capacity_s=3.0,
            seed=5,
        )
        res = run_scheduler(cfg, DefaultScheduler(refill_trigger_s=1.0, refill_high_s=2.5))
        assert res.buffer_s.max() <= 3.0 + 1e-9
        assert res.summary().completion_rate == 1.0

    def test_horizon_shorter_than_videos(self):
        """Sessions that cannot finish within the horizon stay active
        to the end without tripping completion accounting."""
        cfg = SimConfig(
            n_users=2,
            n_slots=30,
            video_size_range_kb=(500_000.0, 500_000.0),
            seed=6,
        )
        res = run_scheduler(cfg, DefaultScheduler())
        assert (res.completion_slot == -1).all()
        assert res.active[-1].all()
