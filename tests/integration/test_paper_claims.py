"""Reduced-scale checks of the paper's headline claims.

These are the figure-level assertions at test scale (the full-scale
reproductions live in benchmarks/ and EXPERIMENTS.md): RTMA's fairness
and rebuffering advantage over the default strategy (Figs. 2-5), EMA's
energy advantage under a rebuffering constraint (Figs. 6-9), and the
Theorem 1 trade-off direction.
"""

import numpy as np
import pytest

from repro import (
    DefaultScheduler,
    EMAScheduler,
    EStreamerScheduler,
    RTMAScheduler,
    SimConfig,
    compare_schedulers,
    generate_workload,
    run_scheduler,
)
from repro.analysis.cdf import tail_fraction
from repro.analysis.stats import relative_reduction


@pytest.fixture(scope="module")
def paper_cfg():
    """A scaled-down version of the paper's Section VI setting that
    preserves the contention ratio (demand ~85% of capacity)."""
    return SimConfig(
        n_users=20,
        n_slots=800,
        capacity_kbps=10_240.0,
        video_size_range_kb=(120_000.0, 240_000.0),
        vbr_segments=30,
        seed=5,
    )


@pytest.fixture(scope="module")
def headline(paper_cfg):
    wl = generate_workload(paper_cfg)
    return compare_schedulers(
        paper_cfg,
        {
            "default": DefaultScheduler(),
            "rtma": RTMAScheduler(),
            "ema": EMAScheduler(paper_cfg.n_users, v_param=0.1),
            "estreamer": EStreamerScheduler(),
        },
        workload=wl,
    )


class TestFig2Fairness:
    def test_rtma_fair_most_slots(self, headline):
        fairness = headline["rtma"].fairness_per_slot()
        assert tail_fraction(fairness, 0.7) > 0.85

    def test_default_unfair_many_slots(self, headline):
        fairness = headline["default"].fairness_per_slot()
        finite = fairness[~np.isnan(fairness)]
        assert (finite < 0.7).mean() > 0.5


class TestFig3Rebuffering:
    def test_rtma_shifts_rebuffering_cdf_left(self, headline):
        rtma_tot = headline["rtma"].per_user_total_rebuffering_s()
        def_tot = headline["default"].per_user_total_rebuffering_s()
        assert rtma_tot.mean() < def_tot.mean()

    def test_default_rebuffering_imbalanced(self, headline):
        """Paper: default splits into near-zero and heavily-stalled
        users (resource competition at the BS): Fig. 3's "57% close to
        zero, >20% above 11 s" bimodality, direction-checked here."""
        tot = headline["default"].per_user_total_rebuffering_s()
        assert (tot < 2.0).mean() >= 0.15  # a cohort of barely-stalled users
        assert (tot > 11.0).mean() >= 0.2  # and a heavily-stalled cohort


class TestFig5RTMAComparison:
    def test_rtma_large_rebuffering_reduction(self, headline):
        red = relative_reduction(
            headline["default"].pc_session_s, headline["rtma"].pc_session_s
        )
        assert red > 0.4  # paper claims >= 0.68 at full scale


class TestFig9EMAComparison:
    def test_ema_beats_default_energy(self, headline):
        red = relative_reduction(
            headline["default"].pe_session_mj, headline["ema"].pe_session_mj
        )
        assert red > 0.3  # paper: >= 48% at full scale

    def test_ema_beats_estreamer_energy(self, headline):
        red = relative_reduction(
            headline["estreamer"].pe_session_mj, headline["ema"].pe_session_mj
        )
        assert red > 0.15  # paper: >= 27% at full scale


class TestTheorem1Direction:
    def test_v_trades_energy_for_rebuffering(self, paper_cfg):
        wl = generate_workload(paper_cfg)
        cfg = paper_cfg.with_(n_slots=500)
        lo = run_scheduler(cfg, EMAScheduler(cfg.n_users, v_param=0.02), wl)
        hi = run_scheduler(cfg, EMAScheduler(cfg.n_users, v_param=1.0), wl)
        assert hi.pe_session_mj < lo.pe_session_mj  # energy falls with V
        assert hi.pc_session_s >= lo.pc_session_s  # rebuffering rises with V
