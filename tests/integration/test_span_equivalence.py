"""Span-profiler observer effect and pooled-merge determinism.

Mirrors ``test_live_equivalence.py`` for the hierarchical span
profiler: every scheduler x seed combination runs twice — bare, and
with a :class:`~repro.obs.spans.SpanRecorder` attached — and every
result grid must match byte-for-byte (the NullSpan fast path plus the
phase tees never touch simulation state).  Companion tests pin the
tree's shape (phases under ``run;slots``, kernels under their static
phases), the phase-total/profiler-total identity (the same floats are
teed to both sinks), and the pooled contract: merging worker span
states in task order reproduces a serial run's interning order and
call counts exactly.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    DefaultScheduler,
    EStreamerScheduler,
    OnOffScheduler,
    SalsaScheduler,
    ThrottlingScheduler,
)
from repro.core.ema import EMAScheduler
from repro.core.rtma import RTMAScheduler
from repro.obs import Instrumentation
from repro.obs.spans import SLOT_PREFIX, SpanRecorder
from repro.sim.config import SimConfig
from repro.sim.engine import SPAN_BLOCK_SLOTS, Simulation
from repro.sim.executor import RunExecutor, RunTask
from repro.sim.workload import generate_workload

RESULT_ARRAYS = (
    "allocation_units",
    "delivered_kb",
    "rebuffering_s",
    "energy_trans_mj",
    "energy_tail_mj",
    "buffer_s",
    "need_kb",
    "active",
    "completion_slot",
    "arrival_slot",
)

SCHEDULERS = {
    "rtma": lambda cfg: RTMAScheduler(sig_threshold_dbm=-95.0),
    "ema": lambda cfg: EMAScheduler(cfg.n_users, v_param=0.05, tau_s=cfg.tau_s),
    "default": lambda cfg: DefaultScheduler(),
    "on-off": lambda cfg: OnOffScheduler(),
    "throttling": lambda cfg: ThrottlingScheduler(),
    "estreamer": lambda cfg: EStreamerScheduler(),
    "salsa": lambda cfg: SalsaScheduler(),
}

PHASES = ("playback", "observe", "schedule", "transmit", "rrc", "feedback")


def _spans_run(cfg, scheduler, wl):
    spans = SpanRecorder()
    instr = Instrumentation(spans=spans)
    result = Simulation(cfg, scheduler, wl, instrumentation=instr).run()
    return result, spans


class TestSpanObserverEffect:
    @pytest.mark.parametrize("sched_name", sorted(SCHEDULERS))
    @pytest.mark.parametrize("seed", [1, 23])
    def test_spans_on_off_bit_identical(self, sched_name, seed):
        cfg = SimConfig(n_users=6, n_slots=200, seed=seed)
        wl = generate_workload(cfg)
        make = SCHEDULERS[sched_name]

        bare = Simulation(cfg, make(cfg), wl).run()
        profiled, spans = _spans_run(cfg, make(cfg), wl)

        for name in RESULT_ARRAYS:
            assert (
                getattr(bare, name).tobytes() == getattr(profiled, name).tobytes()
            ), f"{name} differs with span profiling attached ({sched_name})"
        # And the recorder actually saw the run.
        assert spans.state()["run"][0] == 1


class TestTreeShape:
    def test_canonical_hierarchy(self):
        cfg = SimConfig(n_users=8, n_slots=200, seed=5)
        wl = generate_workload(cfg)
        _, spans = _spans_run(cfg, RTMAScheduler(sig_threshold_dbm=-95.0), wl)
        state = spans.state()

        assert state["run"][0] == 1
        # 200 slots in 64-slot blocks -> ceil(200/64) = 4 block spans.
        expected_blocks = -(-cfg.n_slots // SPAN_BLOCK_SLOTS)
        assert state[";".join(SLOT_PREFIX)][0] == expected_blocks
        for phase in PHASES:
            path = ";".join(SLOT_PREFIX + (phase,))
            assert state[path][0] == cfg.n_slots, path

    def test_kernel_spans_nest_under_their_phases(self):
        cfg = SimConfig(n_users=8, n_slots=200, seed=5)
        wl = generate_workload(cfg)
        _, spans = _spans_run(cfg, RTMAScheduler(sig_threshold_dbm=-95.0), wl)
        kernel_paths = [p for p in spans.state() if ";kernel:" in p]
        assert kernel_paths, "no kernel spans recorded"
        for path in kernel_paths:
            parts = path.split(";")
            # run;slots;<phase>;kernel:<name>[<backend>]
            assert parts[:2] == list(SLOT_PREFIX)
            assert parts[2] in PHASES
            assert "[" in parts[3] and parts[3].endswith("]")
        # RTMA's scheduling kernel lands under the schedule phase.
        assert any(
            p.startswith(";".join(SLOT_PREFIX) + ";schedule;kernel:rtma_rounds[")
            for p in kernel_paths
        )

    def test_phase_totals_match_profiler_exactly(self):
        """The same dt floats are teed to the PhaseProfiler and the
        span tree, so phase totals agree bit-for-bit — well inside the
        5% acceptance bound."""
        cfg = SimConfig(n_users=8, n_slots=200, seed=5)
        spans = SpanRecorder()
        instr = Instrumentation(spans=spans)
        Simulation(cfg, EMAScheduler(8, v_param=0.05), instrumentation=instr).run()
        profiler_totals = {
            phase: agg["total_s"] for phase, agg in instr.profiler.summary().items()
        }
        state = spans.state()
        for phase in PHASES:
            span_total = state[";".join(SLOT_PREFIX + (phase,))][1]
            assert span_total == profiler_totals[phase], phase


class TestPooledMergeDeterminism:
    def _tasks(self):
        tasks = []
        for seed in (1, 2, 3, 4):
            cfg = SimConfig(n_users=5, n_slots=120, seed=seed)
            tasks.append(RunTask(cfg, DefaultScheduler(), generate_workload(cfg)))
        return tasks

    def _run(self, jobs):
        spans = SpanRecorder()
        instr = Instrumentation(spans=spans)
        results = RunExecutor(jobs=jobs).map_runs(self._tasks(), instr)
        return results, spans

    def test_pooled_tree_matches_serial(self):
        serial_results, serial_spans = self._run(jobs=1)
        pooled_results, pooled_spans = self._run(jobs=2)

        for ser, par in zip(serial_results, pooled_results):
            for name in RESULT_ARRAYS:
                assert (
                    getattr(ser, name).tobytes() == getattr(par, name).tobytes()
                )

        ser_state, par_state = serial_spans.state(), pooled_spans.state()
        # Identical structure in identical (task) order...
        assert list(ser_state) == list(par_state)
        # ...and identical call counts.  Totals are wall-clock and
        # cannot match; structure + counts are the contract.
        assert {p: v[0] for p, v in ser_state.items()} == {
            p: v[0] for p, v in par_state.items()
        }
        assert ser_state["run"][0] == 4

    def test_pooled_merge_is_task_ordered_not_completion_ordered(self):
        """Reversing per-task durations cannot change the merged
        interning order: a long task 0 still interns first."""
        tasks = []
        for seed, slots in ((1, 400), (2, 40)):
            cfg = SimConfig(n_users=5, n_slots=slots, seed=seed)
            tasks.append(RunTask(cfg, DefaultScheduler(), generate_workload(cfg)))
        spans = SpanRecorder()
        instr = Instrumentation(spans=spans)
        RunExecutor(jobs=2).map_runs(tasks, instr)

        reference = SpanRecorder()
        ref_instr = Instrumentation(spans=reference)
        RunExecutor(jobs=1).map_runs(tasks, ref_instr)
        assert list(spans.state()) == list(reference.state())
