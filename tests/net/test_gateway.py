"""Tests for the gateway framework components (Fig. 1)."""

import numpy as np
import pytest

from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError, SimulationError
from repro.media.player import StreamingClient
from repro.media.video import ConstantBitrateProfile, VideoSession
from repro.net.basestation import BaseStation
from repro.net.flows import VideoFlow
from repro.net.gateway import DataReceiver, DataTransmitter, Gateway, InformationCollector
from repro.net.slicing import ResourceSlicer
from repro.radio.power import EnviPowerModel
from repro.radio.throughput import LinearThroughputModel

from tests.conftest import make_obs


def make_world(n=3, size_kb=5000.0, rate=400.0):
    flows = [
        VideoFlow(i, VideoSession(size_kb, ConstantBitrateProfile(rate)))
        for i in range(n)
    ]
    clients = [StreamingClient(f.video, 1.0) for f in flows]
    return flows, clients


class TestDataReceiver:
    def test_refill_respects_remaining(self):
        r = DataReceiver(2)
        r.refill(np.array([1000.0, 0.0]))
        np.testing.assert_allclose(r.queued_kb, [1000.0, 0.0])

    def test_fetch_ahead_limit(self):
        r = DataReceiver(1, fetch_ahead_kb=300.0)
        r.refill(np.array([10_000.0]))
        assert r.queued_kb[0] == 300.0
        # Drain, then refill tops back up.
        r.drain(np.array([200.0]))
        r.refill(np.array([9800.0]))
        assert r.queued_kb[0] == 300.0

    def test_drain_bounded_by_queue(self):
        r = DataReceiver(1)
        r.refill(np.array([100.0]))
        taken = r.drain(np.array([500.0]))
        assert taken[0] == 100.0
        assert r.queued_kb[0] == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DataReceiver(0)
        r = DataReceiver(2)
        with pytest.raises(ConfigurationError):
            r.drain(np.array([-1.0, 0.0]))
        with pytest.raises(ConfigurationError):
            r.refill(np.zeros(3))


class TestInformationCollector:
    def test_collect_builds_consistent_observation(self):
        flows, clients = make_world(n=3)
        bs = BaseStation(capacity=4096.0, delta_kb=40.0)
        collector = InformationCollector()
        obs = collector.collect(
            slot=0,
            sig_row=np.array([-60.0, -80.0, -100.0]),
            flows=flows,
            clients=clients,
            bs=bs,
            slicer=ResourceSlicer(),
            throughput_model=LinearThroughputModel(),
            power_model=EnviPowerModel(),
            idle_tail_cost_mj=np.zeros(3),
        )
        assert obs.n_users == 3
        assert obs.unit_budget == 102  # floor(4096/40)
        # Stronger signal, larger link cap.
        assert obs.link_units[0] > obs.link_units[1] > obs.link_units[2]
        assert obs.active.all()
        np.testing.assert_allclose(obs.rate_kbps, 400.0)

    def test_collect_rejects_mismatched_arrays(self):
        flows, clients = make_world(n=2)
        with pytest.raises(SimulationError):
            InformationCollector().collect(
                0,
                np.array([-80.0]),
                flows,
                clients,
                BaseStation(),
                ResourceSlicer(),
                LinearThroughputModel(),
                EnviPowerModel(),
                np.zeros(2),
            )


class TestDataTransmitter:
    def test_transmit_caps_at_remaining_video(self):
        flows, clients = make_world(n=1, size_kb=100.0)
        obs = make_obs(n_users=1, remaining_kb=[100.0])
        receiver = DataReceiver(1)
        receiver.refill(np.array([100.0]))
        tx = DataTransmitter()
        accepted = tx.transmit(np.array([3]), obs, receiver, clients)
        assert accepted[0] == 100.0  # 3 units = 120 KB wanted, 100 left

    def test_transmit_limited_by_receiver_queue(self):
        flows, clients = make_world(n=1)
        obs = make_obs(n_users=1)
        receiver = DataReceiver(1)
        receiver.refill(np.array([60.0]))  # less than one 40 KB unit * 2
        accepted = DataTransmitter().transmit(np.array([2]), obs, receiver, clients)
        assert accepted[0] == 60.0

    def test_rejects_negative_allocation(self):
        flows, clients = make_world(n=1)
        obs = make_obs(n_users=1)
        with pytest.raises(SimulationError):
            DataTransmitter().transmit(np.array([-1]), obs, DataReceiver(1), clients)


class _NeedScheduler(Scheduler):
    name = "test-need"

    def allocate(self, obs):
        need = np.ceil(obs.tau_s * obs.rate_kbps / obs.delta_kb).astype(np.int64)
        return np.where(obs.active, np.minimum(need, obs.link_units), 0)


class TestGateway:
    def test_step_delivers_to_clients(self):
        flows, clients = make_world(n=2)
        gw = Gateway(_NeedScheduler(), BaseStation(), n_users=2)
        obs, phi, delivered = gw.step(
            0,
            np.array([-70.0, -75.0]),
            flows,
            clients,
            LinearThroughputModel(),
            EnviPowerModel(),
            np.zeros(2),
        )
        assert phi.shape == (2,)
        assert (delivered > 0).all()
        assert clients[0].delivered_kb == delivered[0]

    def test_inactive_users_get_nothing(self):
        flows, clients = make_world(n=2, size_kb=50.0)
        clients[1].deliver(50.0, 0)  # user 1 fully delivered
        gw = Gateway(_NeedScheduler(), BaseStation(), n_users=2)
        obs, phi, delivered = gw.step(
            1,
            np.array([-70.0, -75.0]),
            flows,
            clients,
            LinearThroughputModel(),
            EnviPowerModel(),
            np.zeros(2),
        )
        assert not obs.active[1]
        assert phi[1] == 0 and delivered[1] == 0.0
