"""Tests for base-station capacity and discretisation (Eq. 2)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.basestation import BaseStation, ConstantCapacity, TimeVaryingCapacity


class TestCapacityModels:
    def test_constant(self):
        c = ConstantCapacity(20480.0)
        assert c.capacity_kbps(0) == 20480.0
        assert c.capacity_kbps(9999) == 20480.0

    def test_constant_validation(self):
        with pytest.raises(ConfigurationError):
            ConstantCapacity(0.0)

    def test_time_varying_replay_and_wrap(self):
        c = TimeVaryingCapacity([100.0, 200.0, 300.0])
        assert c.capacity_kbps(1) == 200.0
        assert c.capacity_kbps(4) == 200.0  # wrapped

    def test_time_varying_validation(self):
        with pytest.raises(ConfigurationError):
            TimeVaryingCapacity([])
        with pytest.raises(ConfigurationError):
            TimeVaryingCapacity([100.0, -5.0])
        with pytest.raises(ConfigurationError):
            TimeVaryingCapacity([100.0]).capacity_kbps(-1)


class TestBaseStation:
    def test_paper_unit_budget(self):
        # 20 MB/s, delta = 40 KB, tau = 1 s -> 512 units.
        bs = BaseStation()
        assert bs.unit_budget(0) == 512

    def test_budget_floors(self):
        bs = BaseStation(capacity=100.0, delta_kb=30.0, tau_s=1.0)
        assert bs.unit_budget(0) == 3  # floor(100/30)

    def test_accepts_plain_number(self):
        bs = BaseStation(capacity=1234.0)
        assert bs.capacity_kbps(0) == 1234.0

    def test_units_to_kb(self):
        bs = BaseStation(delta_kb=40.0)
        np.testing.assert_allclose(bs.units_to_kb([0, 2, 5]), [0.0, 80.0, 200.0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BaseStation(delta_kb=0.0)
        with pytest.raises(ConfigurationError):
            BaseStation(tau_s=-1.0)
