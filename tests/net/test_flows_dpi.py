"""Tests for video flows and the DPI inspector."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.media.video import ConstantBitrateProfile, VideoSession
from repro.net.dpi import DPIInspector
from repro.net.flows import VideoFlow


def make_flow(uid=0, rate=400.0, arrival=0):
    return VideoFlow(
        user_id=uid,
        video=VideoSession(10_000.0, ConstantBitrateProfile(rate)),
        arrival_slot=arrival,
    )


class TestFlows:
    def test_active_at(self):
        f = make_flow(arrival=5)
        assert not f.active_at(4)
        assert f.active_at(5)
        assert f.active_at(100)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_flow(uid=-1)
        with pytest.raises(ConfigurationError):
            make_flow(arrival=-1)
        with pytest.raises(ConfigurationError):
            VideoFlow(
                user_id=0,
                video=VideoSession(1.0, ConstantBitrateProfile(1.0)),
                protocol="quic",
            )


class TestDPI:
    def test_exact_when_error_zero(self):
        dpi = DPIInspector()
        f = make_flow(rate=450.0)
        assert dpi.required_rate_kbps(f, 0) == 450.0

    def test_error_bounded_and_stable_per_flow(self):
        dpi = DPIInspector(rate_error_frac=0.2, rng=0)
        f = make_flow(rate=500.0)
        r1 = dpi.required_rate_kbps(f, 0)
        r2 = dpi.required_rate_kbps(f, 99)
        assert r1 == r2  # same flow, same factor
        assert 400.0 <= r1 <= 600.0

    def test_vector_matches_scalar(self):
        dpi = DPIInspector(rate_error_frac=0.1, rng=1)
        flows = [make_flow(uid=i, rate=300.0 + 50 * i) for i in range(4)]
        vec = dpi.required_rates_kbps(flows, 3)
        scalars = [dpi.required_rate_kbps(f, 3) for f in flows]
        np.testing.assert_allclose(vec, scalars)

    def test_classify(self):
        assert DPIInspector().classify(make_flow()) == "http"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DPIInspector(rate_error_frac=1.0)
