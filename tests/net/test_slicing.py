"""Tests for resource slicing and background traffic."""

import pytest

from repro.errors import ConfigurationError
from repro.net.slicing import (
    ConstantBackground,
    PoissonBackground,
    ResourceSlicer,
)


class TestBackground:
    def test_constant(self):
        bg = ConstantBackground(500.0)
        assert bg.load_kbps(0) == 500.0
        assert bg.load_kbps(123) == 500.0

    def test_constant_validation(self):
        with pytest.raises(ConfigurationError):
            ConstantBackground(-1.0)

    def test_poisson_deterministic_per_seed(self):
        a = PoissonBackground(3.0, 100.0, 50, rng=5)
        b = PoissonBackground(3.0, 100.0, 50, rng=5)
        assert [a.load_kbps(i) for i in range(50)] == [
            b.load_kbps(i) for i in range(50)
        ]

    def test_poisson_scale(self):
        bg = PoissonBackground(4.0, 100.0, 10_000, rng=0)
        mean = sum(bg.load_kbps(i) for i in range(10_000)) / 10_000
        assert mean == pytest.approx(400.0, rel=0.1)

    def test_poisson_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonBackground(-1.0, 100.0, 10)
        with pytest.raises(ConfigurationError):
            PoissonBackground(1.0, 100.0, 10).load_kbps(-1)


class TestSlicer:
    def test_no_background_full_capacity(self):
        s = ResourceSlicer()
        assert s.video_capacity_kbps(20480.0, 0) == 20480.0

    def test_background_subtracts(self):
        s = ResourceSlicer(ConstantBackground(5000.0))
        assert s.video_capacity_kbps(20480.0, 0) == pytest.approx(15480.0)

    def test_guaranteed_floor(self):
        s = ResourceSlicer(ConstantBackground(25_000.0), min_video_share=0.25)
        assert s.video_capacity_kbps(20_000.0, 0) == pytest.approx(5000.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResourceSlicer(min_video_share=0.0)
        with pytest.raises(ConfigurationError):
            ResourceSlicer().video_capacity_kbps(0.0, 0)
