"""Tests for the five reimplemented baseline schedulers."""

import numpy as np
import pytest

from repro.baselines.default import DefaultScheduler, NeedRateScheduler
from repro.baselines.estreamer import EStreamerScheduler
from repro.baselines.onoff import OnOffScheduler
from repro.baselines.salsa import SalsaScheduler
from repro.baselines.throttling import ThrottlingScheduler
from repro.core.allocation import check_constraints
from repro.errors import ConfigurationError

from tests.conftest import make_obs

ALL_BASELINES = [
    DefaultScheduler,
    NeedRateScheduler,
    ThrottlingScheduler,
    OnOffScheduler,
    SalsaScheduler,
    EStreamerScheduler,
]


@pytest.mark.parametrize("cls", ALL_BASELINES)
class TestCommonContract:
    def test_constraints_on_random_observations(self, cls, rng):
        sched = cls()
        for slot in range(40):
            n = int(rng.integers(1, 8))
            sched.reset()
            obs = make_obs(
                n_users=n,
                slot=slot,
                unit_budget=int(rng.integers(0, 60)),
                link_units=rng.integers(0, 25, n),
                rate_kbps=rng.uniform(300, 600, n),
                sig_dbm=rng.uniform(-110, -50, n),
                active=rng.random(n) < 0.8,
                buffer_s=rng.uniform(0, 80, n),
                remaining_kb=rng.uniform(0, 5000, n),
            )
            phi = sched.allocate(obs)
            check_constraints(phi, obs)

    def test_inactive_users_get_zero(self, cls, rng):
        sched = cls()
        obs = make_obs(n_users=3, active=[False, True, False])
        phi = sched.allocate(obs)
        assert phi[0] == 0 and phi[2] == 0


class TestDefault:
    def test_default_takes_full_link(self):
        obs = make_obs(n_users=2, unit_budget=100, link_units=[30, 30])
        phi = DefaultScheduler().allocate(obs)
        np.testing.assert_array_equal(phi, [30, 30])

    def test_head_of_line_starvation_under_scarcity(self):
        obs = make_obs(n_users=3, unit_budget=25, link_units=[20, 20, 20])
        phi = DefaultScheduler().allocate(obs)
        np.testing.assert_array_equal(phi, [20, 5, 0])

    def test_default_respects_receiver_window(self):
        obs = make_obs(
            n_users=1, unit_budget=100, link_units=[50], receivable_kb=[100.0]
        )
        phi = DefaultScheduler().allocate(obs)
        assert phi[0] == 3  # ceil(100/40)

    def test_need_rate_serves_exactly_need(self):
        obs = make_obs(n_users=2, unit_budget=30, link_units=[20, 20])
        phi = NeedRateScheduler().allocate(obs)
        need = 12  # ceil(450/40)
        np.testing.assert_array_equal(phi, [need, need])


class TestThrottling:
    def test_rate_factor_applied(self):
        obs = make_obs(n_users=1, unit_budget=100, rate_kbps=[400.0])
        phi = ThrottlingScheduler(factor=1.25).allocate(obs)
        assert phi[0] == int(np.ceil(1.25 * 400.0 / 40.0))  # 13 units

    def test_transmits_every_slot(self):
        sched = ThrottlingScheduler()
        obs = make_obs(n_users=1, unit_budget=100, buffer_s=[500.0])
        assert sched.allocate(obs)[0] > 0  # no OFF state, ever

    def test_factor_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            ThrottlingScheduler(factor=1.0)


class TestOnOff:
    def test_starts_on_with_empty_buffer(self):
        sched = OnOffScheduler()
        obs = make_obs(n_users=1, buffer_s=[0.0], unit_budget=100)
        assert sched.allocate(obs)[0] > 0

    def test_turns_off_above_high_threshold(self):
        sched = OnOffScheduler(low_threshold_s=10.0, high_threshold_s=40.0)
        obs = make_obs(n_users=1, buffer_s=[45.0], unit_budget=100)
        assert sched.allocate(obs)[0] == 0

    def test_hysteresis_band_keeps_state(self):
        sched = OnOffScheduler(low_threshold_s=10.0, high_threshold_s=40.0)
        # Start ON (empty), then buffer at 20 s (inside band): stays ON.
        sched.allocate(make_obs(n_users=1, buffer_s=[0.0], unit_budget=100))
        assert sched.allocate(make_obs(n_users=1, buffer_s=[20.0], unit_budget=100))[0] > 0
        # Cross high threshold: OFF; back inside band: stays OFF.
        sched.allocate(make_obs(n_users=1, buffer_s=[41.0], unit_budget=100))
        assert sched.allocate(make_obs(n_users=1, buffer_s=[20.0], unit_budget=100))[0] == 0
        # Below low threshold: ON again.
        assert sched.allocate(make_obs(n_users=1, buffer_s=[9.0], unit_budget=100))[0] > 0

    def test_reset_clears_state(self):
        sched = OnOffScheduler()
        sched.allocate(make_obs(n_users=1, buffer_s=[50.0]))
        sched.reset()
        assert sched._on is None

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            OnOffScheduler(low_threshold_s=0.0)
        with pytest.raises(ConfigurationError):
            OnOffScheduler(low_threshold_s=10.0, high_threshold_s=5.0)


class TestSalsa:
    def test_defers_until_backlog_exceeds_price(self):
        sched = SalsaScheduler(v_salsa=8.0)
        obs = make_obs(n_users=1, rate_kbps=[400.0], p_mj_per_kb=[0.198])
        # Price at reference signal = 8 s; backlog grows 1 s/slot.
        sends = []
        for slot in range(12):
            phi = sched.allocate(obs)
            sends.append(int(phi[0]))
            sched.notify(obs, phi, phi * 40.0)
        assert sum(sends[:8]) == 0  # deferred while backlog <= price
        assert any(s > 0 for s in sends[8:])

    def test_bad_signal_defers_longer(self):
        cheap = SalsaScheduler(v_salsa=2.0)
        exp = SalsaScheduler(v_salsa=2.0)
        obs_good = make_obs(n_users=1, p_mj_per_kb=[0.198])
        obs_bad = make_obs(n_users=1, p_mj_per_kb=[2.0])
        fired_good = fired_bad = None
        for slot in range(40):
            if fired_good is None and cheap.allocate(obs_good)[0] > 0:
                fired_good = slot
            if fired_bad is None and exp.allocate(obs_bad)[0] > 0:
                fired_bad = slot
            cheap.notify(obs_good, np.zeros(1, np.int64), np.zeros(1))
            exp.notify(obs_bad, np.zeros(1, np.int64), np.zeros(1))
        assert fired_good is not None and fired_bad is not None
        assert fired_good < fired_bad

    def test_queue_drains_on_delivery(self):
        sched = SalsaScheduler()
        obs = make_obs(n_users=1)
        sched.allocate(obs)
        q_before = sched._queue_kb[0]
        sched.notify(obs, np.array([2]), np.array([80.0]))
        assert sched._queue_kb[0] == pytest.approx(max(q_before - 80.0, 0.0))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SalsaScheduler(v_salsa=0.0)
        with pytest.raises(ConfigurationError):
            SalsaScheduler(p_ref_mj_per_kb=0.0)


class TestEStreamer:
    def test_burst_fills_toward_capacity(self):
        sched = EStreamerScheduler(buffer_capacity_s=60.0, refill_trigger_s=8.0)
        obs = make_obs(n_users=1, buffer_s=[0.0], unit_budget=1000, link_units=[1000])
        phi = sched.allocate(obs)
        # Wants the full 60 s deficit: 60 * 450 / 40 = 675 units.
        assert phi[0] == int(np.ceil(60.0 * 450.0 / 40.0))

    def test_burst_ends_near_capacity(self):
        sched = EStreamerScheduler(buffer_capacity_s=60.0, refill_trigger_s=8.0)
        obs = make_obs(n_users=1, buffer_s=[59.5], unit_budget=1000)
        assert sched.allocate(obs)[0] == 0  # within tau of the cap

    def test_idle_between_bursts(self):
        sched = EStreamerScheduler(buffer_capacity_s=60.0, refill_trigger_s=8.0)
        sched.allocate(make_obs(n_users=1, buffer_s=[59.5], unit_budget=1000))
        # Buffer drains but stays above the trigger: still idle.
        assert sched.allocate(make_obs(n_users=1, buffer_s=[30.0], unit_budget=1000))[0] == 0
        # Below the trigger: burst again.
        assert sched.allocate(make_obs(n_users=1, buffer_s=[7.0], unit_budget=1000))[0] > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EStreamerScheduler(refill_trigger_s=0.0)
        with pytest.raises(ConfigurationError):
            EStreamerScheduler(buffer_capacity_s=5.0, refill_trigger_s=8.0)
