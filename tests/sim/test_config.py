"""Tests for SimConfig."""

import pytest

from repro.errors import ConfigurationError
from repro.radio.profiles import get_profile
from repro.radio.signal import ConstantSignalModel, SinusoidSignalModel
from repro.sim.config import SimConfig


class TestDefaults:
    def test_paper_defaults(self):
        cfg = SimConfig()
        assert cfg.n_users == 40
        assert cfg.n_slots == 10_000
        assert cfg.tau_s == 1.0
        assert cfg.capacity_kbps == pytest.approx(20.0 * 1024.0)
        assert cfg.video_size_range_kb == (256_000.0, 512_000.0)
        assert cfg.rate_range_kbps == (300.0, 600.0)

    def test_unit_budget(self):
        assert SimConfig().unit_budget_per_slot == 512

    def test_radio_resolution(self):
        assert SimConfig().radio.name == "umts-3g"
        assert SimConfig(profile="lte").radio.name == "lte"
        assert SimConfig(profile=get_profile("lte")).radio.name == "lte"

    def test_signal_model_default_sinusoid(self):
        assert isinstance(SimConfig().make_signal_model(), SinusoidSignalModel)
        custom = ConstantSignalModel(-70.0)
        assert SimConfig(signal_model=custom).make_signal_model() is custom


class TestWith:
    def test_with_creates_modified_copy(self):
        base = SimConfig()
        mod = base.with_(n_users=20)
        assert mod.n_users == 20
        assert base.n_users == 40
        assert mod.capacity_kbps == base.capacity_kbps

    def test_with_validates(self):
        with pytest.raises(ConfigurationError):
            SimConfig().with_(n_users=0)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_users": 0},
            {"n_slots": -1},
            {"tau_s": 0.0},
            {"delta_kb": 0.0},
            {"capacity_kbps": -5.0},
            {"video_size_range_kb": (0.0, 100.0)},
            {"video_size_range_kb": (200.0, 100.0)},
            {"rate_range_kbps": (600.0, 300.0)},
            {"vbr_segments": -1},
            {"mean_video_size_kb": 0.0},
            {"buffer_capacity_s": -2.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimConfig(**kwargs)

    def test_unknown_profile_fails_at_use(self):
        cfg = SimConfig(profile="nonexistent")
        with pytest.raises(ConfigurationError):
            _ = cfg.radio
