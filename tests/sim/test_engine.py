"""Tests for the simulation engine: conservation, accounting, strictness."""

import numpy as np
import pytest

from repro.baselines.default import DefaultScheduler
from repro.core.rtma import RTMAScheduler
from repro.core.scheduler import Scheduler
from repro.errors import ConstraintViolationError, SimulationError
from repro.media.video import ConstantBitrateProfile, VideoSession
from repro.net.flows import VideoFlow
from repro.radio.signal import ConstantSignalModel
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.workload import Workload, generate_workload


class _CheatingScheduler(Scheduler):
    """Violates the BS budget on purpose."""

    name = "cheater"

    def allocate(self, obs):
        return np.full(obs.n_users, obs.unit_budget, dtype=np.int64)


class _IdleScheduler(Scheduler):
    name = "idle"

    def allocate(self, obs):
        return self._zeros(obs)


class TestConservation:
    def test_delivered_never_exceeds_video_size(self, small_config):
        res = Simulation(small_config, DefaultScheduler()).run()
        wl = generate_workload(small_config)
        totals = res.delivered_kb.sum(axis=0)
        sizes = np.array([f.video.size_kb for f in wl.flows])
        assert (totals <= sizes + 1e-6).all()

    def test_delivered_never_exceeds_capacity(self, small_config):
        res = Simulation(small_config, DefaultScheduler()).run()
        per_slot = res.delivered_kb.sum(axis=1)
        assert (per_slot <= small_config.capacity_kbps * small_config.tau_s + 1e-6).all()

    def test_allocation_respects_constraints_every_slot(self, small_config):
        res = Simulation(small_config, RTMAScheduler()).run()
        budget = small_config.unit_budget_per_slot
        assert (res.allocation_units.sum(axis=1) <= budget).all()

    def test_energy_nonnegative_and_exclusive(self, small_config):
        res = Simulation(small_config, DefaultScheduler()).run()
        assert (res.energy_trans_mj >= 0).all()
        assert (res.energy_tail_mj >= 0).all()
        # Eq. (5): a slot has transmission energy XOR tail energy.
        both = (res.energy_trans_mj > 0) & (res.energy_tail_mj > 0)
        assert not both.any()

    def test_rebuffering_bounded_by_tau(self, small_config):
        res = Simulation(small_config, DefaultScheduler()).run()
        assert (res.rebuffering_s <= small_config.tau_s + 1e-9).all()
        assert (res.rebuffering_s >= 0).all()


class TestAccounting:
    def test_idle_scheduler_full_stall_no_transmission_energy(self, small_config):
        res = Simulation(small_config, _IdleScheduler()).run()
        assert res.energy_trans_mj.sum() == 0.0
        assert res.energy_tail_mj.sum() == 0.0  # never promoted: no tail
        # Every in-session slot stalls.
        assert res.pc_s == pytest.approx(small_config.tau_s)
        assert (res.completion_slot == -1).all()

    def test_transmission_energy_matches_eq3(self):
        # Constant signal -> P is a known constant; check E = P * bytes.
        cfg = SimConfig(
            n_users=2,
            n_slots=50,
            video_size_range_kb=(5000.0, 5000.0),
            signal_model=ConstantSignalModel(-80.0),
            seed=0,
        )
        res = Simulation(cfg, DefaultScheduler()).run()
        p = float(cfg.radio.power.p(-80.0))
        np.testing.assert_allclose(
            res.energy_trans_mj, res.delivered_kb * p, rtol=1e-9
        )

    def test_tail_energy_saturates_after_completion(self, small_config):
        res = Simulation(small_config, DefaultScheduler()).run()
        # Total tail per user is bounded by max_tail * (#idle episodes);
        # at the very least, the terminal tail can't exceed one full tail
        # after the last transmission.
        last_tx = np.array(
            [
                np.flatnonzero(res.delivered_kb[:, i] > 0).max()
                for i in range(small_config.n_users)
            ]
        )
        max_tail = small_config.radio.rrc.max_tail_mj
        for i in range(small_config.n_users):
            post = res.energy_tail_mj[last_tx[i] + 1 :, i].sum()
            assert post <= max_tail + 1e-6

    def test_completion_recorded_once(self, small_config):
        res = Simulation(small_config, DefaultScheduler()).run()
        assert (res.completion_slot >= 0).all()
        # After completion: no rebuffering.
        for i in range(small_config.n_users):
            assert res.rebuffering_s[res.completion_slot[i] + 1 :, i].sum() == 0.0


class TestStrictness:
    def test_cheating_scheduler_raises(self, small_config):
        with pytest.raises(ConstraintViolationError):
            Simulation(small_config, _CheatingScheduler()).run()

    def test_workload_user_mismatch_raises(self, small_config):
        wl = generate_workload(small_config.with_(n_users=3))
        with pytest.raises(SimulationError):
            Simulation(small_config, DefaultScheduler(), wl)

    def test_workload_too_short_raises(self, small_config):
        wl = generate_workload(small_config.with_(n_slots=50))
        with pytest.raises(SimulationError):
            Simulation(small_config, DefaultScheduler(), wl)


class TestArrivals:
    def test_late_arrival_no_early_rebuffering(self):
        video = VideoSession(2000.0, ConstantBitrateProfile(400.0))
        flows = [
            VideoFlow(0, VideoSession(2000.0, ConstantBitrateProfile(400.0))),
            VideoFlow(1, video, arrival_slot=20),
        ]
        sig = ConstantSignalModel(-70.0).generate(100, 2, rng=0)
        wl = Workload(flows=flows, signal_dbm=sig)
        cfg = SimConfig(n_users=2, n_slots=100, seed=0)
        res = Simulation(cfg, DefaultScheduler(), wl).run()
        assert res.rebuffering_s[:20, 1].sum() == 0.0
        assert not res.active[:20, 1].any()
        assert res.active[20, 1]

    def test_shared_workload_identical_across_schedulers(self, small_config):
        wl = generate_workload(small_config)
        r1 = Simulation(small_config, DefaultScheduler(), wl).run()
        r2 = Simulation(small_config, DefaultScheduler(), wl).run()
        np.testing.assert_array_equal(r1.delivered_kb, r2.delivered_kb)
