"""Tests for PE/PC/fairness metrics (Eqs. 6, 9; Section VI-A)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.metrics import (
    average_energy_mj,
    average_rebuffering_s,
    empirical_cdf,
    jain_fairness,
    per_slot_fairness,
)


class TestAverages:
    def test_eq6_mean(self):
        e = np.array([[1.0, 3.0], [5.0, 7.0]])
        assert average_energy_mj(e) == pytest.approx(4.0)

    def test_eq9_mean(self):
        c = np.array([[0.0, 1.0], [0.5, 0.5]])
        assert average_rebuffering_s(c) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            average_energy_mj(np.array([1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            average_energy_mj(np.array([[-1.0]]))
        with pytest.raises(ConfigurationError):
            average_rebuffering_s(np.array([[-0.1]]))


class TestJain:
    def test_equal_shares_give_one(self):
        assert jain_fairness(np.array([2.0, 2.0, 2.0])) == pytest.approx(1.0)

    def test_one_taker_gives_1_over_n(self):
        assert jain_fairness(np.array([5.0, 0.0, 0.0, 0.0])) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_fairness(np.zeros(4)) == 1.0

    def test_bounds(self, rng):
        for _ in range(100):
            x = rng.uniform(0, 10, int(rng.integers(1, 20)))
            j = jain_fairness(x)
            assert 1.0 / x.size - 1e-12 <= j <= 1.0 + 1e-12

    def test_scale_invariance(self, rng):
        x = rng.uniform(0, 5, 8)
        assert jain_fairness(x) == pytest.approx(jain_fairness(x * 7.3))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            jain_fairness(np.array([-1.0, 1.0]))
        with pytest.raises(ConfigurationError):
            jain_fairness(np.array([]))


class TestPerSlotFairness:
    def test_equal_satisfaction_is_fair(self):
        d = np.array([[100.0, 200.0]])
        need = np.array([[100.0, 200.0]])
        act = np.ones((1, 2), dtype=bool)
        assert per_slot_fairness(d, need, act)[0] == pytest.approx(1.0)

    def test_starvation_detected(self):
        d = np.array([[400.0, 0.0]])
        need = np.array([[400.0, 400.0]])
        act = np.ones((1, 2), dtype=bool)
        assert per_slot_fairness(d, need, act)[0] == pytest.approx(0.5)

    def test_lone_user_is_nan_by_default(self):
        d = np.array([[100.0, 0.0]])
        need = np.array([[100.0, 100.0]])
        act = np.array([[True, False]])
        assert np.isnan(per_slot_fairness(d, need, act)[0])

    def test_min_active_one_includes_lone_users(self):
        d = np.array([[100.0, 0.0]])
        need = np.array([[100.0, 100.0]])
        act = np.array([[True, False]])
        assert per_slot_fairness(d, need, act, min_active=1)[0] == pytest.approx(1.0)

    def test_zero_delivery_slot_counts_fair(self):
        d = np.zeros((1, 3))
        need = np.full((1, 3), 400.0)
        act = np.ones((1, 3), dtype=bool)
        assert per_slot_fairness(d, need, act)[0] == pytest.approx(1.0)

    def test_inactive_users_excluded(self):
        # User 2 inactive and unserved: must not drag fairness down.
        d = np.array([[400.0, 400.0, 0.0]])
        need = np.full((1, 3), 400.0)
        act = np.array([[True, True, False]])
        assert per_slot_fairness(d, need, act)[0] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            per_slot_fairness(np.zeros((2, 2)), np.zeros((2, 3)), np.ones((2, 2), bool))
        with pytest.raises(ConfigurationError):
            per_slot_fairness(
                np.zeros((1, 2)), np.zeros((1, 2)), np.ones((1, 2), bool), min_active=0
            )


class TestCDF:
    def test_sorted_and_probabilities(self):
        x, p = empirical_cdf(np.array([3.0, 1.0, 2.0, 2.0]))
        np.testing.assert_allclose(x, [1.0, 2.0, 2.0, 3.0])
        np.testing.assert_allclose(p, [0.25, 0.5, 0.75, 1.0])

    def test_nans_dropped(self):
        x, p = empirical_cdf(np.array([1.0, np.nan, 2.0]))
        assert x.size == 2

    def test_all_nan_raises(self):
        with pytest.raises(ConfigurationError):
            empirical_cdf(np.array([np.nan, np.nan]))
