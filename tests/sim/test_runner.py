"""Tests for the run orchestration helpers."""

import numpy as np
import pytest

from repro.baselines.default import DefaultScheduler
from repro.core.ema import EMAScheduler
from repro.core.rtma import RTMAScheduler
from repro.errors import ConfigurationError
from repro.sim.runner import (
    calibrate_ema_v,
    calibrate_rtma_threshold,
    compare_schedulers,
    default_reference,
    make_rtma_eq12,
    make_rtma_for_alpha,
    multi_seed,
    run_scheduler,
    sweep,
)
from repro.sim.workload import generate_workload


class TestBasics:
    def test_run_scheduler(self, small_config):
        res = run_scheduler(small_config, DefaultScheduler())
        assert res.scheduler_name == "default"

    def test_compare_shares_workload(self, small_config):
        results = compare_schedulers(
            small_config,
            {"a": DefaultScheduler(), "b": RTMAScheduler()},
        )
        assert set(results) == {"a", "b"}
        # Identical workload: the same total video bytes get delivered.
        assert results["a"].delivered_kb.sum() == pytest.approx(
            results["b"].delivered_kb.sum(), rel=1e-6
        )

    def test_compare_empty_rejected(self, small_config):
        with pytest.raises(ConfigurationError):
            compare_schedulers(small_config, {})

    def test_sweep_varies_axis(self, small_config):
        results = sweep(
            small_config, "n_users", [2, 4], lambda cfg: DefaultScheduler()
        )
        assert [r.config.n_users for r in results] == [2, 4]

    def test_multi_seed(self, small_config):
        results = multi_seed(small_config, lambda cfg: DefaultScheduler(), [1, 2, 3])
        assert len(results) == 3
        seeds = {r.config.seed for r in results}
        assert seeds == {1, 2, 3}
        # Different seeds produce different outcomes.
        assert len({round(r.pc_s, 9) for r in results}) > 1

    def test_default_reference(self, small_config):
        ref = default_reference(small_config)
        assert ref.scheduler_name == "default"


class TestCalibration:
    def test_rtma_alpha_loose_budget_unconstrained(self, small_config):
        # Uncontended small config: RTMA(-inf) under default energy with
        # a generous alpha -> no threshold needed.
        thr = calibrate_rtma_threshold(small_config, alpha=5.0)
        assert thr == float("-inf")

    def test_rtma_alpha_tight_budget_restricts(self, contended_config):
        thr_tight = calibrate_rtma_threshold(
            contended_config, alpha=0.5, calibration_slots=200
        )
        thr_loose = calibrate_rtma_threshold(
            contended_config, alpha=5.0, calibration_slots=200
        )
        assert thr_tight > -110.0
        assert thr_loose == float("-inf")

    def test_make_rtma_for_alpha_returns_scheduler(self, small_config):
        sched = make_rtma_for_alpha(small_config, alpha=1.0)
        assert isinstance(sched, RTMAScheduler)

    def test_make_rtma_eq12_in_band(self, small_config):
        sched = make_rtma_eq12(small_config, 1000.0)
        assert -110.0 < sched.sig_threshold_dbm < -50.0

    def test_alpha_validation(self, small_config):
        with pytest.raises(ConfigurationError):
            calibrate_rtma_threshold(small_config, alpha=0.0)

    def test_calibrate_ema_v_loose_bound_saves_at_least_as_much(self, small_config):
        # A loose bound's feasible V set contains the tight bound's, so
        # the min-energy pick can only improve (identical workload and
        # grid make this exact, not statistical).
        cal_cfg = small_config.with_(n_slots=150)
        wl = generate_workload(cal_cfg)
        v_loose = calibrate_ema_v(
            small_config, 0.5, workload=wl, iterations=5, calibration_slots=150
        )
        v_tight = calibrate_ema_v(
            small_config, 0.005, workload=wl, iterations=5, calibration_slots=150
        )
        pe_loose = run_scheduler(
            cal_cfg, EMAScheduler(cal_cfg.n_users, v_param=v_loose), wl
        ).pe_mj
        pe_tight = run_scheduler(
            cal_cfg, EMAScheduler(cal_cfg.n_users, v_param=v_tight), wl
        ).pe_mj
        assert pe_loose <= pe_tight + 1e-9

    def test_calibrate_ema_v_respects_bound(self, small_config):
        bound = 0.05
        v = calibrate_ema_v(small_config, bound, iterations=6, calibration_slots=200)
        cfg = small_config.with_(n_slots=200)
        res = run_scheduler(cfg, EMAScheduler(cfg.n_users, v_param=v))
        assert res.pc_s <= bound * 1.25  # bisection tolerance

    def test_ema_v_validation(self, small_config):
        with pytest.raises(ConfigurationError):
            calibrate_ema_v(small_config, 0.0)
        with pytest.raises(ConfigurationError):
            calibrate_ema_v(small_config, 1.0, v_lo=5.0, v_hi=1.0)


class TestCalibrationWorkloadGuards:
    def test_calibrate_ema_v_regenerates_short_workload(self, small_config):
        # Regression: a workload shorter than the calibration horizon
        # used to propagate into the inner runs and crash the engine;
        # now it is regenerated to the calibration length, matching the
        # guard in calibrate_rtma_threshold.
        short_wl = generate_workload(small_config.with_(n_slots=30))
        v = calibrate_ema_v(
            small_config,
            0.5,
            workload=short_wl,
            iterations=3,
            calibration_slots=60,
        )
        assert v > 0

    def test_calibrate_ema_v_keeps_long_workload(self, small_config):
        # A workload covering the calibration horizon is used as-is:
        # identical workload => identical calibrated V.
        wl = generate_workload(small_config.with_(n_slots=80))
        v_a = calibrate_ema_v(
            small_config, 0.5, workload=wl, iterations=3, calibration_slots=80
        )
        v_b = calibrate_ema_v(
            small_config, 0.5, workload=wl, iterations=3, calibration_slots=80
        )
        assert v_a == v_b


class TestRunnerInstrumentation:
    def test_run_scheduler_explicit_instrumentation(self, small_config):
        from repro.obs import Instrumentation

        instr = Instrumentation()
        run_scheduler(small_config, DefaultScheduler(), instrumentation=instr)
        counters = instr.metrics.snapshot()["counters"]
        assert counters["engine.slots"] == small_config.n_slots

    def test_ambient_instrumentation_reaches_calibration_runs(self, small_config):
        from repro.obs import Instrumentation, use_instrumentation

        instr = Instrumentation()
        with use_instrumentation(instr):
            calibrate_ema_v(small_config, 0.5, iterations=5, calibration_slots=60)
        counters = instr.metrics.snapshot()["counters"]
        # One evaluation per grid point (the calibrator floors the grid
        # at 4 points, so ask for 5 to exercise the requested count).
        assert counters["calibration.grid_evaluations"] == 5
        hist = instr.metrics.histogram("calibration.ema.pc_s").summary()
        assert hist["count"] == 5
