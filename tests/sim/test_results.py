"""Tests for result containers and derived metrics."""

import numpy as np
import pytest

from repro.baselines.default import DefaultScheduler
from repro.errors import ConfigurationError
from repro.sim.engine import Simulation
from repro.sim.results import SimulationResult


@pytest.fixture(scope="module")
def result():
    from repro.sim.config import SimConfig

    cfg = SimConfig(
        n_users=6, n_slots=200, video_size_range_kb=(30_000.0, 60_000.0), seed=42
    )
    return Simulation(cfg, DefaultScheduler()).run()


class TestDerived:
    def test_pe_is_mean_of_energy(self, result):
        assert result.pe_mj == pytest.approx(result.energy_mj.mean())

    def test_pc_is_mean_of_rebuffering(self, result):
        assert result.pc_s == pytest.approx(result.rebuffering_s.mean())

    def test_energy_is_trans_plus_tail(self, result):
        np.testing.assert_allclose(
            result.energy_mj, result.energy_trans_mj + result.energy_tail_mj
        )

    def test_session_metrics_scale_up(self, result):
        # Sessions end before the horizon, so session averages must be
        # at least the horizon averages.
        assert result.pe_session_mj >= result.pe_mj
        assert result.pc_session_s >= result.pc_s

    def test_session_mask_shape_and_sanity(self, result):
        mask = result.session_mask()
        assert mask.shape == result.energy_mj.shape
        assert mask[0].all()  # everyone's session includes slot 0
        done = result.completion_slot
        for i in range(done.size):
            if done[i] >= 0 and done[i] + 1 < mask.shape[0]:
                assert not mask[done[i] + 1, i]

    def test_power_per_slot(self, result):
        np.testing.assert_allclose(
            result.power_per_slot_mj(), result.energy_mj.sum(axis=1)
        )

    def test_per_user_totals(self, result):
        np.testing.assert_allclose(
            result.per_user_total_rebuffering_s(), result.rebuffering_s.sum(axis=0)
        )
        np.testing.assert_allclose(
            result.per_user_total_energy_mj(), result.energy_mj.sum(axis=0)
        )

    def test_cdf_methods_return_valid_cdfs(self, result):
        for x, p in (
            result.fairness_cdf(),
            result.rebuffering_cdf(),
            result.slot_rebuffering_cdf(),
        ):
            assert x.shape == p.shape
            assert (np.diff(x) >= 0).all()
            assert p[-1] == pytest.approx(1.0)


class TestSummary:
    def test_summary_fields(self, result):
        s = result.summary()
        assert s.scheduler == "default"
        assert s.pe_mj == pytest.approx(result.pe_mj)
        assert s.pc_s == pytest.approx(result.pc_s)
        assert s.pe_mj == pytest.approx(s.pe_tail_mj + s.pe_trans_mj)
        assert 0.0 <= s.completion_rate <= 1.0
        assert 0.0 <= s.frac_slots_fair <= 1.0

    def test_as_dict_roundtrip(self, result):
        d = result.summary().as_dict()
        assert d["scheduler"] == "default"
        assert set(d) >= {"pe_mj", "pc_s", "mean_fairness", "pe_session_mj"}


class TestValidation:
    def test_shape_mismatch_rejected(self, result):
        with pytest.raises(ConfigurationError):
            SimulationResult(
                scheduler_name="x",
                config=result.config,
                allocation_units=result.allocation_units,
                delivered_kb=result.delivered_kb[:-1],
                rebuffering_s=result.rebuffering_s,
                energy_trans_mj=result.energy_trans_mj,
                energy_tail_mj=result.energy_tail_mj,
                buffer_s=result.buffer_s,
                need_kb=result.need_kb,
                active=result.active,
                completion_slot=result.completion_slot,
                arrival_slot=result.arrival_slot,
            )
