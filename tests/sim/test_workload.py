"""Tests for workload generation."""

import numpy as np
import pytest

from repro.media.video import ConstantBitrateProfile, PiecewiseBitrateProfile
from repro.sim.config import SimConfig
from repro.sim.workload import generate_workload


class TestGeneration:
    def test_shapes_and_counts(self):
        cfg = SimConfig(n_users=7, n_slots=120, seed=1)
        wl = generate_workload(cfg)
        assert wl.n_users == 7
        assert wl.n_slots == 120
        assert wl.signal_dbm.shape == (120, 7)
        assert [f.user_id for f in wl.flows] == list(range(7))

    def test_sizes_within_range(self):
        cfg = SimConfig(n_users=50, n_slots=10, seed=2)
        wl = generate_workload(cfg)
        for f in wl.flows:
            assert 256_000.0 <= f.video.size_kb <= 512_000.0

    def test_rates_within_range(self):
        cfg = SimConfig(n_users=50, n_slots=10, seed=3)
        wl = generate_workload(cfg)
        for f in wl.flows:
            r = f.video.profile.mean_rate_kbps()
            assert 300.0 <= r <= 600.0

    def test_seed_determinism(self):
        cfg = SimConfig(n_users=5, n_slots=50, seed=11)
        a, b = generate_workload(cfg), generate_workload(cfg)
        np.testing.assert_array_equal(a.signal_dbm, b.signal_dbm)
        assert [f.video.size_kb for f in a.flows] == [
            f.video.size_kb for f in b.flows
        ]

    def test_different_seeds_differ(self):
        base = SimConfig(n_users=5, n_slots=50)
        a = generate_workload(base.with_(seed=1))
        b = generate_workload(base.with_(seed=2))
        assert not np.allclose(a.signal_dbm, b.signal_dbm)

    def test_mean_size_override_hits_target(self):
        cfg = SimConfig(n_users=30, n_slots=10, mean_video_size_kb=350_000.0, seed=4)
        wl = generate_workload(cfg)
        sizes = [f.video.size_kb for f in wl.flows]
        assert np.mean(sizes) == pytest.approx(350_000.0)

    def test_cbr_by_default_vbr_on_request(self):
        cbr = generate_workload(SimConfig(n_users=3, n_slots=10, seed=5))
        assert all(
            isinstance(f.video.profile, ConstantBitrateProfile) for f in cbr.flows
        )
        vbr = generate_workload(
            SimConfig(n_users=3, n_slots=10, seed=5, vbr_segments=20)
        )
        assert all(
            isinstance(f.video.profile, PiecewiseBitrateProfile) for f in vbr.flows
        )

    def test_workload_helpers(self):
        wl = generate_workload(SimConfig(n_users=4, n_slots=10, seed=6))
        assert wl.total_video_kb() == pytest.approx(
            sum(f.video.size_kb for f in wl.flows)
        )
        assert 300.0 <= wl.mean_rate_kbps() <= 600.0
