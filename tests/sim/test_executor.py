"""The run executor: serial/pool equivalence and ambient wiring.

The contract under test is the one the docs promise: ``jobs=N`` is
bit-identical to ``jobs=1`` in results *and* in the merged metrics
registry, for explicit-workload batches (compare/sweep shape) and
generate-in-worker batches (multi-seed shape) alike.
"""

import numpy as np
import pytest

from repro.baselines import DefaultScheduler
from repro.core.rtma import RTMAScheduler
from repro.errors import ConfigurationError
from repro.faults import CapacityFault, FaultPlan, WorkerFault, use_fault_plan
from repro.obs import Instrumentation, use_instrumentation
from repro.sim import (
    RunExecutor,
    RunTask,
    SimConfig,
    compare_schedulers,
    current_executor,
    map_runs,
    multi_seed,
    sweep,
    use_executor,
)
from repro.sim.workload import generate_workload

RESULT_ARRAYS = (
    "allocation_units",
    "delivered_kb",
    "rebuffering_s",
    "energy_trans_mj",
    "energy_tail_mj",
    "buffer_s",
    "need_kb",
    "active",
    "completion_slot",
    "arrival_slot",
)


def small_config(seed=11):
    return SimConfig(n_users=5, n_slots=80, capacity_kbps=4_000.0, seed=seed)


def make_tasks(cfg, thresholds, workload):
    return [
        RunTask(cfg, RTMAScheduler(sig_threshold_dbm=t), workload)
        for t in thresholds
    ]


def assert_results_bit_identical(a, b):
    for name in RESULT_ARRAYS:
        assert getattr(a, name).tobytes() == getattr(b, name).tobytes(), name


class TestSerialPoolEquivalence:
    THRESHOLDS = [-110.0, -100.0, -95.0, -90.0]

    def test_results_bit_identical(self):
        cfg = small_config()
        wl = generate_workload(cfg)
        serial = RunExecutor(jobs=1).map_runs(make_tasks(cfg, self.THRESHOLDS, wl))
        pooled = RunExecutor(jobs=2).map_runs(make_tasks(cfg, self.THRESHOLDS, wl))
        assert len(serial) == len(pooled) == len(self.THRESHOLDS)
        for a, b in zip(serial, pooled):
            assert_results_bit_identical(a, b)

    def test_metrics_bit_identical(self):
        cfg = small_config()
        wl = generate_workload(cfg)
        states = []
        for jobs in (1, 2):
            instr = Instrumentation()
            RunExecutor(jobs=jobs).map_runs(
                make_tasks(cfg, self.THRESHOLDS, wl), instrumentation=instr
            )
            states.append(instr.metrics.state())
        assert states[0]["counters"] == states[1]["counters"]
        assert states[0]["histograms"] == states[1]["histograms"]
        assert states[0]["info"] == states[1]["info"]
        assert set(states[0]["gauges"]) == set(states[1]["gauges"])
        for name, value in states[0]["gauges"].items():
            other = states[1]["gauges"][name]
            if isinstance(value, np.ndarray):
                assert value.tobytes() == other.tobytes(), name
            else:
                assert value == other, name

    def test_generated_workloads_match(self):
        # No explicit workload: workers regenerate from the seeded
        # config (multi-seed shape) and must agree with in-process runs.
        tasks = [
            RunTask(small_config(seed=s), DefaultScheduler()) for s in (1, 2, 3)
        ]
        serial = RunExecutor(jobs=1).map_runs(tasks)
        pooled = RunExecutor(jobs=3).map_runs(tasks)
        for a, b in zip(serial, pooled):
            assert_results_bit_identical(a, b)

    def test_profiler_samples_merge(self):
        cfg = small_config()
        wl = generate_workload(cfg)
        instr = Instrumentation()
        RunExecutor(jobs=2).map_runs(
            make_tasks(cfg, self.THRESHOLDS, wl), instrumentation=instr
        )
        summary = instr.profiler.summary()
        assert summary, "worker profiler samples should merge into the parent"
        assert summary["playback"]["count"] == len(self.THRESHOLDS) * cfg.n_slots


class TestExecutorAPI:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RunExecutor(jobs=0)

    def test_empty_batch(self):
        assert RunExecutor(jobs=2).map_runs([]) == []

    def test_ambient_executor(self):
        assert current_executor() is None
        ex = RunExecutor(jobs=1)
        with use_executor(ex):
            assert current_executor() is ex
        assert current_executor() is None

    def test_map_runs_defaults_to_serial(self):
        cfg = small_config()
        wl = generate_workload(cfg)
        (res,) = map_runs([RunTask(cfg, DefaultScheduler(), wl)])
        assert res.pe_mj > 0


class TestExecutorResilience:
    """Per-task submit/collect: timeout, bounded retry, pool-break
    partial recovery.  Faults are injected with WorkerFault; every
    batch must still return results bit-identical to a serial run,
    because the parent serial fallback never injects."""

    def _tasks(self, n=4):
        return [
            RunTask(small_config(seed=s), DefaultScheduler()) for s in range(n)
        ]

    def _serial(self, n=4):
        return RunExecutor(jobs=1).map_runs(self._tasks(n))

    @staticmethod
    def _executor_counters(instr):
        return {
            name: instr.metrics.counter(name).value
            for name in instr.metrics.names()
            if name.startswith("executor.")
        }

    def test_raise_fault_retries_in_pool(self):
        instr = Instrumentation()
        pooled = RunExecutor(
            jobs=2, worker_faults=(WorkerFault("raise", task_index=1),)
        ).map_runs(self._tasks(), instrumentation=instr)
        for a, b in zip(self._serial(), pooled):
            assert_results_bit_identical(a, b)
        counters = self._executor_counters(instr)
        assert counters == {"executor.task_retries": 1}

    def test_crash_fault_partial_recovery(self):
        instr = Instrumentation()
        pooled = RunExecutor(
            jobs=2, worker_faults=(WorkerFault("crash", task_index=2),)
        ).map_runs(self._tasks(), instrumentation=instr)
        for a, b in zip(self._serial(), pooled):
            assert_results_bit_identical(a, b)
        counters = self._executor_counters(instr)
        assert counters["executor.pool_breaks"] == 1
        assert counters["executor.serial_fallbacks"] >= 1

    def test_delay_fault_trips_task_timeout(self):
        instr = Instrumentation()
        # delay >> timeout, but short enough that the pool's shutdown
        # (which waits for the still-sleeping worker) stays quick.
        pooled = RunExecutor(
            jobs=2,
            task_timeout_s=1.5,
            worker_faults=(WorkerFault("delay", task_index=0, delay_s=6.0),),
        ).map_runs(self._tasks(), instrumentation=instr)
        for a, b in zip(self._serial(), pooled):
            assert_results_bit_identical(a, b)
        counters = self._executor_counters(instr)
        assert counters["executor.task_timeouts"] == 1
        assert counters["executor.serial_fallbacks"] == 1

    def test_exhausted_retries_fall_back_serial(self):
        instr = Instrumentation()
        pooled = RunExecutor(
            jobs=2,
            task_retries=1,
            worker_faults=(WorkerFault("raise", task_index=1, times=5),),
        ).map_runs(self._tasks(), instrumentation=instr)
        for a, b in zip(self._serial(), pooled):
            assert_results_bit_identical(a, b)
        counters = self._executor_counters(instr)
        assert counters["executor.task_retries"] == 1
        assert counters["executor.serial_fallbacks"] == 1

    def test_crash_with_batch_groups(self):
        instr = Instrumentation()
        pooled = RunExecutor(
            jobs=2,
            batch_size=2,
            worker_faults=(WorkerFault("crash", task_index=0),),
        ).map_runs(self._tasks(), instrumentation=instr)
        for a, b in zip(self._serial(), pooled):
            assert_results_bit_identical(a, b)
        assert self._executor_counters(instr)["executor.pool_breaks"] == 1

    def test_healthy_run_creates_no_failure_counters(self):
        instr = Instrumentation()
        RunExecutor(jobs=2).map_runs(self._tasks(), instrumentation=instr)
        assert self._executor_counters(instr) == {}

    def test_engine_metrics_survive_fallback(self):
        # The serial fallback merges a private bundle in task order, so
        # engine counters still equal a serial run's despite the crash.
        serial_instr = Instrumentation()
        RunExecutor(jobs=1).map_runs(
            self._tasks(), instrumentation=serial_instr
        )
        crash_instr = Instrumentation()
        RunExecutor(
            jobs=2, worker_faults=(WorkerFault("crash", task_index=2),)
        ).map_runs(self._tasks(), instrumentation=crash_instr)
        serial_counters = serial_instr.metrics.state()["counters"]
        crash_counters = {
            k: v
            for k, v in crash_instr.metrics.state()["counters"].items()
            if not k.startswith("executor.")
        }
        assert crash_counters == serial_counters

    def test_ambient_fault_plan_crosses_pool(self):
        plan = FaultPlan(capacity=(CapacityFault(start_slot=20, n_slots=10),))
        with use_fault_plan(plan):
            serial = RunExecutor(jobs=1).map_runs(self._tasks())
            pooled = RunExecutor(jobs=2).map_runs(self._tasks())
        for a, b in zip(serial, pooled):
            assert_results_bit_identical(a, b)
        healthy = self._serial()
        assert (
            serial[0].delivered_kb.tobytes() != healthy[0].delivered_kb.tobytes()
        )

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            RunExecutor(task_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            RunExecutor(task_retries=-1)
        with pytest.raises(ConfigurationError):
            RunExecutor(worker_faults=("crash",))


class TestRunnerOnExecutor:
    """The runner helpers route through map_runs and honour the
    ambient executor; parallel output equals serial output."""

    def _schedulers(self):
        return {
            "default": DefaultScheduler(),
            "rtma": RTMAScheduler(sig_threshold_dbm=-95.0),
        }

    def test_compare_schedulers_parallel(self):
        cfg = small_config()
        wl = generate_workload(cfg)
        serial = compare_schedulers(cfg, self._schedulers(), wl)
        with use_executor(RunExecutor(jobs=2)):
            pooled = compare_schedulers(cfg, self._schedulers(), wl)
        assert list(serial) == list(pooled)
        for name in serial:
            assert_results_bit_identical(serial[name], pooled[name])

    def test_sweep_parallel(self):
        cfg = small_config()
        values = [3, 5, 7]
        factory = lambda c: DefaultScheduler()  # noqa: E731
        serial = sweep(cfg, "n_users", values, factory)
        with use_executor(RunExecutor(jobs=2)):
            pooled = sweep(cfg, "n_users", values, factory)
        for a, b in zip(serial, pooled):
            assert_results_bit_identical(a, b)

    def test_multi_seed_parallel(self):
        cfg = small_config()
        factory = lambda c: DefaultScheduler()  # noqa: E731
        serial = multi_seed(cfg, factory, [4, 5, 6])
        with use_executor(RunExecutor(jobs=2)):
            pooled = multi_seed(cfg, factory, [4, 5, 6])
        for a, b in zip(serial, pooled):
            assert_results_bit_identical(a, b)

    def test_explicit_instrumentation_observes_runs(self):
        # Regression: compare/sweep/multi_seed used to forward the
        # *unresolved* instrumentation argument to the engine, so an
        # explicitly passed bundle never saw the runs' counters.
        cfg = small_config()
        wl = generate_workload(cfg)
        instr = Instrumentation()
        compare_schedulers(cfg, self._schedulers(), wl, instrumentation=instr)
        assert instr.metrics.counter("engine.slots").value == 2 * cfg.n_slots

    def test_explicit_wins_over_ambient(self):
        cfg = small_config()
        wl = generate_workload(cfg)
        explicit = Instrumentation()
        ambient = Instrumentation()
        with use_instrumentation(ambient):
            compare_schedulers(
                cfg, self._schedulers(), wl, instrumentation=explicit
            )
        assert explicit.metrics.counter("engine.slots").value == 2 * cfg.n_slots
        assert "engine.slots" not in ambient.metrics
