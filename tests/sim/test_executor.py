"""The run executor: serial/pool equivalence and ambient wiring.

The contract under test is the one the docs promise: ``jobs=N`` is
bit-identical to ``jobs=1`` in results *and* in the merged metrics
registry, for explicit-workload batches (compare/sweep shape) and
generate-in-worker batches (multi-seed shape) alike.
"""

import numpy as np
import pytest

from repro.baselines import DefaultScheduler
from repro.core.rtma import RTMAScheduler
from repro.errors import ConfigurationError
from repro.obs import Instrumentation, use_instrumentation
from repro.sim import (
    RunExecutor,
    RunTask,
    SimConfig,
    compare_schedulers,
    current_executor,
    map_runs,
    multi_seed,
    sweep,
    use_executor,
)
from repro.sim.workload import generate_workload

RESULT_ARRAYS = (
    "allocation_units",
    "delivered_kb",
    "rebuffering_s",
    "energy_trans_mj",
    "energy_tail_mj",
    "buffer_s",
    "need_kb",
    "active",
    "completion_slot",
    "arrival_slot",
)


def small_config(seed=11):
    return SimConfig(n_users=5, n_slots=80, capacity_kbps=4_000.0, seed=seed)


def make_tasks(cfg, thresholds, workload):
    return [
        RunTask(cfg, RTMAScheduler(sig_threshold_dbm=t), workload)
        for t in thresholds
    ]


def assert_results_bit_identical(a, b):
    for name in RESULT_ARRAYS:
        assert getattr(a, name).tobytes() == getattr(b, name).tobytes(), name


class TestSerialPoolEquivalence:
    THRESHOLDS = [-110.0, -100.0, -95.0, -90.0]

    def test_results_bit_identical(self):
        cfg = small_config()
        wl = generate_workload(cfg)
        serial = RunExecutor(jobs=1).map_runs(make_tasks(cfg, self.THRESHOLDS, wl))
        pooled = RunExecutor(jobs=2).map_runs(make_tasks(cfg, self.THRESHOLDS, wl))
        assert len(serial) == len(pooled) == len(self.THRESHOLDS)
        for a, b in zip(serial, pooled):
            assert_results_bit_identical(a, b)

    def test_metrics_bit_identical(self):
        cfg = small_config()
        wl = generate_workload(cfg)
        states = []
        for jobs in (1, 2):
            instr = Instrumentation()
            RunExecutor(jobs=jobs).map_runs(
                make_tasks(cfg, self.THRESHOLDS, wl), instrumentation=instr
            )
            states.append(instr.metrics.state())
        assert states[0]["counters"] == states[1]["counters"]
        assert states[0]["histograms"] == states[1]["histograms"]
        assert states[0]["info"] == states[1]["info"]
        assert set(states[0]["gauges"]) == set(states[1]["gauges"])
        for name, value in states[0]["gauges"].items():
            other = states[1]["gauges"][name]
            if isinstance(value, np.ndarray):
                assert value.tobytes() == other.tobytes(), name
            else:
                assert value == other, name

    def test_generated_workloads_match(self):
        # No explicit workload: workers regenerate from the seeded
        # config (multi-seed shape) and must agree with in-process runs.
        tasks = [
            RunTask(small_config(seed=s), DefaultScheduler()) for s in (1, 2, 3)
        ]
        serial = RunExecutor(jobs=1).map_runs(tasks)
        pooled = RunExecutor(jobs=3).map_runs(tasks)
        for a, b in zip(serial, pooled):
            assert_results_bit_identical(a, b)

    def test_profiler_samples_merge(self):
        cfg = small_config()
        wl = generate_workload(cfg)
        instr = Instrumentation()
        RunExecutor(jobs=2).map_runs(
            make_tasks(cfg, self.THRESHOLDS, wl), instrumentation=instr
        )
        summary = instr.profiler.summary()
        assert summary, "worker profiler samples should merge into the parent"
        assert summary["playback"]["count"] == len(self.THRESHOLDS) * cfg.n_slots


class TestExecutorAPI:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RunExecutor(jobs=0)

    def test_empty_batch(self):
        assert RunExecutor(jobs=2).map_runs([]) == []

    def test_ambient_executor(self):
        assert current_executor() is None
        ex = RunExecutor(jobs=1)
        with use_executor(ex):
            assert current_executor() is ex
        assert current_executor() is None

    def test_map_runs_defaults_to_serial(self):
        cfg = small_config()
        wl = generate_workload(cfg)
        (res,) = map_runs([RunTask(cfg, DefaultScheduler(), wl)])
        assert res.pe_mj > 0


class TestRunnerOnExecutor:
    """The runner helpers route through map_runs and honour the
    ambient executor; parallel output equals serial output."""

    def _schedulers(self):
        return {
            "default": DefaultScheduler(),
            "rtma": RTMAScheduler(sig_threshold_dbm=-95.0),
        }

    def test_compare_schedulers_parallel(self):
        cfg = small_config()
        wl = generate_workload(cfg)
        serial = compare_schedulers(cfg, self._schedulers(), wl)
        with use_executor(RunExecutor(jobs=2)):
            pooled = compare_schedulers(cfg, self._schedulers(), wl)
        assert list(serial) == list(pooled)
        for name in serial:
            assert_results_bit_identical(serial[name], pooled[name])

    def test_sweep_parallel(self):
        cfg = small_config()
        values = [3, 5, 7]
        factory = lambda c: DefaultScheduler()  # noqa: E731
        serial = sweep(cfg, "n_users", values, factory)
        with use_executor(RunExecutor(jobs=2)):
            pooled = sweep(cfg, "n_users", values, factory)
        for a, b in zip(serial, pooled):
            assert_results_bit_identical(a, b)

    def test_multi_seed_parallel(self):
        cfg = small_config()
        factory = lambda c: DefaultScheduler()  # noqa: E731
        serial = multi_seed(cfg, factory, [4, 5, 6])
        with use_executor(RunExecutor(jobs=2)):
            pooled = multi_seed(cfg, factory, [4, 5, 6])
        for a, b in zip(serial, pooled):
            assert_results_bit_identical(a, b)

    def test_explicit_instrumentation_observes_runs(self):
        # Regression: compare/sweep/multi_seed used to forward the
        # *unresolved* instrumentation argument to the engine, so an
        # explicitly passed bundle never saw the runs' counters.
        cfg = small_config()
        wl = generate_workload(cfg)
        instr = Instrumentation()
        compare_schedulers(cfg, self._schedulers(), wl, instrumentation=instr)
        assert instr.metrics.counter("engine.slots").value == 2 * cfg.n_slots

    def test_explicit_wins_over_ambient(self):
        cfg = small_config()
        wl = generate_workload(cfg)
        explicit = Instrumentation()
        ambient = Instrumentation()
        with use_instrumentation(ambient):
            compare_schedulers(
                cfg, self._schedulers(), wl, instrumentation=explicit
            )
        assert explicit.metrics.counter("engine.slots").value == 2 * cfg.n_slots
        assert "engine.slots" not in ambient.metrics
