"""The fault-injection plane: plan construction, engine threading,
and the no-fault bit-identity contract.

The load-bearing promise is the last one: ``faults=None`` (and an
empty plan) must leave every scheduler's results byte-for-byte
identical to the seed path — the fault hooks compile to no-ops when
nothing is injected.
"""

import numpy as np
import pytest

from repro import constants
from repro.baselines import DefaultScheduler, NeedRateScheduler
from repro.baselines.estreamer import EStreamerScheduler
from repro.baselines.onoff import OnOffScheduler
from repro.baselines.salsa import SalsaScheduler
from repro.baselines.throttling import ThrottlingScheduler
from repro.core.ema import EMAScheduler
from repro.core.rtma import RTMAScheduler
from repro.errors import ConfigurationError
from repro.faults import (
    CapacityFault,
    FaultPlan,
    FlowStall,
    SignalBlackout,
    WorkerFault,
    current_fault_plan,
    use_fault_plan,
)
from repro.net.basestation import ConstantCapacity, FaultyCapacity
from repro.sim import SimConfig, Simulation
from repro.sim.workload import generate_workload

RESULT_ARRAYS = (
    "allocation_units",
    "delivered_kb",
    "rebuffering_s",
    "energy_trans_mj",
    "energy_tail_mj",
    "buffer_s",
    "need_kb",
    "active",
    "completion_slot",
    "arrival_slot",
)

ALL_SCHEDULERS = (
    ("default", lambda: DefaultScheduler()),
    ("need-rate", lambda: NeedRateScheduler()),
    ("rtma", lambda: RTMAScheduler()),
    ("ema", lambda: EMAScheduler(5, v_param=0.1)),
    ("estreamer", lambda: EStreamerScheduler()),
    ("onoff", lambda: OnOffScheduler()),
    ("salsa", lambda: SalsaScheduler()),
    ("throttling", lambda: ThrottlingScheduler()),
)


def small_config(**overrides):
    base = dict(
        n_users=5,
        n_slots=100,
        capacity_kbps=4_000.0,
        video_size_range_kb=(20_000, 30_000),
        seed=9,
    )
    base.update(overrides)
    return SimConfig(**base)


def assert_results_bit_identical(a, b):
    for name in RESULT_ARRAYS:
        assert getattr(a, name).tobytes() == getattr(b, name).tobytes(), name


class TestWindowValidation:
    def test_negative_window_rejected(self):
        with pytest.raises(ConfigurationError):
            SignalBlackout(start_slot=-1, n_slots=5)
        with pytest.raises(ConfigurationError):
            CapacityFault(start_slot=0, n_slots=0)

    def test_capacity_factor_range(self):
        with pytest.raises(ConfigurationError):
            CapacityFault(start_slot=0, n_slots=5, factor=1.0)
        with pytest.raises(ConfigurationError):
            CapacityFault(start_slot=0, n_slots=5, factor=-0.1)

    def test_stall_needs_users(self):
        with pytest.raises(ConfigurationError):
            FlowStall(start_slot=0, n_slots=5, users=())

    def test_worker_fault_kinds(self):
        with pytest.raises(ConfigurationError):
            WorkerFault("explode", task_index=0)
        with pytest.raises(ConfigurationError):
            WorkerFault("crash", task_index=-1)
        with pytest.raises(ConfigurationError):
            WorkerFault("crash", task_index=0, times=0)

    def test_config_rejects_out_of_range_users(self):
        plan = FaultPlan(stalls=(FlowStall(start_slot=0, n_slots=5, users=(7,)),))
        with pytest.raises(ConfigurationError):
            small_config(faults=plan)

    def test_config_rejects_non_plan(self):
        with pytest.raises(ConfigurationError):
            small_config(faults={"signal": []})


class TestPlanConstruction:
    def test_spec_round_trip(self):
        plan = FaultPlan(
            signal=(SignalBlackout(start_slot=10, n_slots=5, users=(0, 2)),),
            capacity=(CapacityFault(start_slot=20, n_slots=5, factor=0.25),),
            stalls=(FlowStall(start_slot=30, n_slots=5, users=(1,)),),
        )
        assert FaultPlan.from_spec(plan.spec()) == plan

    def test_from_spec_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec({"blackouts": []})

    def test_random_is_deterministic(self):
        a = FaultPlan.random(7, n_slots=200, n_users=10)
        b = FaultPlan.random(7, n_slots=200, n_users=10)
        c = FaultPlan.random(8, n_slots=200, n_users=10)
        assert a == b
        assert a != c
        a.validate_for(10)

    def test_random_never_draws_from_workload_rng(self):
        cfg = small_config()
        before = generate_workload(cfg)
        FaultPlan.random(cfg.seed, cfg.n_slots, cfg.n_users)
        after = generate_workload(cfg)
        assert before.signal_dbm.tobytes() == after.signal_dbm.tobytes()

    def test_masks_and_factors(self):
        plan = FaultPlan(
            signal=(SignalBlackout(start_slot=0, n_slots=5),),
            capacity=(
                CapacityFault(start_slot=3, n_slots=4, factor=0.5),
                CapacityFault(start_slot=5, n_slots=2, factor=0.0),
            ),
        )
        factors = plan.capacity_factors(10)
        assert factors[2] == 1.0
        assert factors[4] == 0.5
        assert factors[5] == 0.0  # overlap takes the minimum
        outage = plan.outage_slot_mask(10)
        assert outage[:7].all() and not outage[7:].any()

    def test_faulty_capacity_floors_at_epsilon(self):
        model = FaultyCapacity(ConstantCapacity(4_000.0), np.array([0.0, 0.5]))
        assert 0.0 < model.capacity_kbps(0) <= FaultyCapacity.OUTAGE_FLOOR_KBPS
        assert model.capacity_kbps(1) == 2_000.0
        assert model.capacity_kbps(5) == 4_000.0  # past the array: healthy


class TestNoFaultBitIdentity:
    @pytest.mark.parametrize("name,factory", ALL_SCHEDULERS)
    def test_none_and_empty_plan_match_seed_path(self, name, factory):
        cfg = small_config()
        wl = generate_workload(cfg)
        seed_run = Simulation(cfg, factory(), wl).run()
        none_run = Simulation(cfg.with_(faults=None), factory(), wl).run()
        empty_run = Simulation(cfg.with_(faults=FaultPlan()), factory(), wl).run()
        assert_results_bit_identical(seed_run, none_run)
        assert_results_bit_identical(seed_run, empty_run)


class TestInjectionEfficacy:
    def test_capacity_outage_zeroes_delivery(self):
        plan = FaultPlan(capacity=(CapacityFault(start_slot=40, n_slots=10),))
        result = Simulation(
            small_config(faults=plan), DefaultScheduler()
        ).run()
        assert result.delivered_kb[40:50].sum() == 0.0
        assert result.allocation_units[40:50].sum() == 0
        assert result.delivered_kb[:40].sum() > 0.0

    def test_flow_stall_zeroes_only_named_users(self):
        plan = FaultPlan(stalls=(FlowStall(start_slot=20, n_slots=10, users=(0,)),))
        result = Simulation(
            small_config(faults=plan), DefaultScheduler()
        ).run()
        assert result.delivered_kb[20:30, 0].sum() == 0.0
        assert result.delivered_kb[20:30, 1:].sum() > 0.0

    def test_signal_blackout_changes_run(self):
        cfg = small_config()
        plan = FaultPlan(signal=(SignalBlackout(start_slot=10, n_slots=30),))
        healthy = Simulation(cfg, RTMAScheduler(), generate_workload(cfg)).run()
        faulted = Simulation(
            cfg.with_(faults=plan), RTMAScheduler(), generate_workload(cfg)
        ).run()
        assert (
            healthy.delivered_kb.tobytes() != faulted.delivered_kb.tobytes()
        )

    def test_blackout_level_reaches_scheduler(self):
        # RTMA never schedules below its threshold, so a blackout at
        # SIGNAL_MIN_DBM must suppress every affected allocation.
        plan = FaultPlan(signal=(SignalBlackout(start_slot=10, n_slots=10),))
        cfg = small_config(faults=plan)
        scheduler = RTMAScheduler(sig_threshold_dbm=constants.SIGNAL_MIN_DBM + 1.0)
        result = Simulation(cfg, scheduler).run()
        assert result.allocation_units[10:20].sum() == 0

    def test_workload_object_stays_pristine(self):
        cfg = small_config()
        wl = generate_workload(cfg)
        before = wl.signal_dbm.tobytes()
        plan = FaultPlan(signal=(SignalBlackout(start_slot=0, n_slots=50),))
        Simulation(cfg.with_(faults=plan), DefaultScheduler(), wl).run()
        assert wl.signal_dbm.tobytes() == before

    def test_dynamic_engine_applies_faults(self):
        plan = FaultPlan(capacity=(CapacityFault(start_slot=30, n_slots=10),))
        cfg = small_config(
            faults=plan,
            arrival_process="poisson",
            arrival_rate_per_slot=0.5,
        )
        assert cfg.has_churn
        result = Simulation(cfg, DefaultScheduler()).run()
        assert result.delivered_kb[30:40].sum() == 0.0


class TestAmbientPlan:
    def test_ambient_matches_attached(self):
        cfg = small_config()
        wl = generate_workload(cfg)
        plan = FaultPlan(
            signal=(SignalBlackout(start_slot=10, n_slots=10),),
            capacity=(CapacityFault(start_slot=30, n_slots=10),),
        )
        attached = Simulation(
            cfg.with_(faults=plan), DefaultScheduler(), wl
        ).run()
        with use_fault_plan(plan):
            ambient = Simulation(cfg, DefaultScheduler(), wl).run()
        assert_results_bit_identical(attached, ambient)

    def test_config_plan_wins_over_ambient(self):
        cfg = small_config()
        wl = generate_workload(cfg)
        attached_plan = FaultPlan(
            capacity=(CapacityFault(start_slot=30, n_slots=10),)
        )
        ambient_plan = FaultPlan(
            capacity=(CapacityFault(start_slot=10, n_slots=10),)
        )
        attached_only = Simulation(
            cfg.with_(faults=attached_plan), DefaultScheduler(), wl
        ).run()
        with use_fault_plan(ambient_plan):
            both = Simulation(
                cfg.with_(faults=attached_plan), DefaultScheduler(), wl
            ).run()
            ambient_only = Simulation(cfg, DefaultScheduler(), wl).run()
        # The attached plan shadows the ambient one entirely...
        assert_results_bit_identical(both, attached_only)
        # ...and the ambient plan does apply when nothing is attached.
        assert (
            ambient_only.delivered_kb.tobytes()
            != attached_only.delivered_kb.tobytes()
        )

    def test_context_restores(self):
        plan = FaultPlan(capacity=(CapacityFault(start_slot=0, n_slots=1),))
        assert current_fault_plan() is None
        with use_fault_plan(plan):
            assert current_fault_plan() is plan
        assert current_fault_plan() is None


class TestBatchGuard:
    def test_faulted_configs_do_not_stack(self):
        from repro.sim.batch import batch_incompatibility
        from repro.sim.executor import RunTask

        plan = FaultPlan(capacity=(CapacityFault(start_slot=0, n_slots=5),))
        cfg = small_config(faults=plan)
        tasks = [
            RunTask(cfg, DefaultScheduler()),
            RunTask(cfg.with_(seed=1), DefaultScheduler()),
        ]
        assert batch_incompatibility(tasks) is not None

    def test_ambient_plan_blocks_stacking(self):
        from repro.sim.batch import batch_incompatibility
        from repro.sim.executor import RunTask

        cfg = small_config()
        tasks = [
            RunTask(cfg, DefaultScheduler()),
            RunTask(cfg.with_(seed=1), DefaultScheduler()),
        ]
        assert batch_incompatibility(tasks) is None
        plan = FaultPlan(capacity=(CapacityFault(start_slot=0, n_slots=5),))
        with use_fault_plan(plan):
            assert batch_incompatibility(tasks) is not None

    def test_single_faulted_task_still_runs_via_batch_plan(self):
        from repro.sim.batch import BatchPlan
        from repro.sim.executor import RunTask

        plan = FaultPlan(capacity=(CapacityFault(start_slot=40, n_slots=10),))
        cfg = small_config(faults=plan)
        (result,) = BatchPlan([RunTask(cfg, DefaultScheduler())]).run(None)
        assert result.delivered_kb[40:50].sum() == 0.0


class TestObservability:
    def test_trace_carries_plan_and_counters(self):
        from repro.obs.instrument import Instrumentation
        from repro.obs.tracer import RecordingTracer

        plan = FaultPlan(
            signal=(SignalBlackout(start_slot=10, n_slots=10),),
            capacity=(CapacityFault(start_slot=30, n_slots=10),),
            stalls=(FlowStall(start_slot=50, n_slots=10, users=(0,)),),
        )
        cfg = small_config(faults=plan)
        tracer = RecordingTracer()
        instr = Instrumentation(tracer=tracer)
        Simulation(cfg, DefaultScheduler(), instrumentation=instr).run()
        (start,) = tracer.of_kind("run.start")
        assert start["faults"] == plan.spec()
        windows = tracer.of_kind("fault.window")
        assert sorted(w["fault"] for w in windows) == [
            "capacity",
            "signal",
            "stall",
        ]
        metrics = instr.metrics
        assert metrics.counter("fault.signal_slots").value == 10
        assert metrics.counter("fault.capacity_slots").value == 10
        assert metrics.counter("fault.stall_slots").value == 10
        assert metrics.counter("fault.outage_slots").value == 30

    def test_healthy_run_emits_no_fault_telemetry(self):
        from repro.obs.instrument import Instrumentation
        from repro.obs.tracer import RecordingTracer

        tracer = RecordingTracer()
        instr = Instrumentation(tracer=tracer)
        Simulation(small_config(), DefaultScheduler(), instrumentation=instr).run()
        assert not tracer.of_kind("fault.window")
        (start,) = tracer.of_kind("run.start")
        assert "faults" not in start
        assert not [k for k in instr.metrics.names() if k.startswith("fault.")]

    def test_config_hash_distinguishes_plans(self):
        from repro.obs.provenance import config_hash

        cfg = small_config()
        plan = FaultPlan(capacity=(CapacityFault(start_slot=0, n_slots=5),))
        assert config_hash(cfg) != config_hash(cfg.with_(faults=plan))
