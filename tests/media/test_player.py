"""Tests for the streaming client state machine."""

import pytest

from repro.errors import ConfigurationError
from repro.media.player import PlayerState, StreamingClient
from repro.media.video import ConstantBitrateProfile, VideoSession


def make_client(size_kb=4000.0, rate=400.0, tau=1.0, cap=None):
    return StreamingClient(
        VideoSession(size_kb, ConstantBitrateProfile(rate)), tau, cap
    )


class TestDelivery:
    def test_deliver_accumulates(self):
        c = make_client()
        accepted = c.deliver(800.0, 0)
        assert accepted == 800.0
        assert c.delivered_kb == 800.0
        assert c.delivered_playback_s == pytest.approx(2.0)  # 800/400

    def test_deliver_truncates_at_video_end(self):
        c = make_client(size_kb=1000.0)
        assert c.deliver(700.0, 0) == 700.0
        assert c.deliver(700.0, 0) == 300.0
        assert c.fully_delivered
        assert c.deliver(100.0, 1) == 0.0

    def test_negative_delivery_rejected(self):
        with pytest.raises(ConfigurationError):
            make_client().deliver(-1.0, 0)

    def test_remaining_kb(self):
        c = make_client(size_kb=1000.0)
        c.deliver(250.0, 0)
        assert c.remaining_kb == 750.0


class TestPlayback:
    def test_startup_stall_counts_as_rebuffering(self):
        c = make_client()
        rebuf, played = c.begin_slot(0)
        assert rebuf == 1.0 and played == 0.0
        assert c.state is PlayerState.STARTUP

    def test_shard_usable_next_slot_only(self):
        c = make_client()
        c.begin_slot(0)
        c.deliver(800.0, 0)  # arrives during slot 0
        rebuf, played = c.begin_slot(1)  # usable now
        assert rebuf == 0.0 and played == 1.0
        assert c.state is PlayerState.PLAYING

    def test_partial_stall(self):
        c = make_client()
        c.begin_slot(0)
        c.deliver(200.0, 0)  # 0.5 s of media
        rebuf, played = c.begin_slot(1)
        assert rebuf == pytest.approx(0.5)
        assert played == pytest.approx(0.5)
        assert c.state is PlayerState.REBUFFERING

    def test_elapsed_tracks_played(self):
        c = make_client()
        c.begin_slot(0)
        c.deliver(4000.0, 0)  # whole video: 10 s of media
        total_played = 0.0
        for slot in range(1, 12):
            _, played = c.begin_slot(slot)
            total_played += played
        assert total_played == pytest.approx(10.0)
        assert c.playback_complete
        assert c.state is PlayerState.FINISHED

    def test_no_rebuffering_after_completion(self):
        c = make_client(size_kb=400.0)  # 1 s of media
        c.begin_slot(0)
        c.deliver(400.0, 0)
        c.begin_slot(1)  # plays the single second
        assert c.playback_complete
        rebuf, played = c.begin_slot(2)
        assert rebuf == 0.0 and played == 0.0

    def test_final_fractional_slot_follows_eq8(self):
        # Fully delivered, video ends mid-slot: Eq. (8) literally counts
        # max(tau - r, 0) while m < M, so the final fractional slot
        # contributes tau - (remaining media) of "rebuffering".  We
        # follow the paper exactly (every scheduler pays the same
        # constant, so comparisons are unaffected).
        c = make_client(size_kb=600.0)  # 1.5 s of media
        c.begin_slot(0)
        c.deliver(600.0, 0)
        r1, p1 = c.begin_slot(1)
        assert (r1, p1) == (0.0, 1.0)
        r2, p2 = c.begin_slot(2)
        assert p2 == pytest.approx(0.5)
        assert r2 == pytest.approx(0.5)  # Eq. (8) literal
        assert c.playback_complete

    def test_total_rebuffering_accumulates(self):
        c = make_client()
        c.begin_slot(0)
        c.begin_slot(1)
        assert c.total_rebuffering_s == pytest.approx(2.0)

    def test_buffer_capacity_respected(self):
        c = make_client(cap=2.0)
        c.deliver(4000.0, 0)  # 10 s of media
        c.begin_slot(1)
        assert c.buffer_occupancy_s <= 2.0

    def test_slot_validation(self):
        with pytest.raises(ConfigurationError):
            make_client().begin_slot(-1)

    def test_needs_data_flips(self):
        c = make_client(size_kb=100.0)
        assert c.needs_data
        c.deliver(100.0, 0)
        assert not c.needs_data
