"""Tests for video sessions and bitrate profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.media.video import (
    ConstantBitrateProfile,
    PiecewiseBitrateProfile,
    VideoSession,
)


class TestCBR:
    def test_rate_constant(self):
        p = ConstantBitrateProfile(450.0)
        assert p.rate_kbps(0) == 450.0
        assert p.rate_kbps(10_000) == 450.0
        assert p.mean_rate_kbps() == 450.0

    def test_positive_required(self):
        with pytest.raises(ConfigurationError):
            ConstantBitrateProfile(0.0)


class TestVBR:
    def test_segment_boundaries(self):
        p = PiecewiseBitrateProfile([300.0, 600.0], segment_slots=10)
        assert p.rate_kbps(0) == 300.0
        assert p.rate_kbps(9) == 300.0
        assert p.rate_kbps(10) == 600.0
        assert p.rate_kbps(19) == 600.0

    def test_cycles(self):
        p = PiecewiseBitrateProfile([300.0, 600.0], segment_slots=10)
        assert p.rate_kbps(20) == 300.0  # wrapped

    def test_mean(self):
        p = PiecewiseBitrateProfile([300.0, 500.0, 700.0])
        assert p.mean_rate_kbps() == pytest.approx(500.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PiecewiseBitrateProfile([])
        with pytest.raises(ConfigurationError):
            PiecewiseBitrateProfile([300.0, -1.0])
        with pytest.raises(ConfigurationError):
            PiecewiseBitrateProfile([300.0], segment_slots=0)
        with pytest.raises(ConfigurationError):
            PiecewiseBitrateProfile([300.0]).rate_kbps(-1)


class TestSession:
    def test_nominal_duration(self):
        v = VideoSession(450_000.0, ConstantBitrateProfile(450.0))
        assert v.nominal_duration_s == pytest.approx(1000.0)

    def test_rate_passthrough(self):
        v = VideoSession(1000.0, PiecewiseBitrateProfile([300.0, 600.0], 5))
        assert v.rate_kbps(7) == 600.0

    def test_size_positive(self):
        with pytest.raises(ConfigurationError):
            VideoSession(0.0, ConstantBitrateProfile(450.0))
