"""Tests for the playback buffer recursion, Eqs. (7)-(8)."""

import pytest

from repro.errors import ConfigurationError
from repro.media.buffer import PlaybackBuffer


class TestEq7:
    def test_initial_occupancy_zero(self):
        assert PlaybackBuffer(1.0).occupancy_s == 0.0

    def test_recursion_exact(self):
        # r(n) = max(r(n-1) - tau, 0) + t(n-1), hand-computed sequence.
        buf = PlaybackBuffer(1.0)
        assert buf.advance(2.5) == pytest.approx(2.5)  # max(0-1,0)+2.5
        assert buf.advance(0.0) == pytest.approx(1.5)  # max(2.5-1,0)+0
        assert buf.advance(0.3) == pytest.approx(0.8)  # 0.5 + 0.3
        assert buf.advance(0.2) == pytest.approx(0.2)  # max(0.8-1,0) + 0.2

    def test_drain_clamps_at_zero(self):
        buf = PlaybackBuffer(1.0)
        buf.advance(0.4)
        assert buf.advance(0.0) == 0.0
        assert buf.advance(0.0) == 0.0

    def test_fractional_tau(self):
        buf = PlaybackBuffer(0.5)
        buf.advance(2.0)
        assert buf.advance(0.0) == pytest.approx(1.5)

    def test_negative_delivery_rejected(self):
        with pytest.raises(ConfigurationError):
            PlaybackBuffer(1.0).advance(-0.1)


class TestEq8:
    def test_full_stall_when_empty(self):
        buf = PlaybackBuffer(1.0)
        assert buf.rebuffering_s() == 1.0

    def test_partial_stall(self):
        buf = PlaybackBuffer(1.0)
        buf.advance(0.25)
        assert buf.rebuffering_s() == pytest.approx(0.75)

    def test_no_stall_when_full(self):
        buf = PlaybackBuffer(1.0)
        buf.advance(3.0)
        assert buf.rebuffering_s() == 0.0

    def test_finished_playback_never_stalls(self):
        buf = PlaybackBuffer(1.0)
        assert buf.rebuffering_s(playback_active=False) == 0.0

    def test_rebuffering_bounded_by_tau(self):
        buf = PlaybackBuffer(1.0)
        assert 0.0 <= buf.rebuffering_s() <= 1.0


class TestCapacity:
    def test_cap_limits_occupancy(self):
        buf = PlaybackBuffer(1.0, capacity_s=5.0)
        buf.advance(100.0)
        assert buf.occupancy_s == 5.0

    def test_headroom(self):
        buf = PlaybackBuffer(1.0, capacity_s=5.0)
        buf.advance(3.0)
        assert buf.headroom_s() == pytest.approx(2.0)
        assert PlaybackBuffer(1.0).headroom_s() == float("inf")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PlaybackBuffer(0.0)
        with pytest.raises(ConfigurationError):
            PlaybackBuffer(1.0, capacity_s=0.0)

    def test_reset(self):
        buf = PlaybackBuffer(1.0)
        buf.advance(4.0)
        buf.reset()
        assert buf.occupancy_s == 0.0
