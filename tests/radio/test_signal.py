"""Tests for repro.radio.signal trace generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.radio.signal import (
    ConstantSignalModel,
    MarkovSignalModel,
    RandomWalkSignalModel,
    SinusoidSignalModel,
    TraceSignalModel,
)


class TestSinusoid:
    def test_shape_and_range(self):
        trace = SinusoidSignalModel().generate(500, 8, rng=0)
        assert trace.shape == (500, 8)
        assert trace.min() >= -110.0
        assert trace.max() <= -50.0

    def test_noiseless_is_pure_sine(self):
        model = SinusoidSignalModel(period_slots=100, noise_std_dbm=0.0)
        trace = model.generate(200, 1, rng=0)
        n = np.arange(200)
        expected = -80.0 + 30.0 * np.sin(2 * np.pi * n / 100.0)
        np.testing.assert_allclose(trace[:, 0], expected, atol=1e-9)

    def test_noiseless_periodicity(self):
        model = SinusoidSignalModel(period_slots=50, noise_std_dbm=0.0)
        trace = model.generate(150, 2, rng=0)
        np.testing.assert_allclose(trace[:50], trace[50:100], atol=1e-9)

    def test_users_have_distinct_phases(self):
        model = SinusoidSignalModel(noise_std_dbm=0.0)
        trace = model.generate(300, 4, rng=0)
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(trace[:, i], trace[:, j])

    def test_explicit_phases(self):
        # A pi phase shift mirrors the sine around the midpoint.
        model = SinusoidSignalModel(
            period_slots=60, noise_std_dbm=0.0, phases=np.array([0.0, np.pi])
        )
        trace = model.generate(60, 2, rng=0)
        np.testing.assert_allclose(
            trace[:, 0] - (-80.0), -(trace[:, 1] - (-80.0)), atol=1e-9
        )

    def test_wrong_phase_count_raises(self):
        model = SinusoidSignalModel(phases=np.zeros(3))
        with pytest.raises(ConfigurationError):
            model.generate(10, 4, rng=0)

    def test_seed_reproducibility(self):
        model = SinusoidSignalModel()
        a = model.generate(100, 3, rng=99)
        b = model.generate(100, 3, rng=99)
        np.testing.assert_array_equal(a, b)

    def test_noise_actually_perturbs(self):
        model = SinusoidSignalModel()
        a = model.generate(100, 3, rng=1)
        b = model.generate(100, 3, rng=2)
        assert not np.allclose(a, b)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            SinusoidSignalModel(period_slots=0)
        with pytest.raises(ConfigurationError):
            SinusoidSignalModel(noise_std_dbm=-1)
        with pytest.raises(ConfigurationError):
            SinusoidSignalModel(sig_min=-50, sig_max=-110)

    def test_bad_generate_args(self):
        with pytest.raises(ConfigurationError):
            SinusoidSignalModel().generate(0, 5)
        with pytest.raises(ConfigurationError):
            SinusoidSignalModel().generate(5, 0)


class TestMarkov:
    def test_values_on_lattice(self):
        model = MarkovSignalModel(n_states=5)
        trace = model.generate(400, 3, rng=0)
        levels = np.linspace(-110.0, -50.0, 5)
        assert np.isin(trace, levels).all()

    def test_single_step_transitions(self):
        model = MarkovSignalModel(n_states=7)
        trace = model.generate(500, 2, rng=0)
        step = np.abs(np.diff(trace, axis=0))
        gap = ((-50.0) - (-110.0)) / 6
        assert (step <= gap + 1e-9).all()

    def test_p_stay_one_freezes(self):
        model = MarkovSignalModel(n_states=5, p_stay=1.0)
        trace = model.generate(100, 4, rng=0)
        assert (np.diff(trace, axis=0) == 0).all()

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            MarkovSignalModel(n_states=1)
        with pytest.raises(ConfigurationError):
            MarkovSignalModel(p_stay=1.5)


class TestRandomWalk:
    def test_range_and_shape(self):
        trace = RandomWalkSignalModel().generate(300, 5, rng=0)
        assert trace.shape == (300, 5)
        assert trace.min() >= -110.0 and trace.max() <= -50.0

    def test_zero_sigma_decays_to_midpoint(self):
        model = RandomWalkSignalModel(alpha=0.5, sigma_dbm=0.0)
        trace = model.generate(200, 2, rng=0)
        assert np.allclose(trace[-1], -80.0, atol=1e-6)

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            RandomWalkSignalModel(alpha=1.5)
        with pytest.raises(ConfigurationError):
            RandomWalkSignalModel(sigma_dbm=-0.1)


class TestConstant:
    def test_constant_everywhere(self):
        trace = ConstantSignalModel(-72.5).generate(50, 3, rng=0)
        assert (trace == -72.5).all()

    def test_level_must_be_in_range(self):
        with pytest.raises(ConfigurationError):
            ConstantSignalModel(-120.0)


class TestTraceModel:
    def test_replay_exact(self):
        base = np.linspace(-110, -50, 20).reshape(10, 2)
        model = TraceSignalModel(base)
        out = model.generate(10, 2, rng=0)
        np.testing.assert_array_equal(out, base)

    def test_wraps_past_end(self):
        base = np.full((5, 1), -60.0)
        base[0] = -100.0
        out = TraceSignalModel(base).generate(12, 1, rng=0)
        assert out[5, 0] == -100.0 and out[10, 0] == -100.0

    def test_too_many_users_raises(self):
        model = TraceSignalModel(np.full((5, 2), -80.0))
        with pytest.raises(TraceError):
            model.generate(5, 3, rng=0)

    def test_rejects_nan(self):
        bad = np.full((4, 2), -80.0)
        bad[1, 1] = np.nan
        with pytest.raises(TraceError):
            TraceSignalModel(bad)

    def test_rejects_empty_or_1d(self):
        with pytest.raises(TraceError):
            TraceSignalModel(np.array([-80.0, -90.0]))
