"""Tests for the power fits (Definition 4 / Eq. 24)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radio.power import EnviPowerModel, TablePowerModel


class TestEnvi:
    def test_paper_fit_values(self):
        m = EnviPowerModel()
        # P(sig) = -0.167 + 1560/v(sig); v(-80) ~= 2303 -> P ~= 0.510
        assert m.p(-80.0) == pytest.approx(-0.167 + 1560.0 / 2303.0, rel=1e-3)
        # Weak signal is much more expensive per byte.
        assert m.p(-110.0) > 8 * m.p(-50.0)

    def test_monotone_decreasing_in_signal(self):
        m = EnviPowerModel()
        sig = np.linspace(-110, -50, 50)
        p = m.p(sig)
        assert np.all(np.diff(p) < 0)

    def test_infinite_below_cutoff(self):
        m = EnviPowerModel()
        assert np.isinf(m.p(-130.0))

    def test_transmission_energy_eq3(self):
        m = EnviPowerModel()
        # E = P(sig) * data
        assert m.transmission_energy_mj(-80.0, 1000.0) == pytest.approx(
            float(m.p(-80.0)) * 1000.0
        )
        with pytest.raises(ConfigurationError):
            m.transmission_energy_mj(-80.0, -5.0)

    def test_radio_power_decreasing_in_throughput(self):
        # P(sig)*v(sig) = -0.167*v + 1560: stronger signal -> lower power.
        m = EnviPowerModel()
        assert m.radio_power_mw(-50.0) < m.radio_power_mw(-110.0)
        assert m.radio_power_mw(-50.0) == pytest.approx(
            -0.167 * 4277.0 + 1560.0, rel=1e-3
        )

    def test_signal_for_radio_power_roundtrip(self):
        m = EnviPowerModel()
        for power in (900.0, 1100.0, 1400.0):
            sig = m.signal_for_radio_power(power)
            assert float(m.radio_power_mw(sig)) == pytest.approx(power, rel=1e-6)

    def test_signal_for_radio_power_unattainable(self):
        m = EnviPowerModel()
        with pytest.raises(ConfigurationError):
            m.signal_for_radio_power(1560.0)  # v_target = 0
        with pytest.raises(ConfigurationError):
            m.signal_for_radio_power(2000.0)  # above the fit's supremum

    def test_floor_applies(self):
        m = EnviPowerModel(p_floor=0.3)
        assert float(m.p(-50.0)) >= 0.3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnviPowerModel(scale=-1.0)
        with pytest.raises(ConfigurationError):
            EnviPowerModel(p_floor=-0.1)


class TestTablePower:
    def test_interpolation(self):
        m = TablePowerModel([-110.0, -50.0], [4.5, 0.2])
        assert m.p(-80.0) == pytest.approx(2.35)

    def test_must_be_non_increasing(self):
        with pytest.raises(ConfigurationError):
            TablePowerModel([-110.0, -50.0], [0.2, 4.5])

    def test_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TablePowerModel([-110.0, -50.0], [4.5, 0.0])
