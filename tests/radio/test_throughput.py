"""Tests for the throughput fits (Definition 3 / Eq. 24)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radio.throughput import LinearThroughputModel, TableThroughputModel


class TestLinear:
    def test_paper_fit_values(self):
        m = LinearThroughputModel()
        # v(sig) = 65.8 * sig + 7567 at the paper's range endpoints.
        assert m.v(-50.0) == pytest.approx(65.8 * -50 + 7567.0)  # 4277
        assert m.v(-110.0) == pytest.approx(65.8 * -110 + 7567.0)  # 329
        assert m.v(-80.0) == pytest.approx(2303.0, abs=0.5)

    def test_clamped_at_zero(self):
        m = LinearThroughputModel()
        assert m.v(-130.0) == 0.0
        assert m.v(m.cutoff_dbm) == pytest.approx(0.0, abs=1e-9)

    def test_vectorised(self):
        m = LinearThroughputModel()
        sig = np.array([-50.0, -80.0, -110.0])
        out = m.v(sig)
        assert out.shape == (3,)
        assert np.all(np.diff(out) < 0)  # weaker signal, less throughput

    def test_inverse_roundtrip(self):
        m = LinearThroughputModel()
        for v in (500.0, 1000.0, 4000.0):
            assert m.v(m.signal_for(v)) == pytest.approx(v)

    def test_inverse_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            LinearThroughputModel().signal_for(-1.0)

    def test_v_max(self):
        m = LinearThroughputModel()
        assert m.v_max == pytest.approx(m.v(-50.0))

    def test_max_units_floor_semantics(self):
        m = LinearThroughputModel()
        # v(-80) ~ 2303 KB/s -> floor(2303/40) = 57 units
        assert m.max_units(-80.0, tau_s=1.0, delta_kb=40.0) == 57
        # Never allows exceeding throughput: units * delta <= tau * v
        sig = np.linspace(-110, -50, 31)
        units = m.max_units(sig, 1.0, 40.0)
        assert np.all(units * 40.0 <= m.v(sig) + 1e-9)

    def test_max_units_validation(self):
        with pytest.raises(ConfigurationError):
            LinearThroughputModel().max_units(-80.0, 0.0, 40.0)
        with pytest.raises(ConfigurationError):
            LinearThroughputModel().max_units(-80.0, 1.0, 0.0)

    def test_rejects_nonpositive_slope(self):
        with pytest.raises(ConfigurationError):
            LinearThroughputModel(slope=-1.0)


class TestTable:
    def test_interpolation(self):
        m = TableThroughputModel([-110.0, -50.0], [300.0, 4300.0])
        assert m.v(-80.0) == pytest.approx(2300.0)
        assert m.v_max == 4300.0

    def test_clamps_outside_range(self):
        m = TableThroughputModel([-100.0, -60.0], [500.0, 4000.0])
        assert m.v(-120.0) == 500.0
        assert m.v(-40.0) == 4000.0

    def test_inverse_roundtrip(self):
        m = TableThroughputModel([-110, -90, -70, -50], [300, 1500, 3000, 4300])
        for v in (900.0, 2000.0, 4000.0):
            assert m.v(m.signal_for(v)) == pytest.approx(v)

    def test_monotonicity_enforced(self):
        with pytest.raises(ConfigurationError):
            TableThroughputModel([-110, -50], [4300, 300])
        with pytest.raises(ConfigurationError):
            TableThroughputModel([-50, -110], [300, 4300])
        with pytest.raises(ConfigurationError):
            TableThroughputModel([-110], [300])
