"""Tests for named radio profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.radio.power import EnviPowerModel
from repro.radio.profiles import RadioProfile, get_profile, list_profiles, register_profile
from repro.radio.rrc import RRCParams
from repro.radio.throughput import LinearThroughputModel


def test_builtin_profiles_present():
    names = list_profiles()
    assert {"umts-3g", "lte", "3g-fast-dormancy"} <= set(names)


def test_default_profile_is_paper_config():
    p = get_profile()
    assert p.name == "umts-3g"
    assert p.rrc.t1_s == pytest.approx(3.29)
    assert float(p.throughput.v(-80.0)) == pytest.approx(2303.0, abs=0.5)


def test_lte_profile_shape():
    p = get_profile("lte")
    # Single-tail LTE: no FACH stage.
    assert p.rrc.t2_s == 0.0
    assert p.rrc.pf_mw == 0.0
    assert p.rrc.t1_s > 10.0
    # Faster than 3G at the same signal.
    assert float(p.throughput.v(-80.0)) > float(get_profile().throughput.v(-80.0))


def test_fast_dormancy_shorter_tail():
    fd = get_profile("3g-fast-dormancy")
    assert fd.rrc.max_tail_mj < get_profile().rrc.max_tail_mj


def test_unknown_profile_raises():
    with pytest.raises(ConfigurationError):
        get_profile("5g-dreams")


def test_register_and_overwrite_rules():
    custom = RadioProfile(
        name="test-custom",
        throughput=LinearThroughputModel(),
        power=EnviPowerModel(),
        rrc=RRCParams(),
    )
    register_profile(custom)
    assert get_profile("test-custom") is custom
    with pytest.raises(ConfigurationError):
        register_profile(custom)  # duplicate
    register_profile(custom, overwrite=True)  # explicit overwrite ok
