"""Tests for the RRC state machine and fleet (Eqs. 4-5)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.radio.rrc import RRCFleet, RRCParams, RRCState, RRCStateMachine


class TestParams:
    def test_defaults_match_paper(self):
        p = RRCParams()
        assert p.pd_mw == pytest.approx(732.83)
        assert p.pf_mw == pytest.approx(388.88)
        assert p.t1_s == pytest.approx(3.29)
        assert p.t2_s == pytest.approx(4.02)

    def test_max_tail(self):
        p = RRCParams()
        assert p.max_tail_mj == pytest.approx(732.83 * 3.29 + 388.88 * 4.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RRCParams(pd_mw=-1.0)
        with pytest.raises(ConfigurationError):
            RRCParams(t2_s=-0.1)


class TestStateMachine:
    def test_initial_state_idle_no_tail(self):
        m = RRCStateMachine()
        assert m.state is RRCState.IDLE
        # A device that never transmitted pays nothing while idle.
        assert m.step(False, 1.0) == 0.0
        assert m.step(False, 1.0) == 0.0

    def test_transmission_resets_and_costs_no_tail(self):
        m = RRCStateMachine()
        assert m.step(True, 1.0) == 0.0
        assert m.state is RRCState.DCH

    def test_incremental_tail_matches_closed_form(self):
        params = RRCParams()
        m = RRCStateMachine(params)
        m.step(True, 1.0)
        total = 0.0
        for k in range(1, 15):
            inc = m.step(False, 1.0)
            total += inc
            assert total == pytest.approx(float(params.tail_energy_mj(float(k))))
        # Fully drained: saturated at the max tail.
        assert total == pytest.approx(params.max_tail_mj)

    def test_state_progression(self):
        m = RRCStateMachine(RRCParams(t1_s=2.0, t2_s=3.0))
        m.step(True, 1.0)
        assert m.state is RRCState.DCH
        m.step(False, 1.0)
        assert m.state is RRCState.DCH  # idle age 1 < T1
        m.step(False, 1.0)
        assert m.state is RRCState.FACH  # idle age 2 in [T1, T1+T2)
        m.step(False, 1.0)
        m.step(False, 1.0)
        m.step(False, 1.0)
        assert m.state is RRCState.IDLE  # idle age 5 >= 5

    def test_retransmission_restarts_tail(self):
        m = RRCStateMachine()
        m.step(True, 1.0)
        first = m.step(False, 1.0)
        m.step(True, 1.0)
        again = m.step(False, 1.0)
        assert again == pytest.approx(first)

    def test_expected_idle_cost_is_pure(self):
        m = RRCStateMachine()
        m.step(True, 1.0)
        predicted = m.expected_idle_cost_mj(1.0)
        actual = m.step(False, 1.0)
        assert predicted == pytest.approx(actual)

    def test_expected_idle_cost_zero_before_first_tx(self):
        assert RRCStateMachine().expected_idle_cost_mj(1.0) == 0.0

    def test_dt_validation(self):
        with pytest.raises(ConfigurationError):
            RRCStateMachine().step(True, 0.0)
        with pytest.raises(ConfigurationError):
            RRCStateMachine().expected_idle_cost_mj(-1.0)


class TestFleet:
    def test_matches_scalar_machines(self, rng):
        n = 7
        params = RRCParams()
        fleet = RRCFleet(n, params)
        machines = [RRCStateMachine(params) for _ in range(n)]
        for _ in range(60):
            tx = rng.random(n) < 0.4
            fleet_tail = fleet.step(tx, 1.0)
            scalar_tail = np.array(
                [machines[i].step(bool(tx[i]), 1.0) for i in range(n)]
            )
            np.testing.assert_allclose(fleet_tail, scalar_tail, atol=1e-12)

    def test_expected_idle_cost_matches_scalar(self, rng):
        n = 5
        fleet = RRCFleet(n)
        machines = [RRCStateMachine() for _ in range(n)]
        for _ in range(20):
            tx = rng.random(n) < 0.5
            fleet.step(tx, 1.0)
            for i in range(n):
                machines[i].step(bool(tx[i]), 1.0)
        np.testing.assert_allclose(
            fleet.expected_idle_cost_mj(1.0),
            [m.expected_idle_cost_mj(1.0) for m in machines],
            atol=1e-12,
        )

    def test_states_match_scalar(self, rng):
        n = 6
        fleet = RRCFleet(n)
        machines = [RRCStateMachine() for _ in range(n)]
        for _ in range(25):
            tx = rng.random(n) < 0.3
            fleet.step(tx, 1.0)
            for i in range(n):
                machines[i].step(bool(tx[i]), 1.0)
        assert fleet.states() == [m.state for m in machines]

    def test_shape_validation(self):
        fleet = RRCFleet(4)
        with pytest.raises(ConfigurationError):
            fleet.step(np.zeros(3, dtype=bool), 1.0)
        with pytest.raises(ConfigurationError):
            RRCFleet(0)


class TestFleetInstrumentation:
    def _random_history(self, n_slots, n_users, p, seed=0):
        rng = np.random.default_rng(seed)
        return rng.random((n_slots, n_users)) < p

    @pytest.mark.parametrize("p_tx", [0.0, 0.2, 0.7, 1.0])
    def test_batch_occupancy_matches_per_step_counts(self, p_tx):
        from repro.radio.rrc import fleet_occupancy_from_tx

        tx = self._random_history(80, 5, p_tx)
        fleet = RRCFleet(5)
        totals = {"dch": 0, "fach": 0, "idle": 0}
        for row in tx:
            fleet.step(row, 1.0)
            for state, count in fleet.state_counts().items():
                totals[state] += count
        assert fleet_occupancy_from_tx(tx, 1.0, fleet.params) == totals

    def test_state_counts_matches_states(self):
        tx = self._random_history(40, 6, 0.3, seed=3)
        fleet = RRCFleet(6)
        for row in tx:
            fleet.step(row, 1.0)
            counts = fleet.state_counts()
            states = fleet.states()
            assert counts["dch"] == sum(s is RRCState.DCH for s in states)
            assert counts["fach"] == sum(s is RRCState.FACH for s in states)
            assert counts["idle"] == sum(s is RRCState.IDLE for s in states)

    def test_step_instrumentation_counters(self):
        from repro.obs import Instrumentation

        instr = Instrumentation()
        fleet = RRCFleet(4)
        tx = np.array([True, False, True, False])
        fleet.step(tx, 1.0, instrumentation=instr)
        counters = instr.metrics.snapshot()["counters"]
        occupancy = (
            counters["rrc.occupancy.dch"]
            + counters["rrc.occupancy.fach"]
            + counters["rrc.occupancy.idle"]
        )
        assert occupancy == 4
        assert counters["rrc.tail_mj"] == 0.0  # nobody ever transmitted before

    def test_occupancy_rejects_bad_input(self):
        from repro.radio.rrc import fleet_occupancy_from_tx

        with pytest.raises(ConfigurationError):
            fleet_occupancy_from_tx(np.zeros((2, 2)), 0.0)
        with pytest.raises(ConfigurationError):
            fleet_occupancy_from_tx(np.zeros(4), 1.0)
