"""Tests for the closed-form tail energy, Eq. (4)."""

import numpy as np
import pytest

from repro import constants
from repro.errors import ConfigurationError
from repro.radio.tail import max_tail_energy_mj, tail_energy_mj, tail_energy_rate_mw

PD = constants.POWER_DCH_MW
PF = constants.POWER_FACH_MW
T1 = constants.TIMER_T1_S
T2 = constants.TIMER_T2_S


class TestTailEnergy:
    def test_piecewise_branches(self):
        # 0 <= t < T1: Pd * t
        assert tail_energy_mj(1.0) == pytest.approx(PD * 1.0)
        assert tail_energy_mj(T1 - 1e-9) == pytest.approx(PD * T1, rel=1e-6)
        # T1 <= t < T1+T2: Pd*T1 + Pf*(t-T1)
        assert tail_energy_mj(T1 + 1.0) == pytest.approx(PD * T1 + PF * 1.0)
        # t >= T1+T2: saturated
        assert tail_energy_mj(T1 + T2) == pytest.approx(PD * T1 + PF * T2)
        assert tail_energy_mj(100.0) == pytest.approx(PD * T1 + PF * T2)

    def test_zero_gap_zero_energy(self):
        assert tail_energy_mj(0.0) == 0.0

    def test_saturation_equals_max(self):
        assert tail_energy_mj(1e9) == pytest.approx(max_tail_energy_mj())
        assert max_tail_energy_mj() == pytest.approx(PD * T1 + PF * T2)

    def test_monotone_nondecreasing(self):
        t = np.linspace(0, 12, 400)
        e = tail_energy_mj(t)
        assert np.all(np.diff(e) >= -1e-9)

    def test_continuity_at_breakpoints(self):
        eps = 1e-8
        assert tail_energy_mj(T1 + eps) == pytest.approx(tail_energy_mj(T1 - eps), abs=1e-3)
        tb = T1 + T2
        assert tail_energy_mj(tb + eps) == pytest.approx(tail_energy_mj(tb - eps), abs=1e-3)

    def test_vectorised(self):
        out = tail_energy_mj(np.array([0.0, 1.0, 10.0]))
        assert out.shape == (3,)

    def test_negative_gap_raises(self):
        with pytest.raises(ConfigurationError):
            tail_energy_mj(-0.5)

    def test_custom_parameters(self):
        assert tail_energy_mj(2.0, pd_mw=100.0, pf_mw=10.0, t1_s=1.0, t2_s=5.0) == (
            pytest.approx(100.0 + 10.0)
        )

    def test_param_validation(self):
        with pytest.raises(ConfigurationError):
            tail_energy_mj(1.0, pd_mw=-1.0)
        with pytest.raises(ConfigurationError):
            tail_energy_mj(1.0, t1_s=-1.0)


class TestTailRate:
    def test_state_powers(self):
        assert tail_energy_rate_mw(0.0) == PD
        assert tail_energy_rate_mw(T1 / 2) == PD
        assert tail_energy_rate_mw(T1) == PF  # right-continuous
        assert tail_energy_rate_mw(T1 + T2 / 2) == PF
        assert tail_energy_rate_mw(T1 + T2) == 0.0
        assert tail_energy_rate_mw(1e6) == 0.0

    def test_rate_integrates_to_energy(self):
        # Numerically integrate the rate; compare with the closed form.
        ts = np.linspace(0, 10, 200_001)
        rates = tail_energy_rate_mw(ts)
        integral = np.trapezoid(rates, ts)
        assert integral == pytest.approx(float(tail_energy_mj(10.0)), rel=1e-4)
