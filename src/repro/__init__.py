"""repro — reproduction of "Joint Media Streaming Optimization of
Energy and Rebuffering Time in Cellular Networks" (ICPP 2015).

The package rebuilds the paper's gateway scheduling framework end to
end: the radio substrate (RSSI traces, throughput/power fits, RRC tail
accounting), the media substrate (playback buffers, streaming
clients), the gateway (Fig. 1), the two proposed schedulers — RTMA
(Algorithm 1) and EMA (Algorithm 2, Lyapunov drift-plus-penalty with
an exact per-slot DP) — the five comparison baselines, and a
slot-driven simulator with per-figure experiment harnesses.

Quickstart
----------
>>> from repro import SimConfig, compare_schedulers
>>> from repro import RTMAScheduler, DefaultScheduler
>>> cfg = SimConfig(n_users=10, n_slots=500, seed=7)
>>> results = compare_schedulers(
...     cfg, {"default": DefaultScheduler(), "rtma": RTMAScheduler()}
... )
>>> results["rtma"].pc_s <= results["default"].pc_s
True
"""

from repro.baselines import (
    DefaultScheduler,
    EStreamerScheduler,
    OnOffScheduler,
    SalsaScheduler,
    ThrottlingScheduler,
)
from repro.core import (
    EMAScheduler,
    RTMAScheduler,
    Scheduler,
    signal_threshold_for_energy_budget,
)
from repro.radio import (
    EnviPowerModel,
    LinearThroughputModel,
    RRCFleet,
    RRCParams,
    RRCStateMachine,
    SinusoidSignalModel,
    get_profile,
    list_profiles,
    tail_energy_mj,
)
from repro.media import PlaybackBuffer, StreamingClient, VideoSession
from repro.obs import (
    Instrumentation,
    JsonlTraceWriter,
    MetricsRegistry,
    NullTracer,
    PhaseProfiler,
    RecordingTracer,
    use_instrumentation,
)
from repro.sim import (
    SimConfig,
    Simulation,
    SimulationResult,
    SummaryStats,
    Workload,
    calibrate_ema_v,
    compare_schedulers,
    generate_workload,
    make_rtma_for_alpha,
    run_scheduler,
    sweep,
)

__version__ = "1.2.0"

__all__ = [
    # core
    "Scheduler",
    "RTMAScheduler",
    "EMAScheduler",
    "signal_threshold_for_energy_budget",
    # baselines
    "DefaultScheduler",
    "ThrottlingScheduler",
    "OnOffScheduler",
    "SalsaScheduler",
    "EStreamerScheduler",
    # radio
    "SinusoidSignalModel",
    "LinearThroughputModel",
    "EnviPowerModel",
    "RRCParams",
    "RRCStateMachine",
    "RRCFleet",
    "tail_energy_mj",
    "get_profile",
    "list_profiles",
    # media
    "VideoSession",
    "PlaybackBuffer",
    "StreamingClient",
    # observability
    "Instrumentation",
    "use_instrumentation",
    "NullTracer",
    "RecordingTracer",
    "JsonlTraceWriter",
    "MetricsRegistry",
    "PhaseProfiler",
    # simulation
    "SimConfig",
    "Simulation",
    "SimulationResult",
    "SummaryStats",
    "Workload",
    "generate_workload",
    "run_scheduler",
    "compare_schedulers",
    "sweep",
    "make_rtma_for_alpha",
    "calibrate_ema_v",
    "__version__",
]
