"""Seeded workload generation: flows + signal traces.

A :class:`Workload` bundles everything stochastic about a run — the
per-user video sessions and the RSSI trace — generated once from the
config's seed so that every scheduler under comparison faces the
*identical* workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.media.video import ConstantBitrateProfile, PiecewiseBitrateProfile, VideoSession
from repro.net.flows import VideoFlow
from repro.sim.arrivals import generate_arrival_slots
from repro.sim.config import SimConfig

__all__ = ["Workload", "generate_workload"]


@dataclass(frozen=True)
class Workload:
    """One realized workload: flows plus the signal trace."""

    flows: list[VideoFlow]
    #: RSSI trace, shape ``(n_slots, n_users)``, dBm.
    signal_dbm: np.ndarray

    @property
    def n_users(self) -> int:
        return len(self.flows)

    @property
    def n_slots(self) -> int:
        return self.signal_dbm.shape[0]

    def total_video_kb(self) -> float:
        """Aggregate *offered* media bytes across all sessions.

        Every generated session counts, whether or not it is later
        admitted (or even arrives within the horizon).  Use
        :meth:`admitted_video_kb` for the load the gateway accepted —
        summaries report both so rejected sessions never silently
        deflate per-user averages.
        """
        return float(sum(f.video.size_kb for f in self.flows))

    def offered_video_kb(self) -> float:
        """Alias of :meth:`total_video_kb` (explicit offered-load name)."""
        return self.total_video_kb()

    def admitted_video_kb(self, admitted: np.ndarray) -> float:
        """Media bytes of the sessions flagged in ``admitted`` (bool mask)."""
        admitted = np.asarray(admitted, dtype=bool)
        if admitted.shape != (len(self.flows),):
            raise ConfigurationError(
                "admitted mask must have one entry per session"
            )
        return float(
            sum(f.video.size_kb for f, ok in zip(self.flows, admitted) if ok)
        )

    def arrival_slots(self) -> np.ndarray:
        """Per-session arrival slots (``int64``)."""
        return np.array([f.arrival_slot for f in self.flows], dtype=np.int64)

    def mean_rate_kbps(self) -> float:
        """Mean of per-user mean required rates."""
        return float(
            np.mean([f.video.profile.mean_rate_kbps() for f in self.flows])
        )


def _draw_sizes(cfg: SimConfig, rng: np.random.Generator) -> np.ndarray:
    lo, hi = cfg.video_size_range_kb
    sizes = rng.uniform(lo, hi, size=cfg.n_users)
    if cfg.mean_video_size_kb is not None:
        # Rescale so the realized mean hits the requested sweep point
        # exactly (Figs. 4b/8b vary the *average* data amount).
        sizes = sizes * (cfg.mean_video_size_kb / sizes.mean())
    return sizes


def _make_profile(cfg: SimConfig, rng: np.random.Generator):
    rlo, rhi = cfg.rate_range_kbps
    if cfg.vbr_segments == 0:
        return ConstantBitrateProfile(float(rng.uniform(rlo, rhi)))
    # VBR: enough segments to outlast any plausible session; the
    # profile cycles if exceeded.
    n_segments = 64
    rates = rng.uniform(rlo, rhi, size=n_segments)
    return PiecewiseBitrateProfile(rates, segment_slots=cfg.vbr_segments)


def generate_workload(cfg: SimConfig) -> Workload:
    """Build the seeded workload for ``cfg``.

    Draw order is fixed (sizes, then rates, then signal) so that runs
    differing only in scheduler see byte-identical workloads, and runs
    differing in one config axis perturb the others minimally.
    """
    rng = np.random.default_rng(cfg.seed)
    sizes = _draw_sizes(cfg, rng)
    profiles = [_make_profile(cfg, rng) for _ in range(cfg.n_users)]
    signal = cfg.make_signal_model().generate(cfg.n_slots, cfg.n_users, rng)
    if not np.all(np.isfinite(signal)):
        raise ConfigurationError("signal model produced non-finite values")
    # Arrivals draw last (and "all_at_zero" draws nothing) so enabling
    # an arrival process never perturbs sizes/rates/signal for a seed.
    arrivals = generate_arrival_slots(cfg, rng)
    flows = []
    for uid in range(cfg.n_users):
        video = VideoSession(float(sizes[uid]), profiles[uid])
        flows.append(
            VideoFlow(user_id=uid, video=video, arrival_slot=int(arrivals[uid]))
        )
    return Workload(flows=flows, signal_dbm=signal)
