"""Run execution backends: serial and process-pool, one ``map_runs`` API.

The repo's orchestration helpers (:mod:`repro.sim.runner`'s
``compare_schedulers`` / ``sweep`` / ``multi_seed`` and the calibration
grid evaluations) all reduce to the same shape: *run a batch of
independent simulations and collect their results in order*.  This
module gives that shape a single entry point:

* :class:`RunTask` — one simulation to run (config, scheduler
  instance, optional pre-generated workload);
* :class:`RunExecutor` — maps a task batch to
  :class:`~repro.sim.results.SimulationResult` objects, either
  in-process (``jobs=1``, the default — byte-for-byte the behaviour of
  a plain loop over ``Simulation(...).run()``) or on a process pool
  (``jobs=N``);
* :func:`map_runs` — module-level convenience resolving the ambient
  executor installed with :func:`use_executor` (mirroring
  :func:`repro.obs.instrument.use_instrumentation`), so experiment
  code stays declarative and ``repro-experiments --jobs N``
  parallelises every sweep underneath it without any experiment module
  knowing.

Determinism contract
--------------------
``jobs=N`` is bit-identical to ``jobs=1`` in results *and metrics*:

* results are returned in task order regardless of completion order;
* explicit workloads are shipped to each worker once (deduplicated by
  object identity); tasks without a workload generate one in the
  worker, cached by :func:`~repro.obs.provenance.config_hash` — the
  same deterministic generation a serial run performs;
* each worker runs under a private :class:`Instrumentation` whose
  metrics state, profiler samples, and (when the parent bundle carries
  a :class:`~repro.obs.spans.SpanRecorder`) span-tree state are merged
  back into the parent bundle in task order.  Engine counters receive
  one increment per run, so the merged registry equals the
  serially-populated one exactly, and the merged span tree has the
  same structure and counts as a serial run's
  (``tests/sim/test_executor.py``).

The one thing workers do **not** ship back is per-slot trace events —
a parallel run's trace contains the orchestration-level events only
(``sweep.point``, ``calibration.*``, run summaries), not the ``slot``
stream.  Run with ``jobs=1`` when a full trace is needed.

Liveness
--------
When the parent bundle carries a live telemetry plane
(:mod:`repro.obs.live`), its spec is shipped to every worker so SLO
rules evaluate inside the pool and the ``slo.*`` counters merge back
identically to a serial run.  Passing ``heartbeat_s`` additionally has
workers heartbeat progress over a manager queue; the parent's
:class:`~repro.obs.live.HeartbeatMonitor` drains it on a daemon
thread, counts ``executor.heartbeats``, and flags any worker silent
longer than ``stall_after_s`` (default 30 s) as stalled —
``executor.stall``/``executor.resume`` trace events, an
``executor.stalls`` counter, and a per-worker table in the live
dashboard and metric exports.  Heartbeats are off by default
(``heartbeat_s=None``) so pooled metrics stay byte-identical to
serial ones; ``repro-experiments`` turns them on whenever the live
plane is active and ``--jobs > 1``.

Resilience
----------
Pool dispatch submits tasks individually and collects them in task
order, so one bad task never costs the sweep:

* an unhandled exception in a worker is retried in-pool up to
  ``task_retries`` times (``executor.task_retries`` counter), then run
  serially in the parent;
* ``task_timeout_s`` bounds the wait per task (measured from when the
  parent starts collecting that task, so it covers queueing plus
  execution); a timed-out task is cancelled where possible and run
  serially (``executor.task_timeouts``);
* a broken pool (worker OOM-killed or hard-crashed) no longer discards
  the batch: results already completed are kept, the heartbeat table's
  entries for the dead workers are retired
  (:meth:`~repro.obs.live.HeartbeatMonitor.retire_workers`), and only
  the unfinished tasks re-run serially (``executor.pool_breaks``,
  ``executor.serial_fallbacks``).

A task that falls back to serial execution runs under a private
bundle mirroring the worker protocol, so its metrics/profiler/span
state still merges in task order and the deterministic-merge contract
survives the failure.  The ``executor.*`` failure counters are created
lazily, only when a failure actually happens — a healthy pooled run's
metric state stays byte-identical to a serial one.

For testing this machinery (and chaos drills), ``worker_faults``
accepts :class:`~repro.faults.WorkerFault` injectors that crash,
raise, or delay specific task indices inside the workers; the parent
serial fallback never injects, so every task ultimately completes.
An ambient :class:`~repro.faults.FaultPlan` (installed with
:func:`repro.faults.use_fault_plan`) is shipped to the workers and
re-installed around each task, so ``repro-experiments --faults`` works
under ``--jobs N``.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.errors import ConfigurationError
from repro.faults import FaultPlan, WorkerFault, current_fault_plan, use_fault_plan
from repro.obs.instrument import Instrumentation, current_instrumentation
from repro.obs.provenance import config_hash
from repro.sim.batch import batch_incompatibility, run_batch
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.results import SimulationResult
from repro.sim.workload import Workload, generate_workload

__all__ = [
    "RunTask",
    "RunExecutor",
    "map_runs",
    "use_executor",
    "current_executor",
]

log = logging.getLogger("repro.sim.executor")


@dataclass(frozen=True)
class RunTask:
    """One simulation to execute.

    ``scheduler`` is a ready-built (picklable) scheduler *instance* —
    factories close over configs and do not cross process boundaries,
    so callers construct schedulers before batching.  ``workload=None``
    generates the config's seeded workload at run time (in the worker,
    cached by config hash).
    """

    config: SimConfig
    scheduler: object
    workload: Workload | None = field(default=None)


#: Worker-process state: explicit workloads shipped by the parent
#: (keyed by batch-local ids) plus generated workloads keyed by config
#: hash, so repeated configs in a batch generate once per worker.
_WORKER_WORKLOADS: dict[str, Workload] = {}
#: Worker-side heartbeat emitter and live-plane spec, installed by the
#: pool initializer when the parent runs with heartbeats enabled.
_WORKER_HEARTBEAT = None
_WORKER_LIVE_SPEC: dict[str, Any] | None = None
#: Worker-fault injectors and the ambient fault plan, shipped through
#: the pool initializer (the parent's context stack does not cross the
#: process boundary).
_WORKER_FAULTS: tuple[WorkerFault, ...] = ()
_WORKER_FAULT_PLAN: FaultPlan | None = None


def _init_worker(
    workload_table: dict[str, Workload],
    heartbeat_queue=None,
    heartbeat_s: float = 1.0,
    live_spec: dict[str, Any] | None = None,
    worker_faults: tuple[WorkerFault, ...] = (),
    fault_plan_spec: dict[str, Any] | None = None,
) -> None:
    global _WORKER_HEARTBEAT, _WORKER_LIVE_SPEC, _WORKER_FAULTS, _WORKER_FAULT_PLAN
    _WORKER_WORKLOADS.clear()
    _WORKER_WORKLOADS.update(workload_table)
    _WORKER_LIVE_SPEC = live_spec
    _WORKER_FAULTS = tuple(worker_faults)
    _WORKER_FAULT_PLAN = (
        FaultPlan.from_spec(fault_plan_spec) if fault_plan_spec is not None else None
    )
    if heartbeat_queue is not None:
        from repro.obs.live import HeartbeatEmitter

        _WORKER_HEARTBEAT = HeartbeatEmitter(heartbeat_queue, every_s=heartbeat_s)
        _WORKER_HEARTBEAT.beat("idle")
    else:
        _WORKER_HEARTBEAT = None


def _maybe_worker_fault(task_index: int, attempt: int) -> None:
    """Fire any armed injector for this (task, attempt) pair.

    Runs *inside the pool worker*, before any simulation work.  The
    parent's serial fallback never calls this, so an injected fault can
    delay a batch but never fail it.
    """
    for fault in _WORKER_FAULTS:
        if fault.task_index != task_index or attempt >= fault.times:
            continue
        if fault.kind == "delay":
            time.sleep(fault.delay_s)
        elif fault.kind == "raise":
            raise RuntimeError(
                f"injected worker fault: task {task_index} attempt {attempt}"
            )
        elif fault.kind == "crash":
            os._exit(1)


def _worker_fault_context():
    """The shipped ambient fault plan, re-installed around one task."""
    if _WORKER_FAULT_PLAN is not None:
        return use_fault_plan(_WORKER_FAULT_PLAN)
    return nullcontext()


def _run_group(payload):
    _maybe_worker_fault(payload[5], payload[6])
    with _worker_fault_context():
        return _run_group_inner(payload)


def _run_group_inner(payload):
    """Worker entry for one batch group (``batch_size > 1`` pools).

    ``payload`` carries the group's configs/schedulers/workload keys in
    task order; the group runs through a
    :class:`~repro.sim.batch.BatchPlan` (one stacked slot loop) under a
    private bundle.  The metrics round trip ships the plan's *per-run*
    registry states when the stacked path produced them — the parent
    merges one state per run in task order, exactly as :func:`_run_task`
    does per single run, so counter float-accumulation order matches a
    serial execution bit-for-bit.  Runs that fell back to the serial
    engine inside the worker (singleton groups, live plane attached)
    ship the worker bundle's whole state instead.
    """
    configs, schedulers, wl_keys, instrumented, spans_on, group_index = payload[:6]
    tasks = []
    for config, scheduler, wl_key in zip(configs, schedulers, wl_keys):
        if wl_key is not None:
            workload = _WORKER_WORKLOADS[wl_key]
        else:
            key = config_hash(config)
            workload = _WORKER_WORKLOADS.get(key)
            if workload is None:
                workload = generate_workload(config)
                _WORKER_WORKLOADS[key] = workload
        tasks.append(RunTask(config, scheduler, workload))
    heartbeat = _WORKER_HEARTBEAT
    if heartbeat is not None:
        heartbeat.task = group_index
    from repro.sim.batch import BatchPlan

    plan = BatchPlan(tasks)
    if not instrumented:
        if heartbeat is not None:
            heartbeat.beat("task.start", n_slots=configs[0].n_slots)
        results = plan.run(None)
        if heartbeat is not None:
            heartbeat.beat("idle")
        return results, None, None, None
    live = None
    if _WORKER_LIVE_SPEC is not None or heartbeat is not None:
        from repro.obs.live import LiveTelemetry

        live = LiveTelemetry.from_spec(_WORKER_LIVE_SPEC or {}, heartbeat=heartbeat)
    spans = None
    if spans_on:
        from repro.obs.spans import SpanRecorder

        spans = SpanRecorder()
    instr = Instrumentation(live=live, spans=spans)
    results = plan.run(instr)
    if heartbeat is not None:
        heartbeat.beat("idle")
    metrics_payload = (
        ("runs", plan.run_metric_states)
        if plan.run_metric_states
        else ("group", instr.metrics.state())
    )
    return (
        results,
        metrics_payload,
        instr.profiler.raw_samples(),
        spans.state() if spans is not None else None,
    )


def _run_task(payload):
    _maybe_worker_fault(payload[5], payload[6])
    with _worker_fault_context():
        return _run_task_inner(payload)


def _run_task_inner(payload):
    config, scheduler, wl_key, instrumented, spans_on, task_index = payload[:6]
    if wl_key is not None:
        workload = _WORKER_WORKLOADS[wl_key]
    else:
        key = config_hash(config)
        workload = _WORKER_WORKLOADS.get(key)
        if workload is None:
            workload = generate_workload(config)
            _WORKER_WORKLOADS[key] = workload
    heartbeat = _WORKER_HEARTBEAT
    if heartbeat is not None:
        heartbeat.task = task_index
    if not instrumented:
        if heartbeat is not None:
            heartbeat.beat("task.start", n_slots=config.n_slots)
        result = Simulation(config, scheduler, workload).run()
        if heartbeat is not None:
            heartbeat.beat("idle")
        return result, None, None, None
    live = None
    if _WORKER_LIVE_SPEC is not None or heartbeat is not None:
        from repro.obs.live import LiveTelemetry

        live = LiveTelemetry.from_spec(_WORKER_LIVE_SPEC or {}, heartbeat=heartbeat)
    spans = None
    if spans_on:
        from repro.obs.spans import SpanRecorder

        spans = SpanRecorder()
    # NullTracer: slot events stay local.
    instr = Instrumentation(live=live, spans=spans)
    result = Simulation(config, scheduler, workload, instrumentation=instr).run()
    if heartbeat is not None:
        heartbeat.beat("idle")
    return (
        result,
        instr.metrics.state(),
        instr.profiler.raw_samples(),
        spans.state() if spans is not None else None,
    )


class RunExecutor:
    """Executes :class:`RunTask` batches, serially or on a process pool.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs every task in-process —
        identical to a plain loop, with the caller's (or ambient)
        instrumentation observing each run directly.
    heartbeat_s:
        When set (and the batch is instrumented), pool workers emit
        heartbeats at most every ``heartbeat_s`` seconds over a manager
        queue, and the parent runs a
        :class:`~repro.obs.live.HeartbeatMonitor` for the batch's
        duration (straggler/stall detection, ``executor.*`` counters,
        worker table in the live snapshot).  ``None`` (default) keeps
        the executor metrics-silent, preserving the byte-identical
        ``jobs=1`` vs ``jobs=N`` metrics contract CI checks.
    stall_after_s:
        Heartbeat silence (mid-task) after which a worker is flagged
        as stalled.
    batch_size:
        Maximum runs stacked into one :func:`~repro.sim.batch.run_batch`
        slot loop.  ``1`` (default) preserves the historical
        one-``Simulation``-per-task behaviour exactly.  With ``R > 1``,
        *consecutive* compatible tasks (same shape/scheduler type — see
        :func:`~repro.sim.batch.batch_incompatibility`) are grouped
        greedily and each group executes as one stacked run;
        incompatible neighbours simply break the group, so heterogeneous
        batches degrade to serial behaviour instead of failing.
        Composes with ``jobs``: each pool worker receives whole groups,
        so ``jobs=J, batch_size=R`` runs ``J`` stacked loops of up to
        ``R`` runs each concurrently.  Results and metrics stay
        bit-identical to ``batch_size=1``
        (``tests/integration/test_batch_equivalence.py``).
    task_timeout_s:
        Per-task result deadline for pool dispatch, measured from when
        the parent starts collecting that task (covers queueing plus
        execution).  A timed-out task is cancelled where possible and
        re-run serially in the parent.  ``None`` (default) waits
        forever, the historical behaviour.
    task_retries:
        In-pool resubmissions of a task whose worker raised, before
        the parent gives up on the pool and runs it serially.  The
        default ``1`` absorbs one transient failure per task.
    worker_faults:
        :class:`~repro.faults.WorkerFault` injectors installed in every
        pool worker — chaos drills for the resilience machinery above.
        Empty (default) in normal operation.
    """

    def __init__(
        self,
        jobs: int = 1,
        heartbeat_s: float | None = None,
        stall_after_s: float = 30.0,
        batch_size: int = 1,
        task_timeout_s: float | None = None,
        task_retries: int = 1,
        worker_faults: Sequence[WorkerFault] = (),
    ):
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ConfigurationError("task_timeout_s must be positive")
        if task_retries < 0:
            raise ConfigurationError("task_retries must be >= 0")
        for fault in worker_faults:
            if not isinstance(fault, WorkerFault):
                raise ConfigurationError(
                    f"worker_faults entries must be WorkerFault, "
                    f"got {type(fault).__name__}"
                )
        self.jobs = int(jobs)
        self.heartbeat_s = float(heartbeat_s) if heartbeat_s is not None else None
        self.stall_after_s = float(stall_after_s)
        self.batch_size = int(batch_size)
        self.task_timeout_s = (
            float(task_timeout_s) if task_timeout_s is not None else None
        )
        self.task_retries = int(task_retries)
        self.worker_faults = tuple(worker_faults)

    def map_runs(
        self,
        tasks: Sequence[RunTask],
        instrumentation: Instrumentation | None = None,
    ) -> list[SimulationResult]:
        """Run every task; results are returned in task order.

        ``instrumentation=None`` falls back to the ambient bundle, as
        the engine itself would.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        instr = (
            instrumentation
            if instrumentation is not None
            else current_instrumentation()
        )
        if self.batch_size > 1 and len(tasks) > 1:
            groups = self._group_tasks(tasks)
            if self.jobs == 1 or len(groups) == 1:
                results: list[SimulationResult] = []
                for group in groups:
                    if len(group) == 1:
                        t = group[0]
                        results.append(
                            Simulation(
                                t.config,
                                t.scheduler,
                                t.workload,
                                instrumentation=instr,
                            ).run()
                        )
                    else:
                        results.extend(run_batch(group, instrumentation=instr))
                return results
            return self._map_pool_groups(groups, instr)
        if self.jobs == 1 or len(tasks) == 1:
            return [
                Simulation(
                    t.config, t.scheduler, t.workload, instrumentation=instr
                ).run()
                for t in tasks
            ]
        return self._map_pool(tasks, instr)

    def _group_tasks(self, tasks: list[RunTask]) -> list[list[RunTask]]:
        """Greedily group *consecutive* compatible tasks up to batch_size.

        Task order is never permuted — results must come back in task
        order, and batching is invisible to metrics only when each
        group is a contiguous slice of the original sequence.
        """
        groups: list[list[RunTask]] = []
        group: list[RunTask] = []
        for t in tasks:
            if not group:
                group = [t]
                continue
            if (
                len(group) < self.batch_size
                and batch_incompatibility(group + [t]) is None
            ):
                group.append(t)
            else:
                groups.append(group)
                group = [t]
        groups.append(group)
        return groups

    # -- pool resilience ----------------------------------------------

    @staticmethod
    def _ambient_plan_spec() -> dict[str, Any] | None:
        """Picklable spec of the ambient fault plan, for worker shipping."""
        plan = current_fault_plan()
        if plan is None or plan.is_empty:
            return None
        return plan.spec()

    @staticmethod
    def _note_failure(instr: Instrumentation | None, name: str) -> None:
        """Count one executor failure event.

        Failure counters are created lazily — a healthy pooled run's
        metric state must stay byte-identical to a serial run's, so the
        executor only touches the registry when something actually
        went wrong.
        """
        if instr is not None:
            instr.metrics.counter(name).inc()

    def _collect(
        self,
        pool: ProcessPoolExecutor,
        worker_fn,
        payloads: list[tuple],
        serial_fn,
        monitor,
        instr: Instrumentation | None,
    ) -> list[tuple]:
        """Submit every payload, collect results in task order.

        Per-task failure handling (see the module docstring): timeout
        and pool breakage fall straight back to ``serial_fn``; worker
        exceptions are resubmitted up to ``task_retries`` times first.
        Completed futures keep their results across a pool break, so
        only unfinished tasks pay the serial re-run.
        """
        futures: list[Any] = []
        broken = False
        for payload in payloads:
            try:
                futures.append(pool.submit(worker_fn, payload))
            except (BrokenProcessPool, RuntimeError):
                # Pool already broken/shut down: everything left runs
                # serially via the None sentinel below.
                futures.append(None)
        outs: list[tuple] = []
        for index, payload in enumerate(payloads):
            attempt = 0
            while True:
                fut = futures[index]
                if fut is None:
                    outs.append(self._serial_fallback(index, serial_fn, instr))
                    break
                try:
                    outs.append(fut.result(timeout=self.task_timeout_s))
                    break
                except FuturesTimeoutError:
                    fut.cancel()
                    self._note_failure(instr, "executor.task_timeouts")
                    log.warning(
                        "task %d produced no result within %.1fs; "
                        "running it serially",
                        index,
                        self.task_timeout_s,
                    )
                    outs.append(self._serial_fallback(index, serial_fn, instr))
                    break
                except BrokenProcessPool:
                    if not broken:
                        broken = True
                        self._note_failure(instr, "executor.pool_breaks")
                        retired = (
                            monitor.retire_workers() if monitor is not None else []
                        )
                        log.warning(
                            "process pool broke at task %d; keeping "
                            "completed results, re-running unfinished "
                            "tasks serially (%d worker entr%s retired)",
                            index,
                            len(retired),
                            "y" if len(retired) == 1 else "ies",
                        )
                    outs.append(self._serial_fallback(index, serial_fn, instr))
                    break
                except Exception as exc:
                    if attempt < self.task_retries and not broken:
                        attempt += 1
                        self._note_failure(instr, "executor.task_retries")
                        log.warning(
                            "task %d failed in worker (%s); in-pool "
                            "retry %d/%d",
                            index,
                            exc,
                            attempt,
                            self.task_retries,
                        )
                        resub = payload[:-1] + (attempt,)
                        try:
                            futures[index] = pool.submit(worker_fn, resub)
                            continue
                        except (BrokenProcessPool, RuntimeError):
                            pass
                    log.warning(
                        "task %d failed in worker (%s); running it serially",
                        index,
                        exc,
                    )
                    outs.append(self._serial_fallback(index, serial_fn, instr))
                    break
        return outs

    def _serial_fallback(self, index: int, serial_fn, instr):
        self._note_failure(instr, "executor.serial_fallbacks")
        return serial_fn(index)

    def _serial_task(
        self,
        task: RunTask,
        instr: Instrumentation | None,
        spans_on: bool,
        live_spec: dict[str, Any] | None,
        wl_cache: dict[str, Workload],
    ):
        """Run one task in the parent, mirroring the worker protocol.

        The run happens under a private bundle whose state is returned
        in the same ``(result, metrics, samples, spans)`` shape a pool
        worker ships, so the caller's task-order merge treats a
        fallen-back task exactly like a pooled one.  No worker faults
        are installed here — an injected fault can never make a batch
        fail.
        """
        workload = self._resolve_workload(task, wl_cache)
        if instr is None:
            result = Simulation(task.config, task.scheduler, workload).run()
            return result, None, None, None
        sub = self._fallback_bundle(spans_on, live_spec)
        result = Simulation(
            task.config, task.scheduler, workload, instrumentation=sub
        ).run()
        return (
            result,
            sub.metrics.state(),
            sub.profiler.raw_samples(),
            sub.spans.state() if sub.spans is not None else None,
        )

    def _serial_group(
        self,
        group: list[RunTask],
        instr: Instrumentation | None,
        spans_on: bool,
        live_spec: dict[str, Any] | None,
        wl_cache: dict[str, Workload],
    ):
        """Group-shaped counterpart of :meth:`_serial_task`."""
        from repro.sim.batch import BatchPlan

        tasks = [
            RunTask(t.config, t.scheduler, self._resolve_workload(t, wl_cache))
            for t in group
        ]
        plan = BatchPlan(tasks)
        if instr is None:
            return plan.run(None), None, None, None
        sub = self._fallback_bundle(spans_on, live_spec)
        results = plan.run(sub)
        metrics_payload = (
            ("runs", plan.run_metric_states)
            if plan.run_metric_states
            else ("group", sub.metrics.state())
        )
        return (
            results,
            metrics_payload,
            sub.profiler.raw_samples(),
            sub.spans.state() if sub.spans is not None else None,
        )

    @staticmethod
    def _resolve_workload(task: RunTask, wl_cache: dict[str, Workload]) -> Workload:
        """The task's workload, generating (and caching) like a worker."""
        if task.workload is not None:
            return task.workload
        key = config_hash(task.config)
        workload = wl_cache.get(key)
        if workload is None:
            workload = generate_workload(task.config)
            wl_cache[key] = workload
        return workload

    @staticmethod
    def _fallback_bundle(
        spans_on: bool, live_spec: dict[str, Any] | None
    ) -> Instrumentation:
        """A private bundle mirroring a worker's (NullTracer, private
        live plane from the parent's spec, fresh span recorder)."""
        live = None
        if live_spec is not None:
            from repro.obs.live import LiveTelemetry

            live = LiveTelemetry.from_spec(live_spec)
        spans = None
        if spans_on:
            from repro.obs.spans import SpanRecorder

            spans = SpanRecorder()
        return Instrumentation(live=live, spans=spans)

    def _map_pool(
        self, tasks: list[RunTask], instr: Instrumentation | None
    ) -> list[SimulationResult]:
        # Ship each distinct explicit workload once (dedup by object
        # identity — compare/sweep batches share one object).
        table: dict[str, Workload] = {}
        keys_by_id: dict[int, str] = {}
        payloads = []
        instrumented = instr is not None
        live = instr.live if instrumented else None
        spans_on = instrumented and instr.spans is not None
        for index, t in enumerate(tasks):
            wl_key = None
            if t.workload is not None:
                wl_key = keys_by_id.get(id(t.workload))
                if wl_key is None:
                    wl_key = f"wl{len(table)}"
                    keys_by_id[id(t.workload)] = wl_key
                    table[wl_key] = t.workload
            # Detach any bound instrumentation before pickling (open
            # trace writers are not picklable; the engine rebinds).
            bind = getattr(t.scheduler, "bind_instrumentation", None)
            if bind is not None:
                bind(None)
            payloads.append(
                (t.config, t.scheduler, wl_key, instrumented, spans_on, index, 0)
            )

        # Workers rebuild the parent's live plane from its picklable
        # spec so SLO rules are evaluated on exactly the per-run slot
        # streams a serial execution would see (per-run aggregate reset
        # makes the alert counters merge back identically).
        live_spec = live.spec() if live is not None else None
        wl_cache: dict[str, Workload] = {}

        def serial_fn(index: int):
            t = tasks[index]
            return self._serial_task(t, instr, spans_on, live_spec, wl_cache)

        heartbeats_on = self.heartbeat_s is not None and instrumented
        manager = None
        monitor = None
        hb_queue = None
        try:
            if heartbeats_on:
                from repro.obs.live import HeartbeatMonitor

                # A plain mp.Queue cannot cross ProcessPoolExecutor's
                # initargs pickling; a manager proxy can.
                manager = multiprocessing.Manager()
                hb_queue = manager.Queue()
                monitor = HeartbeatMonitor(
                    hb_queue,
                    stall_after_s=self.stall_after_s,
                    metrics=instr.metrics,
                    tracer=instr.tracer,
                ).start()
                if live is not None:
                    live.attach_monitor(monitor)
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(tasks)),
                initializer=_init_worker,
                initargs=(
                    table,
                    hb_queue,
                    self.heartbeat_s or 1.0,
                    live_spec,
                    self.worker_faults,
                    self._ambient_plan_spec(),
                ),
            ) as pool:
                outs = self._collect(pool, _run_task, payloads, serial_fn,
                                     monitor, instr)
        finally:
            if monitor is not None:
                monitor.stop()
            if manager is not None:
                manager.shutdown()
        results = []
        for result, metrics_state, profiler_samples, spans_state in outs:
            results.append(result)
            if instr is not None:
                if metrics_state is not None:
                    instr.metrics.merge_state(metrics_state)
                if profiler_samples is not None:
                    instr.profiler.merge_samples(profiler_samples)
                # Span trees merge in task order, so a pooled batch
                # interns paths in the same order a serial one records
                # them — tree structure and counts are deterministic.
                if spans_state is not None and instr.spans is not None:
                    instr.spans.merge_state(spans_state)
        return results

    def _map_pool_groups(
        self, groups: list[list[RunTask]], instr: Instrumentation | None
    ) -> list[SimulationResult]:
        """Pool dispatch of whole batch groups (``jobs=J, batch_size=R``).

        Mirrors :meth:`_map_pool` — same workload dedup, heartbeat
        plumbing, broken-pool serial retry, and task-order merge — but
        each payload is one group, executed in the worker through
        :func:`_run_group`.
        """
        table: dict[str, Workload] = {}
        keys_by_id: dict[int, str] = {}
        payloads = []
        instrumented = instr is not None
        live = instr.live if instrumented else None
        spans_on = instrumented and instr.spans is not None
        for index, group in enumerate(groups):
            wl_keys = []
            for t in group:
                wl_key = None
                if t.workload is not None:
                    wl_key = keys_by_id.get(id(t.workload))
                    if wl_key is None:
                        wl_key = f"wl{len(table)}"
                        keys_by_id[id(t.workload)] = wl_key
                        table[wl_key] = t.workload
                wl_keys.append(wl_key)
                bind = getattr(t.scheduler, "bind_instrumentation", None)
                if bind is not None:
                    bind(None)
            payloads.append(
                (
                    [t.config for t in group],
                    [t.scheduler for t in group],
                    wl_keys,
                    instrumented,
                    spans_on,
                    index,
                    0,
                )
            )

        live_spec = live.spec() if live is not None else None
        wl_cache: dict[str, Workload] = {}

        def serial_fn(index: int):
            return self._serial_group(
                groups[index], instr, spans_on, live_spec, wl_cache
            )

        heartbeats_on = self.heartbeat_s is not None and instrumented
        manager = None
        monitor = None
        hb_queue = None
        try:
            if heartbeats_on:
                from repro.obs.live import HeartbeatMonitor

                manager = multiprocessing.Manager()
                hb_queue = manager.Queue()
                monitor = HeartbeatMonitor(
                    hb_queue,
                    stall_after_s=self.stall_after_s,
                    metrics=instr.metrics,
                    tracer=instr.tracer,
                ).start()
                if live is not None:
                    live.attach_monitor(monitor)
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(groups)),
                initializer=_init_worker,
                initargs=(
                    table,
                    hb_queue,
                    self.heartbeat_s or 1.0,
                    live_spec,
                    self.worker_faults,
                    self._ambient_plan_spec(),
                ),
            ) as pool:
                outs = self._collect(pool, _run_group, payloads, serial_fn,
                                     monitor, instr)
        finally:
            if monitor is not None:
                monitor.stop()
            if manager is not None:
                manager.shutdown()
        results = []
        for group_results, metrics_payload, profiler_samples, spans_state in outs:
            results.extend(group_results)
            if instr is not None:
                if metrics_payload is not None:
                    # ("runs", [state, ...]) merges one registry state
                    # per run in task order — counter accumulation order
                    # then matches a serial execution exactly (floats
                    # are non-associative; a single group-summed state
                    # would drift by an ulp).  ("group", state) is the
                    # worker-side serial-fallback shape.
                    kind, payload = metrics_payload
                    if kind == "runs":
                        for state in payload:
                            instr.metrics.merge_state(state)
                    else:
                        instr.metrics.merge_state(payload)
                if profiler_samples is not None:
                    instr.profiler.merge_samples(profiler_samples)
                if spans_state is not None and instr.spans is not None:
                    instr.spans.merge_state(spans_state)
        return results

    def __repr__(self) -> str:  # pragma: no cover
        return f"RunExecutor(jobs={self.jobs})"


_SERIAL = RunExecutor(jobs=1)
_AMBIENT: list[RunExecutor] = []


def current_executor() -> RunExecutor | None:
    """The innermost ambient executor, or ``None`` when none is active."""
    return _AMBIENT[-1] if _AMBIENT else None


@contextmanager
def use_executor(executor: RunExecutor) -> Iterator[RunExecutor]:
    """Make ``executor`` ambient for the dynamic extent of the block.

    Every :func:`map_runs` call underneath — the runner helpers, the
    calibration grids, the experiment sweeps — uses it by default.
    """
    _AMBIENT.append(executor)
    try:
        yield executor
    finally:
        _AMBIENT.pop()


def map_runs(
    tasks: Sequence[RunTask],
    executor: RunExecutor | None = None,
    instrumentation: Instrumentation | None = None,
) -> list[SimulationResult]:
    """Run a task batch on the given / ambient / default-serial executor."""
    ex = executor if executor is not None else current_executor()
    if ex is None:
        ex = _SERIAL
    return ex.map_runs(tasks, instrumentation=instrumentation)
