"""Simulation layer: configuration, workload, engine, metrics, sweeps.

* :mod:`repro.sim.config` — :class:`SimConfig`, the single source of
  truth for a run's parameters (paper Section VI defaults);
* :mod:`repro.sim.workload` — seeded generation of video flows and
  signal traces;
* :mod:`repro.sim.engine` — the slot-driven simulation loop wiring
  gateway, clients, RRC fleet and a scheduler;
* :mod:`repro.sim.metrics` — PE (Eq. 6), PC (Eq. 9), Jain fairness and
  CDF helpers;
* :mod:`repro.sim.results` — per-slot/per-user result arrays plus
  summaries;
* :mod:`repro.sim.runner` — comparisons on identical workloads,
  parameter sweeps, multi-seed replication, and the calibration
  helpers that set ``Phi = alpha * E_default`` / pick EMA's ``V`` for a
  target rebuffering bound;
* :mod:`repro.sim.executor` — serial and process-pool run execution
  behind one ``map_runs`` API (``repro-experiments --jobs N``);
* :mod:`repro.sim.batch` — run-stacked batch execution: R compatible
  runs share one slot loop, bit-identical to serial
  (``repro-experiments --batch R``).
"""

from repro.sim.batch import BatchPlan, batch_incompatibility, run_batch
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.executor import (
    RunExecutor,
    RunTask,
    current_executor,
    map_runs,
    use_executor,
)
from repro.sim.metrics import (
    average_energy_mj,
    average_rebuffering_s,
    jain_fairness,
    per_slot_fairness,
)
from repro.sim.results import SimulationResult, SummaryStats
from repro.sim.runner import (
    calibrate_ema_v,
    compare_schedulers,
    make_rtma_for_alpha,
    multi_seed,
    run_scheduler,
    sweep,
)
from repro.sim.workload import Workload, generate_workload

__all__ = [
    "SimConfig",
    "Simulation",
    "SimulationResult",
    "SummaryStats",
    "Workload",
    "generate_workload",
    "average_energy_mj",
    "average_rebuffering_s",
    "jain_fairness",
    "per_slot_fairness",
    "run_scheduler",
    "compare_schedulers",
    "sweep",
    "make_rtma_for_alpha",
    "calibrate_ema_v",
    "multi_seed",
    "RunTask",
    "RunExecutor",
    "map_runs",
    "use_executor",
    "current_executor",
    "BatchPlan",
    "batch_incompatibility",
    "run_batch",
]
