"""Simulation configuration.

:class:`SimConfig` captures every knob of a run.  The defaults are the
paper's Section VI evaluation setting: 40 users, 10000 one-second
slots, 20 MB/s serving capacity, 250-500 MB videos at 300-600 KB/s,
sinusoidal signal in [-110, -50] dBm with 30 dBm noise, and the
``umts-3g`` radio profile (EnVi fits + PerES RRC timers).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro import constants
from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.net.slicing import BackgroundTraffic
from repro.radio.profiles import RadioProfile, get_profile
from repro.radio.signal import SignalModel, SinusoidSignalModel

__all__ = ["SimConfig"]


@dataclass(frozen=True)
class SimConfig:
    """All parameters of one simulation run.

    Attributes
    ----------
    n_users, n_slots, tau_s, delta_kb, capacity_kbps:
        Cell geometry: user count, horizon, slot length, frame size,
        BS serving capacity ``S`` (KB/s).
    video_size_range_kb:
        ``(min, max)`` of the per-user uniform video-size draw.
    rate_range_kbps:
        ``(min, max)`` of the per-user uniform required-rate draw.
    vbr_segments:
        ``0`` gives each user a constant rate (the common reading of
        the paper's setup).  A positive value makes rates *variable*:
        each user's session is divided into segments of this many
        slots, each drawing a fresh rate from ``rate_range_kbps``.
    mean_video_size_kb:
        When set, overrides the size draw with sizes rescaled to hit
        this mean exactly — the paper's "average required data amount"
        sweep axis (Figs. 4b/8b).
    profile:
        A :class:`~repro.radio.profiles.RadioProfile` or its name.
    signal_model:
        Any :class:`~repro.radio.signal.SignalModel`; ``None`` means
        the paper's sinusoid.
    buffer_capacity_s:
        Client playback buffer cap in seconds (``None`` = unbounded,
        as the paper implies).
    background:
        Optional non-video downlink load competing inside the BS.
    fetch_ahead_kb:
        Gateway Data Receiver origin-fetch window.
    seed:
        Workload RNG seed; identical seeds give identical workloads
        across schedulers (the comparisons rely on this).
    arrival_process:
        How session start slots are drawn: ``"all_at_zero"`` (default —
        the paper's fixed population, bit-identical to the historical
        behaviour and consuming no RNG), ``"poisson"`` (exponential
        inter-arrival gaps at ``arrival_rate_per_slot``; sessions may
        land beyond the horizon and then never arrive), or ``"trace"``
        (explicit per-user slots from ``arrival_trace``).
    arrival_rate_per_slot:
        Mean arrivals per slot for the Poisson process (required by —
        and only valid with — ``arrival_process="poisson"``).
    arrival_trace:
        Tuple of ``n_users`` non-negative arrival slots (required by —
        and only valid with — ``arrival_process="trace"``).
    admission:
        Admission policy consulted when a session arrives:
        ``"accept-all"`` (default), ``"capacity-threshold"``
        (cap concurrent sessions at ``admission_max_active``) or
        ``"budget-aware"`` (admit while every active session can still
        be guaranteed ``admission_min_units_per_user`` data units of
        the nominal per-slot budget).  Anything except the default
        routes the run through the dynamic session-lifecycle engine
        (see :attr:`has_churn`).
    admission_max_active:
        Concurrent-session cap for ``admission="capacity-threshold"``.
    admission_min_units_per_user:
        Per-user unit guarantee for ``admission="budget-aware"``.
    faults:
        Optional :class:`~repro.faults.FaultPlan` injecting signal
        blackouts, BS capacity outage/degradation windows, and per-flow
        delivery stalls into the run.  ``None`` (default) is the
        healthy-cell path, bit-identical to every prior release; the
        plan draws nothing from the workload RNG, so attaching one
        never perturbs the generated workload.  When ``None``, an
        ambient plan installed with
        :func:`repro.faults.use_fault_plan` applies instead
        (``repro-experiments --faults``).
    kernel_backend:
        Kernel dispatch backend for the run: ``"numpy"``, ``"numba"``,
        ``"python"`` or ``"auto"`` (numba when importable).  ``None``
        defers to the ambient selection
        (:func:`repro.kernels.set_backend` /
        ``$REPRO_KERNEL_BACKEND`` / auto).  All backends produce
        bit-identical results (guarded by
        ``tests/integration/test_backend_equivalence.py``).
    """

    n_users: int = constants.DEFAULT_N_USERS
    n_slots: int = constants.DEFAULT_N_SLOTS
    tau_s: float = constants.DEFAULT_TAU_S
    delta_kb: float = constants.DEFAULT_DELTA_KB
    capacity_kbps: float = constants.BS_CAPACITY_KBPS
    video_size_range_kb: tuple[float, float] = (
        constants.VIDEO_SIZE_MIN_KB,
        constants.VIDEO_SIZE_MAX_KB,
    )
    rate_range_kbps: tuple[float, float] = (
        constants.DATA_RATE_MIN_KBPS,
        constants.DATA_RATE_MAX_KBPS,
    )
    vbr_segments: int = 0
    mean_video_size_kb: float | None = None
    profile: RadioProfile | str = "umts-3g"
    signal_model: SignalModel | None = None
    buffer_capacity_s: float | None = None
    background: BackgroundTraffic | None = None
    fetch_ahead_kb: float = float("inf")
    seed: int = 0
    arrival_process: str = "all_at_zero"
    arrival_rate_per_slot: float | None = None
    arrival_trace: tuple[int, ...] | None = None
    admission: str = "accept-all"
    admission_max_active: int | None = None
    admission_min_units_per_user: int | None = None
    faults: FaultPlan | None = None
    kernel_backend: str | None = None

    def __post_init__(self) -> None:
        if self.n_users <= 0 or self.n_slots <= 0:
            raise ConfigurationError("n_users and n_slots must be positive")
        if self.tau_s <= 0 or self.delta_kb <= 0 or self.capacity_kbps <= 0:
            raise ConfigurationError("tau_s, delta_kb, capacity_kbps must be positive")
        lo, hi = self.video_size_range_kb
        if not 0 < lo <= hi:
            raise ConfigurationError("invalid video size range")
        rlo, rhi = self.rate_range_kbps
        if not 0 < rlo <= rhi:
            raise ConfigurationError("invalid rate range")
        if self.vbr_segments < 0:
            raise ConfigurationError("vbr_segments must be >= 0")
        if self.mean_video_size_kb is not None and self.mean_video_size_kb <= 0:
            raise ConfigurationError("mean_video_size_kb must be positive")
        if self.buffer_capacity_s is not None and self.buffer_capacity_s <= 0:
            raise ConfigurationError("buffer_capacity_s must be positive")
        self._validate_lifecycle()
        if self.faults is not None:
            if not isinstance(self.faults, FaultPlan):
                raise ConfigurationError(
                    f"faults must be a FaultPlan, got {type(self.faults).__name__}"
                )
            self.faults.validate_for(self.n_users)
        if self.kernel_backend is not None:
            from repro.kernels.backend import BACKEND_CHOICES

            if self.kernel_backend not in BACKEND_CHOICES:
                raise ConfigurationError(
                    f"kernel_backend must be one of {BACKEND_CHOICES}, "
                    f"got {self.kernel_backend!r}"
                )

    def _validate_lifecycle(self) -> None:
        from repro.sim.arrivals import ARRIVAL_PROCESSES

        if self.arrival_process not in ARRIVAL_PROCESSES:
            raise ConfigurationError(
                f"arrival_process must be one of {ARRIVAL_PROCESSES}, "
                f"got {self.arrival_process!r}"
            )
        if self.arrival_process == "poisson":
            if self.arrival_rate_per_slot is None or self.arrival_rate_per_slot <= 0:
                raise ConfigurationError(
                    "arrival_process='poisson' requires a positive arrival_rate_per_slot"
                )
        elif self.arrival_rate_per_slot is not None:
            raise ConfigurationError(
                "arrival_rate_per_slot is only valid with arrival_process='poisson'"
            )
        if self.arrival_process == "trace":
            trace = self.arrival_trace
            if trace is None or len(trace) != self.n_users:
                raise ConfigurationError(
                    "arrival_process='trace' requires arrival_trace with one "
                    "slot per user"
                )
            if any(int(s) < 0 for s in trace):
                raise ConfigurationError("arrival_trace slots must be >= 0")
        elif self.arrival_trace is not None:
            raise ConfigurationError(
                "arrival_trace is only valid with arrival_process='trace'"
            )

        from repro.core.admission import ADMISSION_POLICIES

        if self.admission not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"admission must be one of {ADMISSION_POLICIES}, "
                f"got {self.admission!r}"
            )
        if self.admission == "capacity-threshold":
            if self.admission_max_active is None or self.admission_max_active <= 0:
                raise ConfigurationError(
                    "admission='capacity-threshold' requires a positive "
                    "admission_max_active"
                )
        elif self.admission_max_active is not None:
            raise ConfigurationError(
                "admission_max_active is only valid with admission='capacity-threshold'"
            )
        if self.admission == "budget-aware":
            if (
                self.admission_min_units_per_user is None
                or self.admission_min_units_per_user <= 0
            ):
                raise ConfigurationError(
                    "admission='budget-aware' requires a positive "
                    "admission_min_units_per_user"
                )
        elif self.admission_min_units_per_user is not None:
            raise ConfigurationError(
                "admission_min_units_per_user is only valid with "
                "admission='budget-aware'"
            )

    @property
    def has_churn(self) -> bool:
        """Whether the run needs the dynamic session-lifecycle engine.

        The default ``all_at_zero`` + ``accept-all`` combination takes
        the historical fixed-population path and stays bit-identical to
        every prior release; anything else routes through the growable
        fleet with admission control and session retirement.
        """
        return self.arrival_process != "all_at_zero" or self.admission != "accept-all"

    @property
    def radio(self) -> RadioProfile:
        """The resolved radio profile object."""
        if isinstance(self.profile, RadioProfile):
            return self.profile
        return get_profile(self.profile)

    def make_signal_model(self) -> SignalModel:
        """The signal model, defaulting to the paper's sinusoid."""
        if self.signal_model is not None:
            return self.signal_model
        return SinusoidSignalModel()

    @property
    def unit_budget_per_slot(self) -> int:
        """Constraint (2) unit budget at the nominal capacity."""
        return int(self.tau_s * self.capacity_kbps // self.delta_kb)

    def with_(self, **changes: Any) -> "SimConfig":
        """A modified copy (sweep helper): ``cfg.with_(n_users=20)``."""
        return replace(self, **changes)
