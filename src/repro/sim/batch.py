"""Run-stacked batch execution: R compatible runs, one slot loop.

Every figure in the paper aggregates many *independent* runs — seeds,
sweep points, calibration grids.  The serial path pays the full
per-slot Python cost (engine loop, gateway dispatch, kernel launch)
once per run; :func:`run_batch` instead stacks R shape-compatible runs
into a single ``(R*N,)``-row :class:`~repro.media.fleet.ClientFleet` /
:class:`~repro.radio.rrc.RRCFleet` with a per-run segment table and
executes ONE slot loop for all R runs, splitting per-run
:class:`~repro.sim.results.SimulationResult` objects at the end.

The contract is **bit-identity** with the serial path (guarded by
``tests/integration/test_batch_equivalence.py``).  It holds because:

* every fleet/RRC/arena/receiver operation in the slot pipeline is
  row-elementwise, so the run axis rides the row axis for free;
* the only cross-user couplings — the Eq. (2) budget in
  ``check_constraints`` / ``clip_to_constraints``, RTMA's rounds, and
  EMA's knapsack DP — are made segment-aware (per-run budgets via
  :class:`~repro.net.gateway.BatchSlotObservation`, the
  ``rtma_rounds_batch`` / ``ema_dp_batch`` kernels);
* reductions feeding results and metrics run on *contiguous* per-run
  copies, so NumPy's pairwise summation order matches the serial one;
* the Eq. (24) link/power tables are precomputed for all runs in one
  vectorized 2-D pass using the models' ``out=``-path (the same ufunc
  chain the serial arena path evaluates per slot).

Compatibility: stacked runs must share ``n_users``, ``n_slots``,
``tau_s``, ``delta_kb``, ``buffer_capacity_s``, ``fetch_ahead_kb``,
the radio profile, the kernel backend, and the scheduler *type*; BS
capacity, background traffic, seeds, signal models, and per-run
scheduler parameters (RTMA thresholds, EMA ``V``) may differ.
Dynamic-lifecycle runs (arrivals/admission) cannot be stacked.
:func:`batch_incompatibility` is the single oracle — the executor uses
it to decide which consecutive tasks may share a batch.

Instrumentation: batches run with metrics, the phase profiler, and
span recording (one profiler sample per phase per slot covers the
whole batch; per-run counters are derived after the loop exactly like
the serial engine derives them).  Per-slot trace events and the live
telemetry plane need per-run slot streams, so :meth:`BatchPlan.run`
transparently falls back to the serial engine when either is attached.
"""

from __future__ import annotations

import logging
import os
from time import perf_counter

import numpy as np

from repro.baselines.default import DefaultScheduler, NeedRateScheduler
from repro.baselines.estreamer import EStreamerScheduler
from repro.baselines.onoff import OnOffScheduler
from repro.baselines.salsa import SalsaScheduler
from repro.baselines.throttling import ThrottlingScheduler
from repro.core.allocation import check_constraints
from repro.core.ema import EMAScheduler
from repro.core.lyapunov import VirtualQueues
from repro.core.rtma import RTMAScheduler
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError, SimulationError
from repro.kernels import SlotArena, backend_info, use_backend
from repro.kernels import registry as kernel_registry
from repro.media.fleet import ClientFleet
from repro.net.basestation import BaseStation, ConstantCapacity
from repro.net.gateway import Gateway, SlotObservation
from repro.net.slicing import ResourceSlicer
from repro.obs.instrument import Instrumentation, current_instrumentation
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SLOT_PREFIX, activate_spans
from repro.radio.rrc import RRCFleet, fleet_occupancy_from_tx
from repro.sim.engine import SPAN_BLOCK_SLOTS, Simulation
from repro.sim.results import SimulationResult
from repro.sim.workload import generate_workload

__all__ = ["BatchPlan", "run_batch", "batch_incompatibility"]

log = logging.getLogger("repro.sim.batch")

#: Config fields that must be equal across every run of a batch (the
#: stacked fleet, receiver, RRC profile, and backend context are
#: shared).  ``capacity_kbps`` and ``background`` are deliberately
#: absent — each run keeps its own BS/slicer through the segment table.
_COMPAT_FIELDS = (
    "n_users",
    "n_slots",
    "tau_s",
    "delta_kb",
    "buffer_capacity_s",
    "fetch_ahead_kb",
    "profile",
    "kernel_backend",
    "arrival_process",
    "admission",
)

#: Baseline schedulers whose ``allocate`` is purely row-elementwise
#: (state auto-sized to the observation) followed by
#: ``clip_to_constraints``.  When every run carries equal parameters,
#: the first run's instance can serve the whole stacked row space
#: directly — each lane evolves exactly as it would in its own run.
_CLIP_SHARED_PARAMS: dict[type, tuple[str, ...]] = {
    DefaultScheduler: ("refill_trigger_s", "refill_high_s"),
    NeedRateScheduler: (),
    OnOffScheduler: ("low_threshold_s", "high_threshold_s"),
    ThrottlingScheduler: ("factor",),
    SalsaScheduler: ("v_salsa", "p_ref_mj_per_kb"),
    EStreamerScheduler: ("buffer_capacity_s", "refill_trigger_s"),
}


def batch_incompatibility(tasks) -> str | None:
    """Why ``tasks`` cannot share a batch, or ``None`` when they can.

    ``tasks`` are duck-typed run descriptions exposing ``.config`` and
    ``.scheduler`` (e.g. :class:`~repro.sim.executor.RunTask`).
    """
    tasks = list(tasks)
    if not tasks:
        return "empty task list"
    if os.environ.get("REPRO_SIM_PATH", "fleet") != "fleet":
        return "REPRO_SIM_PATH selects the object path (batching needs the fleet)"
    cfg0 = tasks[0].config
    for t in tasks:
        if t.config.has_churn:
            return "dynamic session lifecycle (arrivals/admission) cannot be stacked"
    if len(tasks) > 1:
        # Fault plans thread through the *serial* engine only; letting
        # a faulted run into the stacked loop would silently drop its
        # injections.  Single-task plans are fine — BatchPlan runs
        # singletons through the serial engine anyway.
        from repro.faults import current_fault_plan

        for t in tasks:
            if t.config.faults is not None and not t.config.faults.is_empty:
                return "fault plan attached (faults need the serial engine)"
        ambient = current_fault_plan()
        if ambient is not None and not ambient.is_empty:
            return "ambient fault plan active (faults need the serial engine)"
    for name in _COMPAT_FIELDS:
        v0 = getattr(cfg0, name)
        for t in tasks[1:]:
            if getattr(t.config, name) != v0:
                return f"config field {name!r} differs across runs"
    s_type = type(tasks[0].scheduler)
    for t in tasks[1:]:
        if type(t.scheduler) is not s_type:
            return "scheduler types differ across runs"
    if len(tasks) > 1:
        seen_ids = {id(t.scheduler) for t in tasks}
        if len(seen_ids) != len(tasks):
            return "the same scheduler instance appears in multiple runs"
    return None


def run_batch(tasks, instrumentation: Instrumentation | None = None):
    """Execute ``tasks`` as one run-stacked batch; results in task order.

    Bit-identical to ``[Simulation(t.config, t.scheduler, t.workload).run()
    for t in tasks]``.  Raises
    :class:`~repro.errors.ConfigurationError` when the tasks are not
    batch-compatible (see :func:`batch_incompatibility`).
    """
    tasks = list(tasks)
    if not tasks:
        return []
    return BatchPlan(tasks).run(instrumentation)


class BatchPlan:
    """R validated, workload-resolved runs ready for stacked execution."""

    def __init__(self, tasks):
        self.tasks = list(tasks)
        reason = batch_incompatibility(self.tasks)
        if reason is not None:
            raise ConfigurationError(f"runs cannot be batched: {reason}")
        #: One metrics state per run, in task order, populated by a
        #: stacked instrumented execution (empty on uninstrumented or
        #: serial-fallback runs).  Each state holds exactly the single
        #: increment per counter a serial run would apply, so merging
        #: them in task order — locally or across a process pool —
        #: reproduces the serial registry bit-for-bit.
        self.run_metric_states: list[dict] = []
        self.workloads = []
        for t in self.tasks:
            wl = getattr(t, "workload", None)
            if wl is None:
                wl = generate_workload(t.config)
            if wl.n_users != t.config.n_users:
                raise SimulationError(
                    f"workload has {wl.n_users} users, config says {t.config.n_users}"
                )
            if wl.n_slots < t.config.n_slots:
                raise SimulationError(
                    f"workload trace covers {wl.n_slots} slots, "
                    f"config needs {t.config.n_slots}"
                )
            self.workloads.append(wl)

    @property
    def n_runs(self) -> int:
        return len(self.tasks)

    def run(
        self, instrumentation: Instrumentation | None = None
    ) -> list[SimulationResult]:
        """Execute the batch (or fall back to serial when it must)."""
        instr = (
            instrumentation
            if instrumentation is not None
            else current_instrumentation()
        )
        self.run_metric_states = []
        if instr is not None and (instr.live is not None or instr.tracer.enabled):
            # Per-slot trace events and live telemetry consume per-run
            # slot streams a stacked loop cannot reproduce; run serially.
            return self._run_serial(instr)
        if len(self.tasks) == 1:
            return self._run_serial(instr)
        cfg = self.tasks[0].config
        if cfg.kernel_backend is not None:
            with use_backend(cfg.kernel_backend):
                return self._dispatch(instr)
        return self._dispatch(instr)

    def _run_serial(self, instr: Instrumentation | None) -> list[SimulationResult]:
        return [
            Simulation(t.config, t.scheduler, wl, instrumentation=instr).run()
            for t, wl in zip(self.tasks, self.workloads)
        ]

    def _dispatch(self, instr: Instrumentation | None) -> list[SimulationResult]:
        spans = instr.spans if instr is not None else None
        if spans is None:
            return self._execute(instr)
        with activate_spans(spans), spans.span("run"):
            return self._execute(instr)

    # -- scheduler stacking ---------------------------------------------------

    def _make_scheduler(self, run_offsets: np.ndarray):
        scheds = [t.scheduler for t in self.tasks]
        s0 = scheds[0]
        s_type = type(s0)
        n_per_run = int(run_offsets[1] - run_offsets[0])
        if s_type is RTMAScheduler:
            return _BatchRTMA(scheds, run_offsets)
        if s_type is EMAScheduler:
            if all(s.n_users == n_per_run for s in scheds) and all(
                s.tau_s == s0.tau_s for s in scheds
            ):
                return _BatchEMA(scheds, run_offsets)
            return _SlicedBatch(scheds, run_offsets)
        params = _CLIP_SHARED_PARAMS.get(s_type)
        if params is not None and all(
            getattr(s, a) == getattr(s0, a) for s in scheds[1:] for a in params
        ):
            return s0
        return _SlicedBatch(scheds, run_offsets)

    # -- the stacked slot loop ------------------------------------------------

    def _execute(self, instr: Instrumentation | None) -> list[SimulationResult]:
        tasks, workloads = self.tasks, self.workloads
        cfg = tasks[0].config
        radio = cfg.radio
        n_runs = len(tasks)
        n_per_run, gamma = cfg.n_users, cfg.n_slots
        total = n_runs * n_per_run
        run_offsets = np.arange(n_runs + 1, dtype=np.int64) * n_per_run

        instrumented = instr is not None
        spans = instr.spans if instrumented else None
        spans_on = spans is not None
        if instrumented:
            prof = instr.profiler
            _pc = perf_counter
            rec_playback = prof.samples("playback").append
            prof.samples("observe")
            prof.samples("schedule")
            prof.samples("transmit")
            rec_rrc = prof.samples("rrc").append
            rec_feedback = prof.samples("feedback").append
            budgets_grid = np.zeros((gamma, n_runs), dtype=np.int64)
        if spans_on:
            rec_block = spans.adder(spans.path_node(SLOT_PREFIX))
            _span_phase_ids = {
                ph: spans.slot_phase_id(ph)
                for ph in (
                    "playback", "observe", "schedule", "transmit",
                    "rrc", "feedback",
                )
            }
            _span_phase_base = {
                ph: len(prof.samples(ph)) for ph in _span_phase_ids
            }

            def _fold_phase_spans() -> None:
                for ph, node in _span_phase_ids.items():
                    tail = prof.samples(ph)[_span_phase_base[ph]:]
                    if tail:
                        spans.add_bulk(node, len(tail), float(sum(sorted(tail))))

        scheduler = self._make_scheduler(run_offsets)
        scheduler.reset()
        scheduler.bind_instrumentation(instr)

        flows_all = [f for wl in workloads for f in wl.flows]
        fleet = ClientFleet(flows_all, cfg.tau_s, cfg.buffer_capacity_s)
        arena = SlotArena(total)
        bs = BaseStation(
            ConstantCapacity(cfg.capacity_kbps), cfg.delta_kb, cfg.tau_s
        )
        gateway = Gateway(
            scheduler, bs, total, fetch_ahead_kb=cfg.fetch_ahead_kb
        )
        rrc = RRCFleet(total, radio.rrc)

        # Per-run Eq. (2) budgets through each run's own BS capacity
        # model and slicer, evaluated with the serial scalar chain.
        # Without background traffic both are slot-invariant, so one
        # evaluation covers the horizon; otherwise precompute the
        # (gamma, R) table up front (run-major so any stateful slicer
        # sees its run's slots in serial order).
        bss = [
            BaseStation(
                ConstantCapacity(t.config.capacity_kbps), cfg.delta_kb, cfg.tau_s
            )
            for t in tasks
        ]
        slicers = [
            ResourceSlicer(t.config.background)
            if t.config.background
            else ResourceSlicer()
            for t in tasks
        ]
        static_budget = all(t.config.background is None for t in tasks)
        if static_budget:
            run_caps = np.array(
                [
                    sl.video_capacity_kbps(b.capacity_kbps(0), 0)
                    for sl, b in zip(slicers, bss)
                ],
                dtype=float,
            )
            run_budgets = np.floor(
                cfg.tau_s * run_caps / cfg.delta_kb
            ).astype(np.int64)
        else:
            cap_table = np.empty((gamma, n_runs), dtype=float)
            for r, (sl, b) in enumerate(zip(slicers, bss)):
                for slot in range(gamma):
                    cap_table[slot, r] = sl.video_capacity_kbps(
                        b.capacity_kbps(slot), slot
                    )
            budget_table = np.floor(
                cfg.tau_s * cap_table / cfg.delta_kb
            ).astype(np.int64)

        # Stack the signal traces and precompute the Eq. (24) link and
        # power tables for every run in one vectorized 2-D pass — this
        # is also where the redundant per-seed fit-constant evaluation
        # of the serial path collapses into a single call per batch.
        # The out=-path is used on purpose: it is the exact ufunc chain
        # the serial arena path evaluates per slot, so every table row
        # is bitwise equal to the serial per-slot evaluation.
        signal = np.concatenate(
            [wl.signal_dbm[:gamma] for wl in workloads], axis=1
        )
        link_table = np.empty((gamma, total), dtype=np.int64)
        p_table = np.empty((gamma, total), dtype=float)
        scratch2d = np.empty((gamma, total), dtype=float)
        radio.throughput.max_units(
            signal, cfg.tau_s, cfg.delta_kb, out=link_table, scratch=scratch2d
        )
        radio.power.p(signal, out=p_table, scratch=scratch2d)
        del scratch2d

        alloc = np.zeros((gamma, total), dtype=np.int64)
        delivered = np.zeros((gamma, total), dtype=float)
        rebuf = np.zeros((gamma, total), dtype=float)
        e_trans = np.zeros((gamma, total), dtype=float)
        e_tail = np.zeros((gamma, total), dtype=float)
        buffer_s = np.zeros((gamma, total), dtype=float)
        need_kb = np.zeros((gamma, total), dtype=float)
        active_rec = np.zeros((gamma, total), dtype=bool)
        completion = np.full(total, -1, dtype=np.int64)
        arrivals = np.array([f.arrival_slot for f in flows_all], dtype=np.int64)

        if spans_on:
            span_block_start = 0
            _block_t0 = perf_counter()

        slot = -1
        try:
            for slot in range(gamma):
                # 1. Playback: Eq. (7)/(8) across all R runs at once.
                if instrumented:
                    _t0 = _pc()
                fleet.begin_slot(slot, out=rebuf[slot])
                newly_done = fleet.playback_complete_into(
                    arena.b1_tmp, arena.f8_tmp, arena.tx_mask
                )
                np.less(completion, 0, out=arena.tx_mask)
                np.logical_and(newly_done, arena.tx_mask, out=newly_done)
                np.less_equal(arrivals, slot, out=arena.tx_mask)
                np.logical_and(newly_done, arena.tx_mask, out=newly_done)
                if newly_done.any():
                    completion[newly_done] = slot
                if instrumented:
                    rec_playback(_pc() - _t0)

                # 2-4. Observe, schedule, transmit (timed in the gateway).
                idle_cost = rrc.expected_idle_cost_mj(
                    cfg.tau_s, out=arena.idle_tail_cost_mj
                )
                if static_budget:
                    run_caps_row = run_caps
                    run_budgets_row = run_budgets
                else:
                    run_caps_row = cap_table[slot]
                    run_budgets_row = budget_table[slot]
                obs, phi, sent_kb = gateway.step_batch(
                    slot,
                    signal[slot],
                    flows_all,
                    fleet,
                    link_table[slot],
                    p_table[slot],
                    idle_cost,
                    run_offsets,
                    run_budgets_row,
                    run_caps_row,
                    arena,
                    instrumentation=instr,
                )
                check_constraints(phi, obs)
                np.multiply(phi, cfg.delta_kb, out=arena.f8_tmp)
                np.add(arena.f8_tmp, 1e-9, out=arena.f8_tmp)
                np.greater(sent_kb, arena.f8_tmp, out=arena.b1_tmp)
                if arena.b1_tmp.any():
                    raise SimulationError(
                        f"slot {slot}: delivered more than allocated"
                    )

                # 5. Radio energy accounting (Eq. 5: trans XOR tail).
                if instrumented:
                    _t0 = _pc()
                tx_mask = np.greater(sent_kb, 0.0, out=arena.tx_mask)
                np.multiply(obs.p_mj_per_kb, sent_kb, out=e_trans[slot])
                rrc.step(tx_mask, cfg.tau_s, out=e_tail[slot])
                if instrumented:
                    rec_rrc(_pc() - _t0)

                # 6. Scheduler feedback.
                if instrumented:
                    _t0 = _pc()
                scheduler.notify(obs, phi, sent_kb)
                if instrumented:
                    rec_feedback(_pc() - _t0)

                alloc[slot] = phi
                delivered[slot] = sent_kb
                buffer_s[slot] = obs.buffer_s
                np.multiply(obs.rate_kbps, cfg.tau_s, out=need_kb[slot])
                active_rec[slot] = obs.active

                if instrumented:
                    budgets_grid[slot] = run_budgets_row
                if spans_on and (
                    slot - span_block_start + 1 >= SPAN_BLOCK_SLOTS
                    or slot == gamma - 1
                ):
                    rec_block(_pc() - _block_t0)
                    span_block_start = slot + 1
                    _block_t0 = _pc()
        except BaseException as exc:
            if instrumented:
                log.warning(
                    "batch of %d runs aborted at slot %d: %s: %s",
                    n_runs,
                    slot,
                    type(exc).__name__,
                    exc,
                )
                if spans_on:
                    _fold_phase_spans()
                instr.close()
            raise

        if spans_on:
            _fold_phase_spans()

        if not np.all(np.isfinite(e_trans)):
            raise SimulationError("non-finite transmission energy recorded")

        # Split per-run results in task order.  Each grid slice is
        # copied C-contiguous before any reduction, so NumPy's pairwise
        # summation visits exactly the elements (in exactly the layout)
        # a serial run would reduce — sums, summaries, and the derived
        # metric counters match the serial path bit-for-bit.
        results: list[SimulationResult] = []
        phase_timings = instr.profiler.summary() if instrumented else None
        for r, task in enumerate(tasks):
            lo = int(run_offsets[r])
            hi = int(run_offsets[r + 1])
            alloc_r = np.ascontiguousarray(alloc[:, lo:hi])
            delivered_r = np.ascontiguousarray(delivered[:, lo:hi])
            rebuf_r = np.ascontiguousarray(rebuf[:, lo:hi])
            e_trans_r = np.ascontiguousarray(e_trans[:, lo:hi])
            e_tail_r = np.ascontiguousarray(e_tail[:, lo:hi])
            buffer_r = np.ascontiguousarray(buffer_s[:, lo:hi])
            need_r = np.ascontiguousarray(need_kb[:, lo:hi])
            active_r = np.ascontiguousarray(active_rec[:, lo:hi])
            if instrumented:
                # Each run's registry accounting goes into its own
                # fresh registry, merged into the live bundle in task
                # order.  Every counter receives exactly one increment
                # per run (as in the serial engine), so the merged
                # parent registry — here, or across a process pool
                # shipping these states home — equals the serially
                # populated one bit-for-bit.
                reg = MetricsRegistry()
                kinfo = backend_info()
                reg.gauge("kernels.backend").set(kinfo["resolved"])
                reg.gauge("kernels.requested").set(kinfo["requested"])
                if kinfo["numba_version"] is not None:
                    reg.gauge("kernels.numba_version").set(
                        kinfo["numba_version"]
                    )
                reg.counter("engine.slots").inc(gamma)
                reg.counter("energy.trans_mj").inc(float(e_trans_r.sum()))
                reg.counter("rrc.tail_mj").inc(float(e_tail_r.sum()))
                occupancy = fleet_occupancy_from_tx(
                    delivered_r > 0.0, cfg.tau_s, radio.rrc
                )
                reg.counter("rrc.occupancy.dch").inc(occupancy["dch"])
                reg.counter("rrc.occupancy.fach").inc(occupancy["fach"])
                reg.counter("rrc.occupancy.idle").inc(occupancy["idle"])
                reg.counter("scheduler.invocations").inc(gamma)
                budgets_r = np.ascontiguousarray(budgets_grid[:, r])
                used_units = alloc_r.sum(axis=1)
                near_miss = int(
                    np.count_nonzero(
                        (budgets_r > 0) & (used_units > 0.9 * budgets_r)
                    )
                )
                reg.counter("allocation.near_miss").inc(near_miss)
                truncated = float(
                    np.maximum(alloc_r * cfg.delta_kb - delivered_r, 0.0).sum()
                )
                reg.counter("allocation.truncated_kb").inc(truncated)
                if r == 0:
                    reg.counter("batch.runs").inc(n_runs)
                    reg.counter("batch.slots").inc(gamma)
                if r == n_runs - 1:
                    # Scheduler adapters publish their final gauge
                    # state (e.g. EMA's virtual queues) into the last
                    # run's registry — gauges are last-write-wins, so
                    # the merged value matches a serial run sequence.
                    finalize = getattr(scheduler, "finalize_batch", None)
                    if finalize is not None:
                        finalize(reg)
                state = reg.state()
                self.run_metric_states.append(state)
                instr.metrics.merge_state(state)
            results.append(
                SimulationResult(
                    scheduler_name=getattr(
                        task.scheduler, "name", type(task.scheduler).__name__
                    ),
                    config=task.config,
                    allocation_units=alloc_r,
                    delivered_kb=delivered_r,
                    rebuffering_s=rebuf_r,
                    energy_trans_mj=e_trans_r,
                    energy_tail_mj=e_tail_r,
                    buffer_s=buffer_r,
                    need_kb=need_r,
                    active=active_r,
                    completion_slot=completion[lo:hi].copy(),
                    arrival_slot=arrivals[lo:hi].copy(),
                    phase_timings=phase_timings,
                )
            )
        return results


# -- scheduler adapters -------------------------------------------------------


class _BatchRTMA(Scheduler):
    """R :class:`~repro.core.rtma.RTMAScheduler` runs on stacked rows.

    Per-run thresholds broadcast to per-lane arrays; the eligibility,
    need, and cap chains are the serial ufunc chains evaluated on the
    stacked rows, the rate order is a per-run 2-D stable argsort (row
    ``r`` equals run ``r``'s serial 1-D stable argsort), and the
    ``rtma_rounds_batch`` kernel runs the serial round body per
    segment against that run's budget.
    """

    name = "rtma"

    def __init__(self, scheds, run_offsets: np.ndarray):
        self.scheds = list(scheds)
        self.run_offsets = run_offsets
        self.n_runs = len(self.scheds)
        self.n_per_run = int(run_offsets[1] - run_offsets[0])
        n_total = int(run_offsets[-1])
        self._thr_lanes = np.repeat(
            np.array([s.sig_threshold_dbm for s in self.scheds], dtype=float),
            self.n_per_run,
        )
        self._eligible = np.empty(n_total, dtype=bool)
        self._b_tmp = np.empty(n_total, dtype=bool)
        self._need = np.empty(n_total, dtype=np.int64)
        self._cap = np.empty(n_total, dtype=np.int64)
        self._f_tmp = np.empty(n_total, dtype=float)
        self._kernel = None

    def allocate(self, obs: SlotObservation) -> np.ndarray:
        phi = self._zeros(obs)
        eligible = self._eligible
        np.greater_equal(obs.sig_dbm, self._thr_lanes, out=eligible)
        np.logical_and(eligible, obs.active, out=eligible)
        np.greater(obs.link_units, 0, out=self._b_tmp)
        np.logical_and(eligible, self._b_tmp, out=eligible)
        if not np.any(eligible):
            return phi

        f = self._f_tmp
        need = self._need
        np.multiply(obs.rate_kbps, obs.tau_s, out=f)
        np.divide(f, obs.delta_kb, out=f)
        np.ceil(f, out=f)
        np.copyto(need, f, casting="unsafe")
        np.maximum(need, 1, out=need)
        cap = self._cap
        np.minimum(obs.remaining_kb, obs.receivable_kb, out=f)
        np.divide(f, obs.delta_kb, out=f)
        np.ceil(f, out=f)
        np.copyto(cap, f, casting="unsafe")
        np.minimum(obs.link_units, cap, out=cap)

        order = np.argsort(
            obs.rate_kbps.reshape(self.n_runs, self.n_per_run),
            axis=1,
            kind="stable",
        ).reshape(-1)
        if self._kernel is None:
            self._kernel = kernel_registry.resolve("rtma_rounds_batch")
        self._kernel(
            phi, eligible, need, cap, order,
            obs.run_unit_budgets, self.run_offsets,
        )
        return phi

    def reset(self) -> None:
        for s in self.scheds:
            s.reset()
        self._kernel = None


class _BatchEMA(Scheduler):
    """R :class:`~repro.core.ema.EMAScheduler` runs on stacked rows.

    One stacked :class:`~repro.core.lyapunov.VirtualQueues` holds every
    run's ``PC_i``; per-run scalars (``V``, queue floor, seeding) become
    per-lane arrays, and the serial coefficient chain runs on the
    packed active rows of all runs at once — every operation is
    elementwise, so each lane sees exactly its serial arithmetic.  The
    ``ema_dp_batch`` kernel then solves each run's knapsack against its
    own budget.
    """

    name = "ema"

    def __init__(self, scheds, run_offsets: np.ndarray):
        self.scheds = list(scheds)
        self.run_offsets = run_offsets
        self.n_runs = len(self.scheds)
        self.n_per_run = int(run_offsets[1] - run_offsets[0])
        n_total = int(run_offsets[-1])
        self.n_total = n_total
        self.tau_s = self.scheds[0].tau_s
        self.queues = VirtualQueues(n_total, self.tau_s)
        self._initialized = np.zeros(n_total, dtype=bool)

        rep = self.n_per_run
        self._v_lanes = np.repeat(
            np.array([s.v_param for s in self.scheds], dtype=float), rep
        )
        self._has_floor = any(s.queue_floor_s is not None for s in self.scheds)
        self._floor_lanes = np.repeat(
            np.array(
                [
                    -np.inf if s.queue_floor_s is None else float(s.queue_floor_s)
                    for s in self.scheds
                ],
                dtype=float,
            ),
            rep,
        )
        self._auto_lanes = np.repeat(
            np.array(
                [isinstance(s.queue_init, str) for s in self.scheds], dtype=bool
            ),
            rep,
        )
        self._all_auto = bool(self._auto_lanes.all())
        self._init_lanes = np.repeat(
            np.array(
                [
                    0.0 if isinstance(s.queue_init, str) else float(s.queue_init)
                    for s in self.scheds
                ],
                dtype=float,
            ),
            rep,
        )
        # Serial seeding computes the python-float product
        # v_param * typical_p before broadcasting over rates; repeat
        # that exact scalar product per lane.
        self._vp_lanes = np.repeat(
            np.array(
                [float(s.v_param * s.typical_p_mj_per_kb) for s in self.scheds],
                dtype=float,
            ),
            rep,
        )

        # Coefficient scratch over the packed active rows (worst case
        # every row active), mirroring _EmaScratch's layout.
        self._p = np.empty(n_total, dtype=float)
        self._rate = np.empty(n_total, dtype=float)
        self._pc = np.empty(n_total, dtype=float)
        self._tmp = np.empty(n_total, dtype=float)
        self._f1 = np.empty(n_total, dtype=float)
        self._f2 = np.empty(n_total, dtype=float)
        self._slope = np.empty(n_total, dtype=float)
        self._const = np.empty(n_total, dtype=float)
        self._idle = np.empty(n_total, dtype=float)
        self._useful = np.empty(n_total, dtype=np.int64)
        self._w_eff = np.empty(n_total, dtype=np.int64)
        self._origin = np.empty(n_total, dtype=np.int64)
        self._mask = np.empty(n_total, dtype=bool)
        self._nst_lanes = np.empty(n_total, dtype=np.int64)
        self._v_act = np.empty(n_total, dtype=float)
        self._nst_act = np.empty(n_total, dtype=np.int64)
        self._rows_flat = np.empty(0, dtype=float)
        self._fscratch = np.empty(0, dtype=float)
        self._iscratch = np.empty(0, dtype=np.int64)
        self._m_idx = np.empty(0, dtype=float)
        self._kernel = None

    def _dp_capacity(self, rows_needed: int, n_states: int) -> None:
        if self._rows_flat.size < rows_needed:
            self._rows_flat = np.empty(rows_needed, dtype=float)
        if self._fscratch.size < 4 * n_states:
            self._fscratch = np.empty(4 * n_states, dtype=float)
        if self._iscratch.size < n_states:
            self._iscratch = np.empty(n_states, dtype=np.int64)
        if self._m_idx.size < n_states:
            self._m_idx = np.arange(n_states, dtype=float)

    def allocate(self, obs: SlotObservation) -> np.ndarray:
        phi = self._zeros(obs)
        self._seed_queues(obs)
        active_idx = np.flatnonzero(obs.active)
        budgets = obs.run_unit_budgets
        if active_idx.size == 0 or not np.any(budgets > 0):
            return phi
        act_bounds = np.searchsorted(active_idx, self.run_offsets).astype(
            np.int64
        )

        pc = self.queues.values
        tau = self.tau_s
        delta = obs.delta_kb
        n_active = int(active_idx.size)

        # The serial coefficient chain with per-lane V in place of the
        # scalar; every op is elementwise, so the packed vector is the
        # concatenation of the runs' serial vectors.
        p_act = np.take(obs.p_mj_per_kb, active_idx, out=self._p[:n_active])
        rate_act = np.take(obs.rate_kbps, active_idx, out=self._rate[:n_active])
        pc_act = np.take(pc, active_idx, out=self._pc[:n_active])
        v_act = np.take(self._v_lanes, active_idx, out=self._v_act[:n_active])
        const_act = self._const[:n_active]
        np.multiply(pc_act, tau, out=const_act)
        idle_act = self._idle[:n_active]
        np.take(obs.idle_tail_cost_mj, active_idx, out=idle_act)
        np.multiply(idle_act, v_act, out=idle_act)
        np.add(const_act, idle_act, out=idle_act)
        slope_act = self._slope[:n_active]
        tmp = self._tmp[:n_active]
        with np.errstate(invalid="ignore"):
            np.multiply(p_act, v_act, out=slope_act)
            np.divide(pc_act, rate_act, out=tmp)
            np.subtract(slope_act, tmp, out=slope_act)
            np.multiply(slope_act, delta, out=slope_act)

        # Per-run n_states = budget + 1 broadcast to lanes, then the
        # serial w_eff chain with the per-lane array in the final
        # np.minimum.
        nst2 = self._nst_lanes.reshape(self.n_runs, self.n_per_run)
        nst2[:, :] = (budgets + 1)[:, None]
        sendable = np.take(obs.remaining_kb, active_idx, out=self._f1[:n_active])
        recv = np.take(obs.receivable_kb, active_idx, out=self._f2[:n_active])
        np.minimum(sendable, recv, out=sendable)
        np.divide(sendable, delta, out=sendable)
        np.ceil(sendable, out=sendable)
        useful = self._useful[:n_active]
        np.copyto(useful, sendable, casting="unsafe")
        w_eff = self._w_eff[:n_active]
        np.take(obs.link_units, active_idx, out=w_eff)
        np.minimum(w_eff, useful, out=w_eff)
        nst_act = np.take(
            self._nst_lanes, active_idx, out=self._nst_act[:n_active]
        )
        np.minimum(w_eff, nst_act, out=w_eff)
        mask = self._mask[:n_active]
        np.isfinite(p_act, out=mask)
        np.logical_not(mask, out=mask)
        np.copyto(w_eff, 0, where=mask)
        origin_act = self._origin[:n_active]
        np.floor_divide(w_eff, 2, out=origin_act)
        np.subtract(w_eff, origin_act, out=origin_act)
        np.subtract(origin_act, 1, out=origin_act)

        seg_sizes = np.diff(act_bounds)
        na_max = int(seg_sizes.max())
        ns_max = int(budgets.max()) + 1
        self._dp_capacity(na_max * ns_max, ns_max)
        if self._kernel is None:
            self._kernel = kernel_registry.resolve("ema_dp_batch")
        self._kernel(
            phi,
            active_idx,
            act_bounds,
            budgets,
            w_eff,
            origin_act,
            slope_act,
            const_act,
            idle_act,
            self._rows_flat,
            self._m_idx,
            self._fscratch,
            self._iscratch,
        )
        return phi

    def _seed_queues(self, obs: SlotObservation) -> None:
        fresh = obs.active & ~self._initialized
        if not np.any(fresh):
            return
        seed = self._vp_lanes * obs.rate_kbps
        if not self._all_auto:
            seed = np.where(self._auto_lanes, seed, self._init_lanes)
        self.queues.values = np.where(fresh, seed, self.queues.values)
        self._initialized |= fresh

    def notify(
        self, obs: SlotObservation, phi: np.ndarray, delivered_kb: np.ndarray
    ) -> None:
        t = np.asarray(delivered_kb, dtype=float) / obs.rate_kbps
        self.queues.update(t, obs.active)
        if self._has_floor:
            # Floorless lanes carry -inf: np.maximum(x, -inf) is the
            # bitwise identity for the non-NaN values PC_i takes.
            np.maximum(
                self.queues.values, self._floor_lanes, out=self.queues.values
            )

    def finalize_batch(self, metrics) -> None:
        """Publish the serial run sequence's *final* gauge state.

        Serial runs publish ``ema.virtual_queues`` after every slot;
        gauges are last-write-wins, so the post-sequence state is the
        last run's final queues — exactly this batch's last lane slice.
        ``metrics`` is the last run's per-run registry.
        """
        lo = int(self.run_offsets[-2])
        hi = int(self.run_offsets[-1])
        pc = self.queues.values[lo:hi].copy()
        metrics.gauge("ema.virtual_queues").set(pc)
        metrics.gauge("ema.virtual_queue_max_s").set(float(pc.max()))

    def reset(self) -> None:
        self.queues = VirtualQueues(self.n_total, self.tau_s)
        self._initialized[:] = False
        self._kernel = None
        for s in self.scheds:
            s.reset()


class _SlicedBatch(Scheduler):
    """Fallback adapter: per-run schedulers on per-run observation views.

    Always bit-identical for *any* scheduler (including the error it
    would raise): each run's instance sees a plain
    :class:`~repro.net.gateway.SlotObservation` whose arrays are that
    run's contiguous row segment and whose budget/capacity are that
    run's scalars.  Used when runs carry unequal baseline parameters or
    a scheduler type the stacking adapters don't know.
    """

    def __init__(self, scheds, run_offsets: np.ndarray):
        self.scheds = list(scheds)
        self.run_offsets = run_offsets
        self.name = getattr(self.scheds[0], "name", type(self.scheds[0]).__name__)
        self._last_obs: list[SlotObservation] | None = None

    def bind_instrumentation(self, instrumentation) -> None:
        self.instrumentation = instrumentation
        for s in self.scheds:
            s.bind_instrumentation(instrumentation)

    def allocate(self, obs: SlotObservation) -> np.ndarray:
        phi = np.zeros(obs.n_users, dtype=np.int64)
        off = self.run_offsets
        views = []
        for r, s in enumerate(self.scheds):
            lo = int(off[r])
            hi = int(off[r + 1])
            obs_r = SlotObservation(
                slot=obs.slot,
                tau_s=obs.tau_s,
                delta_kb=obs.delta_kb,
                capacity_kbps=float(obs.run_capacity_kbps[r]),
                unit_budget=int(obs.run_unit_budgets[r]),
                sig_dbm=obs.sig_dbm[lo:hi],
                rate_kbps=obs.rate_kbps[lo:hi],
                link_units=obs.link_units[lo:hi],
                p_mj_per_kb=obs.p_mj_per_kb[lo:hi],
                active=obs.active[lo:hi],
                buffer_s=obs.buffer_s[lo:hi],
                remaining_kb=obs.remaining_kb[lo:hi],
                idle_tail_cost_mj=obs.idle_tail_cost_mj[lo:hi],
                receivable_kb=obs.receivable_kb[lo:hi],
            )
            views.append(obs_r)
            phi[lo:hi] = np.asarray(s.allocate(obs_r))
        self._last_obs = views
        return phi

    def notify(
        self, obs: SlotObservation, phi: np.ndarray, delivered_kb: np.ndarray
    ) -> None:
        views = self._last_obs
        off = self.run_offsets
        for r, s in enumerate(self.scheds):
            lo = int(off[r])
            hi = int(off[r + 1])
            s.notify(views[r], phi[lo:hi], delivered_kb[lo:hi])

    def reset(self) -> None:
        self._last_obs = None
        for s in self.scheds:
            s.reset()
