"""High-level run orchestration: comparisons, sweeps, calibration.

The paper's evaluation protocol has a two-stage structure: first run
the *default* strategy to measure ``E_default`` / ``R_default``, then
configure RTMA with ``Phi = alpha * E_default`` (or pick EMA's ``V``
for a rebuffering bound ``Omega = beta * R_default``) and re-run on
the **same workload**.  The helpers here encode that protocol so the
experiment scripts and benches stay declarative.

Every batched helper (comparisons, sweeps, multi-seed replication, the
calibration grids) routes its runs through
:func:`repro.sim.executor.map_runs`, so installing a pooled executor
(:func:`repro.sim.executor.use_executor`, or ``repro-experiments
--jobs N``) parallelises them with bit-identical results and metrics.
"""

from __future__ import annotations

import logging
import time
from collections.abc import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.baselines.default import DefaultScheduler
from repro.core.ema import EMAScheduler
from repro.core.rtma import RTMAScheduler
from repro.errors import ConfigurationError
from repro.obs.instrument import Instrumentation, current_instrumentation
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.executor import RunTask, map_runs
from repro.sim.results import SimulationResult
from repro.sim.workload import Workload, generate_workload

__all__ = [
    "run_scheduler",
    "compare_schedulers",
    "sweep",
    "default_reference",
    "calibrate_rtma_threshold",
    "make_rtma_for_alpha",
    "make_rtma_eq12",
    "calibrate_ema_v",
    "multi_seed",
]

log = logging.getLogger("repro.sim.runner")


def _resolve_instrumentation(
    instrumentation: Instrumentation | None,
) -> Instrumentation | None:
    """Explicit bundle wins; otherwise the ambient one (may be None)."""
    if instrumentation is not None:
        return instrumentation
    return current_instrumentation()


def run_scheduler(
    config: SimConfig,
    scheduler,
    workload: Workload | None = None,
    instrumentation: Instrumentation | None = None,
) -> SimulationResult:
    """Run one scheduler on one (optionally shared) workload."""
    return Simulation(config, scheduler, workload, instrumentation=instrumentation).run()


def compare_schedulers(
    config: SimConfig,
    schedulers: Mapping[str, object],
    workload: Workload | None = None,
    instrumentation: Instrumentation | None = None,
) -> dict[str, SimulationResult]:
    """Run several schedulers on the *identical* workload.

    Returns results keyed like the input mapping, preserving order.
    """
    if not schedulers:
        raise ConfigurationError("need at least one scheduler")
    wl = workload if workload is not None else generate_workload(config)
    instr = _resolve_instrumentation(instrumentation)
    names = list(schedulers)
    tasks = [RunTask(config, schedulers[name], wl) for name in names]
    runs = map_runs(tasks, instrumentation=instr)
    results: dict[str, SimulationResult] = {}
    for name, res in zip(names, runs):
        results[name] = res
        if instr is not None and instr.tracer.enabled:
            instr.tracer.emit(
                "compare.run", scheduler=name, pe_mj=res.pe_mj, pc_s=res.pc_s
            )
    return results


def sweep(
    base_config: SimConfig,
    axis: str,
    values: Sequence,
    scheduler_factory: Callable[[SimConfig], object],
    instrumentation: Instrumentation | None = None,
) -> list[SimulationResult]:
    """Vary one config axis, building a fresh scheduler per point.

    ``scheduler_factory`` receives the point's config — this is where
    calibrated policies (RTMA with alpha-scaled budgets) plug in.
    """
    instr = _resolve_instrumentation(instrumentation)
    tasks = []
    for value in values:
        cfg = base_config.with_(**{axis: value})
        tasks.append(RunTask(cfg, scheduler_factory(cfg)))
    results = map_runs(tasks, instrumentation=instr)
    if instr is not None:
        for value, res in zip(values, results):
            instr.metrics.counter("sweep.points").inc()
            if instr.tracer.enabled:
                instr.tracer.emit(
                    "sweep.point",
                    axis=axis,
                    value=value,
                    pe_mj=res.pe_mj,
                    pc_s=res.pc_s,
                )
    return results


def default_reference(
    config: SimConfig, workload: Workload | None = None
) -> SimulationResult:
    """The paper's reference run: the default strategy on this workload."""
    return run_scheduler(config, DefaultScheduler(), workload)


def calibrate_rtma_threshold(
    config: SimConfig,
    alpha: float,
    workload: Workload | None = None,
    iterations: int = 9,
    calibration_slots: int | None = None,
    instrumentation: Instrumentation | None = None,
) -> float:
    """Find the least-restrictive signal threshold meeting the Eq. (10)
    budget ``Phi = alpha * E_default``.

    The paper's Eq. (12) maps the budget to a signal threshold assuming
    the threshold user transmits at its *full* link rate.  In
    capacity-shared regimes the realized per-user energy sits well
    below that analytic band, so we recover the threshold the paper's
    conversion is *for* — "do not schedule users whose signal is too
    weak for the budget" — empirically: bisect the threshold on a
    shortened run until RTMA's measured PE meets ``alpha`` times the
    default strategy's PE *on the same horizon* (horizon-consistent,
    since PE dilutes once sessions complete).  Returns ``-inf`` when
    unconstrained RTMA already fits the budget.
    """
    if alpha <= 0:
        raise ConfigurationError("alpha must be positive")
    instr = _resolve_instrumentation(instrumentation)
    started = time.perf_counter()
    slots = calibration_slots or min(config.n_slots, 2000)
    cal_cfg = config.with_(n_slots=slots)
    wl = None
    if workload is not None and workload.n_slots >= slots:
        wl = workload
    if wl is None:
        wl = generate_workload(cal_cfg)
    budget = alpha * default_reference(cal_cfg, wl).pe_mj
    sig_model = cal_cfg.make_signal_model()

    def note(threshold: float, pe: float) -> None:
        if instr is not None:
            instr.metrics.counter("calibration.grid_evaluations").inc()
            instr.metrics.histogram("calibration.rtma.pe_mj").observe(pe)
            if instr.tracer.enabled:
                instr.tracer.emit(
                    "calibration.rtma.point",
                    threshold_dbm=threshold,
                    pe_mj=pe,
                    budget_mj=budget,
                )

    def pe_for(threshold: float) -> float:
        sched = RTMAScheduler(sig_threshold_dbm=threshold)
        pe = run_scheduler(cal_cfg, sched, wl).pe_mj
        note(threshold, pe)
        return pe

    def finish(threshold: float, feasible: bool) -> float:
        if instr is not None:
            instr.profiler.record("calibrate_rtma", time.perf_counter() - started)
            if instr.tracer.enabled:
                instr.tracer.emit(
                    "calibration.rtma.result",
                    threshold_dbm=threshold,
                    feasible=feasible,
                    alpha=alpha,
                    budget_mj=budget,
                )
        return threshold

    if pe_for(float("-inf")) <= budget:
        return finish(float("-inf"), True)
    # PE is not monotone in the threshold (a stricter threshold trades
    # transmission energy for extra tail toggling), so scan a grid
    # instead of bisecting.  Feasible -> least restrictive feasible
    # point (smallest rebuffering impact); infeasible -> best effort,
    # the PE-minimizing threshold.
    lo, hi = sig_model.sig_min, sig_model.sig_max
    # Sample densely near the weak end where clipped trace mass makes
    # eligibility jump, then evenly across the range.
    grid = np.unique(
        np.concatenate(
            [
                np.array([lo + 0.01 * (hi - lo)]),
                np.linspace(lo, hi, max(iterations, 3)),
            ]
        )
    )
    # Grid points are independent runs on one shared workload — fan
    # them out through the (possibly parallel) run executor.  Inner
    # runs stay on the *ambient* instrumentation, exactly as the
    # serial run_scheduler calls resolved it.
    tasks = [
        RunTask(cal_cfg, RTMAScheduler(sig_threshold_dbm=float(t)), wl)
        for t in grid
    ]
    grid_runs = map_runs(tasks)
    pes = np.array([res.pe_mj for res in grid_runs])
    for t, pe in zip(grid, pes):
        note(float(t), float(pe))
    feasible = pes <= budget
    if np.any(feasible):
        # Weakest feasible threshold (smallest rebuffering impact).
        return finish(float(grid[np.argmax(feasible)]), True)
    log.warning(
        "RTMA calibration infeasible: no threshold meets budget %.4g mJ "
        "(best effort PE %.4g mJ at %.1f dBm)",
        budget,
        float(pes.min()),
        float(grid[np.argmin(pes)]),
    )
    return finish(float(grid[np.argmin(pes)]), False)


def make_rtma_for_alpha(
    config: SimConfig,
    alpha: float = 1.0,
    workload: Workload | None = None,
    reference: SimulationResult | None = None,
) -> RTMAScheduler:
    """Build RTMA with ``Phi = alpha * E_default`` (Section VI-A).

    ``reference`` is accepted for API symmetry but the budget is
    re-measured on the calibration horizon for consistency (see
    :func:`calibrate_rtma_threshold`).
    """
    del reference  # budget must be horizon-consistent; re-measured inside
    threshold = calibrate_rtma_threshold(config, alpha, workload)
    return RTMAScheduler(sig_threshold_dbm=threshold)


def make_rtma_eq12(
    config: SimConfig, energy_budget_mj_per_slot: float
) -> RTMAScheduler:
    """RTMA with the paper's literal Eq. (12) threshold conversion.

    Only meaningful when the budget lies inside the analytic band
    ``[0.5*(R_min + P_tail), 0.5*(R_max + P_tail)]`` of full-rate radio
    powers; see :func:`repro.core.rtma.signal_threshold_for_energy_budget`.
    """
    radio = config.radio
    return RTMAScheduler(
        energy_budget_mj_per_slot=energy_budget_mj_per_slot,
        power_model=radio.power,
        tau_s=config.tau_s,
        p_tail_mw=radio.rrc.pd_mw,
    )


def calibrate_ema_v(
    config: SimConfig,
    rebuffering_bound_s: float,
    workload: Workload | None = None,
    v_lo: float = 1e-5,
    v_hi: float = 50.0,
    iterations: int = 12,
    calibration_slots: int | None = None,
    instrumentation: Instrumentation | None = None,
) -> float:
    """Pick EMA's ``V`` so measured PC approaches a bound ``Omega``.

    The paper states the bound (Eq. 13) but Algorithm 2 only exposes
    ``V``; Theorem 1 guarantees PC grows (at most linearly) with ``V``
    *asymptotically*, but finite-horizon PC(V) is noisy, so instead of
    bisecting we scan a geometric V grid and return the largest value
    whose measured rebuffering stays within the bound (the most
    energy-saving feasible setting).  If no grid point is feasible,
    the PC-minimizing one is returned as best effort.
    """
    if rebuffering_bound_s <= 0:
        raise ConfigurationError("rebuffering bound must be positive")
    if not 0 < v_lo < v_hi:
        raise ConfigurationError("need 0 < v_lo < v_hi")
    instr = _resolve_instrumentation(instrumentation)
    started = time.perf_counter()
    slots = calibration_slots or min(config.n_slots, 1500)
    cal_cfg = config.with_(n_slots=slots)
    # A workload shorter than the calibration horizon cannot drive the
    # inner runs (the engine rejects it); regenerate instead, matching
    # the guard in calibrate_rtma_threshold / calibrate_ema_v_to_reference.
    wl = None
    if workload is not None and workload.n_slots >= slots:
        wl = workload
    if wl is None:
        wl = generate_workload(cal_cfg)

    def note(v: float, res: SimulationResult) -> None:
        if instr is not None:
            instr.metrics.counter("calibration.grid_evaluations").inc()
            instr.metrics.histogram("calibration.ema.pc_s").observe(res.pc_s)
            instr.metrics.histogram("calibration.ema.pe_mj").observe(res.pe_mj)
            if instr.tracer.enabled:
                instr.tracer.emit(
                    "calibration.ema.point",
                    v=v,
                    pc_s=res.pc_s,
                    pe_mj=res.pe_mj,
                    bound_s=rebuffering_bound_s,
                )

    def finish(v: float, feasible: bool) -> float:
        if instr is not None:
            instr.profiler.record("calibrate_ema", time.perf_counter() - started)
            if instr.tracer.enabled:
                instr.tracer.emit(
                    "calibration.ema.result",
                    v=v,
                    feasible=feasible,
                    bound_s=rebuffering_bound_s,
                )
        return v

    grid = np.geomspace(v_lo, v_hi, max(iterations, 4))
    # Independent grid runs on one shared workload — executor fan-out,
    # ambient instrumentation for the inner runs (as before).
    tasks = [
        RunTask(
            cal_cfg,
            EMAScheduler(cal_cfg.n_users, v_param=float(v), tau_s=cal_cfg.tau_s),
            wl,
        )
        for v in grid
    ]
    grid_runs = map_runs(tasks)
    for v, res in zip(grid, grid_runs):
        note(float(v), res)
    pcs = np.array([res.pc_s for res in grid_runs])
    pes = np.array([res.pe_mj for res in grid_runs])
    feasible = np.flatnonzero(pcs <= rebuffering_bound_s)
    if feasible.size:
        # Most energy-saving feasible setting: PE(V) is not monotone
        # once tails and receiver windows bite, so pick by measured PE
        # rather than by V.
        return finish(float(grid[feasible[np.argmin(pes[feasible])]]), True)
    log.warning(
        "EMA calibration infeasible: no V meets rebuffering bound %.4g s "
        "(best effort PC %.4g s at V=%.4g)",
        rebuffering_bound_s,
        float(pcs.min()),
        float(grid[np.argmin(pcs)]),
    )
    return finish(float(grid[np.argmin(pcs)]), False)


def calibrate_ema_v_to_reference(
    config: SimConfig,
    reference_scheduler_factory: Callable[[], object],
    beta: float = 1.0,
    workload: Workload | None = None,
    iterations: int = 8,
    calibration_slots: int | None = None,
) -> float:
    """Calibrate EMA's ``V`` to ``Omega = beta * PC(reference)``.

    Both the reference rebuffering and EMA's are measured on the *same*
    shortened horizon — PC dilutes once sessions complete, so mixing
    horizons (bounding a short-horizon EMA by a long-horizon reference)
    systematically over-tightens the bound.
    """
    if beta <= 0:
        raise ConfigurationError("beta must be positive")
    slots = calibration_slots or min(config.n_slots, 1500)
    cal_cfg = config.with_(n_slots=slots)
    wl = None
    if workload is not None and workload.n_slots >= slots:
        wl = workload
    if wl is None:
        wl = generate_workload(cal_cfg)
    ref_pc = run_scheduler(cal_cfg, reference_scheduler_factory(), wl).pc_s
    omega = beta * max(ref_pc, 1e-4)
    return calibrate_ema_v(
        cal_cfg,
        omega,
        workload=wl,
        iterations=iterations,
        calibration_slots=slots,
    )


def multi_seed(
    config: SimConfig,
    scheduler_factory: Callable[[SimConfig], object],
    seeds: Iterable[int],
    instrumentation: Instrumentation | None = None,
) -> list[SimulationResult]:
    """Replicate a run across seeds (for confidence intervals)."""
    instr = _resolve_instrumentation(instrumentation)
    seeds = list(seeds)
    tasks = []
    for seed in seeds:
        cfg = config.with_(seed=seed)
        tasks.append(RunTask(cfg, scheduler_factory(cfg)))
    out = map_runs(tasks, instrumentation=instr)
    if instr is not None and instr.tracer.enabled:
        for seed, res in zip(seeds, out):
            instr.tracer.emit(
                "multi_seed.run", seed=seed, pe_mj=res.pe_mj, pc_s=res.pc_s
            )
    return out
