"""Session arrival processes.

The paper's evaluation starts all ``N`` users at slot 0 and keeps them
for the whole horizon.  :func:`generate_arrival_slots` generalises that
into a pluggable arrival process consumed by
:func:`repro.sim.workload.generate_workload`:

``all_at_zero``
    The historical fixed population.  Consumes **no** RNG draws, so
    default-configured workloads remain bit-identical to every prior
    release.

``poisson``
    Memoryless session arrivals: inter-arrival gaps are exponential
    with mean ``1 / arrival_rate_per_slot`` slots and arrival times are
    their cumulative sum (floored to slots).  Sessions whose arrival
    lands beyond the horizon are *offered but never arrive* — they are
    neither admitted nor rejected.

``trace``
    Explicit per-user arrival slots from ``SimConfig.arrival_trace``
    (replayed deterministically; validated at config construction).

Arrival draws happen *after* the size/profile/signal draws so that
adding an arrival process never perturbs the rest of the workload for
a given seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ARRIVAL_PROCESSES", "generate_arrival_slots"]

#: Recognised values of ``SimConfig.arrival_process``.
ARRIVAL_PROCESSES = ("all_at_zero", "poisson", "trace")


def generate_arrival_slots(cfg, rng: np.random.Generator) -> np.ndarray:
    """Per-user arrival slots (``int64``, shape ``(n_users,)``).

    ``cfg`` is a :class:`~repro.sim.config.SimConfig`; ``rng`` is the
    workload generator's RNG, consumed only by the Poisson process.
    """
    n = cfg.n_users
    if cfg.arrival_process == "all_at_zero":
        return np.zeros(n, dtype=np.int64)
    if cfg.arrival_process == "poisson":
        rate = float(cfg.arrival_rate_per_slot)
        gaps = rng.exponential(1.0 / rate, size=n)
        return np.floor(np.cumsum(gaps)).astype(np.int64)
    if cfg.arrival_process == "trace":
        slots = np.asarray(cfg.arrival_trace, dtype=np.int64)
        if slots.shape != (n,):
            raise ConfigurationError(
                f"arrival_trace must provide {n} slots, got shape {slots.shape}"
            )
        if (slots < 0).any():
            raise ConfigurationError("arrival_trace slots must be >= 0")
        return slots
    raise ConfigurationError(f"unknown arrival_process {cfg.arrival_process!r}")
