"""Evaluation metrics: PE (Eq. 6), PC (Eq. 9), Jain fairness.

The fairness metric follows the paper's Section VI-A definition: per
slot, each user's satisfaction is ``F_i = d_i / d_need(i)`` (allocated
over required bytes), aggregated by the Jain index

    ``J = (sum F_i)^2 / (N * sum F_i^2)``

over the users active in that slot.  ``J`` is 1 when all users are
equally satisfied and approaches ``1/N`` when one user takes all.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "average_energy_mj",
    "average_rebuffering_s",
    "jain_fairness",
    "per_slot_fairness",
    "empirical_cdf",
]


def average_energy_mj(energy_mj: np.ndarray) -> float:
    """Eq. (6): mean energy per user-slot over a ``(slots, users)`` array."""
    e = np.asarray(energy_mj, dtype=float)
    if e.ndim != 2 or e.size == 0:
        raise ConfigurationError("energy array must be 2-D (slots x users)")
    if np.any(e < 0):
        raise ConfigurationError("energy must be non-negative")
    return float(e.mean())


def average_rebuffering_s(rebuffering_s: np.ndarray) -> float:
    """Eq. (9): mean rebuffering per user-slot over ``(slots, users)``."""
    c = np.asarray(rebuffering_s, dtype=float)
    if c.ndim != 2 or c.size == 0:
        raise ConfigurationError("rebuffering array must be 2-D (slots x users)")
    if np.any(c < 0):
        raise ConfigurationError("rebuffering must be non-negative")
    return float(c.mean())


def jain_fairness(shares: np.ndarray) -> float:
    """Jain index of a vector of non-negative shares.

    All-zero shares (nobody got or needed anything) count as perfectly
    fair: 1.0.
    """
    x = np.asarray(shares, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise ConfigurationError("shares must be a non-empty vector")
    if np.any(x < 0):
        raise ConfigurationError("shares must be non-negative")
    total = x.sum()
    if total == 0.0:
        return 1.0
    # The index is scale-invariant; normalising by the max keeps
    # x.dot(x) away from underflow (subnormal shares would square to
    # zero and yield NaN) and overflow alike.
    x = x / x.max()
    total = x.sum()
    return float(total * total / (x.size * np.dot(x, x)))


def per_slot_fairness(
    delivered_kb: np.ndarray,
    need_kb: np.ndarray,
    active: np.ndarray,
    min_active: int = 2,
) -> np.ndarray:
    """Per-slot Jain index of ``F_i = d_i / d_need(i)`` over active users.

    Parameters
    ----------
    delivered_kb, need_kb, active:
        ``(slots, users)`` arrays; ``need_kb`` is ``tau * p_i(n)``.
    min_active:
        Slots with fewer active users than this yield NaN.  Fairness
        measures *competition for the BS*: once sessions complete and a
        lone user remains, the index degenerates to 1, which would
        dilute CDFs over a long horizon (the paper's Fig. 2/6 are
        clearly computed over the contended scheduling period).

    Returns
    -------
    ``(slots,)`` array; NaN slots are excluded from CDFs.
    """
    d = np.asarray(delivered_kb, dtype=float)
    need = np.asarray(need_kb, dtype=float)
    act = np.asarray(active, dtype=bool)
    if d.shape != need.shape or d.shape != act.shape or d.ndim != 2:
        raise ConfigurationError("inputs must share a (slots, users) shape")
    if min_active < 1:
        raise ConfigurationError("min_active must be >= 1")
    with np.errstate(divide="ignore", invalid="ignore"):
        f = np.where(need > 0, d / need, 0.0)
    f = np.where(act, f, 0.0)
    n_active = act.sum(axis=1)
    total = f.sum(axis=1)
    sq = (f * f).sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        jain = np.where(
            (n_active >= min_active) & (sq > 0),
            total * total / (n_active * sq),
            np.where(n_active >= min_active, 1.0, np.nan),
        )
    return jain


def empirical_cdf(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted values and cumulative probabilities (NaNs dropped).

    Returns ``(x, p)`` with ``p[k] = (k+1)/n`` — suitable for step
    plots and for quantile assertions in the figure benches.
    """
    x = np.asarray(samples, dtype=float).ravel()
    x = x[~np.isnan(x)]
    if x.size == 0:
        raise ConfigurationError("no finite samples for CDF")
    x = np.sort(x)
    p = np.arange(1, x.size + 1, dtype=float) / x.size
    return x, p
