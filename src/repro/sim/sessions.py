"""Session lifecycle bookkeeping for the dynamic engine.

:class:`SessionManager` separates two index spaces:

* **session space** — the workload's ``n_users`` offered sessions,
  immutable and seed-determined.  Result grids, trace payloads, and
  summaries stay keyed by session so analysis code is population-blind.
* **row space** — the growable SoA capacity shared by
  :class:`~repro.media.fleet.ClientFleet`,
  :class:`~repro.radio.rrc.RRCFleet`,
  :class:`~repro.kernels.arena.SlotArena`, the gateway's
  :class:`~repro.net.gateway.DataReceiver`, and the scheduler's
  per-user state.  Rows are recycled lowest-index-first (a heap), so
  the mapping — and therefore the whole run — is deterministic.

The manager owns the ``session <-> row`` maps, the free-row heap, the
pending-arrival queue (sorted by ``(arrival_slot, user_id)``), and the
``joined_mask`` / ``departed_mask`` row masks the gateway observes.
Capacity doubles on demand; every structure above grows in lockstep so
kernel backends stay allocation-free once the population stops
growing.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from repro.media.fleet import _VacantRowFlow, _placeholder_video

__all__ = ["SessionManager"]

#: Rows the dynamic engine starts with; doubles on demand.
INITIAL_CAPACITY = 4


class SessionManager:
    """Coordinate admissions, retirements, and capacity growth.

    Parameters
    ----------
    flows:
        The workload's session-space flow list (fixes ``n_sessions``).
    fleet, rrc, arena, receiver, scheduler:
        The row-space structures grown/recycled in lockstep.
    """

    def __init__(self, flows, fleet, rrc, arena, receiver, scheduler):
        self.flows = flows
        self.n_sessions = len(flows)
        self.fleet = fleet
        self.rrc = rrc
        self.arena = arena
        self.receiver = receiver
        self.scheduler = scheduler

        cap = fleet.n_users
        self.capacity = cap
        self.row_session = np.full(cap, -1, dtype=np.int64)
        self.session_row = np.full(self.n_sessions, -1, dtype=np.int64)
        self._free = list(range(cap))
        heapq.heapify(self._free)
        self.admitted = np.zeros(self.n_sessions, dtype=bool)
        self.rejected = np.zeros(self.n_sessions, dtype=bool)
        self.completed = np.zeros(self.n_sessions, dtype=bool)
        #: Flow-shaped row views handed to the gateway (placeholders on
        #: vacant rows; DPI never draws error factors for them on the
        #: paper's zero-error setting).
        placeholder = _placeholder_video()
        self.row_flows = [
            _VacantRowFlow(user_id=-1, video=placeholder) for _ in range(cap)
        ]
        self.joined_mask = np.zeros(cap, dtype=bool)
        self.departed_mask = np.zeros(cap, dtype=bool)
        self._departed_next: list[int] = []
        self._pending = deque(
            sorted(
                range(self.n_sessions),
                key=lambda s: (flows[s].arrival_slot, flows[s].user_id),
            )
        )

    # -- per-slot protocol ----------------------------------------------------

    @property
    def active_count(self) -> int:
        """Sessions currently resident in the cell."""
        return self.capacity - len(self._free)

    def begin_slot(self) -> None:
        """Roll the join/depart masks over to a new slot."""
        self.joined_mask[:] = False
        self.departed_mask[:] = False
        for row in self._departed_next:
            if row < self.capacity:
                self.departed_mask[row] = True
        self._departed_next.clear()

    def due_sessions(self, slot: int) -> list[int]:
        """Sessions whose arrival slot has come, in deterministic order."""
        due: list[int] = []
        while self._pending and self.flows[self._pending[0]].arrival_slot <= slot:
            due.append(self._pending.popleft())
        return due

    def occupied_rows(self) -> np.ndarray:
        """Row indices currently bound to a session (ascending)."""
        return np.flatnonzero(self.row_session >= 0)

    # -- lifecycle transitions ------------------------------------------------

    def admit(self, session: int) -> int:
        """Grant ``session`` a row (growing capacity if needed)."""
        if not self._free:
            self.grow(self.capacity * 2)
        row = heapq.heappop(self._free)
        flow = self.flows[session]
        self.fleet.load_row(row, flow)
        self.rrc.reset_rows([row])
        self.receiver.reset_rows([row])
        self.row_flows[row] = flow
        self.row_session[row] = session
        self.session_row[session] = row
        self.admitted[session] = True
        self.joined_mask[row] = True
        return row

    def reject(self, session: int) -> None:
        self.rejected[session] = True

    def retire(self, session: int) -> int:
        """Free a completed session's row; ends its RRC tail.

        The vacated row is reported in the *next* slot's
        ``departed_mask`` (the retirement happens at the end of the
        completion slot, after that slot's accounting).
        """
        row = int(self.session_row[session])
        self.fleet.clear_row(row)
        self.rrc.reset_rows([row])
        self.receiver.reset_rows([row])
        self.scheduler.release_users(np.array([row], dtype=np.intp))
        placeholder = _placeholder_video()
        self.row_flows[row] = _VacantRowFlow(user_id=-1, video=placeholder)
        self.row_session[row] = -1
        self.session_row[session] = -1
        self.completed[session] = True
        heapq.heappush(self._free, row)
        self._departed_next.append(row)
        return row

    def grow(self, new_capacity: int) -> None:
        """Double (or otherwise raise) the row capacity in lockstep."""
        old = self.capacity
        if new_capacity <= old:
            raise ValueError("grow requires new_capacity > current capacity")
        self.fleet.grow(new_capacity)
        self.rrc.grow(new_capacity)
        self.arena.grow(new_capacity)
        self.receiver.grow(new_capacity)
        self.scheduler.grow_users(new_capacity)
        row_session = np.full(new_capacity, -1, dtype=np.int64)
        row_session[:old] = self.row_session
        self.row_session = row_session
        joined = np.zeros(new_capacity, dtype=bool)
        joined[:old] = self.joined_mask
        self.joined_mask = joined
        departed = np.zeros(new_capacity, dtype=bool)
        departed[:old] = self.departed_mask
        self.departed_mask = departed
        placeholder = _placeholder_video()
        self.row_flows.extend(
            _VacantRowFlow(user_id=-1, video=placeholder)
            for _ in range(old, new_capacity)
        )
        for row in range(old, new_capacity):
            heapq.heappush(self._free, row)
        self.capacity = new_capacity
