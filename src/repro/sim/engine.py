"""The slot-driven simulation engine.

Each slot runs the paper's pipeline in order:

1. **Playback phase** — every client applies Eq. (7) with the media
   delivered last slot, records this slot's rebuffering (Eq. 8), and
   plays;
2. **Observation** — the gateway's Information Collector assembles the
   cross-layer :class:`~repro.net.gateway.SlotObservation` (RSSI, DPI
   rates, BS slice capacity, client feedback, prospective tail costs);
3. **Scheduling** — the policy returns ``phi_i(n)``, validated against
   constraints (1)-(2) (a violating policy raises, it never cheats);
4. **Transmission** — shards flow through Data Receiver queues to the
   clients; transmission energy is ``P(sig_i) * delivered`` (Eq. 3);
5. **Radio accounting** — the RRC fleet advances: transmitting users
   reset their tails, idle users accrue incremental tail energy
   (Eq. 4/5);
6. **Feedback** — the scheduler's ``notify`` hook sees the delivered
   amounts (EMA updates its virtual queues here).

The engine is deliberately strict: it asserts conservation invariants
as it goes (delivered bytes never exceed capacity or session size) and
fails loudly on scheduler misbehaviour.

Observability: pass an :class:`~repro.obs.instrument.Instrumentation`
bundle (or establish one ambiently with
:func:`~repro.obs.instrument.use_instrumentation`) and the engine times
every phase, counts slots/energy into the metrics registry, and emits
one ``"slot"`` trace event per simulated slot.  Instrumentation is
strictly observational — instrumented and plain runs are bit-identical.
"""

from __future__ import annotations

import logging
import os
from time import perf_counter

import numpy as np

from repro.core.admission import AdmissionContext, make_admission_policy
from repro.core.allocation import check_constraints
from repro.errors import ConfigurationError, SimulationError
from repro.faults import current_fault_plan
from repro.kernels import SlotArena, backend_info, use_backend
from repro.media.fleet import ClientFleet
from repro.media.player import StreamingClient
from repro.net.basestation import BaseStation, ConstantCapacity, FaultyCapacity
from repro.net.gateway import Gateway
from repro.net.slicing import ResourceSlicer
from repro.obs.instrument import Instrumentation, current_instrumentation
from repro.obs.spans import SLOT_PREFIX, activate_spans
from repro.radio.rrc import RRCFleet, fleet_occupancy_from_tx
from repro.sim.config import SimConfig
from repro.sim.results import SimulationResult
from repro.sim.sessions import INITIAL_CAPACITY, SessionManager
from repro.sim.workload import Workload, generate_workload

__all__ = ["Simulation"]

log = logging.getLogger("repro.sim.engine")

#: Scheduler attributes worth pinning in the trace's ``run.start``
#: event — the invariant checkers key off these (RTMA's Eq. 10/12
#: budget and threshold, EMA's Lyapunov V and queue floor).
_TRACED_SCHEDULER_PARAMS = (
    "sig_threshold_dbm",
    "energy_budget_mj_per_slot",
    "v_param",
    "queue_floor_s",
)


#: Slots per hierarchical-span slot block: the span profiler closes one
#: ``run;slots`` span every this many slots (same batching idea as the
#: live plane's ``watch_every``) so block accounting costs the hot loop
#: a single comparison per slot.
SPAN_BLOCK_SLOTS = 64


def _emit_fault_windows(tracer, plan) -> None:
    """One ``fault.window`` trace event per injected window, emitted at
    run start so trace analysis sees the full plan before any slot."""
    for w in plan.signal:
        tracer.emit(
            "fault.window",
            fault="signal",
            start_slot=w.start_slot,
            n_slots=w.n_slots,
            users=list(w.users) if w.users is not None else None,
            level_dbm=w.level_dbm,
        )
    for w in plan.capacity:
        tracer.emit(
            "fault.window",
            fault="capacity",
            start_slot=w.start_slot,
            n_slots=w.n_slots,
            factor=w.factor,
        )
    for w in plan.stalls:
        tracer.emit(
            "fault.window",
            fault="stall",
            start_slot=w.start_slot,
            n_slots=w.n_slots,
            users=list(w.users),
        )


def _fault_counters(metrics, plan, outage_mask, gamma: int) -> None:
    """Batch-derived ``fault.*`` counters (only created on faulted runs,
    so healthy-path registries stay byte-identical to the seed)."""
    metrics.counter("fault.outage_slots").inc(int(outage_mask.sum()))
    if plan.signal:
        metrics.counter("fault.signal_slots").inc(
            int(plan.signal_slot_mask(gamma).sum())
        )
    if plan.capacity:
        metrics.counter("fault.capacity_slots").inc(
            int(plan.capacity_slot_mask(gamma).sum())
        )
    if plan.stalls:
        metrics.counter("fault.stall_slots").inc(
            int(plan.stall_slot_mask(gamma).sum())
        )


def _scheduler_trace_params(scheduler) -> dict:
    """The scheduler's traced parameters (missing attributes skipped)."""
    out = {}
    for attr in _TRACED_SCHEDULER_PARAMS:
        if hasattr(scheduler, attr):
            value = getattr(scheduler, attr)
            if value is None or isinstance(value, (int, float)):
                out[attr] = value
    return out


class Simulation:
    """One scheduler, one workload, one run.

    Parameters
    ----------
    config:
        The run parameters.
    scheduler:
        Any :class:`~repro.core.scheduler.Scheduler`.
    workload:
        Pre-generated workload; ``None`` generates one from the
        config's seed.  Pass the same :class:`Workload` object to
        several simulations to compare schedulers head-to-head.
    instrumentation:
        Optional observability bundle.  ``None`` falls back to the
        ambient bundle established by
        :func:`~repro.obs.instrument.use_instrumentation` (and runs
        fully uninstrumented when there is none).
    path:
        Client-state implementation: ``"fleet"`` (default) drives the
        vectorized :class:`~repro.media.fleet.ClientFleet`; ``"object"``
        drives the original per-user :class:`StreamingClient` loop.
        The two are bit-identical (guarded by
        ``tests/integration/test_fleet_equivalence.py``) — ``"object"``
        survives as the reference implementation.  ``None`` reads
        ``$REPRO_SIM_PATH``, defaulting to ``"fleet"``.
    """

    def __init__(
        self,
        config: SimConfig,
        scheduler,
        workload: Workload | None = None,
        instrumentation: Instrumentation | None = None,
        path: str | None = None,
    ):
        if path is None:
            path = os.environ.get("REPRO_SIM_PATH", "fleet")
        if path not in ("fleet", "object"):
            raise ConfigurationError(
                f"path must be 'fleet' or 'object', got {path!r}"
            )
        self.path = path
        if config.has_churn and path != "fleet":
            raise ConfigurationError(
                "dynamic session lifecycle (arrival processes / admission "
                "control) requires the fleet path"
            )
        self.config = config
        self.scheduler = scheduler
        self.instrumentation = instrumentation
        self.workload = workload if workload is not None else generate_workload(config)
        if self.workload.n_users != config.n_users:
            raise SimulationError(
                f"workload has {self.workload.n_users} users, config says {config.n_users}"
            )
        if self.workload.n_slots < config.n_slots:
            raise SimulationError(
                f"workload trace covers {self.workload.n_slots} slots, "
                f"config needs {config.n_slots}"
            )

    def run(self) -> SimulationResult:
        """Execute the full horizon and return the result record."""
        if self.config.kernel_backend is not None:
            # The whole run — including scheduler.reset(), which clears
            # cached kernel resolutions — executes under the configured
            # backend.
            with use_backend(self.config.kernel_backend):
                return self._run()
        return self._run()

    def _run(self) -> SimulationResult:
        instr = (
            self.instrumentation
            if self.instrumentation is not None
            else current_instrumentation()
        )
        spans = instr.spans if instr is not None else None
        # Zero-churn configs take the historical fixed-population body
        # (bit-identical to every prior release); arrival processes and
        # admission policies route through the dynamic lifecycle body.
        body = self._run_body_dynamic if self.config.has_churn else self._run_body
        if spans is None:
            return body(instr)
        # Activate the recorder for the *whole* body — scheduler.reset()
        # and the lazy fleet/RRC kernel resolutions all happen inside,
        # so every registry-resolved kernel self-reports its span.
        with activate_spans(spans), spans.span("run"):
            return body(instr)

    def _run_body(self, instr: Instrumentation | None) -> SimulationResult:
        cfg = self.config
        radio = cfg.radio
        n, gamma = cfg.n_users, cfg.n_slots

        # Fault injection: a plan on the config wins; otherwise the
        # ambient plan (repro-experiments --faults) applies.  With
        # neither, every fault hook below compiles to the historical
        # no-op path — bit-identical to the seed behaviour.
        plan = cfg.faults if cfg.faults is not None else current_fault_plan()
        faults_on = plan is not None and not plan.is_empty

        # The hot loop appends perf_counter deltas to the profiler's raw
        # sample lists rather than entering a context manager per phase
        # per slot, and all registry accounting that can be derived from
        # the recorded grids happens in one vectorised batch after the
        # loop — this is what keeps NullTracer instrumentation under the
        # 2% overhead budget (guarded in benchmarks/bench_kernels.py).
        instrumented = instr is not None
        live = instr.live if instrumented else None
        live_on = live is not None
        spans = instr.spans if instrumented else None
        spans_on = spans is not None
        if instrumented:
            tracer = instr.tracer
            trace_on = tracer.enabled
            prof = instr.profiler
            # Register phases in pipeline order so the summary table
            # reads top-to-bottom like a slot (observe/schedule/transmit
            # are appended to by the gateway).
            _pc = perf_counter
            rec_playback = prof.samples("playback").append
            prof.samples("observe")
            prof.samples("schedule")
            prof.samples("transmit")
            rec_rrc = prof.samples("rrc").append
            rec_feedback = prof.samples("feedback").append
            budgets = np.zeros(gamma, dtype=np.int64)
        if spans_on:
            # Phase spans are *derived* from the profiler's sample
            # lists after the loop (see _fold_phase_spans below) — the
            # slot loop pays nothing for them.  Intern the phase nodes
            # now, in pipeline order, so they precede the kernel nodes
            # resolved mid-run and the flame graph reads like a slot.
            rec_block = spans.adder(spans.path_node(SLOT_PREFIX))
            _span_phase_ids = {
                ph: spans.slot_phase_id(ph)
                for ph in (
                    "playback", "observe", "schedule", "transmit",
                    "rrc", "feedback",
                )
            }
            # The profiler may already hold samples from an earlier
            # run against the same bundle; fold only this run's tail.
            _span_phase_base = {
                ph: len(prof.samples(ph)) for ph in _span_phase_ids
            }

            def _fold_phase_spans() -> None:
                # Totals are computed exactly the way
                # PhaseProfiler.summary() computes them — float(sum())
                # over the sorted samples — so span phase totals equal
                # profiler totals bit-for-bit.
                for ph, node in _span_phase_ids.items():
                    tail = prof.samples(ph)[_span_phase_base[ph]:]
                    if tail:
                        spans.add_bulk(node, len(tail), float(sum(sorted(tail))))

        self.scheduler.reset()
        self.scheduler.bind_instrumentation(instr)
        use_fleet = self.path == "fleet"
        if use_fleet:
            fleet = ClientFleet(self.workload.flows, cfg.tau_s, cfg.buffer_capacity_s)
            clients = None
            # All per-user observation/transmit buffers for the whole
            # run; the slot loop below never allocates an array on this
            # path.
            arena = SlotArena(n)
        else:
            fleet = None
            clients = [
                StreamingClient(flow.video, cfg.tau_s, cfg.buffer_capacity_s)
                for flow in self.workload.flows
            ]
            arena = None
        cap_model = ConstantCapacity(cfg.capacity_kbps)
        if faults_on and plan.capacity:
            cap_model = FaultyCapacity(cap_model, plan.capacity_factors(gamma))
        bs = BaseStation(cap_model, cfg.delta_kb, cfg.tau_s)
        slicer = ResourceSlicer(cfg.background) if cfg.background else ResourceSlicer()
        gateway = Gateway(
            self.scheduler, bs, n, slicer=slicer, fetch_ahead_kb=cfg.fetch_ahead_kb
        )
        rrc = RRCFleet(n, radio.rrc)

        alloc = np.zeros((gamma, n), dtype=np.int64)
        delivered = np.zeros((gamma, n), dtype=float)
        rebuf = np.zeros((gamma, n), dtype=float)
        e_trans = np.zeros((gamma, n), dtype=float)
        e_tail = np.zeros((gamma, n), dtype=float)
        buffer_s = np.zeros((gamma, n), dtype=float)
        need_kb = np.zeros((gamma, n), dtype=float)
        active_rec = np.zeros((gamma, n), dtype=bool)
        completion = np.full(n, -1, dtype=np.int64)

        flows = self.workload.flows
        signal = self.workload.signal_dbm
        if faults_on:
            # Blackouts are applied to a *copy* of the generated trace
            # (the workload object itself is shared across schedulers
            # and must stay pristine), and the stall/outage masks are
            # precomputed once — the slot loop pays one row lookup.
            signal = plan.apply_signal(signal)
            stall_grid = plan.stall_grid(gamma, n)
            outage_mask = plan.outage_slot_mask(gamma)
        else:
            stall_grid = None
            outage_mask = None
        arrivals = np.array([f.arrival_slot for f in flows], dtype=np.int64)

        scheduler_name = getattr(
            self.scheduler, "name", type(self.scheduler).__name__
        )
        if instrumented and trace_on:
            # Run boundary + the parameters trace analysis needs to
            # segment multi-run traces and select invariant checkers.
            tracer.emit(
                "run.start",
                scheduler=scheduler_name,
                n_users=n,
                n_slots=gamma,
                tau_s=cfg.tau_s,
                delta_kb=cfg.delta_kb,
                seed=cfg.seed,
                kernel_backend=backend_info()["resolved"],
                rrc={
                    "pd_mw": radio.rrc.pd_mw,
                    "pf_mw": radio.rrc.pf_mw,
                    "t1_s": radio.rrc.t1_s,
                    "t2_s": radio.rrc.t2_s,
                },
                params=_scheduler_trace_params(self.scheduler),
                **({"faults": plan.spec()} if faults_on else {}),
            )
            if faults_on:
                _emit_fault_windows(tracer, plan)
        if live_on:
            live.begin_run(scheduler_name, n_slots=gamma, n_users=n)
            live_every = live.watch_every
            live_start = 0
        if spans_on:
            span_block_start = 0
            _block_t0 = perf_counter()

        slot = -1
        try:
            for slot in range(gamma):
                # 1. Playback: Eq. (7)/(8) with last slot's deliveries.
                #    Sessions that have not arrived yet do not play (and do
                #    not accrue startup rebuffering).
                if instrumented:
                    _t0 = _pc()
                if use_fleet:
                    fleet.begin_slot(slot, out=rebuf[slot])
                    # newly_done = (completion < 0) & playback_complete &
                    # (slot >= arrivals), assembled in arena scratch (the
                    # observe/transmit buffers are free during playback).
                    newly_done = fleet.playback_complete_into(
                        arena.b1_tmp, arena.f8_tmp, arena.tx_mask
                    )
                    np.less(completion, 0, out=arena.tx_mask)
                    np.logical_and(newly_done, arena.tx_mask, out=newly_done)
                    np.less_equal(arrivals, slot, out=arena.tx_mask)
                    np.logical_and(newly_done, arena.tx_mask, out=newly_done)
                    if newly_done.any():
                        completion[newly_done] = slot
                else:
                    for i, client in enumerate(clients):
                        if slot < arrivals[i]:
                            continue
                        c_i, _played = client.begin_slot(slot)
                        rebuf[slot, i] = c_i
                        if completion[i] < 0 and client.playback_complete:
                            completion[i] = slot
                if instrumented:
                    rec_playback(_pc() - _t0)

                # 2-4. Observe, schedule, transmit (timed inside the gateway).
                idle_cost = rrc.expected_idle_cost_mj(
                    cfg.tau_s, out=arena.idle_tail_cost_mj if use_fleet else None
                )
                obs, phi, sent_kb = gateway.step(
                    slot,
                    signal[slot],
                    flows,
                    clients,
                    radio.throughput,
                    radio.power,
                    idle_cost,
                    instrumentation=instr,
                    fleet=fleet,
                    arena=arena,
                    stall_mask=stall_grid[slot] if stall_grid is not None else None,
                )
                check_constraints(phi, obs)
                if use_fleet:
                    np.multiply(phi, cfg.delta_kb, out=arena.f8_tmp)
                    np.add(arena.f8_tmp, 1e-9, out=arena.f8_tmp)
                    np.greater(sent_kb, arena.f8_tmp, out=arena.b1_tmp)
                    overdelivered = arena.b1_tmp.any()
                else:
                    overdelivered = np.any(sent_kb > phi * cfg.delta_kb + 1e-9)
                if overdelivered:
                    raise SimulationError(f"slot {slot}: delivered more than allocated")

                # 5. Radio energy accounting (Eq. 5: trans XOR tail).
                #    Occupancy/tail metrics are batch-derived after the loop.
                if instrumented:
                    _t0 = _pc()
                if use_fleet:
                    tx_mask = np.greater(sent_kb, 0.0, out=arena.tx_mask)
                else:
                    tx_mask = sent_kb > 0.0
                np.multiply(obs.p_mj_per_kb, sent_kb, out=e_trans[slot])
                rrc.step(tx_mask, cfg.tau_s, out=e_tail[slot])
                if instrumented:
                    rec_rrc(_pc() - _t0)

                # 6. Scheduler feedback.
                if instrumented:
                    _t0 = _pc()
                self.scheduler.notify(obs, phi, sent_kb)
                if instrumented:
                    rec_feedback(_pc() - _t0)

                alloc[slot] = phi
                delivered[slot] = sent_kb
                buffer_s[slot] = obs.buffer_s
                np.multiply(obs.rate_kbps, cfg.tau_s, out=need_kb[slot])
                active_rec[slot] = obs.active

                if instrumented:
                    budgets[slot] = obs.unit_budget
                if instrumented and trace_on:
                    tracer.emit(
                        "slot",
                        slot=slot,
                        active_users=int(obs.active.sum()),
                        tx_users=int(tx_mask.sum()),
                        allocated_units=int(phi.sum()),
                        unit_budget=int(obs.unit_budget),
                        delivered_kb=float(sent_kb.sum()),
                        rebuffering_s=float(rebuf[slot].sum()),
                        energy_trans_mj=float(e_trans[slot].sum()),
                        energy_tail_mj=float(e_tail[slot].sum()),
                        mean_buffer_s=float(obs.buffer_s.mean()),
                        # Per-user vectors: what repro.obs.analyze needs to
                        # reconstruct timelines and run the invariant
                        # checkers offline.  Only built when a real tracer
                        # is attached, so the NullTracer overhead budget is
                        # untouched.  Arena-backed vectors are referenced
                        # through the result grids (already copied above) or
                        # copied here — the arena reuses its buffers next
                        # slot, so raw references would go stale in a
                        # recording tracer.
                        users={
                            "phi": phi,
                            "delivered_kb": delivered[slot],
                            "rebuffering_s": rebuf[slot],
                            "buffer_s": buffer_s[slot],
                            "energy_trans_mj": e_trans[slot],
                            "energy_tail_mj": e_tail[slot],
                            "link_units": np.array(obs.link_units),
                            "sig_dbm": signal[slot],
                            "rate_kbps": obs.rate_kbps,
                            "active": active_rec[slot],
                        },
                    )
                # Live telemetry consumes whole blocks straight from the
                # result grids — one comparison per slot, vectorized
                # cell sums every watch_every slots (plus the run tail).
                if live_on and (slot - live_start + 1 >= live_every or slot == gamma - 1):
                    end = slot + 1
                    live.observe_block(
                        slot,
                        rebuf[live_start:end].sum(axis=1),
                        e_trans[live_start:end].sum(axis=1)
                        + e_tail[live_start:end].sum(axis=1),
                        delivered[live_start:end].sum(axis=1),
                        buffer_s[live_start:end].mean(axis=1),
                        active_users=int(active_rec[slot].sum()),
                        outage_slots=(
                            int(outage_mask[live_start:end].sum())
                            if outage_mask is not None
                            else 0
                        ),
                    )
                    live_start = end
                # One run;slots span per block of SPAN_BLOCK_SLOTS slots
                # (plus the run tail) — a single comparison per slot.
                if spans_on and (
                    slot - span_block_start + 1 >= SPAN_BLOCK_SLOTS
                    or slot == gamma - 1
                ):
                    rec_block(_pc() - _block_t0)
                    span_block_start = slot + 1
                    _block_t0 = _pc()
        except BaseException as exc:
            # Leave a valid, parseable trace prefix behind a crashed (or
            # SLO-aborted) run: one final run.abort event, then flush and
            # close the writer before the exception propagates.
            if instrumented:
                log.warning(
                    "run aborted at slot %d: %s: %s",
                    slot,
                    type(exc).__name__,
                    exc,
                )
                if spans_on:
                    _fold_phase_spans()
                if trace_on:
                    tracer.emit(
                        "run.abort",
                        scheduler=scheduler_name,
                        slot=slot,
                        error=type(exc).__name__,
                        message=str(exc),
                    )
                if live_on:
                    live.abort_run(f"{type(exc).__name__}: {exc}")
                instr.close()
            raise

        if spans_on:
            _fold_phase_spans()

        if not np.all(np.isfinite(e_trans)):
            raise SimulationError("non-finite transmission energy recorded")

        if instrumented and trace_on:
            tracer.emit(
                "run.end",
                scheduler=scheduler_name,
                n_slots=gamma,
                delivered_total_kb=float(delivered.sum()),
                energy_total_mj=float(e_trans.sum() + e_tail.sum()),
                rebuffering_total_s=float(rebuf.sum()),
                completed_users=int((completion >= 0).sum()),
            )
        if live_on:
            live.end_run()

        if instrumented:
            # Batch registry accounting: identical totals to per-slot
            # increments, derived from the recorded grids in a few
            # vectorised operations.
            metrics = instr.metrics
            kinfo = backend_info()
            metrics.gauge("kernels.backend").set(kinfo["resolved"])
            metrics.gauge("kernels.requested").set(kinfo["requested"])
            if kinfo["numba_version"] is not None:
                metrics.gauge("kernels.numba_version").set(kinfo["numba_version"])
            metrics.counter("engine.slots").inc(gamma)
            metrics.counter("energy.trans_mj").inc(float(e_trans.sum()))
            metrics.counter("rrc.tail_mj").inc(float(e_tail.sum()))
            occupancy = fleet_occupancy_from_tx(delivered > 0.0, cfg.tau_s, radio.rrc)
            metrics.counter("rrc.occupancy.dch").inc(occupancy["dch"])
            metrics.counter("rrc.occupancy.fach").inc(occupancy["fach"])
            metrics.counter("rrc.occupancy.idle").inc(occupancy["idle"])
            metrics.counter("scheduler.invocations").inc(gamma)
            used_units = alloc.sum(axis=1)
            near_miss = int(
                np.count_nonzero((budgets > 0) & (used_units > 0.9 * budgets))
            )
            metrics.counter("allocation.near_miss").inc(near_miss)
            truncated = float(
                np.maximum(alloc * cfg.delta_kb - delivered, 0.0).sum()
            )
            metrics.counter("allocation.truncated_kb").inc(truncated)
            if faults_on:
                _fault_counters(metrics, plan, outage_mask, gamma)
        return SimulationResult(
            scheduler_name=scheduler_name,
            config=cfg,
            allocation_units=alloc,
            delivered_kb=delivered,
            rebuffering_s=rebuf,
            energy_trans_mj=e_trans,
            energy_tail_mj=e_tail,
            buffer_s=buffer_s,
            need_kb=need_kb,
            active=active_rec,
            completion_slot=completion,
            arrival_slot=arrivals,
            phase_timings=instr.profiler.summary() if instrumented else None,
        )

    def _run_body_dynamic(self, instr: Instrumentation | None) -> SimulationResult:
        """Slot loop with session arrivals, admission, and retirement.

        Two index spaces coexist: result grids, trace payloads, and the
        signal trace stay keyed by *session* (the workload's ``n_users``
        offered sessions), while the fleet/RRC/arena/receiver/scheduler
        operate on a growable *row* space managed by
        :class:`~repro.sim.sessions.SessionManager`.  Each slot scatters
        the row-space vectors into the session-keyed grids through the
        manager's ``row -> session`` map.
        """
        cfg = self.config
        radio = cfg.radio
        n_sessions, gamma = cfg.n_users, cfg.n_slots

        plan = cfg.faults if cfg.faults is not None else current_fault_plan()
        faults_on = plan is not None and not plan.is_empty

        instrumented = instr is not None
        live = instr.live if instrumented else None
        live_on = live is not None
        spans = instr.spans if instrumented else None
        spans_on = spans is not None
        if instrumented:
            tracer = instr.tracer
            trace_on = tracer.enabled
            prof = instr.profiler
            _pc = perf_counter
            rec_playback = prof.samples("playback").append
            prof.samples("observe")
            prof.samples("schedule")
            prof.samples("transmit")
            rec_rrc = prof.samples("rrc").append
            rec_feedback = prof.samples("feedback").append
            budgets = np.zeros(gamma, dtype=np.int64)
        if spans_on:
            rec_block = spans.adder(spans.path_node(SLOT_PREFIX))
            _span_phase_ids = {
                ph: spans.slot_phase_id(ph)
                for ph in (
                    "playback", "observe", "schedule", "transmit",
                    "rrc", "feedback",
                )
            }
            _span_phase_base = {
                ph: len(prof.samples(ph)) for ph in _span_phase_ids
            }

            def _fold_phase_spans() -> None:
                for ph, node in _span_phase_ids.items():
                    tail = prof.samples(ph)[_span_phase_base[ph]:]
                    if tail:
                        spans.add_bulk(node, len(tail), float(sum(sorted(tail))))

        self.scheduler.reset()
        self.scheduler.bind_instrumentation(instr)

        capacity = min(n_sessions, INITIAL_CAPACITY)
        fleet = ClientFleet.with_capacity(capacity, cfg.tau_s, cfg.buffer_capacity_s)
        arena = SlotArena(capacity)
        rrc = RRCFleet(capacity, radio.rrc)
        cap_model = ConstantCapacity(cfg.capacity_kbps)
        if faults_on and plan.capacity:
            cap_model = FaultyCapacity(cap_model, plan.capacity_factors(gamma))
        bs = BaseStation(cap_model, cfg.delta_kb, cfg.tau_s)
        slicer = ResourceSlicer(cfg.background) if cfg.background else ResourceSlicer()
        gateway = Gateway(
            self.scheduler,
            bs,
            capacity,
            slicer=slicer,
            fetch_ahead_kb=cfg.fetch_ahead_kb,
        )
        # Row-capacity alignment: stateful schedulers built for
        # cfg.n_users shrink once here, before any state accrues.
        self.scheduler.grow_users(capacity)
        mgr = SessionManager(
            self.workload.flows, fleet, rrc, arena, gateway.receiver, self.scheduler
        )
        policy = make_admission_policy(cfg)
        policy.reset()
        nominal_budget = cfg.unit_budget_per_slot

        alloc = np.zeros((gamma, n_sessions), dtype=np.int64)
        delivered = np.zeros((gamma, n_sessions), dtype=float)
        rebuf = np.zeros((gamma, n_sessions), dtype=float)
        e_trans = np.zeros((gamma, n_sessions), dtype=float)
        e_tail = np.zeros((gamma, n_sessions), dtype=float)
        buffer_s = np.zeros((gamma, n_sessions), dtype=float)
        need_kb = np.zeros((gamma, n_sessions), dtype=float)
        active_rec = np.zeros((gamma, n_sessions), dtype=bool)
        completion = np.full(n_sessions, -1, dtype=np.int64)
        departure = np.full(n_sessions, -1, dtype=np.int64)

        flows = self.workload.flows
        signal = self.workload.signal_dbm
        if faults_on:
            # Session-keyed injection: blackout/stall windows name
            # *sessions*; the per-slot scatter below carries them into
            # whatever row each session currently occupies.
            signal = plan.apply_signal(signal)
            stall_grid = plan.stall_grid(gamma, n_sessions)
            outage_mask = plan.outage_slot_mask(gamma)
        else:
            stall_grid = None
            outage_mask = None
        arrivals = np.array([f.arrival_slot for f in flows], dtype=np.int64)

        scheduler_name = getattr(
            self.scheduler, "name", type(self.scheduler).__name__
        )
        if instrumented and trace_on:
            tracer.emit(
                "run.start",
                scheduler=scheduler_name,
                n_users=n_sessions,
                n_slots=gamma,
                tau_s=cfg.tau_s,
                delta_kb=cfg.delta_kb,
                seed=cfg.seed,
                kernel_backend=backend_info()["resolved"],
                arrival_process=cfg.arrival_process,
                admission=cfg.admission,
                rrc={
                    "pd_mw": radio.rrc.pd_mw,
                    "pf_mw": radio.rrc.pf_mw,
                    "t1_s": radio.rrc.t1_s,
                    "t2_s": radio.rrc.t2_s,
                },
                params=_scheduler_trace_params(self.scheduler),
                **({"faults": plan.spec()} if faults_on else {}),
            )
            if faults_on:
                _emit_fault_windows(tracer, plan)
        if live_on:
            live.begin_run(scheduler_name, n_slots=gamma, n_users=n_sessions)
            live_every = live.watch_every
            live_start = 0
        if spans_on:
            span_block_start = 0
            _block_t0 = perf_counter()

        slot = -1
        try:
            for slot in range(gamma):
                # 0. Session lifecycle: roll the join/depart masks, then
                #    admit (or reject) every session whose arrival slot
                #    has come, in deterministic (arrival, user) order.
                mgr.begin_slot()
                for sess in mgr.due_sessions(slot):
                    ctx = AdmissionContext(
                        slot=slot,
                        active_sessions=mgr.active_count,
                        capacity_rows=mgr.capacity,
                        unit_budget=nominal_budget,
                        flow=flows[sess],
                    )
                    if policy.admit(ctx):
                        row = mgr.admit(sess)
                        if instrumented and trace_on:
                            tracer.emit(
                                "session.start",
                                slot=slot,
                                user=int(sess),
                                row=int(row),
                                arrival_slot=int(arrivals[sess]),
                            )
                    else:
                        mgr.reject(sess)
                        if instrumented and trace_on:
                            tracer.emit(
                                "session.reject",
                                slot=slot,
                                user=int(sess),
                                policy=policy.name,
                            )
                occ = mgr.occupied_rows()
                sess_of = mgr.row_session[occ]

                # 1. Playback (row space) + completion detection.
                if instrumented:
                    _t0 = _pc()
                fleet.begin_slot(slot, out=arena.rebuf_s)
                newly_done = fleet.playback_complete_into(
                    arena.b1_tmp, arena.f8_tmp, arena.tx_mask
                )
                np.greater_equal(mgr.row_session, 0, out=arena.tx_mask)
                np.logical_and(newly_done, arena.tx_mask, out=newly_done)
                done_rows = np.flatnonzero(newly_done)
                for row in done_rows:
                    completion[mgr.row_session[row]] = slot
                if instrumented:
                    rec_playback(_pc() - _t0)

                # 2-4. Observe, schedule, transmit in row space.  The
                # session-keyed signal is gathered into the arena's
                # row-space buffer (vacant rows see a floor value; they
                # are inactive, so schedulers allocate them nothing).
                idle_cost = rrc.expected_idle_cost_mj(
                    cfg.tau_s, out=arena.idle_tail_cost_mj
                )
                arena.sig_dbm.fill(-110.0)
                if occ.size:
                    arena.sig_dbm[occ] = signal[slot][sess_of]
                if stall_grid is not None:
                    # Session-keyed stall row gathered into row space;
                    # the >= 0 mask discards the wrapped values fancy
                    # indexing produces for vacant (-1) rows.
                    stall_row = stall_grid[slot][mgr.row_session]
                    stall_row &= mgr.row_session >= 0
                else:
                    stall_row = None
                obs, phi, sent_kb = gateway.step(
                    slot,
                    arena.sig_dbm,
                    mgr.row_flows,
                    None,
                    radio.throughput,
                    radio.power,
                    idle_cost,
                    instrumentation=instr,
                    fleet=fleet,
                    arena=arena,
                    joined_mask=mgr.joined_mask,
                    departed_mask=mgr.departed_mask,
                    stall_mask=stall_row,
                )
                check_constraints(phi, obs)
                np.multiply(phi, cfg.delta_kb, out=arena.f8_tmp)
                np.add(arena.f8_tmp, 1e-9, out=arena.f8_tmp)
                np.greater(sent_kb, arena.f8_tmp, out=arena.b1_tmp)
                if arena.b1_tmp.any():
                    raise SimulationError(f"slot {slot}: delivered more than allocated")

                # 5. Radio energy accounting (row space).
                if instrumented:
                    _t0 = _pc()
                tx_mask = np.greater(sent_kb, 0.0, out=arena.tx_mask)
                np.multiply(obs.p_mj_per_kb, sent_kb, out=arena.trans_mj)
                rrc.step(tx_mask, cfg.tau_s, out=arena.tail_mj)
                if instrumented:
                    rec_rrc(_pc() - _t0)

                # 6. Scheduler feedback.
                if instrumented:
                    _t0 = _pc()
                self.scheduler.notify(obs, phi, sent_kb)
                if instrumented:
                    rec_feedback(_pc() - _t0)

                # Scatter row-space results into the session-keyed grids.
                if occ.size:
                    alloc[slot, sess_of] = phi[occ]
                    delivered[slot, sess_of] = sent_kb[occ]
                    rebuf[slot, sess_of] = arena.rebuf_s[occ]
                    e_trans[slot, sess_of] = arena.trans_mj[occ]
                    e_tail[slot, sess_of] = arena.tail_mj[occ]
                    buffer_s[slot, sess_of] = obs.buffer_s[occ]
                    need_kb[slot, sess_of] = obs.rate_kbps[occ] * cfg.tau_s
                    active_rec[slot, sess_of] = obs.active[occ]

                if instrumented:
                    budgets[slot] = obs.unit_budget
                if instrumented and trace_on:
                    link_sess = np.zeros(n_sessions, dtype=np.int64)
                    rate_sess = np.zeros(n_sessions, dtype=float)
                    if occ.size:
                        link_sess[sess_of] = obs.link_units[occ]
                        rate_sess[sess_of] = obs.rate_kbps[occ]
                    tracer.emit(
                        "slot",
                        slot=slot,
                        active_users=int(obs.active.sum()),
                        resident_sessions=int(mgr.active_count),
                        tx_users=int(tx_mask.sum()),
                        allocated_units=int(phi.sum()),
                        unit_budget=int(obs.unit_budget),
                        delivered_kb=float(sent_kb.sum()),
                        rebuffering_s=float(rebuf[slot].sum()),
                        energy_trans_mj=float(e_trans[slot].sum()),
                        energy_tail_mj=float(e_tail[slot].sum()),
                        mean_buffer_s=float(obs.buffer_s.mean()),
                        users={
                            "phi": alloc[slot],
                            "delivered_kb": delivered[slot],
                            "rebuffering_s": rebuf[slot],
                            "buffer_s": buffer_s[slot],
                            "energy_trans_mj": e_trans[slot],
                            "energy_tail_mj": e_tail[slot],
                            "link_units": link_sess,
                            "sig_dbm": signal[slot],
                            "rate_kbps": rate_sess,
                            "active": active_rec[slot],
                        },
                    )

                # Retirement happens at the *end* of the completion slot
                # — the slot's tail accrual and accounting include the
                # session — and frees the row for recycling.
                for row in done_rows:
                    sess = int(mgr.row_session[row])
                    departure[sess] = slot
                    mgr.retire(sess)
                    if instrumented and trace_on:
                        tracer.emit(
                            "session.end",
                            slot=slot,
                            user=sess,
                            row=int(row),
                        )

                if live_on and (slot - live_start + 1 >= live_every or slot == gamma - 1):
                    end = slot + 1
                    live.observe_block(
                        slot,
                        rebuf[live_start:end].sum(axis=1),
                        e_trans[live_start:end].sum(axis=1)
                        + e_tail[live_start:end].sum(axis=1),
                        delivered[live_start:end].sum(axis=1),
                        buffer_s[live_start:end].mean(axis=1),
                        active_users=int(mgr.active_count),
                        outage_slots=(
                            int(outage_mask[live_start:end].sum())
                            if outage_mask is not None
                            else 0
                        ),
                    )
                    live_start = end
                if spans_on and (
                    slot - span_block_start + 1 >= SPAN_BLOCK_SLOTS
                    or slot == gamma - 1
                ):
                    rec_block(_pc() - _block_t0)
                    span_block_start = slot + 1
                    _block_t0 = _pc()
        except BaseException as exc:
            if instrumented:
                log.warning(
                    "run aborted at slot %d: %s: %s",
                    slot,
                    type(exc).__name__,
                    exc,
                )
                if spans_on:
                    _fold_phase_spans()
                if trace_on:
                    tracer.emit(
                        "run.abort",
                        scheduler=scheduler_name,
                        slot=slot,
                        error=type(exc).__name__,
                        message=str(exc),
                    )
                if live_on:
                    live.abort_run(f"{type(exc).__name__}: {exc}")
                instr.close()
            raise

        if spans_on:
            _fold_phase_spans()

        if not np.all(np.isfinite(e_trans)):
            raise SimulationError("non-finite transmission energy recorded")

        n_admitted = int(mgr.admitted.sum())
        n_rejected = int(mgr.rejected.sum())
        n_completed = int(mgr.completed.sum())
        session_counts = {
            "offered": int(n_sessions),
            "arrived": n_admitted + n_rejected,
            "admitted": n_admitted,
            "rejected": n_rejected,
            "completed": n_completed,
            "active": int(mgr.active_count),
        }
        if instrumented and trace_on:
            tracer.emit(
                "run.end",
                scheduler=scheduler_name,
                n_slots=gamma,
                delivered_total_kb=float(delivered.sum()),
                energy_total_mj=float(e_trans.sum() + e_tail.sum()),
                rebuffering_total_s=float(rebuf.sum()),
                completed_users=int((completion >= 0).sum()),
                sessions=session_counts,
            )
        if live_on:
            live.end_run()

        if instrumented:
            metrics = instr.metrics
            kinfo = backend_info()
            metrics.gauge("kernels.backend").set(kinfo["resolved"])
            metrics.gauge("kernels.requested").set(kinfo["requested"])
            if kinfo["numba_version"] is not None:
                metrics.gauge("kernels.numba_version").set(kinfo["numba_version"])
            metrics.counter("engine.slots").inc(gamma)
            metrics.counter("energy.trans_mj").inc(float(e_trans.sum()))
            metrics.counter("rrc.tail_mj").inc(float(e_tail.sum()))
            occupancy = fleet_occupancy_from_tx(delivered > 0.0, cfg.tau_s, radio.rrc)
            metrics.counter("rrc.occupancy.dch").inc(occupancy["dch"])
            metrics.counter("rrc.occupancy.fach").inc(occupancy["fach"])
            metrics.counter("rrc.occupancy.idle").inc(occupancy["idle"])
            metrics.counter("scheduler.invocations").inc(gamma)
            metrics.counter("sessions.admitted").inc(n_admitted)
            metrics.counter("sessions.rejected").inc(n_rejected)
            metrics.counter("sessions.completed").inc(n_completed)
            used_units = alloc.sum(axis=1)
            near_miss = int(
                np.count_nonzero((budgets > 0) & (used_units > 0.9 * budgets))
            )
            metrics.counter("allocation.near_miss").inc(near_miss)
            truncated = float(
                np.maximum(alloc * cfg.delta_kb - delivered, 0.0).sum()
            )
            metrics.counter("allocation.truncated_kb").inc(truncated)
            if faults_on:
                _fault_counters(metrics, plan, outage_mask, gamma)
        return SimulationResult(
            scheduler_name=scheduler_name,
            config=cfg,
            allocation_units=alloc,
            delivered_kb=delivered,
            rebuffering_s=rebuf,
            energy_trans_mj=e_trans,
            energy_tail_mj=e_tail,
            buffer_s=buffer_s,
            need_kb=need_kb,
            active=active_rec,
            completion_slot=completion,
            arrival_slot=arrivals,
            phase_timings=instr.profiler.summary() if instrumented else None,
            admitted=mgr.admitted.copy(),
            rejected=mgr.rejected.copy(),
            departure_slot=departure,
            offered_video_kb=self.workload.offered_video_kb(),
            admitted_video_kb=self.workload.admitted_video_kb(mgr.admitted),
        )
