"""Result containers and summaries.

A :class:`SimulationResult` stores the full per-slot, per-user record
of one run (allocations, deliveries, rebuffering, transmission and
tail energy, buffer levels, fairness) plus the workload it ran on, and
derives the paper's headline metrics on demand.  :class:`SummaryStats`
is the flat snapshot used by the experiment tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.config import SimConfig
from repro.sim.metrics import (
    average_energy_mj,
    average_rebuffering_s,
    empirical_cdf,
    per_slot_fairness,
)

__all__ = ["SimulationResult", "SummaryStats"]


@dataclass(frozen=True)
class SummaryStats:
    """Headline metrics of one run (units: mJ and seconds per user-slot)."""

    scheduler: str
    #: Eq. (6) average energy per user-slot, mJ.
    pe_mj: float
    #: Eq. (9) average rebuffering per user-slot, s.
    pc_s: float
    #: Tail component of ``pe_mj``.
    pe_tail_mj: float
    #: Transmission component of ``pe_mj``.
    pe_trans_mj: float
    #: Mean per-slot Jain fairness index (NaN slots skipped).
    mean_fairness: float
    #: Fraction of slots with fairness index > 0.7 (paper Fig. 2 claim).
    frac_slots_fair: float
    #: Fraction of users whose playback completed within the horizon.
    completion_rate: float
    #: Total rebuffering per user averaged over users, s.
    total_rebuffering_per_user_s: float
    #: Session-window variants of pe/pc (see SimulationResult.session_mask).
    pe_session_mj: float
    pc_session_s: float

    def as_dict(self) -> dict[str, float | str]:
        return {
            "scheduler": self.scheduler,
            "pe_mj": self.pe_mj,
            "pc_s": self.pc_s,
            "pe_tail_mj": self.pe_tail_mj,
            "pe_trans_mj": self.pe_trans_mj,
            "mean_fairness": self.mean_fairness,
            "frac_slots_fair": self.frac_slots_fair,
            "completion_rate": self.completion_rate,
            "total_rebuffering_per_user_s": self.total_rebuffering_per_user_s,
            "pe_session_mj": self.pe_session_mj,
            "pc_session_s": self.pc_session_s,
        }


@dataclass
class SimulationResult:
    """Full record of one simulation run.

    All 2-D arrays have shape ``(n_slots, n_users)``.
    """

    scheduler_name: str
    config: SimConfig
    #: Allocated data units phi_i(n).
    allocation_units: np.ndarray
    #: Delivered media, KB (post truncation to remaining bytes).
    delivered_kb: np.ndarray
    #: Rebuffering time c_i(n), s.
    rebuffering_s: np.ndarray
    #: Transmission energy, mJ (Eq. 3).
    energy_trans_mj: np.ndarray
    #: Tail energy, mJ (Eq. 4 incremental).
    energy_tail_mj: np.ndarray
    #: Client buffer occupancy r_i(n) at slot start, s.
    buffer_s: np.ndarray
    #: Required data amount per slot, KB (tau * p_i(n)).
    need_kb: np.ndarray
    #: Active mask (session in progress and bytes outstanding).
    active: np.ndarray
    #: Per-user completion slot (-1 if playback unfinished at horizon).
    completion_slot: np.ndarray
    #: Per-user session start slot.
    arrival_slot: np.ndarray
    #: Per-phase wall-clock summary from the run's profiler
    #: (``None`` when the run was uninstrumented).  Keys are phase
    #: names; values are ``count/total_s/mean_s/p50_s/p95_s/max_s``.
    phase_timings: dict | None = field(default=None, compare=False)
    #: Per-session admission outcome (dynamic runs only; ``None`` on
    #: the fixed path, where every offered session is implicitly
    #: admitted at slot 0).
    admitted: np.ndarray | None = None
    #: Per-session rejection flag (dynamic runs only).
    rejected: np.ndarray | None = None
    #: Slot at which the session's row was retired (-1 if the session
    #: never completed; dynamic runs only).
    departure_slot: np.ndarray | None = None
    #: Total media offered by the workload, KB (dynamic runs only).
    offered_video_kb: float | None = None
    #: Media belonging to *admitted* sessions, KB (dynamic runs only).
    admitted_video_kb: float | None = None

    def __post_init__(self) -> None:
        shape = self.allocation_units.shape
        for name in (
            "delivered_kb",
            "rebuffering_s",
            "energy_trans_mj",
            "energy_tail_mj",
            "buffer_s",
            "need_kb",
            "active",
        ):
            if getattr(self, name).shape != shape:
                raise ConfigurationError(f"{name} shape mismatch: expected {shape}")

    # -- derived metrics -------------------------------------------------

    @property
    def energy_mj(self) -> np.ndarray:
        """Total per-slot energy (transmission + tail), Eq. (5)."""
        return self.energy_trans_mj + self.energy_tail_mj

    @property
    def pe_mj(self) -> float:
        """Eq. (6)."""
        return average_energy_mj(self.energy_mj)

    @property
    def pc_s(self) -> float:
        """Eq. (9)."""
        return average_rebuffering_s(self.rebuffering_s)

    def fairness_per_slot(self, min_active: int = 2) -> np.ndarray:
        """Per-slot Jain index of allocation-vs-need (Section VI-A).

        Slots with fewer than ``min_active`` competing users are NaN
        (fairness measures BS contention; see
        :func:`repro.sim.metrics.per_slot_fairness`).
        """
        return per_slot_fairness(
            self.delivered_kb, self.need_kb, self.active, min_active
        )

    def fairness_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """CDF data for Fig. 2 / Fig. 6 (contended slots only)."""
        return empirical_cdf(self.fairness_per_slot())

    def rebuffering_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """CDF of *per-user total* rebuffering (Fig. 3's 0-20 s scale)."""
        return empirical_cdf(self.per_user_total_rebuffering_s())

    def slot_rebuffering_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """CDF of per-slot per-user rebuffering over active user-slots."""
        return empirical_cdf(self.rebuffering_s[self.active])

    def power_per_slot_mj(self) -> np.ndarray:
        """Aggregate energy across users per slot, mJ (Fig. 7 series)."""
        return self.energy_mj.sum(axis=1)

    def per_user_total_rebuffering_s(self) -> np.ndarray:
        return self.rebuffering_s.sum(axis=0)

    def per_user_total_energy_mj(self) -> np.ndarray:
        return self.energy_mj.sum(axis=0)

    # -- per-user grids for trace analysis --------------------------------

    @property
    def tx_mask(self) -> np.ndarray:
        """Boolean ``(slots, users)``: slots in which the user received data."""
        return self.delivered_kb > 0.0

    def rrc_state_grid(self) -> np.ndarray:
        """Per-(slot, user) RRC state codes (0=DCH, 1=FACH, 2=IDLE).

        Reconstructed from the transmission history exactly as the
        engine's fleet evolved (see
        :func:`repro.radio.rrc.fleet_state_grid_from_tx`).
        """
        from repro.radio.rrc import fleet_state_grid_from_tx

        return fleet_state_grid_from_tx(
            self.tx_mask, self.config.tau_s, self.config.radio.rrc
        )

    def rrc_residency(self) -> dict[str, np.ndarray]:
        """Per-user slot counts in each RRC state over the run."""
        grid = self.rrc_state_grid()
        return {
            "dch": (grid == 0).sum(axis=0),
            "fach": (grid == 1).sum(axis=0),
            "idle": (grid == 2).sum(axis=0),
        }

    def tail_energy_split_mj(self) -> tuple[np.ndarray, np.ndarray]:
        """Tail energy split into DCH/FACH components, ``(slots, users)``.

        The two grids sum to :attr:`energy_tail_mj` exactly (tested);
        together with :attr:`energy_trans_mj` they give the full
        DCH-transmission / DCH-tail / FACH-tail energy decomposition.
        """
        from repro.radio.rrc import tail_split_from_tx

        return tail_split_from_tx(
            self.tx_mask, self.config.tau_s, self.config.radio.rrc
        )

    def per_user_grids(self) -> dict[str, np.ndarray]:
        """The per-(slot, user) grids consumed by :mod:`repro.obs.analyze`.

        One flat dict, keyed like the trace's per-user ``slot`` event
        fields, so in-memory results and re-read traces feed the same
        invariant checkers.
        """
        return {
            "phi": self.allocation_units,
            "delivered_kb": self.delivered_kb,
            "rebuffering_s": self.rebuffering_s,
            "buffer_s": self.buffer_s,
            "energy_trans_mj": self.energy_trans_mj,
            "energy_tail_mj": self.energy_tail_mj,
            "rate_kbps": self.need_kb / self.config.tau_s,
            "active": self.active,
        }

    def session_mask(self) -> np.ndarray:
        """Boolean ``(slots, users)``: slot lies within the user's session.

        A session spans arrival through playback completion (through
        the horizon if playback never completed).  The paper's Eq. (6)
        and Eq. (9) normalise by the scheduling period ``Gamma``; its
        reported magnitudes, however, match per-*session* averages
        (energy/rebuffering after a session ends is identically ~0, so
        horizon averages dilute with ``Gamma``).  Both views are
        exposed: :attr:`pe_mj`/:attr:`pc_s` for literal Eq. (6)/(9) and
        :attr:`pe_session_mj`/:attr:`pc_session_s` for session windows.
        """
        n_slots, n_users = self.allocation_units.shape
        slots = np.arange(n_slots)[:, None]
        end = np.where(self.completion_slot >= 0, self.completion_slot, n_slots - 1)
        mask = (slots >= self.arrival_slot[None, :]) & (slots <= end[None, :])
        if self.admitted is not None:
            # Rejected (or never-arrived) sessions have no residency:
            # counting their all-zero horizon windows would dilute the
            # per-session averages with users that were never served.
            mask &= self.admitted[None, :]
        return mask

    @property
    def pe_session_mj(self) -> float:
        """Mean energy per user-slot within session windows, mJ."""
        mask = self.session_mask()
        return float(self.energy_mj[mask].mean())

    @property
    def pc_session_s(self) -> float:
        """Mean rebuffering per user-slot within session windows, s."""
        mask = self.session_mask()
        return float(self.rebuffering_s[mask].mean())

    def to_summary_dict(self) -> dict:
        """One flat dict with every headline aggregate of this run.

        The canonical derivation of PE/PC/fairness/completion numbers —
        the CLI, the summary tables, and the benches all read this
        instead of re-deriving their own aggregates.  Includes the
        per-phase wall-clock timings when the run was instrumented.
        """
        out = self.summary().as_dict()
        out["n_users"] = int(self.allocation_units.shape[1])
        out["n_slots"] = int(self.allocation_units.shape[0])
        out["completed_users"] = int((self.completion_slot >= 0).sum())
        out["delivered_total_kb"] = float(self.delivered_kb.sum())
        if self.admitted is not None:
            # Dynamic runs split the load the workload *offered* from
            # the load the admission policy actually let in.
            out["sessions_offered"] = int(self.admitted.size)
            out["sessions_admitted"] = int(self.admitted.sum())
            out["sessions_rejected"] = (
                int(self.rejected.sum()) if self.rejected is not None else 0
            )
            out["sessions_completed"] = int((self.completion_slot >= 0).sum())
            if self.offered_video_kb is not None:
                out["offered_video_kb"] = float(self.offered_video_kb)
            if self.admitted_video_kb is not None:
                out["admitted_video_kb"] = float(self.admitted_video_kb)
        if self.phase_timings is not None:
            out["phase_timings"] = self.phase_timings
        return out

    def summary(self) -> SummaryStats:
        fairness = self.fairness_per_slot()
        finite = fairness[~np.isnan(fairness)]
        completed = self.completion_slot >= 0
        if self.admitted is not None:
            # Under churn, completion is judged over admitted sessions
            # (a rejected session cannot complete by construction).
            n_admitted = int(self.admitted.sum())
            completion_rate = (
                float(completed.sum() / n_admitted) if n_admitted else float("nan")
            )
        else:
            completion_rate = float(completed.mean())
        return SummaryStats(
            scheduler=self.scheduler_name,
            pe_mj=self.pe_mj,
            pc_s=self.pc_s,
            pe_tail_mj=average_energy_mj(self.energy_tail_mj),
            pe_trans_mj=average_energy_mj(self.energy_trans_mj),
            mean_fairness=float(finite.mean()) if finite.size else float("nan"),
            frac_slots_fair=float((finite > 0.7).mean()) if finite.size else float("nan"),
            completion_rate=completion_rate,
            total_rebuffering_per_user_s=float(
                self.per_user_total_rebuffering_s().mean()
            ),
            pe_session_mj=self.pe_session_mj,
            pc_session_s=self.pc_session_s,
        )
