"""Shared infrastructure for the figure experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.tables import Table
from repro.errors import ConfigurationError
from repro.sim.config import SimConfig

__all__ = ["ExperimentResult", "paper_config", "SCALES"]

SCALES = ("bench", "full")


@dataclass
class ExperimentResult:
    """Output of one figure reproduction."""

    exp_id: str
    title: str
    tables: list[Table]
    #: Raw numeric series keyed by name (for assertions and plotting).
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"== {self.exp_id}: {self.title} =="]
        parts.extend(t.render() for t in self.tables)
        return "\n\n".join(parts)

    def to_markdown(self) -> str:
        parts = [f"### {self.exp_id}: {self.title}"]
        parts.extend(t.to_markdown() for t in self.tables)
        return "\n\n".join(parts)


def paper_config(scale: str = "bench", seed: int = 0, **overrides) -> SimConfig:
    """The Section VI evaluation configuration at a given scale.

    ``bench`` shrinks sessions and the horizon (~7x) while keeping the
    demand-to-capacity ratio (~85% with 40 users) and the VBR dynamics
    that drive contention; ``full`` is the paper's literal setting.
    """
    if scale == "full":
        cfg = SimConfig(
            n_users=40,
            n_slots=10_000,
            vbr_segments=30,
            buffer_capacity_s=60.0,
            seed=seed,
        )
    elif scale == "bench":
        cfg = SimConfig(
            n_users=40,
            n_slots=1_500,
            video_size_range_kb=(100.0 * 1024.0, 200.0 * 1024.0),
            vbr_segments=30,
            buffer_capacity_s=60.0,
            seed=seed,
        )
    else:
        raise ConfigurationError(f"unknown scale {scale!r}; use one of {SCALES}")
    return cfg.with_(**overrides) if overrides else cfg


def calibration_kwargs(scale: str) -> dict:
    """Cheaper calibration budgets at bench scale."""
    if scale == "bench":
        return {"iterations": 6, "calibration_slots": 500}
    return {"iterations": 9, "calibration_slots": 2000}
