"""Fig. 3 — rebuffering-time CDF, RTMA vs Default.

Paper claims: with RTMA "about 90% of the slots have less than 1.5 s
rebuffering" (trivially true since c <= tau; we report the per-slot CDF
anyway), and with the default strategy "about 57% of users have a very
low unsaturated time (close to zero) but more than 20% of users have
suffered rebuffering time more than 11 s" — a statement about the
*per-user total*, whose bimodality is the resource-competition
signature.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cdf import cdf_at, tail_fraction
from repro.analysis.tables import Table
from repro.baselines.default import DefaultScheduler
from repro.core.rtma import RTMAScheduler
from repro.experiments.common import ExperimentResult, calibration_kwargs, paper_config
from repro.sim.runner import calibrate_rtma_threshold, compare_schedulers
from repro.sim.workload import generate_workload

EXP_ID = "fig03"
TITLE = "Rebuffering-time CDF (RTMA vs default)"


def run(scale: str = "bench", seed: int = 0) -> ExperimentResult:
    cfg = paper_config(scale, seed)
    wl = generate_workload(cfg)
    threshold = calibrate_rtma_threshold(
        cfg, alpha=1.0, workload=wl, **calibration_kwargs(scale)
    )
    threshold_12 = calibrate_rtma_threshold(
        cfg, alpha=1.2, workload=wl, **calibration_kwargs(scale)
    )
    results = compare_schedulers(
        cfg,
        {
            "default": DefaultScheduler(),
            "rtma": RTMAScheduler(sig_threshold_dbm=threshold),
            "rtma (a=1.2)": RTMAScheduler(sig_threshold_dbm=threshold_12),
        },
        workload=wl,
    )
    table = Table(
        [
            "scheduler",
            "mean total rebuf (s/user)",
            "P(total < 1 s)",
            "P(total > 11 s)",
            "max total (s)",
        ],
        formats=[None, ".2f", ".3f", ".3f", ".1f"],
        title=TITLE,
    )
    data: dict = {}
    for name, res in results.items():
        totals = res.per_user_total_rebuffering_s()
        row = {
            "mean_total_s": float(totals.mean()),
            "frac_below_1s": cdf_at(totals, 1.0),
            "frac_above_11s": tail_fraction(totals, 11.0),
            "max_total_s": float(totals.max()),
        }
        data[name] = row
        table.add_row(
            [
                name,
                row["mean_total_s"],
                row["frac_below_1s"],
                row["frac_above_11s"],
                row["max_total_s"],
            ]
        )
    data["reduction"] = 1.0 - (
        data["rtma"]["mean_total_s"] / max(data["default"]["mean_total_s"], 1e-12)
    )
    return ExperimentResult(EXP_ID, TITLE, [table], data)
