"""Fig. 8 — EMA energy vs user count (a) and data amount (b) for
beta in {0.8, 1.0, 1.2}, where Omega = beta * R_default.

Paper shape: EMA (beta = 1) saves > 48% energy vs the default across
scenarios; a tighter rebuffering bound (beta = 0.8) still saves, a
looser one (beta = 1.2) saves more.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.baselines.default import DefaultScheduler
from repro.core.ema import EMAScheduler
from repro.experiments.common import ExperimentResult, paper_config
from repro.sim.runner import calibrate_ema_v_to_reference, run_scheduler
from repro.sim.workload import generate_workload

EXP_ID = "fig08"
TITLE = "EMA energy vs users / data amount, beta sweep"

BETAS = (0.8, 1.0, 1.2)


def _calibration_slots(scale: str) -> int:
    return 400 if scale == "bench" else 1500


def _sweep(cfg_points, label, scale):
    table = Table(
        [label, "default (mJ)"] + [f"ema b={b} (mJ)" for b in BETAS],
        formats=["d", ".1f"] + [".1f"] * len(BETAS),
        title=f"{TITLE} — by {label}",
    )
    series: dict = {"points": [], "default": [], **{f"beta={b}": [] for b in BETAS}}
    for point, cfg in cfg_points:
        wl = generate_workload(cfg)
        ref = run_scheduler(cfg, DefaultScheduler(), wl)
        series["points"].append(point)
        series["default"].append(ref.pe_session_mj)
        row = [point, ref.pe_session_mj]
        for beta in BETAS:
            v = calibrate_ema_v_to_reference(
                cfg,
                DefaultScheduler,
                beta=beta,
                workload=wl,
                iterations=6,
                calibration_slots=_calibration_slots(scale),
            )
            res = run_scheduler(
                cfg, EMAScheduler(cfg.n_users, v_param=v, tau_s=cfg.tau_s), wl
            )
            row.append(res.pe_session_mj)
            series[f"beta={beta}"].append(res.pe_session_mj)
        table.add_row(row)
    return table, series


def run(scale: str = "bench", seed: int = 0) -> ExperimentResult:
    base = paper_config(scale, seed)
    user_counts = (20, 30, 40) if scale == "bench" else (20, 25, 30, 35, 40)
    users_points = [(n, base.with_(n_users=n)) for n in user_counts]
    table_a, series_a = _sweep(users_points, "users", scale)

    scale_factor = 1.0 if scale == "full" else (150.0 * 1024.0) / (375.0 * 1024.0)
    sizes_mb = (150, 350, 550) if scale == "bench" else (150, 250, 350, 450, 550)
    size_points = [
        (mb, base.with_(mean_video_size_kb=mb * 1024.0 * scale_factor))
        for mb in sizes_mb
    ]
    table_b, series_b = _sweep(size_points, "avg size (MB)", scale)

    return ExperimentResult(
        EXP_ID, TITLE, [table_a, table_b], {"by_users": series_a, "by_size": series_b}
    )
