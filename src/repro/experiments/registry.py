"""Experiment registry and the ``repro-experiments`` CLI.

``repro-experiments list`` shows the available experiments;
``repro-experiments run fig02 [--scale bench|full] [--seed N]`` runs
one (or ``all``) and prints its tables.  ``--markdown`` emits the
EXPERIMENTS.md-ready rendering.  ``--jobs N`` installs a process-pool
:class:`~repro.sim.executor.RunExecutor` for the duration of the run,
parallelising every sweep / comparison / calibration grid underneath
(results and metrics are bit-identical to ``--jobs 1``; per-slot trace
events stay worker-local, so use ``--jobs 1`` with ``--report-dir``
when the full slot stream matters).
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.experiments import (
    fig02_fairness_rtma,
    fig03_rebuffering_cdf,
    fig04_rtma_efficacy,
    fig05_rtma_comparison,
    fig06_fairness_ema,
    fig07_power_cdf,
    fig08_ema_efficacy,
    fig09_ema_comparison,
    fig10_tradeoff_panel,
    theorem1_bounds,
)
from repro.experiments.common import SCALES, ExperimentResult
from repro.obs.instrument import Instrumentation, use_instrumentation
from repro.sim.executor import RunExecutor, use_executor

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig02": fig02_fairness_rtma.run,
    "fig03": fig03_rebuffering_cdf.run,
    "fig04": fig04_rtma_efficacy.run,
    "fig05": fig05_rtma_comparison.run,
    "fig06": fig06_fairness_ema.run,
    "fig07": fig07_power_cdf.run,
    "fig08": fig08_ema_efficacy.run,
    "fig09": fig09_ema_comparison.run,
    "fig10": fig10_tradeoff_panel.run,
    "theorem1": theorem1_bounds.run,
}


def run_experiment(
    exp_id: str,
    scale: str = "bench",
    seed: int = 0,
    instrumentation: Instrumentation | None = None,
) -> ExperimentResult:
    """Run one experiment by id.

    With ``instrumentation``, the bundle is made ambient for the whole
    experiment (see :func:`repro.obs.instrument.use_instrumentation`):
    every inner simulation — including the dozens of hidden calibration
    runs — traces, counts, and profiles into it.
    """
    try:
        runner = EXPERIMENTS[exp_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    if instrumentation is None:
        return runner(scale=scale, seed=seed)
    with use_instrumentation(instrumentation):
        if instrumentation.tracer.enabled:
            instrumentation.tracer.emit("experiment.start", exp_id=exp_id, scale=scale, seed=seed)
        result = runner(scale=scale, seed=seed)
        if instrumentation.tracer.enabled:
            instrumentation.tracer.emit("experiment.end", exp_id=exp_id)
        return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's evaluation figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("exp_id", help="experiment id (e.g. fig02) or 'all'")
    run_p.add_argument("--scale", choices=SCALES, default="bench")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--markdown", action="store_true", help="emit markdown tables"
    )
    run_p.add_argument(
        "--report-dir",
        default=None,
        help="trace each experiment and write trace.jsonl + metrics.json + "
        "report.html under <report-dir>/<exp_id>/",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for batched runs (sweeps, comparisons, "
        "calibration grids); results are bit-identical to --jobs 1",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        for exp_id in EXPERIMENTS:
            print(exp_id)
        return 0

    ids = list(EXPERIMENTS) if args.exp_id == "all" else [args.exp_id]
    with use_executor(RunExecutor(jobs=args.jobs)):
        for exp_id in ids:
            start = time.perf_counter()
            if args.report_dir is not None:
                result = _run_with_report(exp_id, args)
            else:
                result = run_experiment(exp_id, scale=args.scale, seed=args.seed)
            elapsed = time.perf_counter() - start
            print(result.to_markdown() if args.markdown else result.render())
            print(f"[{exp_id} done in {elapsed:.1f}s]\n", file=sys.stderr)
    return 0


def _run_with_report(exp_id: str, args) -> ExperimentResult:
    """Run one experiment fully traced and leave a reviewable run dir."""
    from pathlib import Path

    from repro.obs.report import write_report
    from repro.obs.tracer import JsonlTraceWriter

    out_dir = Path(args.report_dir) / exp_id
    tracer = JsonlTraceWriter(out_dir / "trace.jsonl")
    instr = Instrumentation(tracer=tracer)
    try:
        result = run_experiment(
            exp_id, scale=args.scale, seed=args.seed, instrumentation=instr
        )
    finally:
        tracer.close()
    instr.metrics.write_json(out_dir / "metrics.json")
    report = write_report(out_dir, title=f"{exp_id} ({args.scale}, seed {args.seed})")
    print(f"[{exp_id} report: {report}]", file=sys.stderr)
    return result


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
