"""Experiment registry and the ``repro-experiments`` CLI.

``repro-experiments list`` shows the available experiments;
``repro-experiments run fig02 [--scale bench|full] [--seed N]`` runs
one (or ``all``) and prints its tables.  ``--markdown`` emits the
EXPERIMENTS.md-ready rendering.  ``--jobs N`` installs a process-pool
:class:`~repro.sim.executor.RunExecutor` for the duration of the run,
parallelising every sweep / comparison / calibration grid underneath
(results and metrics are bit-identical to ``--jobs 1``; per-slot trace
events stay worker-local, so use ``--jobs 1`` with ``--report-dir``
when the full slot stream matters).  ``--batch R`` additionally stacks
up to R consecutive compatible runs into one vectorized slot loop
(:mod:`repro.sim.batch`) — also bit-identical, and multiplicative with
``--jobs``.

Live telemetry flags (see :mod:`repro.obs.live` and the
"Watching a run live" section of EXPERIMENTS.md):

* ``--export out/prom.txt`` — push Prometheus-text + JSON snapshots
  while the run executes (``repro-watch out/prom.json`` tails them);
* ``--serve 9464`` — stdlib HTTP pull endpoint (``/metrics``,
  ``/metrics.json``) for the run's duration;
* ``--watch`` — render the terminal dashboard to stderr every second;
* ``--slo "p95(rebuffer_s) < 0.5"`` (repeatable) + ``--slo-action
  warn|abort`` — online SLO watchdog; ``abort`` exits with code 3 on
  the first violation.

Any live flag enables executor heartbeats when ``--jobs > 1``.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from collections.abc import Callable
from contextlib import nullcontext

from repro.errors import ConfigurationError
from repro.experiments import (
    churn_sessions,
    fig02_fairness_rtma,
    fig03_rebuffering_cdf,
    fig04_rtma_efficacy,
    fig05_rtma_comparison,
    fig06_fairness_ema,
    fig07_power_cdf,
    fig08_ema_efficacy,
    fig09_ema_comparison,
    fig10_tradeoff_panel,
    theorem1_bounds,
)
from repro.experiments.common import SCALES, ExperimentResult
from repro.obs.instrument import Instrumentation, use_instrumentation
from repro.sim.executor import RunExecutor, use_executor

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig02": fig02_fairness_rtma.run,
    "fig03": fig03_rebuffering_cdf.run,
    "fig04": fig04_rtma_efficacy.run,
    "fig05": fig05_rtma_comparison.run,
    "fig06": fig06_fairness_ema.run,
    "fig07": fig07_power_cdf.run,
    "fig08": fig08_ema_efficacy.run,
    "fig09": fig09_ema_comparison.run,
    "fig10": fig10_tradeoff_panel.run,
    "theorem1": theorem1_bounds.run,
    "churn": churn_sessions.run,
}


def run_experiment(
    exp_id: str,
    scale: str = "bench",
    seed: int = 0,
    instrumentation: Instrumentation | None = None,
) -> ExperimentResult:
    """Run one experiment by id.

    With ``instrumentation``, the bundle is made ambient for the whole
    experiment (see :func:`repro.obs.instrument.use_instrumentation`):
    every inner simulation — including the dozens of hidden calibration
    runs — traces, counts, and profiles into it.
    """
    try:
        runner = EXPERIMENTS[exp_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    if instrumentation is None:
        return runner(scale=scale, seed=seed)
    with use_instrumentation(instrumentation):
        if instrumentation.tracer.enabled:
            instrumentation.tracer.emit("experiment.start", exp_id=exp_id, scale=scale, seed=seed)
        result = runner(scale=scale, seed=seed)
        if instrumentation.tracer.enabled:
            instrumentation.tracer.emit("experiment.end", exp_id=exp_id)
        return result


def main(argv: list[str] | None = None) -> int:
    from repro.obs.cli import add_version_argument

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's evaluation figures.",
    )
    add_version_argument(parser)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("exp_id", help="experiment id (e.g. fig02) or 'all'")
    run_p.add_argument("--scale", choices=SCALES, default="bench")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--markdown", action="store_true", help="emit markdown tables"
    )
    run_p.add_argument(
        "--report-dir",
        default=None,
        help="trace each experiment and write trace.jsonl + metrics.json + "
        "report.html under <report-dir>/<exp_id>/",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for batched runs (sweeps, comparisons, "
        "calibration grids); results are bit-identical to --jobs 1",
    )
    run_p.add_argument(
        "--batch",
        type=int,
        default=1,
        help="runs stacked per slot loop (run-stacked batching): "
        "consecutive compatible runs of a sweep/multi-seed/calibration "
        "grid execute as one vectorized batch; results are bit-identical "
        "to --batch 1 and compose with --jobs (J workers x R-run batches)",
    )
    run_p.add_argument(
        "--watch",
        action="store_true",
        help="render the live dashboard to stderr every second",
    )
    run_p.add_argument(
        "--export",
        default=None,
        metavar="PROM_PATH",
        help="push Prometheus-text (+ sibling .json) snapshots here "
        "while the run executes",
    )
    run_p.add_argument(
        "--serve",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics and /metrics.json on 127.0.0.1:PORT for "
        "the run's duration (0 picks a free port)",
    )
    run_p.add_argument(
        "--slo",
        action="append",
        default=[],
        metavar="RULE",
        help='online SLO rule, e.g. "p95(rebuffer_s) < 0.5" (repeatable)',
    )
    run_p.add_argument(
        "--slo-action",
        choices=("warn", "abort"),
        default="warn",
        help="what a firing SLO rule does (abort exits with code 3)",
    )
    run_p.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject a fault plan into every run: a FaultPlan.spec() "
        'JSON string (e.g. \'{"signal": [{"start_slot": 100, '
        '"n_slots": 50}]}\') or @file to read one from disk',
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        for exp_id in EXPERIMENTS:
            print(exp_id)
        return 0

    live_on = bool(
        args.watch or args.export or args.serve is not None or args.slo
    )
    live = server = None
    stop_watch = threading.Event()
    if live_on:
        from repro.errors import SloViolation
        from repro.obs.live import (
            LiveTelemetry,
            MetricsServer,
            SnapshotExporter,
            logging_setup,
        )
        from repro.obs.live.watch import render_dashboard

        logging_setup()
        exporter = SnapshotExporter(args.export) if args.export else None
        live = LiveTelemetry(
            rules=tuple(args.slo), action=args.slo_action, exporter=exporter
        )
        if args.serve is not None:
            server = MetricsServer(live.snapshot, port=args.serve).start()
            live.server = server
            print(f"[metrics endpoint: {server.url}]", file=sys.stderr)
        if args.watch:

            def _watch_loop() -> None:
                while not stop_watch.wait(1.0):
                    stamp = time.strftime("%H:%M:%S")
                    frame = render_dashboard(live.snapshot())
                    print(
                        f"── live {stamp} " + "─" * 24 + f"\n{frame}",
                        file=sys.stderr,
                        flush=True,
                    )

            threading.Thread(
                target=_watch_loop, name="repro-live-watch", daemon=True
            ).start()

    fault_ctx = nullcontext()
    if args.faults is not None:
        import json

        from repro.faults import FaultPlan, use_fault_plan

        raw = args.faults
        if raw.startswith("@"):
            with open(raw[1:]) as f:
                raw = f.read()
        fault_ctx = use_fault_plan(FaultPlan.from_spec(json.loads(raw)))

    heartbeat_s = 1.0 if (live_on and args.jobs > 1) else None
    ids = list(EXPERIMENTS) if args.exp_id == "all" else [args.exp_id]
    exit_code = 0
    try:
        with fault_ctx, use_executor(
            RunExecutor(
                jobs=args.jobs,
                heartbeat_s=heartbeat_s,
                batch_size=args.batch,
            )
        ):
            for exp_id in ids:
                start = time.perf_counter()
                if args.report_dir is not None:
                    result = _run_with_report(exp_id, args, live=live)
                else:
                    instr = Instrumentation(live=live) if live is not None else None
                    result = run_experiment(
                        exp_id,
                        scale=args.scale,
                        seed=args.seed,
                        instrumentation=instr,
                    )
                elapsed = time.perf_counter() - start
                print(result.to_markdown() if args.markdown else result.render())
                print(f"[{exp_id} done in {elapsed:.1f}s]\n", file=sys.stderr)
    except Exception as exc:
        if live_on and isinstance(exc, SloViolation):
            print(f"[aborted: {exc}]", file=sys.stderr)
            exit_code = 3
        else:
            raise
    finally:
        stop_watch.set()
        if server is not None:
            server.stop()
        if live is not None:
            live.close()
            if args.export:
                print(f"[snapshots: {args.export}]", file=sys.stderr)
    return exit_code


def _run_with_report(exp_id: str, args, live=None) -> ExperimentResult:
    """Run one experiment fully traced and leave a reviewable run dir."""
    from pathlib import Path

    from repro.obs.report import write_report
    from repro.obs.tracer import JsonlTraceWriter

    out_dir = Path(args.report_dir) / exp_id
    tracer = JsonlTraceWriter(out_dir / "trace.jsonl")
    instr = Instrumentation(tracer=tracer, live=live)
    try:
        result = run_experiment(
            exp_id, scale=args.scale, seed=args.seed, instrumentation=instr
        )
    finally:
        tracer.close()
    instr.metrics.write_json(out_dir / "metrics.json")
    report = write_report(out_dir, title=f"{exp_id} ({args.scale}, seed {args.seed})")
    print(f"[{exp_id} report: {report}]", file=sys.stderr)
    return result


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
