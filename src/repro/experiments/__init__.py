"""Per-figure experiment reproductions (paper Section VI).

Each ``figNN_*`` module exposes ``run(scale, seed) -> ExperimentResult``
regenerating the corresponding figure's data series; the
:mod:`repro.experiments.registry` module maps experiment ids to
runners and provides the ``repro-experiments`` CLI.

Scales:

* ``"bench"`` — reduced horizon/sessions preserving the paper's
  contention ratio; minutes for the full set (used by benchmarks/);
* ``"full"`` — the paper's Section VI parameters (40 users, 10000
  slots, 250-500 MB sessions); tens of minutes for the full set.
"""

from repro.experiments.common import ExperimentResult, paper_config

__all__ = ["ExperimentResult", "paper_config"]
