"""Fig. 5 — RTMA vs Throttling vs ON-OFF vs Default across user counts.

(a) average rebuffering time; (b) average energy with the tail-energy
component broken out (the paper's black bars).  Paper shape: RTMA
lowest rebuffering everywhere (>= 68% reduction at 40 users); RTMA's
energy below the default's (alpha = 1) and slightly above ON-OFF's.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.baselines.default import DefaultScheduler
from repro.baselines.onoff import OnOffScheduler
from repro.baselines.throttling import ThrottlingScheduler
from repro.core.rtma import RTMAScheduler
from repro.experiments.common import ExperimentResult, calibration_kwargs, paper_config
from repro.sim.runner import calibrate_rtma_threshold, compare_schedulers
from repro.sim.workload import generate_workload

EXP_ID = "fig05"
TITLE = "RTMA vs Throttling / ON-OFF / Default"


def run(scale: str = "bench", seed: int = 0) -> ExperimentResult:
    base = paper_config(scale, seed)
    user_counts = (20, 30, 40) if scale == "bench" else (20, 25, 30, 35, 40)

    table_pc = Table(
        ["users", "default", "throttling", "on-off", "rtma"],
        formats=["d"] + [".4f"] * 4,
        title="Fig 5a: avg rebuffering (s per user-slot, session window)",
    )
    table_pe = Table(
        ["users", "default", "throttling", "on-off", "rtma", "rtma tail"],
        formats=["d"] + [".1f"] * 5,
        title="Fig 5b: avg energy (mJ per user-slot, session window)",
    )
    data: dict = {"users": [], "pc": {}, "pe": {}, "tail": {}}
    for n in user_counts:
        cfg = base.with_(n_users=n)
        wl = generate_workload(cfg)
        thr = calibrate_rtma_threshold(
            cfg, alpha=1.0, workload=wl, **calibration_kwargs(scale)
        )
        results = compare_schedulers(
            cfg,
            {
                "default": DefaultScheduler(),
                "throttling": ThrottlingScheduler(),
                "on-off": OnOffScheduler(),
                "rtma": RTMAScheduler(sig_threshold_dbm=thr),
            },
            workload=wl,
        )
        data["users"].append(n)
        mask_sums = {}
        for name, res in results.items():
            mask = res.session_mask()
            pc = res.pc_session_s
            pe = res.pe_session_mj
            tail = float(res.energy_tail_mj[mask].mean())
            data["pc"].setdefault(name, []).append(pc)
            data["pe"].setdefault(name, []).append(pe)
            data["tail"].setdefault(name, []).append(tail)
            mask_sums[name] = (pc, pe, tail)
        table_pc.add_row(
            [n] + [mask_sums[k][0] for k in ("default", "throttling", "on-off", "rtma")]
        )
        table_pe.add_row(
            [n]
            + [mask_sums[k][1] for k in ("default", "throttling", "on-off", "rtma")]
            + [mask_sums["rtma"][2]]
        )
    return ExperimentResult(EXP_ID, TITLE, [table_pc, table_pe], data)
