"""Fig. 10 — the rebuffering-energy trade-off panel.

For user counts 20..40, plot (total energy, avg rebuffering) points
for Default, RTMA (alpha = 1) and EMA (beta = 1).  Paper shape: RTMA's
curve is the default's shifted down the rebuffering axis at equal
energy; EMA's is shifted down the energy axis at equal rebuffering.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.baselines.default import DefaultScheduler
from repro.core.ema import EMAScheduler
from repro.core.rtma import RTMAScheduler
from repro.experiments.common import ExperimentResult, calibration_kwargs, paper_config
from repro.sim.runner import (
    calibrate_ema_v_to_reference,
    calibrate_rtma_threshold,
    compare_schedulers,
    run_scheduler,
)
from repro.sim.workload import generate_workload

EXP_ID = "fig10"
TITLE = "Rebuffering-energy trade-off panel (default / RTMA / EMA)"


def run(scale: str = "bench", seed: int = 0) -> ExperimentResult:
    base = paper_config(scale, seed)
    user_counts = (20, 30, 40) if scale == "bench" else (20, 25, 30, 35, 40)
    cal_slots = 400 if scale == "bench" else 1500

    table = Table(
        ["users", "scheduler", "energy (mJ)", "rebuffering (s)"],
        formats=["d", None, ".1f", ".4f"],
        title=TITLE,
    )
    data: dict = {"users": [], "points": {}}
    for n in user_counts:
        cfg = base.with_(n_users=n)
        wl = generate_workload(cfg)
        ref = run_scheduler(cfg, DefaultScheduler(), wl)
        thr = calibrate_rtma_threshold(
            cfg, alpha=1.0, workload=wl, **calibration_kwargs(scale)
        )
        v = calibrate_ema_v_to_reference(
            cfg,
            DefaultScheduler,
            beta=1.0,
            workload=wl,
            iterations=6,
            calibration_slots=cal_slots,
        )
        results = compare_schedulers(
            cfg,
            {
                "default": DefaultScheduler(),
                "rtma": RTMAScheduler(sig_threshold_dbm=thr),
                "ema": EMAScheduler(cfg.n_users, v_param=v, tau_s=cfg.tau_s),
            },
            workload=wl,
        )
        data["users"].append(n)
        for name, res in results.items():
            point = (res.pe_session_mj, res.pc_session_s)
            data["points"].setdefault(name, []).append(point)
            table.add_row([n, name, point[0], point[1]])
    return ExperimentResult(EXP_ID, TITLE, [table], data)
