"""Fig. 6 — fairness CDF, EMA vs Default.

Paper claim: "EMA achieves higher fairness index because it designs a
negative queue to ensure fairness."  EMA's fairness shows on two
horizons: per-slot (reported for parity with Fig. 2) and *windowed* —
delivered-vs-needed aggregated over a sliding window — which is the
horizon on which the virtual queues equalise users (EMA batches
per-user transmissions, so its slot-level index is inherently spiky
even when every user's long-run share is perfectly balanced).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cdf import tail_fraction
from repro.analysis.tables import Table
from repro.baselines.default import DefaultScheduler
from repro.core.ema import EMAScheduler
from repro.experiments.common import ExperimentResult, paper_config
from repro.sim.metrics import per_slot_fairness
from repro.sim.runner import compare_schedulers
from repro.sim.workload import generate_workload

EXP_ID = "fig06"
TITLE = "Fairness index CDF (EMA vs default)"

#: Window (slots) over which delivered/needed shares are aggregated.
WINDOW = 30


def windowed_fairness(res, window: int = WINDOW) -> np.ndarray:
    """Jain fairness of windowed delivered-vs-needed shares."""
    kernel = np.ones(window)
    d = np.apply_along_axis(lambda c: np.convolve(c, kernel, "valid"), 0, res.delivered_kb)
    need = np.apply_along_axis(
        lambda c: np.convolve(c, kernel, "valid"), 0, res.need_kb
    )
    act = res.active[window - 1 :, :]
    return per_slot_fairness(d, np.maximum(need, 1e-9), act)


def run(scale: str = "bench", seed: int = 0) -> ExperimentResult:
    cfg = paper_config(scale, seed)
    wl = generate_workload(cfg)
    results = compare_schedulers(
        cfg,
        {
            "default": DefaultScheduler(),
            "ema": EMAScheduler(cfg.n_users, v_param=0.1, tau_s=cfg.tau_s),
        },
        workload=wl,
    )
    table = Table(
        ["scheduler", "mean slot J", "P(slot J>0.7)", f"mean J (w={WINDOW})", "P(wJ>0.7)"],
        formats=[None, ".3f", ".3f", ".3f", ".3f"],
        title=TITLE,
    )
    data: dict = {}
    for name, res in results.items():
        slotf = res.fairness_per_slot()
        slotf = slotf[~np.isnan(slotf)]
        winf = windowed_fairness(res)
        winf = winf[~np.isnan(winf)]
        row = {
            "mean_slot": float(slotf.mean()),
            "slot_gt07": tail_fraction(slotf, 0.7),
            "mean_windowed": float(winf.mean()),
            "win_gt07": tail_fraction(winf, 0.7),
        }
        data[name] = row
        table.add_row(
            [name, row["mean_slot"], row["slot_gt07"], row["mean_windowed"], row["win_gt07"]]
        )
    return ExperimentResult(EXP_ID, TITLE, [table], data)
