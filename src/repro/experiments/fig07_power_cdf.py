"""Fig. 7 — CDF of per-slot aggregate power, EMA vs Default.

Paper claim: "about 50% of EMA's slots have power consumption lower
than 25 J" (aggregate across 40 users), i.e. EMA's per-slot power CDF
sits well left of the default's because it transmits under good
channel conditions and batches around tails.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cdf import quantile
from repro.analysis.tables import Table
from repro.baselines.default import DefaultScheduler
from repro.core.ema import EMAScheduler
from repro.experiments.common import ExperimentResult, paper_config
from repro.sim.runner import compare_schedulers
from repro.sim.workload import generate_workload

EXP_ID = "fig07"
TITLE = "Per-slot aggregate power CDF (EMA vs default)"


def run(scale: str = "bench", seed: int = 0) -> ExperimentResult:
    cfg = paper_config(scale, seed)
    wl = generate_workload(cfg)
    results = compare_schedulers(
        cfg,
        {
            "default": DefaultScheduler(),
            "ema": EMAScheduler(cfg.n_users, v_param=0.1, tau_s=cfg.tau_s),
        },
        workload=wl,
    )
    table = Table(
        ["scheduler", "median power (J/slot)", "p90 (J/slot)", "mean (J/slot)"],
        formats=[None, ".2f", ".2f", ".2f"],
        title=TITLE,
    )
    data: dict = {}
    for name, res in results.items():
        # Restrict to slots where at least one session is live, else a
        # long post-completion horizon drowns the distribution in zeros.
        live = res.active.any(axis=1)
        power_j = res.power_per_slot_mj()[live] / 1000.0
        row = {
            "median_j": quantile(power_j, 0.5),
            "p90_j": quantile(power_j, 0.9),
            "mean_j": float(np.mean(power_j)),
        }
        data[name] = row
        table.add_row([name, row["median_j"], row["p90_j"], row["mean_j"]])
    return ExperimentResult(EXP_ID, TITLE, [table], data)
