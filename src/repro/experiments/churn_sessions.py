"""Session churn — schedulers under a dynamic population.

Not a paper figure: the paper evaluates a fixed population that all
arrives at slot 0.  This experiment exercises the dynamic session
lifecycle (Poisson arrivals, capacity-threshold admission control,
retirement on playback completion) across the scheduler families and
reports the offered/admitted/rejected/completed session accounting
next to the paper's energy and rebuffering metrics.

The bench scale is sized for CI: every admitted session completes well
inside the horizon, so the run exercises admission, fleet growth, row
recycling, and retirement end to end in a few seconds.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.baselines.default import DefaultScheduler
from repro.baselines.onoff import OnOffScheduler
from repro.core.ema import EMAScheduler
from repro.core.rtma import RTMAScheduler
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.sim.config import SimConfig
from repro.sim.runner import compare_schedulers
from repro.sim.workload import generate_workload

EXP_ID = "churn"
TITLE = "Schedulers under session churn (Poisson arrivals, admission control)"


def churn_config(scale: str = "bench", seed: int = 0) -> SimConfig:
    """A dynamic-population scenario at the requested scale.

    Short sessions (a few MB) against a comfortable cell capacity, a
    Poisson arrival stream, and an admission cap below the offered
    population — so the run sees joins, rejections, capacity growth,
    and retirements rather than one static cohort.
    """
    if scale == "bench":
        return SimConfig(
            n_users=24,
            n_slots=600,
            capacity_kbps=4_000.0,
            video_size_range_kb=(3_000.0, 8_000.0),
            buffer_capacity_s=40.0,
            seed=seed,
            arrival_process="poisson",
            arrival_rate_per_slot=0.5,
            admission="capacity-threshold",
            admission_max_active=4,
        )
    if scale == "full":
        return SimConfig(
            n_users=40,
            n_slots=4_000,
            capacity_kbps=8_000.0,
            video_size_range_kb=(4_000.0, 12_000.0),
            buffer_capacity_s=60.0,
            seed=seed,
            arrival_process="poisson",
            arrival_rate_per_slot=0.04,
            admission="capacity-threshold",
            admission_max_active=12,
        )
    raise ConfigurationError(f"unknown scale {scale!r}; use 'bench' or 'full'")


def run(scale: str = "bench", seed: int = 0) -> ExperimentResult:
    cfg = churn_config(scale, seed)
    wl = generate_workload(cfg)
    schedulers = {
        "default": DefaultScheduler(),
        "on-off": OnOffScheduler(),
        "rtma": RTMAScheduler(),
        "ema": EMAScheduler(cfg.n_users),
    }
    results = compare_schedulers(cfg, schedulers, wl)

    table = Table(
        [
            "scheduler",
            "PE (mJ)",
            "PC (s)",
            "offered",
            "admitted",
            "rejected",
            "completed",
        ],
        formats=["s", ".3f", ".4f", "d", "d", "d", "d"],
        title=TITLE,
    )
    data: dict = {}
    for name, res in results.items():
        summary = res.to_summary_dict()
        table.add_row(
            [
                name,
                summary["pe_session_mj"],
                summary["pc_session_s"],
                summary["sessions_offered"],
                summary["sessions_admitted"],
                summary["sessions_rejected"],
                summary["sessions_completed"],
            ]
        )
        data[name] = summary
    return ExperimentResult(EXP_ID, TITLE, [table], data)
