"""Fig. 4 — RTMA efficacy vs user count (a) and data amount (b) for
alpha in {0.8, 1.0, 1.2}.

Paper shape: a looser energy constraint (larger alpha) buys more
rebuffering reduction; even alpha = 0.8 beats the default in most
scenarios; rebuffering grows with user count and data amount.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.baselines.default import DefaultScheduler
from repro.core.rtma import RTMAScheduler
from repro.experiments.common import ExperimentResult, calibration_kwargs, paper_config
from repro.sim.runner import calibrate_rtma_threshold, run_scheduler
from repro.sim.workload import generate_workload

EXP_ID = "fig04"
TITLE = "RTMA rebuffering vs users / data amount, alpha sweep"

ALPHAS = (0.8, 1.0, 1.2)


def _sweep(cfg_points, label, fmt, scale):
    table = Table(
        [label, "default (s)"] + [f"rtma a={a} (s)" for a in ALPHAS],
        formats=[fmt, ".4f"] + [".4f"] * len(ALPHAS),
        title=f"{TITLE} — by {label}",
    )
    series: dict = {"points": [], "default": [], **{f"alpha={a}": [] for a in ALPHAS}}
    for point, cfg in cfg_points:
        wl = generate_workload(cfg)
        default_pc = run_scheduler(cfg, DefaultScheduler(), wl).pc_session_s
        row = [point, default_pc]
        series["points"].append(point)
        series["default"].append(default_pc)
        for alpha in ALPHAS:
            thr = calibrate_rtma_threshold(
                cfg, alpha=alpha, workload=wl, **calibration_kwargs(scale)
            )
            pc = run_scheduler(
                cfg, RTMAScheduler(sig_threshold_dbm=thr), wl
            ).pc_session_s
            row.append(pc)
            series[f"alpha={alpha}"].append(pc)
        table.add_row(row)
    return table, series


def run(scale: str = "bench", seed: int = 0) -> ExperimentResult:
    base = paper_config(scale, seed)
    user_counts = (20, 30, 40) if scale == "bench" else (20, 25, 30, 35, 40)
    # Fig. 4a: vary user count (capacity fixed -> contention grows).
    users_points = [(n, base.with_(n_users=n)) for n in user_counts]
    table_a, series_a = _sweep(users_points, "users", "d", scale)

    # Fig. 4b: vary mean data amount (x-axis 150..550 MB in the paper,
    # scaled down proportionally at bench scale).
    scale_factor = 1.0 if scale == "full" else (150.0 * 1024.0) / (375.0 * 1024.0)
    sizes_mb = (150, 350, 550) if scale == "bench" else (150, 250, 350, 450, 550)
    size_points = [
        (mb, base.with_(mean_video_size_kb=mb * 1024.0 * scale_factor))
        for mb in sizes_mb
    ]
    table_b, series_b = _sweep(size_points, "avg size (MB)", "d", scale)

    return ExperimentResult(
        EXP_ID,
        TITLE,
        [table_a, table_b],
        {"by_users": series_a, "by_size": series_b},
    )
