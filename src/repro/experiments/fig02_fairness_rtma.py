"""Fig. 2 — CDF of the per-slot Jain fairness index, RTMA vs Default.

Paper claim: "the fairness index of RTMA is larger than 0.7 for more
than 90% of time slots ... while for the default strategy, the
fairness index is below 0.2 for about 50% of slots."
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cdf import cdf_at, tail_fraction
from repro.analysis.tables import Table
from repro.baselines.default import DefaultScheduler
from repro.experiments.common import ExperimentResult, calibration_kwargs, paper_config
from repro.sim.runner import calibrate_rtma_threshold, compare_schedulers
from repro.sim.workload import generate_workload
from repro.core.rtma import RTMAScheduler

EXP_ID = "fig02"
TITLE = "Fairness index CDF (RTMA vs default), N=40, avg 350 MB"


def run(scale: str = "bench", seed: int = 0) -> ExperimentResult:
    cfg = paper_config(scale, seed)
    wl = generate_workload(cfg)
    threshold = calibrate_rtma_threshold(
        cfg, alpha=1.0, workload=wl, **calibration_kwargs(scale)
    )
    threshold_12 = calibrate_rtma_threshold(
        cfg, alpha=1.2, workload=wl, **calibration_kwargs(scale)
    )
    results = compare_schedulers(
        cfg,
        {
            "default": DefaultScheduler(),
            "rtma": RTMAScheduler(sig_threshold_dbm=threshold),
            "rtma (a=1.2)": RTMAScheduler(sig_threshold_dbm=threshold_12),
        },
        workload=wl,
    )
    table = Table(
        ["scheduler", "mean fairness", "P(J > 0.7)", "P(J < 0.2)"],
        formats=[None, ".3f", ".3f", ".3f"],
        title=TITLE,
    )
    data: dict = {"threshold_dbm": threshold}
    for name, res in results.items():
        fairness = res.fairness_per_slot()
        fairness = fairness[~np.isnan(fairness)]
        row = {
            "mean": float(fairness.mean()),
            "gt_07": tail_fraction(fairness, 0.7),
            "lt_02": cdf_at(fairness, 0.2),
        }
        data[name] = row
        table.add_row([name, row["mean"], row["gt_07"], row["lt_02"]])
    return ExperimentResult(EXP_ID, TITLE, [table], data)
