"""Fig. 9 — EMA vs SALSA vs EStreamer vs Default across user counts.

(a) energy; (b) rebuffering.  The rebuffering bound Omega is set to
EStreamer's measured rebuffering (as in the paper), then EMA's V is
calibrated to it.  Paper shape: EMA lowest energy (>= 48% vs SALSA and
default, >= 27% vs EStreamer); EStreamer's rebuffering is small.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.baselines.default import DefaultScheduler
from repro.baselines.estreamer import EStreamerScheduler
from repro.baselines.salsa import SalsaScheduler
from repro.core.ema import EMAScheduler
from repro.experiments.common import ExperimentResult, paper_config
from repro.sim.runner import calibrate_ema_v_to_reference, compare_schedulers, run_scheduler
from repro.sim.workload import generate_workload

EXP_ID = "fig09"
TITLE = "EMA vs SALSA / EStreamer / Default"


def run(scale: str = "bench", seed: int = 0) -> ExperimentResult:
    base = paper_config(scale, seed)
    user_counts = (20, 30, 40) if scale == "bench" else (20, 25, 30, 35, 40)
    cal_slots = 400 if scale == "bench" else 1500

    table_pe = Table(
        ["users", "default", "salsa", "estreamer", "ema"],
        formats=["d"] + [".1f"] * 4,
        title="Fig 9a: avg energy (mJ per user-slot, session window)",
    )
    table_pc = Table(
        ["users", "default", "salsa", "estreamer", "ema"],
        formats=["d"] + [".4f"] * 4,
        title="Fig 9b: avg rebuffering (s per user-slot, session window)",
    )
    data: dict = {"users": [], "pe": {}, "pc": {}}
    for n in user_counts:
        cfg = base.with_(n_users=n)
        wl = generate_workload(cfg)
        est = run_scheduler(cfg, EStreamerScheduler(), wl)
        v = calibrate_ema_v_to_reference(
            cfg,
            EStreamerScheduler,
            beta=1.0,
            workload=wl,
            iterations=6,
            calibration_slots=cal_slots,
        )
        results = compare_schedulers(
            cfg,
            {
                "default": DefaultScheduler(),
                "salsa": SalsaScheduler(),
                "ema": EMAScheduler(cfg.n_users, v_param=v, tau_s=cfg.tau_s),
            },
            workload=wl,
        )
        results["estreamer"] = est
        data["users"].append(n)
        order = ("default", "salsa", "estreamer", "ema")
        for name in order:
            data["pe"].setdefault(name, []).append(results[name].pe_session_mj)
            data["pc"].setdefault(name, []).append(results[name].pc_session_s)
        table_pe.add_row([n] + [results[k].pe_session_mj for k in order])
        table_pc.add_row([n] + [results[k].pc_session_s for k in order])
    return ExperimentResult(EXP_ID, TITLE, [table_pe, table_pc], data)
