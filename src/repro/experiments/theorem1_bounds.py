"""Theorem 1 — empirical verification of the Lyapunov bounds.

Sweeps EMA's V and checks the O(1/V) energy / O(V) rebuffering
trade-off direction, and that measured PE/PC respect the analytic
bounds ``E* + B/V`` and ``(B + V E*)/eps`` for a defensible (E*, eps)
estimate: E* is lower-bounded by delivering all bytes at the
best-signal per-KB cost, and eps by the worst-case service margin.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import Table
from repro.core.ema import EMAScheduler
from repro.core.lyapunov import (
    drift_bound_constant,
    theorem1_energy_bound,
    theorem1_rebuffering_bound,
)
from repro.experiments.common import ExperimentResult, paper_config
from repro.sim.runner import run_scheduler
from repro.sim.workload import generate_workload

EXP_ID = "theorem1"
TITLE = "Theorem 1: energy O(1/V), rebuffering O(V)"

V_SWEEP = (0.02, 0.1, 0.5, 2.0)


def run(scale: str = "bench", seed: int = 0) -> ExperimentResult:
    # Theorem 1 assumes the unconstrained queueing setting: no client
    # receiver window (buffer cap) and literal Eq. (16) zero-initialised
    # queues.  The capped evaluation config breaks PE's monotonicity in
    # V (deep batching hits the window), which is an artifact of the
    # environment, not of the algorithm.
    cfg = paper_config(scale, seed).with_(buffer_capacity_s=None)
    wl = generate_workload(cfg)

    radio = cfg.radio
    v_max = radio.throughput.v_max
    p_min = cfg.rate_range_kbps[0]
    t_max = cfg.tau_s * v_max / p_min
    b_const = drift_bound_constant(cfg.tau_s, t_max, cfg.n_users)
    # E* lower bound: every byte at the best-signal per-KB cost, spread
    # over the horizon (per slot, aggregate across users).
    p_best = float(radio.power.p(-50.0))
    e_star = wl.total_video_kb() * p_best / cfg.n_slots
    eps = 0.1 * cfg.tau_s  # conservative service margin

    table = Table(
        ["V", "PE (mJ/slot, all users)", "bound E*+B/V", "PC (s/slot)", "bound (B+VE*)/eps"],
        formats=[".3g", ".1f", ".3g", ".4f", ".3g"],
        title=TITLE,
    )
    pes, pcs = [], []
    for v in V_SWEEP:
        res = run_scheduler(
            cfg,
            EMAScheduler(cfg.n_users, v_param=v, tau_s=cfg.tau_s, queue_init=0.0),
            wl,
        )
        pe_aggregate = res.pe_mj * cfg.n_users  # per-slot across users
        pc_aggregate = res.pc_s * cfg.n_users
        pes.append(pe_aggregate)
        pcs.append(pc_aggregate)
        table.add_row(
            [
                v,
                pe_aggregate,
                theorem1_energy_bound(e_star, b_const, v),
                pc_aggregate,
                theorem1_rebuffering_bound(e_star, b_const, v, eps),
            ]
        )
    data = {
        "v_sweep": list(V_SWEEP),
        "pe": pes,
        "pc": pcs,
        "b_const": b_const,
        "e_star": e_star,
        # Theorem 1 is asymptotic: finite-horizon PE(V) declines from
        # the small-V end and flattens (tails + catch-up bursts add a
        # few-percent ripple at large V); PC(V) grows throughout.
        "energy_declines": bool(pes[0] > min(pes[1:])),
        "rebuffering_monotone_up": bool(np.all(np.diff(pcs) >= -1e-6)),
    }
    return ExperimentResult(EXP_ID, TITLE, [table], data)
