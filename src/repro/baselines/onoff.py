"""ON-OFF baseline (Hoque et al. [14]).

The production player protocol of YouTube/Dailymotion/Vimeo Android
clients: a persistent TCP connection from which the player simply
stops reading once its buffer is comfortable (OFF), resuming reads
when the buffer drains to a low threshold (ON).  The paper
characterizes it as "an algorithm that sets a low threshold of the
buffer" — lower rebuffering than Default, but blind to multi-user
competition, and its OFF periods burn tail energy.

Our implementation is the standard hysteresis pair: turn ON when the
client buffer falls below ``low_threshold_s``, transfer at full link
rate while ON, turn OFF once the buffer exceeds ``high_threshold_s``.
The BS grants ON users head-of-line, like every non-RTMA policy.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import clip_to_constraints
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.net.gateway import SlotObservation

__all__ = ["OnOffScheduler"]


class OnOffScheduler(Scheduler):
    """Buffer-threshold hysteresis with full-rate ON bursts.

    Parameters
    ----------
    low_threshold_s:
        Buffer level (seconds) below which a user turns ON.
    high_threshold_s:
        Buffer level at which an ON user turns OFF again.
    """

    name = "on-off"

    def __init__(self, low_threshold_s: float = 10.0, high_threshold_s: float = 40.0):
        if low_threshold_s <= 0:
            raise ConfigurationError("low_threshold_s must be positive")
        if high_threshold_s <= low_threshold_s:
            raise ConfigurationError("high threshold must exceed low threshold")
        self.low_threshold_s = float(low_threshold_s)
        self.high_threshold_s = float(high_threshold_s)
        self._on: np.ndarray | None = None

    def _ensure_state(self, n_users: int) -> np.ndarray:
        if self._on is None or self._on.shape != (n_users,):
            # Sessions start with empty buffers: everyone begins ON.
            self._on = np.ones(n_users, dtype=bool)
        return self._on

    def allocate(self, obs: SlotObservation) -> np.ndarray:
        on = self._ensure_state(obs.n_users)
        on |= obs.buffer_s < self.low_threshold_s
        on &= obs.buffer_s < self.high_threshold_s
        want = np.where(
            on & obs.active,
            np.minimum(
                obs.link_units,
                np.ceil(obs.sendable_kb / obs.delta_kb),
            ),
            0,
        )
        return clip_to_constraints(want, obs)

    def reset(self) -> None:
        self._on = None

    def grow_users(self, n_users: int) -> None:
        if self._on is None or self._on.shape == (n_users,):
            return
        fresh = np.ones(n_users, dtype=bool)
        keep = min(self._on.size, n_users)
        fresh[:keep] = self._on[:keep]
        self._on = fresh

    def release_users(self, rows) -> None:
        if self._on is not None:
            self._on[rows] = True  # recycled rows begin ON (empty buffer)
