"""The paper's *default* streaming baseline.

Section VI: "a default streaming system ... that delivers video
contents to each user as much as possible to make full use of
throughput and satisfy the required data rate."  Implementation:
every active user requests its full Eq. (1) link capacity (bounded by
its client's receiver window), and the BS grants requests head-of-line
(ascending user index) until the capacity budget runs out.

Under a realistic finite client buffer (the evaluation configuration
uses 60 s; see ``repro.experiments.common.paper_config``) this greedy
policy reproduces the paper's default-strategy signature exactly:

* only the head of the queue transmits each slot while everyone else
  idles in RRC tail states — the large tail-energy bars of Fig. 5b;
* sessions span the whole video duration (the buffer cap prevents the
  front of the queue from simply downloading everything up front);
* per-slot fairness collapses (Fig. 2: below 0.2 for ~half the slots)
  because a handful of users hold the BS at any instant;
* rebuffering is bimodal (Fig. 3: 57% of users near zero, >20% above
  11 s): early-index users always win the head-of-line race, the
  back of the queue starves whenever VBR demand spikes bind capacity.

With an *unbounded* buffer the same policy instead bulk-downloads in
index order and becomes accidentally energy-cheap (bytes concentrate
in good-signal slots via the link cap); that regime remains available
simply by leaving ``buffer_capacity_s`` unset.

:class:`NeedRateScheduler` keeps the alternative minimal reading —
serve exactly the required data rate, head-of-line — as an extra
baseline and ablation point.

The default's measured energy/rebuffering serve as the reference
points ``E_default`` / ``R_default`` from which the paper sets RTMA's
budget ``Phi = alpha * E_default`` and EMA's bound
``Omega = beta * R_default``.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import clip_to_constraints
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.net.gateway import SlotObservation

__all__ = ["DefaultScheduler", "NeedRateScheduler"]


class DefaultScheduler(Scheduler):
    """Greedy full-rate delivery in user-index order.

    Clients re-request whenever their buffer dips below
    ``refill_trigger_s`` and pull at the full link rate until it is
    full again (``refill_high_s``) — the behaviour of production
    progressive-download players behind an unmanaged gateway.  With an
    *unbounded* client buffer the hysteresis never disengages and this
    degenerates to pure bulk download in index order.
    """

    name = "default"

    def __init__(self, refill_trigger_s: float = 20.0, refill_high_s: float = 55.0):
        if refill_trigger_s <= 0 or refill_high_s <= refill_trigger_s:
            raise ConfigurationError(
                "need 0 < refill_trigger_s < refill_high_s"
            )
        self.refill_trigger_s = float(refill_trigger_s)
        self.refill_high_s = float(refill_high_s)
        self._refilling: np.ndarray | None = None

    def _ensure_state(self, n_users: int) -> np.ndarray:
        if self._refilling is None or self._refilling.shape != (n_users,):
            self._refilling = np.ones(n_users, dtype=bool)  # empty buffers
        return self._refilling

    def allocate(self, obs: SlotObservation) -> np.ndarray:
        refilling = self._ensure_state(obs.n_users)
        refilling |= obs.buffer_s < self.refill_trigger_s
        refilling &= obs.buffer_s < self.refill_high_s
        useful_units = np.ceil(obs.sendable_kb / obs.delta_kb)
        want = np.where(
            refilling & obs.active, np.minimum(obs.link_units, useful_units), 0.0
        )
        return clip_to_constraints(want, obs)

    def reset(self) -> None:
        self._refilling = None

    def grow_users(self, n_users: int) -> None:
        if self._refilling is None or self._refilling.shape == (n_users,):
            return
        fresh = np.ones(n_users, dtype=bool)
        keep = min(self._refilling.size, n_users)
        fresh[:keep] = self._refilling[:keep]
        self._refilling = fresh

    def release_users(self, rows) -> None:
        if self._refilling is not None:
            self._refilling[rows] = True  # recycled rows start refilling


class NeedRateScheduler(Scheduler):
    """Required-rate delivery, head-of-line under contention.

    Serves each user exactly ``ceil(tau * p_i / delta)`` units per slot
    (the shard sustaining real-time playback) — continuous, signal-blind
    delivery with no prefetching.
    """

    name = "need-rate"

    def allocate(self, obs: SlotObservation) -> np.ndarray:
        need_units = np.ceil(obs.tau_s * obs.rate_kbps / obs.delta_kb)
        useful_units = np.ceil(obs.sendable_kb / obs.delta_kb)
        want = np.minimum(need_units, useful_units)
        return clip_to_constraints(want, obs)
