"""SALSA baseline (Ra et al. [17], "Energy-delay tradeoffs in
smartphone applications").

SALSA defers transmissions until an appropriate time using a
Lyapunov-style queue-vs-cost rule: data waits in a queue, and the
device transmits when the queue backlog outweighs the (signal-
dependent) energy price of sending now.  The paper's critique — which
our implementation deliberately preserves — is that SALSA "ignores the
significant energy waste during tail time": its decision rule prices
only *transmission* energy, so it happily toggles the radio on and off
across consecutive slots, paying a ramp of tail energy that its own
objective never sees.

Implementation: per-user demand queue ``Q_i`` (KB) fed at the encoding
rate ``p_i * tau`` per in-session slot and drained by deliveries.  User
``i`` transmits in slot ``n`` iff

    ``Q_i / p_i  >  v_salsa * P(sig_i) / P_ref``

i.e. the backlog (in seconds of media) exceeds an energy price
normalised by ``P_ref``, the per-KB cost at a strong reference signal.
At a good channel the threshold is ``~v_salsa`` seconds; at a weak
one it is many times that, so SALSA waits out bad channel episodes —
but the growing backlog eventually forces transmission anyway (the
"finite waiting queue").  When transmitting it sends the whole backlog
(capped by the link).  Larger ``v_salsa`` defers harder and saves more
transmission energy at the price of delay.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import clip_to_constraints
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.net.gateway import SlotObservation

__all__ = ["SalsaScheduler"]


class SalsaScheduler(Scheduler):
    """Queue-threshold deferral priced on transmission energy only."""

    name = "salsa"

    def __init__(self, v_salsa: float = 2.0, p_ref_mj_per_kb: float = 0.198):
        if v_salsa <= 0:
            raise ConfigurationError("v_salsa must be positive")
        if p_ref_mj_per_kb <= 0:
            raise ConfigurationError("p_ref_mj_per_kb must be positive")
        self.v_salsa = float(v_salsa)
        # Default reference: the paper's fit at -50 dBm, P ~= 0.198 mJ/KB.
        self.p_ref_mj_per_kb = float(p_ref_mj_per_kb)
        self._queue_kb: np.ndarray | None = None

    def _ensure_state(self, n_users: int) -> np.ndarray:
        if self._queue_kb is None or self._queue_kb.shape != (n_users,):
            self._queue_kb = np.zeros(n_users, dtype=float)
        return self._queue_kb

    def allocate(self, obs: SlotObservation) -> np.ndarray:
        queue = self._ensure_state(obs.n_users)
        # Demand arrives at the encoding rate while the session runs.
        queue += np.where(obs.active, obs.rate_kbps * obs.tau_s, 0.0)
        np.minimum(queue, obs.sendable_kb, out=queue)

        backlog_s = queue / obs.rate_kbps
        price_s = self.v_salsa * obs.p_mj_per_kb / self.p_ref_mj_per_kb
        send = obs.active & (backlog_s > price_s) & (obs.link_units > 0)
        want = np.where(send, np.ceil(queue / obs.delta_kb), 0.0)
        return clip_to_constraints(want, obs)

    def notify(
        self, obs: SlotObservation, phi: np.ndarray, delivered_kb: np.ndarray
    ) -> None:
        if self._queue_kb is not None:
            self._queue_kb = np.maximum(
                self._queue_kb - np.asarray(delivered_kb, dtype=float), 0.0
            )

    def reset(self) -> None:
        self._queue_kb = None

    def grow_users(self, n_users: int) -> None:
        if self._queue_kb is None or self._queue_kb.shape == (n_users,):
            return
        fresh = np.zeros(n_users, dtype=float)
        keep = min(self._queue_kb.size, n_users)
        fresh[:keep] = self._queue_kb[:keep]
        self._queue_kb = fresh

    def release_users(self, rows) -> None:
        if self._queue_kb is not None:
            self._queue_kb[rows] = 0.0
