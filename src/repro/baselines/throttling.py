"""Throttling baseline (Hoque et al. [15]).

"Throttling delivers the video contents at a rate that is lower than
the bulk transfer capacity but higher than the encoding rate, which
ensures the continuous transmission of users" (paper Section VI-A).
Each slot, every active user is served at ``factor * p_i(n)`` —
continuously, every slot — so the radio never idles long enough to
demote and rebuffering stays low *until* the aggregate throttled
demand exceeds the BS capacity, at which point head-of-line truncation
makes rebuffering "increase dramatically" with user count (Fig. 5a).
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import clip_to_constraints
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.net.gateway import SlotObservation

__all__ = ["ThrottlingScheduler"]


class ThrottlingScheduler(Scheduler):
    """Constant-factor over-provisioned continuous delivery.

    Parameters
    ----------
    factor:
        Multiple of the encoding rate to deliver (must exceed 1 so the
        client buffer grows; common CDN practice is 1.25x).
    """

    name = "throttling"

    def __init__(self, factor: float = 1.25):
        if factor <= 1.0:
            raise ConfigurationError("throttling factor must exceed 1.0")
        self.factor = float(factor)

    def allocate(self, obs: SlotObservation) -> np.ndarray:
        target_kb = self.factor * obs.rate_kbps * obs.tau_s
        want_units = np.ceil(target_kb / obs.delta_kb)
        want_units = np.minimum(want_units, np.ceil(obs.sendable_kb / obs.delta_kb))
        return clip_to_constraints(want_units, obs)
