"""EStreamer baseline (Hoque et al. [16], ACM TOMCCAP 2014).

EStreamer is a cross-layer proxy that reshapes a stream into *large
bursts* sized to the client's buffer capacity, shrinking the radio's
active time.  The paper's characterization: "EStreamer sets the burst
size according to the buffer size, so its rebuffering time is smaller"
but "it raises significant tail energy in the idle period between the
transmission bursts" and — the key contrast with EMA — it "does not
take the impact of signal strength into consideration": bursts fire on
a buffer schedule regardless of whether the channel is cheap or
expensive right now.

Implementation: when a user's buffer drops below ``refill_trigger_s``,
a burst begins and runs until the buffer (including in-flight media)
reaches ``buffer_capacity_s``; during a burst the user requests its
full link rate.  Between bursts the user requests nothing and the
radio rides its tail down.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import clip_to_constraints
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.net.gateway import SlotObservation

__all__ = ["EStreamerScheduler"]


class EStreamerScheduler(Scheduler):
    """Buffer-capacity-sized bursts, signal-agnostic.

    Parameters
    ----------
    buffer_capacity_s:
        Client buffer size in seconds of media; each burst refills to
        this level (the "burst size according to the buffer size").
    refill_trigger_s:
        Buffer level that triggers the next burst.
    """

    name = "estreamer"

    def __init__(self, buffer_capacity_s: float = 60.0, refill_trigger_s: float = 8.0):
        if refill_trigger_s <= 0:
            raise ConfigurationError("refill_trigger_s must be positive")
        if buffer_capacity_s <= refill_trigger_s:
            raise ConfigurationError("buffer capacity must exceed the refill trigger")
        self.buffer_capacity_s = float(buffer_capacity_s)
        self.refill_trigger_s = float(refill_trigger_s)
        self._bursting: np.ndarray | None = None

    def _ensure_state(self, n_users: int) -> np.ndarray:
        if self._bursting is None or self._bursting.shape != (n_users,):
            # Empty buffers at session start: begin with a filling burst.
            self._bursting = np.ones(n_users, dtype=bool)
        return self._bursting

    def allocate(self, obs: SlotObservation) -> np.ndarray:
        bursting = self._ensure_state(obs.n_users)
        bursting |= obs.buffer_s < self.refill_trigger_s
        # A burst is complete once the buffer is within one slot of the
        # cap; chasing the asymptote would keep the radio on forever at
        # one frame per slot (defeating the whole burst design).
        bursting &= obs.buffer_s < self.buffer_capacity_s - obs.tau_s

        # Burst users request the media needed to top the buffer off,
        # at full link rate (signal-blind by design: the *decision* to
        # burst never looks at sig; Eq. (1) still caps the physics).
        deficit_kb = (self.buffer_capacity_s - obs.buffer_s) * obs.rate_kbps
        want = np.where(
            bursting & obs.active,
            np.minimum(
                np.ceil(np.maximum(deficit_kb, 0.0) / obs.delta_kb),
                np.ceil(obs.sendable_kb / obs.delta_kb),
            ),
            0.0,
        )
        return clip_to_constraints(want, obs)

    def reset(self) -> None:
        self._bursting = None

    def grow_users(self, n_users: int) -> None:
        if self._bursting is None or self._bursting.shape == (n_users,):
            return
        fresh = np.ones(n_users, dtype=bool)
        keep = min(self._bursting.size, n_users)
        fresh[:keep] = self._bursting[:keep]
        self._bursting = fresh

    def release_users(self, rows) -> None:
        if self._bursting is not None:
            self._bursting[rows] = True  # recycled rows start with a burst
