"""Reimplementations of the paper's comparison schedulers.

The paper evaluates RTMA against *Default*, *Throttling* [15] and
*ON-OFF* [14], and EMA against *Default*, *SALSA* [17] and
*EStreamer* [16].  None of those systems is open source; each is
rebuilt here from its published one-paragraph characterization in the
paper's Sections II and VI (see DESIGN.md for the substitution table).

All baselines implement the common
:class:`repro.core.scheduler.Scheduler` interface, observe the same
:class:`~repro.net.gateway.SlotObservation`, and respect constraints
(1)-(2), so comparisons isolate *policy*, not plumbing.
"""

from repro.baselines.default import DefaultScheduler, NeedRateScheduler
from repro.baselines.throttling import ThrottlingScheduler
from repro.baselines.onoff import OnOffScheduler
from repro.baselines.salsa import SalsaScheduler
from repro.baselines.estreamer import EStreamerScheduler

__all__ = [
    "DefaultScheduler",
    "NeedRateScheduler",
    "ThrottlingScheduler",
    "OnOffScheduler",
    "SalsaScheduler",
    "EStreamerScheduler",
]
