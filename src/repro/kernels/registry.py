"""Kernel dispatch registry.

Each hot kernel registers a *numpy* implementation (the vectorised
reference) and a *python* implementation (the nopython-compatible loop
body).  :func:`resolve` returns the callable for the active backend;
for ``"numba"`` the python implementation is JIT-compiled on first
resolution, warmed up on tiny inputs so the compile cost is paid (and
recorded, see :func:`repro.kernels.backend.compile_times`) outside the
simulation hot loop.

All implementations of a kernel share one signature and are
bit-identical on the same inputs — the contract enforced by
``tests/kernels/`` and the integration backend-equivalence suite.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable

from repro.errors import ConfigurationError
from repro.kernels import backend as _backend

__all__ = ["register", "resolve", "kernel_names"]

#: name -> {"numpy": fn, "python": fn, "warmup": fn | None}
_KERNELS: dict[str, dict] = {}

#: name -> compiled-and-warmed numba dispatcher.
_NUMBA_COMPILED: dict[str, Callable] = {}


def register(
    name: str,
    *,
    numpy: Callable,
    python: Callable,
    warmup: Callable | None = None,
) -> None:
    """Register a kernel's backend implementations.

    ``warmup`` is called with the (possibly JIT-compiled) python
    implementation and must invoke it once on minimal arrays of the
    real dtypes, forcing Numba to specialise the production signature.
    """
    if name in _KERNELS:
        raise ConfigurationError(f"kernel {name!r} registered twice")
    _KERNELS[name] = {"numpy": numpy, "python": python, "warmup": warmup}


def kernel_names() -> tuple[str, ...]:
    """All registered kernel names (sorted)."""
    return tuple(sorted(_KERNELS))


def resolve(name: str, backend: str | None = None) -> Callable:
    """The implementation of ``name`` for ``backend``.

    ``backend=None`` uses :func:`repro.kernels.backend.resolved_backend`
    — callers cache the result per run and re-resolve after a reset so
    an ambient :func:`~repro.kernels.backend.use_backend` block governs.
    """
    entry = _KERNELS.get(name)
    if entry is None:
        raise ConfigurationError(
            f"unknown kernel {name!r}; registered: {kernel_names()}"
        )
    if backend is None:
        backend = _backend.resolved_backend()
    if backend == "numpy":
        return entry["numpy"]
    if backend == "python":
        return entry["python"]
    if backend == "numba":
        fn = _NUMBA_COMPILED.get(name)
        if fn is None:
            fn = _backend.maybe_njit(entry["python"])
            if fn is None:  # requested numba explicitly on a numpy-only host
                return entry["numpy"]
            t0 = perf_counter()
            if entry["warmup"] is not None:
                entry["warmup"](fn)
            _backend.record_compile_time(name, perf_counter() - t0)
            _NUMBA_COMPILED[name] = fn
        return fn
    raise ConfigurationError(
        f"kernel backend must be numpy, numba, or python, got {backend!r}"
    )
