"""Kernel dispatch registry.

Each hot kernel registers a *numpy* implementation (the vectorised
reference) and a *python* implementation (the nopython-compatible loop
body).  :func:`resolve` returns the callable for the active backend;
for ``"numba"`` the python implementation is JIT-compiled on first
resolution, warmed up on tiny inputs so the compile cost is paid (and
recorded, see :func:`repro.kernels.backend.compile_times`) outside the
simulation hot loop.

All implementations of a kernel share one signature and are
bit-identical on the same inputs — the contract enforced by
``tests/kernels/`` and the integration backend-equivalence suite.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable

from repro.errors import ConfigurationError
from repro.kernels import backend as _backend

__all__ = ["register", "resolve", "kernel_names", "kernel_phase"]

#: name -> {"numpy": fn, "python": fn, "warmup": fn | None, "phase": str | None}
_KERNELS: dict[str, dict] = {}

#: name -> compiled-and-warmed numba dispatcher.
_NUMBA_COMPILED: dict[str, Callable] = {}


def register(
    name: str,
    *,
    numpy: Callable,
    python: Callable,
    warmup: Callable | None = None,
    phase: str | None = None,
) -> None:
    """Register a kernel's backend implementations.

    ``warmup`` is called with the (possibly JIT-compiled) python
    implementation and must invoke it once on minimal arrays of the
    real dtypes, forcing Numba to specialise the production signature.

    ``phase`` names the engine pipeline phase the kernel runs inside
    (``playback``/``observe``/``schedule``/``transmit``/``rrc``) —
    when a :class:`~repro.obs.spans.SpanRecorder` is ambient at
    resolution time, the returned callable self-reports a
    ``run;slots;<phase>;kernel:<name>[<backend>]`` span per call.
    """
    if name in _KERNELS:
        raise ConfigurationError(f"kernel {name!r} registered twice")
    _KERNELS[name] = {
        "numpy": numpy, "python": python, "warmup": warmup, "phase": phase,
    }


def kernel_names() -> tuple[str, ...]:
    """All registered kernel names (sorted)."""
    return tuple(sorted(_KERNELS))


def kernel_phase(name: str) -> str | None:
    """The engine phase ``name`` was registered under (``None`` if unset)."""
    entry = _KERNELS.get(name)
    return entry["phase"] if entry is not None else None


def _span_timed(fn: Callable, adder: Callable[[float], None]) -> Callable:
    """Wrap ``fn`` so every call adds its duration to one span node.

    The adder is a bound closure over the recorder's preallocated
    arrays — per call the wrapper costs two ``perf_counter`` reads and
    one in-place add.  ``fn``/``perf_counter``/``adder`` are bound as
    defaults so the wrapper body runs on fast locals only, and there
    is deliberately no ``**kwargs`` (every registered kernel takes
    positional arguments only) so calls skip the per-call dict.
    """

    def _timed(*args, _fn=fn, _pc=perf_counter, _adder=adder):
        t0 = _pc()
        out = _fn(*args)
        _adder(_pc() - t0)
        return out

    _timed.__name__ = getattr(fn, "__name__", "kernel")
    _timed.__wrapped__ = fn
    return _timed


def resolve(name: str, backend: str | None = None) -> Callable:
    """The implementation of ``name`` for ``backend``.

    ``backend=None`` uses :func:`repro.kernels.backend.resolved_backend`
    — callers cache the result per run and re-resolve after a reset so
    an ambient :func:`~repro.kernels.backend.use_backend` block governs.

    When a span recorder is ambient (:func:`repro.obs.spans.activate_spans`)
    and the kernel declared a ``phase``, the callable comes back wrapped
    with backend-tagged span recording; the raw implementations (and the
    numba compile cache) are never mutated.
    """
    entry = _KERNELS.get(name)
    if entry is None:
        raise ConfigurationError(
            f"unknown kernel {name!r}; registered: {kernel_names()}"
        )
    if backend is None:
        backend = _backend.resolved_backend()
    if backend == "numpy":
        fn = entry["numpy"]
    elif backend == "python":
        fn = entry["python"]
    elif backend == "numba":
        fn = _NUMBA_COMPILED.get(name)
        if fn is None:
            fn = _backend.maybe_njit(entry["python"])
            if fn is None:  # requested numba explicitly on a numpy-only host
                backend = "numpy"
                fn = entry["numpy"]
            else:
                t0 = perf_counter()
                if entry["warmup"] is not None:
                    entry["warmup"](fn)
                _backend.record_compile_time(name, perf_counter() - t0)
                _NUMBA_COMPILED[name] = fn
    else:
        raise ConfigurationError(
            f"kernel backend must be numpy, numba, or python, got {backend!r}"
        )
    if entry["phase"] is not None:
        from repro.obs.spans import SLOT_PREFIX, current_spans

        spans = current_spans()
        if spans is not None:
            path = SLOT_PREFIX + (entry["phase"], f"kernel:{name}[{backend}]")
            return _span_timed(fn, spans.adder(spans.path_node(path)))
    return fn
