"""ClientFleet slot kernels: playback advance (Eqs. 7-8) and delivery.

Both kernels are pure array -> array state transitions: they read the
fleet's *current* state arrays and write the engine-owned *alternate*
buffers (:class:`repro.media.fleet.ClientFleet` double-buffers its
mutable state and swaps bindings after each successful kernel call, so
the "state arrays are rebound, never mutated in place" aliasing
contract survives unchanged).

``cap_s`` is the buffer capacity in seconds with ``+inf`` standing for
"uncapped" — ``min(x, inf) == x`` bit-for-bit, so the capped and
uncapped forms share one code path.

``fleet_deliver`` returns a nonzero error code instead of raising (the
class raises :class:`repro.errors.SimulationError` *before* swapping
buffers, leaving state untouched); a delivery with a non-positive
bitrate is the only error case.

The numpy implementations repeat the PR 3 vectorised arithmetic as an
explicit out=-chain; the loop implementations mirror it lane by lane.
Scratch layout: ``fscratch`` >= 2n float64, ``bscratch`` >= 4n bool.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.registry import register

__all__ = [
    "fleet_begin_slot_numpy",
    "fleet_begin_slot_loops",
    "fleet_deliver_numpy",
    "fleet_deliver_loops",
]

_EPS = 1e-9


def fleet_begin_slot_numpy(
    slot,
    tau_s,
    cap_s,
    arrival_slot,
    size_kb,
    delivered_kb,
    delivered_playback_s,
    occ_in,
    pend_in,
    began_in,
    elapsed_in,
    total_in,
    occ_out,
    pend_out,
    began_out,
    elapsed_out,
    total_out,
    rebuf_out,
    fscratch,
    bscratch,
):
    n = arrival_slot.shape[0]
    arrived = bscratch[0:n]
    mask = bscratch[n : 2 * n]
    fully = bscratch[2 * n : 3 * n]
    playing = bscratch[3 * n : 4 * n]
    played = fscratch[0:n]
    media_left = fscratch[n : 2 * n]

    np.less_equal(arrival_slot, slot, out=arrived)
    # Eq. (7): drain one slot of playback, add last slot's arrivals.
    np.subtract(occ_in, tau_s, out=occ_out)
    np.maximum(occ_out, 0.0, out=occ_out)
    np.add(occ_out, pend_in, out=occ_out)
    np.minimum(occ_out, cap_s, out=occ_out)
    np.logical_not(arrived, out=mask)
    np.copyto(occ_out, occ_in, where=mask)
    np.copyto(pend_out, pend_in)
    np.copyto(pend_out, 0.0, where=arrived)
    np.logical_or(began_in, arrived, out=began_out)
    # playing = arrived & ~(fully_delivered & all media played out)
    np.subtract(size_kb, _EPS, out=played)
    np.greater_equal(delivered_kb, played, out=fully)
    np.subtract(delivered_playback_s, _EPS, out=played)
    np.greater_equal(elapsed_in, played, out=playing)
    np.logical_and(playing, fully, out=playing)
    np.logical_not(playing, out=playing)
    np.logical_and(playing, arrived, out=playing)
    # Eq. (8): stall for whatever part of the slot the buffer can't cover.
    np.subtract(tau_s, occ_out, out=rebuf_out)
    np.maximum(rebuf_out, 0.0, out=rebuf_out)
    np.logical_not(playing, out=mask)
    np.copyto(rebuf_out, 0.0, where=mask)
    np.subtract(tau_s, rebuf_out, out=played)
    np.copyto(played, 0.0, where=mask)
    # Clamp playback to the media actually delivered; the tail of the
    # stream neither plays nor stalls once everything is delivered.
    np.subtract(delivered_playback_s, elapsed_in, out=media_left)
    over = mask
    np.greater(played, media_left, out=over)
    np.logical_and(over, playing, out=over)
    np.maximum(media_left, 0.0, out=media_left)
    np.copyto(played, media_left, where=over)
    np.logical_and(over, fully, out=over)
    np.copyto(rebuf_out, 0.0, where=over)
    np.add(elapsed_in, played, out=elapsed_out)
    np.add(total_in, rebuf_out, out=total_out)
    return 0


def fleet_begin_slot_loops(
    slot,
    tau_s,
    cap_s,
    arrival_slot,
    size_kb,
    delivered_kb,
    delivered_playback_s,
    occ_in,
    pend_in,
    began_in,
    elapsed_in,
    total_in,
    occ_out,
    pend_out,
    began_out,
    elapsed_out,
    total_out,
    rebuf_out,
    fscratch,
    bscratch,
):
    n = arrival_slot.shape[0]
    for i in range(n):
        arrived = arrival_slot[i] <= slot
        occ = occ_in[i] - tau_s
        if occ < 0.0:
            occ = 0.0
        occ = occ + pend_in[i]
        if not occ < cap_s:
            occ = cap_s
        if not arrived:
            occ = occ_in[i]
        occ_out[i] = occ
        pend_out[i] = 0.0 if arrived else pend_in[i]
        began_out[i] = began_in[i] or arrived
        fully = delivered_kb[i] >= size_kb[i] - _EPS
        complete = fully and elapsed_in[i] >= delivered_playback_s[i] - _EPS
        playing = arrived and not complete
        if playing:
            rebuf = tau_s - occ
            if rebuf < 0.0:
                rebuf = 0.0
            played = tau_s - rebuf
        else:
            rebuf = 0.0
            played = 0.0
        media_left = delivered_playback_s[i] - elapsed_in[i]
        if playing and played > media_left:
            played = media_left if media_left > 0.0 else 0.0
            if fully:
                rebuf = 0.0
        elapsed_out[i] = elapsed_in[i] + played
        total_out[i] = total_in[i] + rebuf
        rebuf_out[i] = rebuf
    return 0


def fleet_deliver_numpy(
    tau_s,
    cap_s,
    offer_kb,
    rates,
    size_kb,
    delivered_in,
    dplay_in,
    occ_s,
    pend_in,
    delivered_out,
    dplay_out,
    pend_out,
    accepted_out,
    fscratch,
    bscratch,
):
    n = offer_kb.shape[0]
    scratch = fscratch[0:n]
    recv = fscratch[n : 2 * n]
    m1 = bscratch[0:n]
    m2 = bscratch[n : 2 * n]
    np.subtract(size_kb, delivered_in, out=scratch)
    np.maximum(scratch, 0.0, out=scratch)
    np.minimum(offer_kb, scratch, out=accepted_out)
    if cap_s != np.inf:
        # Receiver window: seconds of buffer headroom after this slot's
        # drain, scaled by the stream bitrate (Eq. 7 capacity clamp).
        np.subtract(occ_s, tau_s, out=recv)
        np.maximum(recv, 0.0, out=recv)
        np.subtract(cap_s, recv, out=recv)
        np.subtract(recv, pend_in, out=recv)
        np.less_equal(recv, 0.0, out=m1)
        np.multiply(recv, rates, out=recv)
        np.copyto(recv, 0.0, where=m1)
        np.minimum(accepted_out, recv, out=accepted_out)
    np.less_equal(accepted_out, 0.0, out=m1)
    np.copyto(accepted_out, 0.0, where=m1)
    np.greater(accepted_out, 0.0, out=m1)
    np.less_equal(rates, 0.0, out=m2)
    np.logical_and(m1, m2, out=m1)
    if m1.any():
        return 1  # delivering at a non-positive bitrate
    np.divide(accepted_out, rates, out=scratch)
    np.add(delivered_in, accepted_out, out=delivered_out)
    np.add(dplay_in, scratch, out=dplay_out)
    np.add(pend_in, scratch, out=pend_out)
    return 0


def fleet_deliver_loops(
    tau_s,
    cap_s,
    offer_kb,
    rates,
    size_kb,
    delivered_in,
    dplay_in,
    occ_s,
    pend_in,
    delivered_out,
    dplay_out,
    pend_out,
    accepted_out,
    fscratch,
    bscratch,
):
    n = offer_kb.shape[0]
    capped = cap_s != np.inf
    for i in range(n):
        rem = size_kb[i] - delivered_in[i]
        if rem < 0.0:
            rem = 0.0
        a = offer_kb[i]
        if rem < a:
            a = rem
        if capped:
            carried = occ_s[i] - tau_s
            if carried < 0.0:
                carried = 0.0
            headroom_s = (cap_s - carried) - pend_in[i]
            recv = 0.0 if headroom_s <= 0.0 else headroom_s * rates[i]
            if recv < a:
                a = recv
        if not a > 0.0:
            a = 0.0
        if a > 0.0 and rates[i] <= 0.0:
            return 1
        accepted_out[i] = a
    for i in range(n):
        a = accepted_out[i]
        duration = a / rates[i]
        delivered_out[i] = delivered_in[i] + a
        dplay_out[i] = dplay_in[i] + duration
        pend_out[i] = pend_in[i] + duration
    return 0


def _f8(*vals):
    return np.array(vals, dtype=float)


def _warmup_begin(fn):
    """Specialise begin_slot on a two-user instance (one not yet arrived)."""
    n = 2
    fn(
        np.int64(0),
        1.0,
        np.inf,
        np.array([0, 5], dtype=np.int64),
        _f8(100.0, 100.0),
        _f8(10.0, 0.0),
        _f8(2.0, 0.0),
        _f8(1.0, 0.0),
        _f8(0.5, 0.0),
        np.zeros(n, dtype=np.bool_),
        _f8(0.0, 0.0),
        _f8(0.0, 0.0),
        np.empty(n),
        np.empty(n),
        np.empty(n, dtype=np.bool_),
        np.empty(n),
        np.empty(n),
        np.empty(n),
        np.empty(2 * n),
        np.empty(4 * n, dtype=np.bool_),
    )


def _warmup_deliver(fn):
    """Specialise deliver on a two-user instance."""
    n = 2
    fn(
        1.0,
        30.0,
        _f8(5.0, 0.0),
        _f8(100.0, 100.0),
        _f8(100.0, 100.0),
        _f8(10.0, 0.0),
        _f8(2.0, 0.0),
        _f8(1.0, 0.0),
        _f8(0.5, 0.0),
        np.empty(n),
        np.empty(n),
        np.empty(n),
        np.empty(n),
        np.empty(2 * n),
        np.empty(2 * n, dtype=np.bool_),
    )


register(
    "fleet_begin_slot",
    numpy=fleet_begin_slot_numpy,
    python=fleet_begin_slot_loops,
    warmup=_warmup_begin,
    phase="playback",
)
register(
    "fleet_deliver",
    numpy=fleet_deliver_numpy,
    python=fleet_deliver_loops,
    warmup=_warmup_deliver,
    phase="transmit",
)
