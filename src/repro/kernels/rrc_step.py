"""RRCFleet kernels: per-slot state/tail step and idle-cost preview.

The per-slot tail increment is the difference of the Eq. (4) closed
form at the idle ages bracketing the slot (see :mod:`repro.radio.tail`)
— ``pd*min(t, T1) + pf*clip(t - T1, 0, T2)`` — evaluated per device
and zeroed for transmitting or never-promoted devices.

``rrc_step`` reads the fleet's current ``(idle_age, ever_transmitted)``
arrays and writes the alternate buffers plus the slot's tail vector
(:class:`repro.radio.rrc.RRCFleet` swaps bindings afterwards);
``rrc_idle_cost`` is the side-effect-free preview EMA uses to price the
``phi_i = 0`` branch of Eq. (5).

Scratch layout: ``fscratch`` >= 2n float64, ``bscratch`` >= n bool.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.registry import register

__all__ = [
    "rrc_step_numpy",
    "rrc_step_loops",
    "rrc_idle_cost_numpy",
    "rrc_idle_cost_loops",
]


def _tail_into(t, pd_mw, pf_mw, t1_s, t2_s, out, tmp):
    """Eq. (4) with the exact ufunc chain of ``tail_energy_mj``."""
    np.minimum(t, t1_s, out=out)
    np.multiply(out, pd_mw, out=out)
    np.subtract(t, t1_s, out=tmp)
    np.maximum(tmp, 0.0, out=tmp)
    np.minimum(tmp, t2_s, out=tmp)
    np.multiply(tmp, pf_mw, out=tmp)
    np.add(out, tmp, out=out)


def rrc_step_numpy(
    dt_s, pd_mw, pf_mw, t1_s, t2_s, tx, age_in, ever_in, age_out, ever_out, tail_out, fscratch, bscratch
):
    n = tx.shape[0]
    before = fscratch[0:n]
    tmp = fscratch[n : 2 * n]
    mask = bscratch[0:n]
    _tail_into(age_in, pd_mw, pf_mw, t1_s, t2_s, before, tmp)
    np.add(age_in, dt_s, out=age_out)
    _tail_into(age_out, pd_mw, pf_mw, t1_s, t2_s, tail_out, tmp)
    np.subtract(tail_out, before, out=tail_out)
    np.logical_not(ever_in, out=mask)
    np.logical_or(mask, tx, out=mask)
    np.copyto(tail_out, 0.0, where=mask)
    np.copyto(age_out, 0.0, where=tx)
    np.logical_or(ever_in, tx, out=ever_out)
    return 0


def rrc_step_loops(
    dt_s, pd_mw, pf_mw, t1_s, t2_s, tx, age_in, ever_in, age_out, ever_out, tail_out, fscratch, bscratch
):
    n = tx.shape[0]
    for i in range(n):
        t0 = age_in[i]
        t1 = t0 + dt_s
        if tx[i] or not ever_in[i]:
            tail_out[i] = 0.0
        else:
            a = t0 if t0 < t1_s else t1_s
            x = t0 - t1_s
            if x < 0.0:
                x = 0.0
            if x > t2_s:
                x = t2_s
            before = a * pd_mw + x * pf_mw
            a = t1 if t1 < t1_s else t1_s
            x = t1 - t1_s
            if x < 0.0:
                x = 0.0
            if x > t2_s:
                x = t2_s
            tail_out[i] = (a * pd_mw + x * pf_mw) - before
        age_out[i] = 0.0 if tx[i] else t1
        ever_out[i] = ever_in[i] or tx[i]
    return 0


def rrc_idle_cost_numpy(
    dt_s, pd_mw, pf_mw, t1_s, t2_s, age, ever, out, fscratch, bscratch
):
    n = age.shape[0]
    before = fscratch[0:n]
    tmp = fscratch[n : 2 * n]
    mask = bscratch[0:n]
    _tail_into(age, pd_mw, pf_mw, t1_s, t2_s, before, tmp)
    np.add(age, dt_s, out=out)
    # `out` momentarily holds age+dt; overwrite it with tail(age+dt).
    np.minimum(out, t1_s, out=tmp)
    np.multiply(tmp, pd_mw, out=tmp)
    np.subtract(out, t1_s, out=out)
    np.maximum(out, 0.0, out=out)
    np.minimum(out, t2_s, out=out)
    np.multiply(out, pf_mw, out=out)
    np.add(tmp, out, out=out)
    np.subtract(out, before, out=out)
    np.logical_not(ever, out=mask)
    np.copyto(out, 0.0, where=mask)
    return 0


def rrc_idle_cost_loops(
    dt_s, pd_mw, pf_mw, t1_s, t2_s, age, ever, out, fscratch, bscratch
):
    n = age.shape[0]
    for i in range(n):
        if not ever[i]:
            out[i] = 0.0
            continue
        t0 = age[i]
        t1 = t0 + dt_s
        a = t0 if t0 < t1_s else t1_s
        x = t0 - t1_s
        if x < 0.0:
            x = 0.0
        if x > t2_s:
            x = t2_s
        before = a * pd_mw + x * pf_mw
        a = t1 if t1 < t1_s else t1_s
        x = t1 - t1_s
        if x < 0.0:
            x = 0.0
        if x > t2_s:
            x = t2_s
        out[i] = (a * pd_mw + x * pf_mw) - before
    return 0


def _warmup_step(fn):
    """Specialise rrc_step on a two-device instance."""
    n = 2
    fn(
        1.0,
        800.0,
        400.0,
        4.1,
        5.6,
        np.array([True, False]),
        np.array([0.0, 2.5]),
        np.array([True, False]),
        np.empty(n),
        np.empty(n, dtype=np.bool_),
        np.empty(n),
        np.empty(2 * n),
        np.empty(n, dtype=np.bool_),
    )


def _warmup_idle_cost(fn):
    """Specialise rrc_idle_cost on a two-device instance."""
    n = 2
    fn(
        1.0,
        800.0,
        400.0,
        4.1,
        5.6,
        np.array([0.0, 2.5]),
        np.array([True, False]),
        np.empty(n),
        np.empty(2 * n),
        np.empty(n, dtype=np.bool_),
    )


register(
    "rrc_step",
    numpy=rrc_step_numpy,
    python=rrc_step_loops,
    warmup=_warmup_step,
    phase="rrc",
)
register(
    "rrc_idle_cost",
    numpy=rrc_idle_cost_numpy,
    python=rrc_idle_cost_loops,
    warmup=_warmup_idle_cost,
    phase="observe",
)
