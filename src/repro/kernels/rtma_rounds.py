"""RTMA round-granting kernel (paper Algorithm 1, steps 4-13).

Grants units to eligible users in fixed rate order, round by round,
until the slot budget or every per-user demand is exhausted.  The numpy
implementation is the PR 3 cumsum-clipped vectorised round loop; the
python/numba implementation grants sequentially in the same order.
Within a round each user's take depends only on its *pre-round* state
and grants are consumed in ``order``, so the cumsum clip and the
sequential scan hand out identical (all-int64, hence exact) grants.

All arrays are full fleet length; ``order`` is a stable rate argsort of
every user (ineligible lanes simply take 0).  ``phi`` is updated in
place; the return value is the budget left over.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.registry import register

__all__ = ["rtma_rounds_numpy", "rtma_rounds_loops"]


def rtma_rounds_numpy(phi, eligible, need, cap, order, budget):
    """Vectorised rounds: cumsum over the rate order, clipped at budget."""
    not_eligible = ~eligible
    while budget > 0:
        headroom = cap - phi
        take = np.minimum(need, headroom)
        take[not_eligible] = 0
        np.maximum(take, 0, out=take)
        if not take.any():
            break  # every eligible user is satisfied or capped
        take_sorted = take[order]
        cum = np.cumsum(take_sorted)
        grant_sorted = np.where(
            cum <= budget, take_sorted, np.maximum(budget - (cum - take_sorted), 0)
        )
        grant = np.empty_like(grant_sorted)
        grant[order] = grant_sorted
        granted = int(grant.sum())
        if granted == 0:
            break
        phi += grant
        budget -= granted
    return budget


def rtma_rounds_loops(phi, eligible, need, cap, order, budget):
    """Sequential rounds in rate order (numba source)."""
    n = order.shape[0]
    while budget > 0:
        any_take = False
        granted = 0
        for k in range(n):
            u = order[k]
            if not eligible[u]:
                continue
            take = need[u]
            headroom = cap[u] - phi[u]
            if headroom < take:
                take = headroom
            if take <= 0:
                continue
            any_take = True
            if budget > 0:
                g = take if take <= budget else budget
                phi[u] += g
                budget -= g
                granted += g
        if not any_take or granted == 0:
            break
    return budget


def _warmup(fn):
    """Specialise the production signature on a two-user instance."""
    phi = np.zeros(2, dtype=np.int64)
    eligible = np.array([True, False])
    need = np.ones(2, dtype=np.int64)
    cap = np.full(2, 3, dtype=np.int64)
    order = np.arange(2, dtype=np.int64)
    fn(phi, eligible, need, cap, order, np.int64(2))


register(
    "rtma_rounds",
    numpy=rtma_rounds_numpy,
    python=rtma_rounds_loops,
    warmup=_warmup,
    phase="schedule",
)
