"""Kernel backend selection: numpy, numba, or interpreted python loops.

Three implementations may exist for each hot kernel:

* ``numpy`` — the vectorised reference implementation, always present;
* ``numba`` — the nopython-loop implementation JIT-compiled with
  ``@numba.njit(cache=True)``; present only when Numba is importable
  (the ``repro[speed]`` extra — **never** a hard dependency);
* ``python`` — the *same* loop source as the numba kernel, run by the
  interpreter.  Slow, but it lets the equivalence suites exercise the
  numba code path bit-for-bit on machines without Numba, and it is the
  first place to debug a kernel discrepancy.

The active backend is resolved per call to :func:`resolved_backend`
with this precedence:

1. the innermost :func:`use_backend` ambient context (how
   ``SimConfig.kernel_backend`` is applied by the engine);
2. the process-wide :func:`set_backend` override;
3. the ``REPRO_KERNEL_BACKEND`` environment variable;
4. ``"auto"`` — numba when available, else numpy.

Requesting ``numba`` when Numba is missing degrades to numpy, but not
silently: a one-time ``repro.kernels`` log warning is emitted and a
``kernels.backend_fallback`` counter is incremented on the ambient
instrumentation bundle (when one is active).
"""

from __future__ import annotations

import logging
import os
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, Iterator

from repro.errors import ConfigurationError

__all__ = [
    "NUMBA_AVAILABLE",
    "numba_version",
    "available_backends",
    "use_backend",
    "set_backend",
    "requested_backend",
    "resolved_backend",
    "maybe_njit",
    "backend_info",
    "record_compile_time",
    "compile_times",
]

#: Environment variable consulted when no explicit backend is set.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Every name a caller may request.
BACKEND_CHOICES = ("auto", "numpy", "numba", "python")

log = logging.getLogger("repro.kernels")

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the numpy-only environment
    _numba = None
    NUMBA_AVAILABLE = False


def numba_version() -> str | None:
    """The installed Numba version, or ``None`` when not importable."""
    return _numba.__version__ if NUMBA_AVAILABLE else None


def maybe_njit(fn: Callable) -> Callable | None:
    """``numba.njit(cache=True)`` of ``fn``, or ``None`` without Numba."""
    if not NUMBA_AVAILABLE:
        return None
    return _numba.njit(cache=True)(fn)  # pragma: no cover - needs numba


def available_backends() -> tuple[str, ...]:
    """The selectable backends on this interpreter, fastest first."""
    if NUMBA_AVAILABLE:  # pragma: no cover - needs numba
        return ("numba", "numpy", "python")
    return ("numpy", "python")


_AMBIENT: list[str] = []
_GLOBAL: str | None = None
_warned_fallback = False

#: name -> seconds spent in the kernel's first (compiling) numba call.
_COMPILE_TIMES: dict[str, float] = {}


def _validate(name: str) -> str:
    if name not in BACKEND_CHOICES:
        raise ConfigurationError(
            f"kernel backend must be one of {BACKEND_CHOICES}, got {name!r}"
        )
    return name


def set_backend(name: str | None) -> None:
    """Process-wide backend override (``None`` clears it)."""
    global _GLOBAL
    _GLOBAL = None if name is None else _validate(name)


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Make ``name`` the kernel backend for the dynamic extent of the block.

    This is how the engine applies ``SimConfig.kernel_backend``: the
    fleet, RRC machinery, and schedulers all resolve their kernels
    inside ``run()``, so the config's choice wins over the environment
    without mutating process state.
    """
    _AMBIENT.append(_validate(name))
    try:
        yield name
    finally:
        _AMBIENT.pop()


def requested_backend() -> str:
    """The backend the caller asked for, before availability fallback."""
    if _AMBIENT:
        return _AMBIENT[-1]
    if _GLOBAL is not None:
        return _GLOBAL
    env = os.environ.get(ENV_VAR)
    if env:
        return _validate(env)
    return "auto"


def _warn_missing_numba(requested: str) -> None:
    global _warned_fallback
    if _warned_fallback:
        return
    _warned_fallback = True
    log.warning(
        "kernel backend %r requested (%s) but Numba is not importable; "
        "falling back to the numpy backend. Install the speed extra "
        "(pip install 'repro[speed]') for the JIT kernels.",
        requested,
        f"${ENV_VAR}" if os.environ.get(ENV_VAR) else "config",
    )
    # Surface the degradation in the run's metrics as well, when a
    # registry is ambient — repro-compare flags the counter appearing.
    from repro.obs.instrument import current_instrumentation

    instr = current_instrumentation()
    if instr is not None:
        instr.metrics.counter("kernels.backend_fallback").inc()


def resolved_backend() -> str:
    """The backend that will actually execute: requested + availability."""
    requested = requested_backend()
    if requested == "auto":
        return "numba" if NUMBA_AVAILABLE else "numpy"
    if requested == "numba" and not NUMBA_AVAILABLE:
        _warn_missing_numba(requested)
        return "numpy"
    return requested


def record_compile_time(name: str, seconds: float) -> None:
    """Record a kernel's first-call (compile) wall time, once."""
    _COMPILE_TIMES.setdefault(name, float(seconds))


def compile_times() -> dict[str, float]:
    """Per-kernel first-call compile times observed this process (s)."""
    return dict(_COMPILE_TIMES)


def backend_info() -> dict[str, Any]:
    """Provenance record: what was requested, what runs, and JIT costs.

    Lands in run manifests (:func:`repro.obs.provenance.build_manifest`)
    and the engine's metrics so every artifact names its backend.
    """
    return {
        "requested": requested_backend(),
        "resolved": resolved_backend(),
        "available": list(available_backends()),
        "numba_version": numba_version(),
        "compile_times_s": compile_times(),
    }


def time_first_call(name: str, fn: Callable, *args) -> Any:
    """Call ``fn`` and record the wall time as ``name``'s compile time."""
    t0 = perf_counter()
    out = fn(*args)
    record_compile_time(name, perf_counter() - t0)
    return out


def _reset_for_testing() -> None:
    """Clear overrides and the one-time-warning latch (tests only)."""
    global _GLOBAL, _warned_fallback
    _GLOBAL = None
    _warned_fallback = False
    _AMBIENT.clear()
