"""Engine-owned scratch arena for the allocation-free slot pipeline.

One :class:`SlotArena` per run preallocates every per-user buffer the
steady-state slot loop needs, so
:meth:`repro.net.gateway.Gateway.collect_fleet` and
:meth:`~repro.net.gateway.Gateway.transmit_fleet` assemble each slot's
:class:`~repro.net.gateway.SlotObservation` by *writing into* reused
arrays instead of allocating ~a dozen fresh ones per slot.

Lifetime contract: every buffer is valid only within the slot that
filled it — the next ``collect_fleet`` overwrites it.  The engine
copies whatever outlives the slot (result grids, trace payloads) before
the next iteration, and schedulers consume their observation within the
same slot by construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SlotArena"]


class SlotArena:
    """Reused per-user buffers for one simulation run.

    Attributes double as the backing stores of each slot's
    ``SlotObservation`` (``link_units``, ``p_mj_per_kb``, ``active``,
    ``remaining_kb``, ``receivable_kb``, ``idle_tail_cost_mj``) plus
    the transmit-path scratch (``want_kb``, ``accepted_kb``,
    ``drained_kb``, ``tx_mask``) and two generic temporaries
    (``f8_tmp``, ``b1_tmp``) for intermediate ufunc chains.

    The dynamic session-lifecycle engine additionally uses four
    row-space buffers that survive the whole slot (``sig_dbm``,
    ``rebuf_s``, ``trans_mj``, ``tail_mj``) — the generic temporaries
    are clobbered inside ``collect_fleet`` — and can :meth:`grow` the
    arena in lockstep with the fleet so kernels stay allocation-free
    once the population stops growing.
    """

    def __init__(self, n_users: int):
        if n_users <= 0:
            raise ConfigurationError("n_users must be positive")
        self.n_users = int(n_users)
        self._allocate(self.n_users)

    def _allocate(self, n: int) -> None:
        self.link_units = np.empty(n, dtype=np.int64)
        self.p_mj_per_kb = np.empty(n, dtype=float)
        self.active = np.empty(n, dtype=bool)
        self.remaining_kb = np.empty(n, dtype=float)
        self.receivable_kb = np.empty(n, dtype=float)
        self.idle_tail_cost_mj = np.empty(n, dtype=float)
        self.want_kb = np.empty(n, dtype=float)
        self.accepted_kb = np.empty(n, dtype=float)
        self.drained_kb = np.empty(n, dtype=float)
        self.tx_mask = np.empty(n, dtype=bool)
        self.f8_tmp = np.empty(n, dtype=float)
        self.b1_tmp = np.empty(n, dtype=bool)
        self.sig_dbm = np.empty(n, dtype=float)
        self.rebuf_s = np.empty(n, dtype=float)
        self.trans_mj = np.empty(n, dtype=float)
        self.tail_mj = np.empty(n, dtype=float)

    def grow(self, new_n_users: int) -> None:
        """Resize every buffer to ``new_n_users`` rows.

        Arena buffers hold no cross-slot state (each is valid only
        within the slot that filled it), so growth is a plain
        reallocation — callers must grow between slots.
        """
        if new_n_users <= self.n_users:
            raise ConfigurationError("grow requires new_n_users > current n_users")
        self.n_users = int(new_n_users)
        self._allocate(self.n_users)
