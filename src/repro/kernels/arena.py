"""Engine-owned scratch arena for the allocation-free slot pipeline.

One :class:`SlotArena` per run preallocates every per-user buffer the
steady-state slot loop needs, so
:meth:`repro.net.gateway.Gateway.collect_fleet` and
:meth:`~repro.net.gateway.Gateway.transmit_fleet` assemble each slot's
:class:`~repro.net.gateway.SlotObservation` by *writing into* reused
arrays instead of allocating ~a dozen fresh ones per slot.

Lifetime contract: every buffer is valid only within the slot that
filled it — the next ``collect_fleet`` overwrites it.  The engine
copies whatever outlives the slot (result grids, trace payloads) before
the next iteration, and schedulers consume their observation within the
same slot by construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SlotArena"]


class SlotArena:
    """Reused per-user buffers for one simulation run.

    Attributes double as the backing stores of each slot's
    ``SlotObservation`` (``link_units``, ``p_mj_per_kb``, ``active``,
    ``remaining_kb``, ``receivable_kb``, ``idle_tail_cost_mj``) plus
    the transmit-path scratch (``want_kb``, ``accepted_kb``,
    ``drained_kb``, ``tx_mask``) and two generic temporaries
    (``f8_tmp``, ``b1_tmp``) for intermediate ufunc chains.
    """

    def __init__(self, n_users: int):
        if n_users <= 0:
            raise ConfigurationError("n_users must be positive")
        n = int(n_users)
        self.n_users = n
        self.link_units = np.empty(n, dtype=np.int64)
        self.p_mj_per_kb = np.empty(n, dtype=float)
        self.active = np.empty(n, dtype=bool)
        self.remaining_kb = np.empty(n, dtype=float)
        self.receivable_kb = np.empty(n, dtype=float)
        self.idle_tail_cost_mj = np.empty(n, dtype=float)
        self.want_kb = np.empty(n, dtype=float)
        self.accepted_kb = np.empty(n, dtype=float)
        self.drained_kb = np.empty(n, dtype=float)
        self.tx_mask = np.empty(n, dtype=bool)
        self.f8_tmp = np.empty(n, dtype=float)
        self.b1_tmp = np.empty(n, dtype=bool)
