"""Run-stacked batch kernels: EMA DP and RTMA rounds over R segments.

The batch engine (:mod:`repro.sim.batch`) folds R shape-compatible
runs into a single ``(R*N,)`` row space.  Three of the four hot kernel
families — fleet ``begin_slot``/``deliver``, the RRC tail step, and
the arena ufunc chains — are row-elementwise, so the stacked fleet
dispatches straight through the existing registered kernels: the run
axis simply rides along the row axis, and backend selection plus span
attribution keep working unchanged.

The two cross-user kernels are different: the EMA DP couples every
active user of a run through the shared unit budget, and RTMA's round
grants consume a per-run budget in rate order.  Stacking must not let
one run's allocation see another run's budget, so both get segmented
variants here that take the per-run segment table and iterate runs
inside the kernel — one registry dispatch per slot for all R runs
instead of R dispatches.  Each segment executes the *serial* kernel
body on contiguous per-run views, which is what makes the batch path
bit-identical to running each run alone (guarded by
``tests/integration/test_batch_equivalence.py``).

The python sources call the serial loop bodies through module-level
bindings (``maybe_njit(...) or ...``): under Numba the bindings are
lazily-compiled dispatchers the outer loop can call from nopython
mode; without Numba they are the plain interpreted functions.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.backend import maybe_njit
from repro.kernels.ema_dp import ema_dp_loops, ema_dp_numpy
from repro.kernels.registry import register
from repro.kernels.rtma_rounds import rtma_rounds_loops, rtma_rounds_numpy

__all__ = [
    "rtma_rounds_batch_numpy",
    "rtma_rounds_batch_loops",
    "ema_dp_batch_numpy",
    "ema_dp_batch_loops",
]

_RTMA_INNER = maybe_njit(rtma_rounds_loops) or rtma_rounds_loops
_EMA_INNER = maybe_njit(ema_dp_loops) or ema_dp_loops


def rtma_rounds_batch_numpy(phi, eligible, need, cap, order, budgets, run_offsets):
    """Serial numpy rounds per run segment.

    All row arrays are stacked ``(R*N,)``; ``order`` holds *run-local*
    indices (each run's own stable rate argsort), ``budgets`` the
    per-run unit budgets, ``run_offsets`` the ``(R+1,)`` segment
    bounds.  ``phi`` is updated in place through the segment views.
    """
    n_runs = budgets.shape[0]
    for r in range(n_runs):
        lo = run_offsets[r]
        hi = run_offsets[r + 1]
        rtma_rounds_numpy(
            phi[lo:hi],
            eligible[lo:hi],
            need[lo:hi],
            cap[lo:hi],
            order[lo:hi],
            int(budgets[r]),
        )
    return 0


def rtma_rounds_batch_loops(phi, eligible, need, cap, order, budgets, run_offsets):
    """Sequential rounds per run segment (numba source)."""
    n_runs = budgets.shape[0]
    for r in range(n_runs):
        lo = run_offsets[r]
        hi = run_offsets[r + 1]
        _RTMA_INNER(
            phi[lo:hi],
            eligible[lo:hi],
            need[lo:hi],
            cap[lo:hi],
            order[lo:hi],
            budgets[r],
        )
    return 0


def ema_dp_batch_numpy(
    phi,
    active_idx,
    act_bounds,
    budgets,
    w_eff,
    origin,
    slope,
    const,
    idle,
    rows_flat,
    m_idx,
    fscratch,
    iscratch,
):
    """Serial numpy DP per run segment.

    ``active_idx`` holds the *global* (stacked-row) indices of every
    active user, run-sorted; ``act_bounds`` is the ``(R+1,)`` segment
    table over it.  The coefficient vectors (``w_eff``/``origin``/
    ``slope``/``const``/``idle``) are packed in the same active order.
    Each run's DP runs with its own budget (``n_states = budget + 1``)
    over shared scratch sized for the largest segment, exactly as the
    serial :class:`~repro.core.ema.EMAScheduler` sizes its buffers.
    Runs with no active users or a non-positive budget are skipped —
    mirroring the scheduler's serial early-out.
    """
    n_runs = budgets.shape[0]
    for r in range(n_runs):
        lo = act_bounds[r]
        hi = act_bounds[r + 1]
        n_active = hi - lo
        budget = budgets[r]
        if n_active == 0 or budget <= 0:
            continue
        n_states = budget + 1
        rows = rows_flat[: n_active * n_states].reshape(n_active, n_states)
        ema_dp_numpy(
            phi,
            active_idx[lo:hi],
            w_eff[lo:hi],
            origin[lo:hi],
            slope[lo:hi],
            const[lo:hi],
            idle[lo:hi],
            rows,
            m_idx[:n_states],
            fscratch[: 4 * n_states],
            iscratch[:n_states],
        )
    return 0


def ema_dp_batch_loops(
    phi,
    active_idx,
    act_bounds,
    budgets,
    w_eff,
    origin,
    slope,
    const,
    idle,
    rows_flat,
    m_idx,
    fscratch,
    iscratch,
):
    """Loop DP per run segment (numba source)."""
    n_runs = budgets.shape[0]
    for r in range(n_runs):
        lo = act_bounds[r]
        hi = act_bounds[r + 1]
        n_active = hi - lo
        budget = budgets[r]
        if n_active == 0 or budget <= 0:
            continue
        n_states = budget + 1
        rows = rows_flat[: n_active * n_states].reshape(n_active, n_states)
        _EMA_INNER(
            phi,
            active_idx[lo:hi],
            w_eff[lo:hi],
            origin[lo:hi],
            slope[lo:hi],
            const[lo:hi],
            idle[lo:hi],
            rows,
            m_idx[:n_states],
            fscratch[: 4 * n_states],
            iscratch[:n_states],
        )
    return 0


def _warmup_rtma(fn):
    """Specialise the production signature on a two-run instance."""
    phi = np.zeros(4, dtype=np.int64)
    eligible = np.array([True, False, True, True])
    need = np.ones(4, dtype=np.int64)
    cap = np.full(4, 3, dtype=np.int64)
    order = np.array([0, 1, 1, 0], dtype=np.int64)
    budgets = np.full(2, 2, dtype=np.int64)
    run_offsets = np.array([0, 2, 4], dtype=np.int64)
    fn(phi, eligible, need, cap, order, budgets, run_offsets)


def _warmup_ema(fn):
    """Specialise the production signature on a two-run instance."""
    n_states = 2
    phi = np.zeros(2, dtype=np.int64)
    active_idx = np.arange(2, dtype=np.int64)
    act_bounds = np.array([0, 1, 2], dtype=np.int64)
    budgets = np.ones(2, dtype=np.int64)
    w_eff = np.ones(2, dtype=np.int64)
    origin = np.zeros(2, dtype=np.int64)
    slope = np.full(2, -1.0)
    const = np.zeros(2)
    idle = np.full(2, 0.5)
    rows_flat = np.empty(n_states, dtype=float)
    m_idx = np.arange(n_states, dtype=float)
    fscratch = np.empty(4 * n_states)
    iscratch = np.empty(n_states, dtype=np.int64)
    fn(
        phi,
        active_idx,
        act_bounds,
        budgets,
        w_eff,
        origin,
        slope,
        const,
        idle,
        rows_flat,
        m_idx,
        fscratch,
        iscratch,
    )


register(
    "rtma_rounds_batch",
    numpy=rtma_rounds_batch_numpy,
    python=rtma_rounds_batch_loops,
    warmup=_warmup_rtma,
    phase="schedule",
)

register(
    "ema_dp_batch",
    numpy=ema_dp_batch_numpy,
    python=ema_dp_batch_loops,
    warmup=_warmup_ema,
    phase="schedule",
)
