"""Compiled kernel backend for the simulation hot path.

``repro.kernels`` hosts the four hot kernel families (EMA DP, RTMA
rounds, fleet playback/delivery, RRC tail step) behind a dispatch
registry that selects, per kernel, between the vectorised NumPy
reference implementations and Numba ``@njit(cache=True)`` JIT kernels
— plus the interpreted ``python`` pseudo-backend that runs the numba
loop source unjitted for bit-identity testing without Numba.

See :mod:`repro.kernels.backend` for selection precedence
(``use_backend`` / ``set_backend`` / ``$REPRO_KERNEL_BACKEND`` /
``auto``) and :mod:`repro.kernels.registry` for dispatch.
"""

from __future__ import annotations

from repro.kernels.arena import SlotArena
from repro.kernels.backend import (
    BACKEND_CHOICES,
    ENV_VAR,
    NUMBA_AVAILABLE,
    available_backends,
    backend_info,
    compile_times,
    numba_version,
    requested_backend,
    resolved_backend,
    set_backend,
    use_backend,
)
from repro.kernels.registry import kernel_names, kernel_phase, register, resolve

# Importing the kernel modules registers their implementations.
from repro.kernels import ema_dp as _ema_dp  # noqa: E402,F401
from repro.kernels import fleet_step as _fleet_step  # noqa: E402,F401
from repro.kernels import rrc_step as _rrc_step  # noqa: E402,F401
from repro.kernels import rtma_rounds as _rtma_rounds  # noqa: E402,F401

# The batch kernels wrap the serial bodies above, so they import last.
from repro.kernels import batch_step as _batch_step  # noqa: E402,F401

__all__ = [
    "BACKEND_CHOICES",
    "ENV_VAR",
    "NUMBA_AVAILABLE",
    "SlotArena",
    "available_backends",
    "backend_info",
    "compile_times",
    "kernel_names",
    "kernel_phase",
    "numba_version",
    "register",
    "requested_backend",
    "resolve",
    "resolved_backend",
    "set_backend",
    "use_backend",
]
