"""Fused EMA DP kernel: forward pass + trailing-window min + backtrack.

One kernel call solves the whole per-slot multiple-choice knapsack of
Algorithm 2 (see :mod:`repro.core.ema` for the derivation): the DP
forward recursion over users, the O(M) trailing-window minimum that
exploits the affine transmit cost, and the backtrack that recovers the
per-user allocations from the value tables.

The numpy implementation is the PR 3 vectorised loop verbatim (per-user
ufunc chain + scipy's ``minimum_filter1d`` C routine); the python/numba
implementation replaces the minimum filter with a monotonic-deque
sliding minimum fused into the forward sweep.  Both compute the minimum
of the same value set with the same additions and multiplications in
the same association order, so the results are bit-identical — the
contract checked by ``tests/kernels/test_kernel_parity.py``.

Caller contract (enforced by :class:`repro.core.ema.EMAScheduler`):

* ``n_active = active_idx.size >= 1`` and ``n_states >= 1``;
* ``rows`` is C-contiguous ``(n_active, n_states)`` float64;
* ``m_idx[:n_states] == arange(n_states)`` as float64;
* ``fscratch`` has at least ``4 * n_states`` float64 slots and
  ``iscratch`` at least ``n_states`` int64 slots;
* ``w_eff[k] == 0`` marks pure no-transmit users (zero window or
  non-finite reception power); their slope is never read.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import minimum_filter1d

from repro.kernels.registry import register

__all__ = ["ema_dp_numpy", "ema_dp_loops"]

try:  # pragma: no cover - import plumbing
    # The DP loop calls the minimum filter once per active user per
    # slot; the public wrapper's argument validation is measurable at
    # that call rate.  This invokes the same C routine with the same
    # arguments the wrapper would pass (axis normalized, mode
    # pre-encoded), so results are bit-identical; any scipy-internal
    # change falls back to the public function.
    from scipy.ndimage import _nd_image as _scipy_nd_image
    from scipy.ndimage import _ni_support as _scipy_ni_support

    _MODE_CONSTANT = _scipy_ni_support._extend_mode_to_code("constant")

    def _trailing_min_into(shifted, size, origin, out):
        _scipy_nd_image.min_or_max_filter1d(
            shifted, size, 0, out, _MODE_CONSTANT, np.inf, origin, 1
        )
except Exception:  # pragma: no cover - scipy internals moved

    def _trailing_min_into(shifted, size, origin, out):
        minimum_filter1d(
            shifted, size=size, mode="constant", cval=np.inf, origin=origin, output=out
        )


def ema_dp_numpy(
    phi, active_idx, w_eff, origin, slope, const, idle, rows, m_idx, fscratch, iscratch
):
    """Vectorised DP: per-user ufunc chain + scipy minimum filter."""
    n_active = active_idx.shape[0]
    n_states = rows.shape[1]
    basis = fscratch[0:n_states]
    prod = fscratch[n_states : 2 * n_states]
    filt = fscratch[2 * n_states : 3 * n_states]
    zeros_row = fscratch[3 * n_states : 4 * n_states]
    zeros_row[:] = 0.0
    prod_tail = prod[1:]
    filt_head = filt[:-1]
    # Python-scalar mirrors of the coefficient vectors: the DP loop
    # reads one scalar per user and list indexing is several times
    # cheaper than NumPy scalar extraction at this call rate.
    w_list = w_eff[:n_active].tolist()
    origin_list = origin[:n_active].tolist()
    slope_list = slope[:n_active].tolist()
    const_list = const[:n_active].tolist()
    idle_list = idle[:n_active].tolist()

    a_prev = zeros_row
    for k in range(n_active):
        idle_k = idle_list[k]
        a_cur = rows[k]
        w = w_list[k]
        if w == 0:
            np.add(a_prev, idle_k, out=a_cur)  # no-tx only
        else:
            slope_k = slope_list[k]
            # basis = a_prev - slope * m_idx
            np.multiply(m_idx, slope_k, out=prod)
            np.subtract(a_prev, prod, out=basis)
            # trailing_window_min(basis, w) = filt[M-1] with filt the
            # size-w window ending *at* M — one origin shift instead of
            # the copy into a prepended-inf buffer.
            _trailing_min_into(basis, w, origin_list[k], filt)
            # tx = const + slope * m_idx + twm, with twm[0] = +inf
            # (empty trailing window) and twm[1:] = filt[:-1].
            np.add(prod, const_list[k], out=prod)
            np.add(prod_tail, filt_head, out=prod_tail)
            prod[0] = np.inf
            # a_cur = min(no_tx, tx) with no_tx = a_prev + idle
            np.add(a_prev, idle_k, out=a_cur)
            np.minimum(a_cur, prod, out=a_cur)
        a_prev = a_cur

    # Step 15: best total unit count, then backtrack per user.  The
    # argmin over phi_i is re-derived at the chosen capacity point only
    # — O(w_i) work per user instead of storing the full g(i, M) table.
    m_star = int(np.argmin(a_prev))
    affine = basis
    vals = prod
    m = m_star
    for level in range(n_active - 1, -1, -1):
        w_here = min(w_list[level], m)
        if w_here <= 0 or not np.isfinite(slope_list[level]):
            continue  # phi stays 0, m unchanged
        slope_k = slope_list[level]
        a_prev = rows[level - 1] if level > 0 else zeros_row
        best_val = float(a_prev[m]) + idle_list[level]
        # vals[j] = a_prev[m - (j+1)] + const + slope * (j+1):
        # the fancy index a_prev[m - cands] is a reversed slice.
        v_here = vals[:w_here]
        np.multiply(m_idx[1 : w_here + 1], slope_k, out=affine[:w_here])
        np.add(a_prev[m - w_here : m][::-1], const_list[level], out=v_here)
        np.add(v_here, affine[:w_here], out=v_here)
        j = int(v_here.argmin())
        if v_here[j] < best_val - 1e-12:
            best_phi = j + 1
            phi[active_idx[level]] = best_phi
            m -= best_phi
    return m_star


def ema_dp_loops(
    phi, active_idx, w_eff, origin, slope, const, idle, rows, m_idx, fscratch, iscratch
):
    """Loop DP with a monotonic-deque sliding minimum (numba source)."""
    n_active = active_idx.shape[0]
    n_states = rows.shape[1]
    basis = fscratch[0:n_states]
    zeros_row = fscratch[3 * n_states : 4 * n_states]
    for m in range(n_states):
        zeros_row[m] = 0.0
    dq = iscratch  # ring of candidate indices, basis-increasing

    for k in range(n_active):
        idle_k = idle[k]
        if k == 0:
            a_prev = zeros_row
        else:
            a_prev = rows[k - 1]
        a_cur = rows[k]
        w = w_eff[k]
        if w == 0:
            for m in range(n_states):
                a_cur[m] = a_prev[m] + idle_k
        else:
            slope_k = slope[k]
            const_k = const[k]
            head = 0
            tail = 0
            for m in range(n_states):
                if m >= 1:
                    # Admit k = m-1 to the window [m-w, m-1].
                    b = a_prev[m - 1] - slope_k * m_idx[m - 1]
                    basis[m - 1] = b
                    while tail > head and basis[dq[tail - 1]] >= b:
                        tail -= 1
                    dq[tail] = m - 1
                    tail += 1
                while tail > head and dq[head] < m - w:
                    head += 1
                no_tx = a_prev[m] + idle_k
                if tail > head:
                    tx = (slope_k * m_idx[m] + const_k) + basis[dq[head]]
                    a_cur[m] = tx if tx < no_tx else no_tx
                else:
                    a_cur[m] = no_tx

    last = rows[n_active - 1]
    m_star = 0
    best = last[0]
    for m in range(1, n_states):
        if last[m] < best:
            best = last[m]
            m_star = m

    m = m_star
    for level in range(n_active - 1, -1, -1):
        w_here = w_eff[level]
        if m < w_here:
            w_here = m
        if w_here <= 0:
            continue
        slope_k = slope[level]
        if not np.isfinite(slope_k):
            continue
        if level == 0:
            a_prev = zeros_row
        else:
            a_prev = rows[level - 1]
        best_val = a_prev[m] + idle[level]
        const_k = const[level]
        best_v = np.inf
        best_j = -1
        for j in range(w_here):
            v = (a_prev[m - (j + 1)] + const_k) + m_idx[j + 1] * slope_k
            if v < best_v:
                best_v = v
                best_j = j
        if best_j >= 0 and best_v < best_val - 1e-12:
            phi[active_idx[level]] = best_j + 1
            m -= best_j + 1
    return m_star


def _warmup(fn):
    """Specialise the production signature on a two-state instance."""
    n_states = 2
    phi = np.zeros(1, dtype=np.int64)
    active_idx = np.zeros(1, dtype=np.int64)
    w_eff = np.ones(1, dtype=np.int64)
    origin = np.zeros(1, dtype=np.int64)
    slope = np.full(1, -1.0)
    const = np.zeros(1)
    idle = np.full(1, 0.5)
    rows = np.empty((1, n_states))
    m_idx = np.arange(n_states, dtype=float)
    fscratch = np.empty(4 * n_states)
    iscratch = np.empty(n_states, dtype=np.int64)
    fn(phi, active_idx, w_eff, origin, slope, const, idle, rows, m_idx, fscratch, iscratch)


register(
    "ema_dp",
    numpy=ema_dp_numpy,
    python=ema_dp_loops,
    warmup=_warmup,
    phase="schedule",
)
