"""Base-station capacity model and frame discretisation (Eq. 2).

The BS serves at most ``S(n)`` KB/s in slot ``n``; allocations are made
in physical-layer frames of ``delta_kb`` KB, so the per-slot unit
budget is ``floor(tau * S(n) / delta)`` (constraint 2).  The paper uses
a constant 20 MB/s; :class:`TimeVaryingCapacity` supports diurnal or
trace-driven load for robustness experiments.
"""

from __future__ import annotations

import abc

import numpy as np

from repro import constants
from repro.errors import ConfigurationError

__all__ = [
    "CapacityModel",
    "ConstantCapacity",
    "TimeVaryingCapacity",
    "FaultyCapacity",
    "BaseStation",
]


class CapacityModel(abc.ABC):
    """Serving capacity ``S(n)`` in KB/s."""

    @abc.abstractmethod
    def capacity_kbps(self, slot: int) -> float:
        """Capacity for slot ``slot``."""


class ConstantCapacity(CapacityModel):
    """Fixed ``S`` for every slot (the paper's configuration)."""

    def __init__(self, capacity_kbps: float = constants.BS_CAPACITY_KBPS):
        if capacity_kbps <= 0:
            raise ConfigurationError("capacity must be positive")
        self._cap = float(capacity_kbps)

    def capacity_kbps(self, slot: int) -> float:
        return self._cap


class TimeVaryingCapacity(CapacityModel):
    """Capacity replayed from a per-slot array (tiles past the end)."""

    def __init__(self, capacities_kbps):
        caps = np.asarray(capacities_kbps, dtype=float)
        if caps.ndim != 1 or caps.size == 0:
            raise ConfigurationError("capacities must be a non-empty 1-D array")
        if np.any(caps <= 0):
            raise ConfigurationError("all capacities must be positive")
        self._caps = caps

    def capacity_kbps(self, slot: int) -> float:
        if slot < 0:
            raise ConfigurationError("slot must be non-negative")
        return float(self._caps[slot % self._caps.size])


class FaultyCapacity(CapacityModel):
    """A capacity model with injected outage/degradation windows.

    Wraps any base model and multiplies each slot's capacity by the
    fault plan's per-slot factor (see
    :meth:`repro.faults.FaultPlan.capacity_factors`).  Full outages are
    floored at a tiny positive epsilon instead of literal zero: the
    resource slicer requires a positive raw capacity, and the floored
    value still discretises to a zero unit budget under constraint (2),
    so schedulers see an honest "no frames this slot" without any layer
    tripping over a zero division.  Slots past the factor array (the
    run horizon) are served at full capacity.
    """

    #: Floor for a fully-outaged slot, KB/s.  Small enough that
    #: ``floor(tau * S / delta)`` is 0 for every physical frame size.
    OUTAGE_FLOOR_KBPS = 1e-9

    def __init__(self, base: CapacityModel, factors_per_slot):
        factors = np.asarray(factors_per_slot, dtype=float)
        if factors.ndim != 1 or factors.size == 0:
            raise ConfigurationError("factors must be a non-empty 1-D array")
        if np.any((factors < 0) | (factors > 1)):
            raise ConfigurationError("capacity factors must be in [0, 1]")
        self.base = base
        self._factors = factors

    def capacity_kbps(self, slot: int) -> float:
        if slot < 0:
            raise ConfigurationError("slot must be non-negative")
        factor = self._factors[slot] if slot < self._factors.size else 1.0
        return max(self.base.capacity_kbps(slot) * factor, self.OUTAGE_FLOOR_KBPS)


class BaseStation:
    """A base station: capacity model + frame size.

    Parameters
    ----------
    capacity:
        A :class:`CapacityModel`, or a plain number (KB/s) for
        convenience.
    delta_kb:
        Physical-layer frame (data unit) size in KB — the paper's
        ``delta``, fixed by the spreading factor.
    tau_s:
        Slot length, seconds.
    """

    def __init__(
        self,
        capacity: CapacityModel | float = constants.BS_CAPACITY_KBPS,
        delta_kb: float = constants.DEFAULT_DELTA_KB,
        tau_s: float = constants.DEFAULT_TAU_S,
    ):
        if isinstance(capacity, (int, float)):
            capacity = ConstantCapacity(float(capacity))
        if delta_kb <= 0:
            raise ConfigurationError("delta_kb must be positive")
        if tau_s <= 0:
            raise ConfigurationError("tau_s must be positive")
        self.capacity = capacity
        self.delta_kb = float(delta_kb)
        self.tau_s = float(tau_s)

    def capacity_kbps(self, slot: int) -> float:
        """Serving capacity ``S(n)`` for slot ``slot``."""
        return self.capacity.capacity_kbps(slot)

    def unit_budget(self, slot: int) -> int:
        """Constraint (2) budget: ``floor(tau * S(n) / delta)`` units."""
        return int(np.floor(self.tau_s * self.capacity_kbps(slot) / self.delta_kb))

    def units_to_kb(self, units) -> np.ndarray:
        """Convert unit counts to KB (``d = phi * delta``)."""
        return np.asarray(units, dtype=float) * self.delta_kb
