"""Video flow descriptors.

A :class:`VideoFlow` identifies one user's streaming session as seen at
the gateway: which user, which video, when the session started, and the
application-layer metadata the DPI middlebox would expose (protocol,
declared bitrate).  Flows are the hand-off unit between the workload
generator and the simulation engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.media.video import VideoSession

__all__ = ["VideoFlow"]


@dataclass
class VideoFlow:
    """One user's video session as a schedulable downlink flow.

    Attributes
    ----------
    user_id:
        Index of the user within the cell (0-based).
    video:
        The media session being delivered.
    arrival_slot:
        Slot at which the session starts (0 for the paper's synchronous
        workloads; staggered arrivals supported for robustness tests).
    protocol:
        Application protocol as DPI would classify it.
    """

    user_id: int
    video: VideoSession
    arrival_slot: int = 0
    protocol: str = "http"

    def __post_init__(self) -> None:
        if self.user_id < 0:
            raise ConfigurationError("user_id must be non-negative")
        if self.arrival_slot < 0:
            raise ConfigurationError("arrival_slot must be non-negative")
        if self.protocol not in ("http", "rtsp"):
            raise ConfigurationError(
                f"protocol must be 'http' or 'rtsp', got {self.protocol!r}"
            )

    def active_at(self, slot: int) -> bool:
        """Whether the session has started by slot ``slot``."""
        return slot >= self.arrival_slot
