"""Resource slicing: separating video from background downlink traffic.

The paper's Data Receiver "leverages the resource slicing technique
[CellSlice 26] to separate video flows among other downlink traffic";
only video traffic is scheduled by the framework.  We model the other
traffic as a :class:`BackgroundTraffic` load process and a
:class:`ResourceSlicer` that reserves the remainder of the BS capacity
for the video slice, with a configurable guaranteed minimum share.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["BackgroundTraffic", "ConstantBackground", "PoissonBackground", "ResourceSlicer"]


class BackgroundTraffic(abc.ABC):
    """Non-video downlink load in KB/s per slot."""

    @abc.abstractmethod
    def load_kbps(self, slot: int) -> float:
        """Background load for slot ``slot``."""


class ConstantBackground(BackgroundTraffic):
    """A fixed background load (0 reproduces the paper's setting)."""

    def __init__(self, load_kbps: float = 0.0):
        if load_kbps < 0:
            raise ConfigurationError("background load must be non-negative")
        self._load = float(load_kbps)

    def load_kbps(self, slot: int) -> float:
        return self._load


class PoissonBackground(BackgroundTraffic):
    """Bursty background: i.i.d. Poisson number of flows per slot,
    each consuming ``per_flow_kbps``.  The trace is pre-drawn from a
    seed so repeated queries for a slot are consistent."""

    def __init__(
        self,
        mean_flows: float,
        per_flow_kbps: float,
        horizon_slots: int,
        rng=None,
    ):
        if mean_flows < 0 or per_flow_kbps <= 0 or horizon_slots <= 0:
            raise ConfigurationError(
                "mean_flows >= 0, per_flow_kbps > 0, horizon_slots > 0 required"
            )
        gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._trace = gen.poisson(mean_flows, size=horizon_slots) * float(per_flow_kbps)

    def load_kbps(self, slot: int) -> float:
        if slot < 0:
            raise ConfigurationError("slot must be non-negative")
        return float(self._trace[slot % self._trace.size])


class ResourceSlicer:
    """Carves the video slice out of the BS capacity.

    Parameters
    ----------
    background:
        The competing downlink load.
    min_video_share:
        Guaranteed fraction of the raw capacity reserved for video even
        under heavy background load (CellSlice-style isolation).
    """

    def __init__(
        self,
        background: BackgroundTraffic | None = None,
        min_video_share: float = 0.1,
    ):
        if not 0.0 < min_video_share <= 1.0:
            raise ConfigurationError("min_video_share must be in (0, 1]")
        self.background = background if background is not None else ConstantBackground(0.0)
        self.min_video_share = float(min_video_share)

    def video_capacity_kbps(self, raw_capacity_kbps: float, slot: int) -> float:
        """Capacity left for the video slice in slot ``slot``."""
        if raw_capacity_kbps <= 0:
            raise ConfigurationError("raw capacity must be positive")
        leftover = raw_capacity_kbps - self.background.load_kbps(slot)
        floor = self.min_video_share * raw_capacity_kbps
        return max(leftover, floor)
