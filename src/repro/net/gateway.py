"""The gateway framework of the paper's Fig. 1.

Four components sit between the Internet and the base station:

* :class:`DataReceiver` — buffers downlink video bytes fetched from the
  origin servers (per-user queues, optional fetch-ahead limit);
* :class:`InformationCollector` — assembles the cross-layer
  :class:`SlotObservation` (signal strength via the RAN, required rates
  via DPI, BS capacity via the slicer, client feedback);
* the pluggable *Scheduler* (see :mod:`repro.core.scheduler`) — decides
  the per-user data-unit allocation ``phi_i(n)``;
* :class:`DataTransmitter` — pushes the allocated shards to clients,
  truncating to what the receiver queues actually hold.

:class:`Gateway` wires them together; the simulation engine drives one
:meth:`Gateway.step` per slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.media.player import StreamingClient
from repro.net.basestation import BaseStation
from repro.net.dpi import DPIInspector
from repro.net.flows import VideoFlow
from repro.net.slicing import ResourceSlicer

__all__ = [
    "SlotObservation",
    "BatchSlotObservation",
    "DataReceiver",
    "InformationCollector",
    "DataTransmitter",
    "Gateway",
]


@dataclass(frozen=True)
class SlotObservation:
    """Everything a scheduler may observe at the start of a slot.

    All per-user arrays have shape ``(n_users,)``.  Inactive users
    (session not started, or fully delivered) are flagged in
    ``active``; well-behaved schedulers allocate them zero units.
    """

    slot: int
    tau_s: float
    delta_kb: float
    #: Video-slice serving capacity S(n), KB/s.
    capacity_kbps: float
    #: Constraint (2) budget: floor(tau * S(n) / delta) units.
    unit_budget: int
    #: Per-user RSSI, dBm.
    sig_dbm: np.ndarray
    #: Observed required data rate p_i(n), KB/s.
    rate_kbps: np.ndarray
    #: Constraint (1) caps: floor(tau * v(sig_i) / delta) units.
    link_units: np.ndarray
    #: Per-KB reception energy P(sig_i), mJ/KB.
    p_mj_per_kb: np.ndarray
    #: Session started and still has bytes to receive.
    active: np.ndarray
    #: Client buffer occupancy r_i(n), seconds.
    buffer_s: np.ndarray
    #: Media bytes still to deliver, KB.
    remaining_kb: np.ndarray
    #: Tail energy the device pays if it idles this slot, mJ.
    idle_tail_cost_mj: np.ndarray
    #: Receiver window: bytes each client can accept this slot, KB
    #: (inf for uncapped buffers).
    receivable_kb: np.ndarray = None  # type: ignore[assignment]
    #: Rows whose session was admitted this slot (dynamic lifecycle
    #: runs only; ``None`` on fixed-population runs).
    joined: np.ndarray | None = None
    #: Rows vacated since the previous slot (dynamic lifecycle runs
    #: only; ``None`` on fixed-population runs).
    departed: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.receivable_kb is None:
            object.__setattr__(
                self, "receivable_kb", np.full(self.sig_dbm.shape, np.inf)
            )

    @property
    def n_users(self) -> int:
        return self.sig_dbm.shape[0]

    @property
    def sendable_kb(self) -> np.ndarray:
        """Useful bytes per user: min(remaining media, receiver window)."""
        return np.minimum(self.remaining_kb, self.receivable_kb)


@dataclass(frozen=True)
class BatchSlotObservation(SlotObservation):
    """A :class:`SlotObservation` over R run-stacked row segments.

    The batch engine (:mod:`repro.sim.batch`) folds R shape-compatible
    runs into one ``(R*N,)`` row space; every per-user array above
    covers all R runs, with run ``r`` owning rows
    ``run_offsets[r]:run_offsets[r+1]``.  The scalar ``unit_budget`` /
    ``capacity_kbps`` fields hold cross-run aggregates (sums) for
    display only — constraint enforcement is per run through
    ``run_unit_budgets`` (see :func:`repro.core.allocation.check_constraints`
    and ``clip_to_constraints``, which branch on its presence).
    """

    #: ``(R+1,)`` int64 row bounds of each run's segment.
    run_offsets: np.ndarray | None = None
    #: ``(R,)`` int64 per-run Eq. (2) budgets.
    run_unit_budgets: np.ndarray | None = None
    #: ``(R,)`` float per-run video-slice capacity S(n), KB/s.
    run_capacity_kbps: np.ndarray | None = None

    @property
    def n_runs(self) -> int:
        return 0 if self.run_offsets is None else int(self.run_offsets.shape[0] - 1)


class DataReceiver:
    """Per-user queues of video bytes fetched from origin servers.

    The origin is modelled as always able to refill the queue up to
    ``fetch_ahead_kb`` ahead of what has been transmitted (``inf``
    reproduces the paper, where the gateway is never origin-limited).
    """

    def __init__(self, n_users: int, fetch_ahead_kb: float = float("inf")):
        if n_users <= 0:
            raise ConfigurationError("n_users must be positive")
        if fetch_ahead_kb <= 0:
            raise ConfigurationError("fetch_ahead_kb must be positive")
        self.n_users = int(n_users)
        self.fetch_ahead_kb = float(fetch_ahead_kb)
        self.queued_kb = np.zeros(self.n_users, dtype=float)
        self.fetched_total_kb = np.zeros(self.n_users, dtype=float)

    def refill(self, remaining_kb: np.ndarray) -> None:
        """Fetch from origin up to the fetch-ahead limit.

        ``remaining_kb`` is each session's undelivered media; queues
        never hold more than that.
        """
        remaining = np.asarray(remaining_kb, dtype=float)
        if remaining.shape != (self.n_users,):
            raise ConfigurationError("remaining_kb has wrong shape")
        target = np.minimum(self.fetch_ahead_kb, remaining)
        fetch = np.maximum(target - self.queued_kb, 0.0)
        self.queued_kb += fetch
        self.fetched_total_kb += fetch

    def grow(self, new_n_users: int) -> None:
        """Resize to ``new_n_users`` queues, preserving existing ones."""
        old = self.n_users
        if new_n_users <= old:
            raise ConfigurationError("grow requires new_n_users > current n_users")
        queued = np.zeros(new_n_users, dtype=float)
        queued[:old] = self.queued_kb
        fetched = np.zeros(new_n_users, dtype=float)
        fetched[:old] = self.fetched_total_kb
        self.queued_kb = queued
        self.fetched_total_kb = fetched
        self.n_users = int(new_n_users)

    def reset_rows(self, rows) -> None:
        """Drop queue state for vacated/recycled rows."""
        self.queued_kb[rows] = 0.0
        self.fetched_total_kb[rows] = 0.0

    def drain(self, amounts_kb: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Remove up to ``amounts_kb`` per user; returns what was taken."""
        req = np.asarray(amounts_kb, dtype=float)
        if req.shape != (self.n_users,):
            raise ConfigurationError("amounts_kb has wrong shape")
        if np.any(req < 0):
            raise ConfigurationError("drain amounts must be non-negative")
        if out is None:
            taken = np.minimum(req, self.queued_kb)
        else:
            taken = np.minimum(req, self.queued_kb, out=out)
        self.queued_kb -= taken
        return taken


class InformationCollector:
    """Builds the :class:`SlotObservation` from cross-layer sources."""

    def __init__(self, dpi: DPIInspector | None = None):
        self.dpi = dpi if dpi is not None else DPIInspector()

    def collect(
        self,
        slot: int,
        sig_row: np.ndarray,
        flows: list[VideoFlow],
        clients: list[StreamingClient],
        bs: BaseStation,
        slicer: ResourceSlicer,
        throughput_model,
        power_model,
        idle_tail_cost_mj: np.ndarray,
    ) -> SlotObservation:
        n = len(flows)
        if len(clients) != n or np.asarray(sig_row).shape != (n,):
            raise SimulationError("inconsistent per-user array lengths")
        sig = np.asarray(sig_row, dtype=float)
        rates = self.dpi.required_rates_kbps(flows, slot)
        raw_cap = bs.capacity_kbps(slot)
        video_cap = slicer.video_capacity_kbps(raw_cap, slot)
        unit_budget = int(np.floor(bs.tau_s * video_cap / bs.delta_kb))
        link_units = throughput_model.max_units(sig, bs.tau_s, bs.delta_kb)
        active = np.array(
            [f.active_at(slot) and c.needs_data for f, c in zip(flows, clients)],
            dtype=bool,
        )
        buffer_s = np.array([c.buffer_occupancy_s for c in clients], dtype=float)
        remaining = np.array([c.remaining_kb for c in clients], dtype=float)
        receivable = np.array([c.receivable_kb(slot) for c in clients], dtype=float)
        return SlotObservation(
            slot=slot,
            tau_s=bs.tau_s,
            delta_kb=bs.delta_kb,
            capacity_kbps=video_cap,
            unit_budget=unit_budget,
            sig_dbm=sig,
            rate_kbps=rates,
            link_units=link_units,
            p_mj_per_kb=np.asarray(power_model.p(sig), dtype=float),
            active=active,
            buffer_s=buffer_s,
            remaining_kb=remaining,
            idle_tail_cost_mj=np.asarray(idle_tail_cost_mj, dtype=float),
            receivable_kb=receivable,
        )

    def collect_fleet(
        self,
        slot: int,
        sig_row: np.ndarray,
        flows: list[VideoFlow],
        fleet,
        bs: BaseStation,
        slicer: ResourceSlicer,
        throughput_model,
        power_model,
        idle_tail_cost_mj: np.ndarray,
        arena=None,
        joined: np.ndarray | None = None,
        departed: np.ndarray | None = None,
    ) -> SlotObservation:
        """:meth:`collect`, reading a :class:`~repro.media.fleet.ClientFleet`.

        Identical observation, no per-user Python loops: client
        feedback comes straight from the fleet's state arrays and the
        DPI rates from its vectorized profile lookup.  Safe without
        copies because the fleet rebinds (never mutates) its arrays.

        With a :class:`~repro.kernels.arena.SlotArena` the per-user
        observation arrays are written into the arena's reused buffers
        instead of freshly allocated — bit-identical values, zero array
        allocations per slot.  Arena-backed observations are only valid
        until the next ``collect_fleet`` call overwrites the buffers.
        """
        n = fleet.n_users
        sig = np.asarray(sig_row, dtype=float)
        if len(flows) != n or sig.shape != (n,):
            raise SimulationError("inconsistent per-user array lengths")
        rates = self.dpi.observed_rates_kbps(flows, fleet.rates_for_slot(slot))
        raw_cap = bs.capacity_kbps(slot)
        video_cap = slicer.video_capacity_kbps(raw_cap, slot)
        unit_budget = int(np.floor(bs.tau_s * video_cap / bs.delta_kb))
        if arena is not None:
            link_units = throughput_model.max_units(
                sig, bs.tau_s, bs.delta_kb, out=arena.link_units, scratch=arena.f8_tmp
            )
            p_mj_per_kb = power_model.p(
                sig, out=arena.p_mj_per_kb, scratch=arena.f8_tmp
            )
            active = fleet.active_mask_into(
                slot, arena.active, arena.f8_tmp, arena.b1_tmp
            )
            remaining = fleet.remaining_into(arena.remaining_kb)
            receivable = fleet.receivable_into(
                slot, arena.receivable_kb, arena.b1_tmp
            )
        else:
            link_units = throughput_model.max_units(sig, bs.tau_s, bs.delta_kb)
            p_mj_per_kb = np.asarray(power_model.p(sig), dtype=float)
            active = fleet.active_mask(slot)
            remaining = fleet.remaining_kb
            receivable = fleet.receivable_kb(slot)
        return SlotObservation(
            slot=slot,
            tau_s=bs.tau_s,
            delta_kb=bs.delta_kb,
            capacity_kbps=video_cap,
            unit_budget=unit_budget,
            sig_dbm=sig,
            rate_kbps=rates,
            link_units=link_units,
            p_mj_per_kb=p_mj_per_kb,
            active=active,
            buffer_s=fleet.buffer_occupancy_s,
            remaining_kb=remaining,
            idle_tail_cost_mj=np.asarray(idle_tail_cost_mj, dtype=float),
            receivable_kb=receivable,
            joined=joined,
            departed=departed,
        )

    def collect_fleet_batch(
        self,
        slot: int,
        sig_row: np.ndarray,
        flows: list[VideoFlow],
        fleet,
        bs: BaseStation,
        link_row: np.ndarray,
        p_row: np.ndarray,
        idle_tail_cost_mj: np.ndarray,
        run_offsets: np.ndarray,
        run_unit_budgets: np.ndarray,
        run_capacity_kbps: np.ndarray,
        arena,
    ) -> BatchSlotObservation:
        """:meth:`collect_fleet` over a run-stacked fleet.

        The per-run BS capacities and unit budgets arrive precomputed
        (the batch engine derives them once per slot from each run's
        capacity model and slicer), and the link/power columns come
        from the batch's precomputed Eq. (24) tables — ``link_row`` /
        ``p_row`` are contiguous per-slot views of those tables, with
        values bit-identical to the per-slot model evaluation the
        serial arena path performs.  Client feedback reads the stacked
        fleet exactly like the serial path reads a single-run fleet.
        """
        n = fleet.n_users
        sig = np.asarray(sig_row, dtype=float)
        if len(flows) != n or sig.shape != (n,):
            raise SimulationError("inconsistent per-user array lengths")
        rates = self.dpi.observed_rates_kbps(flows, fleet.rates_for_slot(slot))
        active = fleet.active_mask_into(slot, arena.active, arena.f8_tmp, arena.b1_tmp)
        remaining = fleet.remaining_into(arena.remaining_kb)
        receivable = fleet.receivable_into(slot, arena.receivable_kb, arena.b1_tmp)
        return BatchSlotObservation(
            slot=slot,
            tau_s=bs.tau_s,
            delta_kb=bs.delta_kb,
            capacity_kbps=float(run_capacity_kbps.sum()),
            unit_budget=int(run_unit_budgets.sum()),
            sig_dbm=sig,
            rate_kbps=rates,
            link_units=link_row,
            p_mj_per_kb=p_row,
            active=active,
            buffer_s=fleet.buffer_occupancy_s,
            remaining_kb=remaining,
            idle_tail_cost_mj=np.asarray(idle_tail_cost_mj, dtype=float),
            receivable_kb=receivable,
            run_offsets=run_offsets,
            run_unit_budgets=run_unit_budgets,
            run_capacity_kbps=run_capacity_kbps,
        )


class DataTransmitter:
    """Delivers allocated shards to clients, bounded by receiver queues."""

    def transmit(
        self,
        allocation_units: np.ndarray,
        obs: SlotObservation,
        receiver: DataReceiver,
        clients: list[StreamingClient],
        stall_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Send ``phi_i(n) * delta`` KB to each client.

        Returns the KB actually accepted per user (after receiver-queue
        and session-remaining truncation).  ``stall_mask`` marks users
        whose delivery path is stalled this slot (fault injection):
        their offer is zeroed — allocated frames go untransmitted and
        the queued bytes stay buffered at the gateway.
        """
        phi = np.asarray(allocation_units)
        if phi.shape != (len(clients),):
            raise SimulationError("allocation has wrong shape")
        if np.any(phi < 0):
            raise SimulationError("allocation must be non-negative")
        want_kb = phi.astype(float) * obs.delta_kb
        offer_kb = np.minimum(want_kb, receiver.queued_kb)
        if stall_mask is not None:
            offer_kb[stall_mask] = 0.0
        accepted = np.zeros(len(clients), dtype=float)
        for i, client in enumerate(clients):
            if offer_kb[i] > 0:
                accepted[i] = client.deliver(offer_kb[i], obs.slot)
        # Only bytes the client's receiver window accepted leave the
        # gateway queue; the rest stays buffered (flow control, not loss).
        receiver.drain(accepted)
        return accepted

    def transmit_fleet(
        self,
        allocation_units: np.ndarray,
        obs: SlotObservation,
        receiver: DataReceiver,
        fleet,
        arena=None,
        stall_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """:meth:`transmit` against a :class:`~repro.media.fleet.ClientFleet`.

        With a :class:`~repro.kernels.arena.SlotArena` the offer and
        accepted vectors live in the arena's reused buffers (the
        accepted vector stays valid for the rest of the slot — the
        engine copies it into its result grid).
        """
        phi = np.asarray(allocation_units)
        if phi.shape != (fleet.n_users,):
            raise SimulationError("allocation has wrong shape")
        if np.any(phi < 0):
            raise SimulationError("allocation must be non-negative")
        if arena is not None:
            want_kb = np.multiply(phi, obs.delta_kb, out=arena.want_kb)
            offer_kb = np.minimum(want_kb, receiver.queued_kb, out=want_kb)
            if stall_mask is not None:
                offer_kb[stall_mask] = 0.0
            accepted = fleet.deliver(offer_kb, obs.slot, out=arena.accepted_kb)
            receiver.drain(accepted, out=arena.drained_kb)
            return accepted
        want_kb = phi.astype(float) * obs.delta_kb
        offer_kb = np.minimum(want_kb, receiver.queued_kb)
        if stall_mask is not None:
            offer_kb[stall_mask] = 0.0
        accepted = fleet.deliver(offer_kb, obs.slot)
        receiver.drain(accepted)
        return accepted


class Gateway:
    """Fig. 1 assembled: receiver + collector + scheduler + transmitter."""

    def __init__(
        self,
        scheduler,
        bs: BaseStation,
        n_users: int,
        slicer: ResourceSlicer | None = None,
        dpi: DPIInspector | None = None,
        fetch_ahead_kb: float = float("inf"),
    ):
        self.scheduler = scheduler
        self.bs = bs
        self.slicer = slicer if slicer is not None else ResourceSlicer()
        self.receiver = DataReceiver(n_users, fetch_ahead_kb)
        self.collector = InformationCollector(dpi)
        self.transmitter = DataTransmitter()
        # (instrumentation, observe/schedule/transmit sample lists)
        # resolved once per bundle — the engine calls step() once per
        # slot and profiler lookups in that loop are measurable.
        self._obs_cache: tuple | None = None

    def step(
        self,
        slot: int,
        sig_row: np.ndarray,
        flows: list[VideoFlow],
        clients: list[StreamingClient] | None,
        throughput_model,
        power_model,
        idle_tail_cost_mj: np.ndarray,
        instrumentation=None,
        fleet=None,
        arena=None,
        joined_mask: np.ndarray | None = None,
        departed_mask: np.ndarray | None = None,
        stall_mask: np.ndarray | None = None,
    ) -> tuple[SlotObservation, np.ndarray, np.ndarray]:
        """Run one slot of the framework.

        Returns ``(observation, allocation_units, delivered_kb)``.

        Client state comes either from a list of per-user
        :class:`~repro.media.player.StreamingClient` objects or — on
        the engine's vectorized path — from a
        :class:`~repro.media.fleet.ClientFleet` passed as ``fleet``
        (in which case ``clients`` is ignored).  Both paths produce
        bit-identical observations and deliveries.  A
        :class:`~repro.kernels.arena.SlotArena` makes the fleet path
        allocation-free (observation arrays and transmit scratch are
        written into the arena's reused buffers).

        With an :class:`~repro.obs.instrument.Instrumentation` bundle
        attached, the observe/schedule/transmit phases are timed
        separately (one profiler sample each per call).  Allocation
        counters — scheduler invocations, budget near-misses,
        allocated-but-unaccepted bytes — are batch-derived by the
        engine from its recorded grids so the per-slot path stays
        within the instrumentation overhead budget.
        """
        timed = instrumentation is not None
        if timed:
            cache = self._obs_cache
            if cache is None or cache[0] is not instrumentation:
                # Only the profiler sees per-slot samples; span phase
                # totals are derived from these same lists by the
                # engine after the run (SpanRecorder.add_bulk), so the
                # gateway's hot path is identical with or without a
                # span recorder attached.
                profiler = instrumentation.profiler
                cache = self._obs_cache = (
                    instrumentation,
                    profiler.samples("observe").append,
                    profiler.samples("schedule").append,
                    profiler.samples("transmit").append,
                )
            _, rec_observe, rec_schedule, rec_transmit = cache
            _pc = perf_counter
            _t0 = _pc()
        if fleet is not None:
            obs = self.collector.collect_fleet(
                slot,
                sig_row,
                flows,
                fleet,
                self.bs,
                self.slicer,
                throughput_model,
                power_model,
                idle_tail_cost_mj,
                arena=arena,
                joined=joined_mask,
                departed=departed_mask,
            )
        else:
            obs = self.collector.collect(
                slot,
                sig_row,
                flows,
                clients,
                self.bs,
                self.slicer,
                throughput_model,
                power_model,
                idle_tail_cost_mj,
            )
        self.receiver.refill(obs.remaining_kb)
        if timed:
            _t1 = _pc()
            rec_observe(_t1 - _t0)
        phi = np.asarray(self.scheduler.allocate(obs))
        if timed:
            _t2 = _pc()
            rec_schedule(_t2 - _t1)
        if fleet is not None:
            delivered_kb = self.transmitter.transmit_fleet(
                phi, obs, self.receiver, fleet, arena=arena, stall_mask=stall_mask
            )
        else:
            delivered_kb = self.transmitter.transmit(
                phi, obs, self.receiver, clients, stall_mask=stall_mask
            )
        if timed:
            rec_transmit(_pc() - _t2)
        return obs, phi, delivered_kb

    def step_batch(
        self,
        slot: int,
        sig_row: np.ndarray,
        flows: list[VideoFlow],
        fleet,
        link_row: np.ndarray,
        p_row: np.ndarray,
        idle_tail_cost_mj: np.ndarray,
        run_offsets: np.ndarray,
        run_unit_budgets: np.ndarray,
        run_capacity_kbps: np.ndarray,
        arena,
        instrumentation=None,
    ) -> tuple[BatchSlotObservation, np.ndarray, np.ndarray]:
        """:meth:`step` over a run-stacked fleet.

        One observe/schedule/transmit cycle covers all R runs: the
        collector builds a segment-aware
        :class:`BatchSlotObservation`, the (batch-adapted) scheduler
        allocates every run, and the transmitter delivers through the
        stacked fleet — the delivery/receiver chains are row-elementwise,
        so :meth:`DataTransmitter.transmit_fleet` is already
        segment-transparent.  Phase timing mirrors :meth:`step` (one
        profiler sample per phase per slot for the whole batch).
        """
        timed = instrumentation is not None
        if timed:
            cache = self._obs_cache
            if cache is None or cache[0] is not instrumentation:
                profiler = instrumentation.profiler
                cache = self._obs_cache = (
                    instrumentation,
                    profiler.samples("observe").append,
                    profiler.samples("schedule").append,
                    profiler.samples("transmit").append,
                )
            _, rec_observe, rec_schedule, rec_transmit = cache
            _pc = perf_counter
            _t0 = _pc()
        obs = self.collector.collect_fleet_batch(
            slot,
            sig_row,
            flows,
            fleet,
            self.bs,
            link_row,
            p_row,
            idle_tail_cost_mj,
            run_offsets,
            run_unit_budgets,
            run_capacity_kbps,
            arena,
        )
        self.receiver.refill(obs.remaining_kb)
        if timed:
            _t1 = _pc()
            rec_observe(_t1 - _t0)
        phi = np.asarray(self.scheduler.allocate(obs))
        if timed:
            _t2 = _pc()
            rec_schedule(_t2 - _t1)
        delivered_kb = self.transmitter.transmit_fleet(
            phi, obs, self.receiver, fleet, arena=arena
        )
        if timed:
            rec_transmit(_pc() - _t2)
        return obs, phi, delivered_kb
