"""Network substrate: base station, flows, DPI, slicing, gateway.

* :mod:`repro.net.basestation` — serving capacity ``S(n)`` and the
  frame/data-unit discretisation (Eq. 2);
* :mod:`repro.net.flows` — video flow descriptors (user, session,
  arrival time);
* :mod:`repro.net.dpi` — the DPI middlebox the paper relies on to read
  the required data rate from HTTP/RTSP requests;
* :mod:`repro.net.slicing` — resource slicing (CellSlice [26]) that
  separates video traffic from background downlink load;
* :mod:`repro.net.gateway` — the framework of Fig. 1: DataReceiver,
  InformationCollector, Scheduler slot, DataTransmitter.
"""

from repro.net.basestation import BaseStation, ConstantCapacity, TimeVaryingCapacity
from repro.net.flows import VideoFlow
from repro.net.dpi import DPIInspector
from repro.net.slicing import ResourceSlicer, BackgroundTraffic
from repro.net.gateway import DataReceiver, DataTransmitter, Gateway, InformationCollector, SlotObservation

__all__ = [
    "BaseStation",
    "ConstantCapacity",
    "TimeVaryingCapacity",
    "VideoFlow",
    "DPIInspector",
    "ResourceSlicer",
    "BackgroundTraffic",
    "DataReceiver",
    "DataTransmitter",
    "Gateway",
    "InformationCollector",
    "SlotObservation",
]
