"""Deep-packet-inspection middlebox stand-in.

The paper's Information Collector obtains each flow's required data
rate "from DPI middleboxes that are part of existing cellular networks"
(Section III-A).  We model the middlebox as a classifier that inspects
a :class:`~repro.net.flows.VideoFlow` and reports the rate the
*gateway* believes the flow needs — optionally with bounded inspection
error, which lets robustness experiments quantify how sensitive RTMA
and EMA are to mis-estimated bitrates.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.net.flows import VideoFlow

__all__ = ["DPIInspector"]


class DPIInspector:
    """Reports per-flow required data rates with optional estimation error.

    Parameters
    ----------
    rate_error_frac:
        Multiplicative error half-width: the reported rate is the true
        ``p_i(n)`` scaled by a factor drawn uniformly from
        ``[1 - e, 1 + e]`` per flow (fixed for the flow's lifetime,
        mimicking a mis-classified manifest).  ``0`` (default) reports
        the truth, as the paper assumes.
    rng:
        Seed or generator for error draws.
    """

    def __init__(self, rate_error_frac: float = 0.0, rng=None):
        if not 0.0 <= rate_error_frac < 1.0:
            raise ConfigurationError("rate_error_frac must be in [0, 1)")
        self.rate_error_frac = float(rate_error_frac)
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._flow_factor: dict[int, float] = {}

    def classify(self, flow: VideoFlow) -> str:
        """Protocol classification (pass-through for synthetic flows)."""
        return flow.protocol

    def required_rate_kbps(self, flow: VideoFlow, slot: int) -> float:
        """The rate the gateway observes for ``flow`` at ``slot``."""
        true_rate = flow.video.rate_kbps(slot)
        if self.rate_error_frac == 0.0:
            return true_rate
        factor = self._flow_factor.get(flow.user_id)
        if factor is None:
            e = self.rate_error_frac
            factor = float(self._rng.uniform(1.0 - e, 1.0 + e))
            self._flow_factor[flow.user_id] = factor
        return true_rate * factor

    def required_rates_kbps(self, flows: list[VideoFlow], slot: int) -> np.ndarray:
        """Vector of observed rates for a flow list (engine fast path)."""
        return np.array(
            [self.required_rate_kbps(f, slot) for f in flows], dtype=float
        )

    def observed_rates_kbps(
        self, flows: list[VideoFlow], true_rates_kbps: np.ndarray
    ) -> np.ndarray:
        """Apply the per-flow error factors to precomputed true rates.

        The fleet path evaluates ``p_i(n)`` for the whole cell in one
        vectorized lookup (see
        :meth:`repro.media.fleet.ClientFleet.rates_for_slot`); this
        applies the same per-flow factors — drawn lazily in flow order,
        exactly as :meth:`required_rate_kbps` would — to that vector.
        With zero error the input is returned as-is (callers must not
        mutate it).
        """
        rates = np.asarray(true_rates_kbps, dtype=float)
        if self.rate_error_frac == 0.0:
            return rates
        e = self.rate_error_frac
        factors = np.empty(len(flows), dtype=float)
        for k, flow in enumerate(flows):
            factor = self._flow_factor.get(flow.user_id)
            if factor is None:
                factor = float(self._rng.uniform(1.0 - e, 1.0 + e))
                self._flow_factor[flow.user_id] = factor
            factors[k] = factor
        return rates * factors
