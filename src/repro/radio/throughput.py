"""Throughput-vs-signal models (paper Definition 3, Eq. 24).

The paper adopts the EnVi [28] linear fit

    ``v(sig) = 65.8 * sig + 7567.0  (KB/s)``

relating RSSI in dBm to the maximum achievable downlink throughput.
:class:`LinearThroughputModel` implements it (clamped at zero below the
cutoff near ``-115 dBm``); :class:`TableThroughputModel` supports
arbitrary monotone measurement tables via interpolation for ablations.

Both models are vectorised: ``v`` accepts scalars or arrays and returns
matching shapes.  The inverse map ``signal_for`` is the workhorse of
RTMA's Eq. (12) threshold derivation.
"""

from __future__ import annotations

import abc

import numpy as np

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["ThroughputModel", "LinearThroughputModel", "TableThroughputModel"]


class ThroughputModel(abc.ABC):
    """Maps signal strength (dBm) to achievable throughput (KB/s)."""

    @abc.abstractmethod
    def v(self, sig_dbm, out=None):
        """Throughput in KB/s for signal ``sig_dbm`` (scalar or array).

        With ``out`` (a float array matching ``sig_dbm``'s shape) the
        result is written in place and ``out`` returned — the
        allocation-free path used by the engine's slot arena.
        """

    @abc.abstractmethod
    def signal_for(self, v_kbps):
        """Inverse map: the signal (dBm) at which throughput equals
        ``v_kbps``.  Must satisfy ``v(signal_for(x)) ~= x`` for ``x``
        within the model's achievable range."""

    @property
    @abc.abstractmethod
    def v_max(self) -> float:
        """Largest throughput achievable at the strongest modelled signal."""

    def max_units(
        self, sig_dbm, tau_s: float, delta_kb: float, out=None, scratch=None
    ) -> np.ndarray:
        """Constraint (1): per-slot data-unit cap ``floor(tau*v(sig)/delta)``.

        The paper writes a ceiling in Eq. (1) but uses the floor when
        computing ``phi_sup`` in both algorithms; we use the floor
        uniformly so an allocation never exceeds physical throughput.

        With ``out`` (int64) and ``scratch`` (float64) the result is
        computed without allocating.
        """
        if tau_s <= 0 or delta_kb <= 0:
            raise ConfigurationError("tau_s and delta_kb must be positive")
        if out is None:
            return np.floor(
                tau_s * np.asarray(self.v(sig_dbm)) / delta_kb
            ).astype(np.int64)
        vals = self.v(sig_dbm, out=scratch)
        np.multiply(vals, tau_s, out=vals)
        np.divide(vals, delta_kb, out=vals)
        np.floor(vals, out=vals)
        np.copyto(out, vals, casting="unsafe")
        return out


class LinearThroughputModel(ThroughputModel):
    """The paper's linear fit ``v(sig) = slope*sig + intercept``, >= 0."""

    def __init__(
        self,
        slope: float = constants.THROUGHPUT_SLOPE_KBPS_PER_DBM,
        intercept: float = constants.THROUGHPUT_INTERCEPT_KBPS,
        sig_max_dbm: float = constants.SIGNAL_MAX_DBM,
    ):
        if slope <= 0:
            raise ConfigurationError("slope must be positive (stronger signal, more throughput)")
        self.slope = float(slope)
        self.intercept = float(intercept)
        self.sig_max_dbm = float(sig_max_dbm)

    def v(self, sig_dbm, out=None):
        if out is None:
            vals = self.slope * np.asarray(sig_dbm, dtype=float) + self.intercept
            return np.maximum(vals, 0.0)
        np.multiply(np.asarray(sig_dbm, dtype=float), self.slope, out=out)
        np.add(out, self.intercept, out=out)
        np.maximum(out, 0.0, out=out)
        return out

    def signal_for(self, v_kbps):
        v_kbps = np.asarray(v_kbps, dtype=float)
        if np.any(v_kbps < 0):
            raise ConfigurationError("throughput must be non-negative")
        return (v_kbps - self.intercept) / self.slope

    @property
    def v_max(self) -> float:
        return float(self.v(self.sig_max_dbm))

    @property
    def cutoff_dbm(self) -> float:
        """Signal strength at which the fit reaches zero throughput."""
        return -self.intercept / self.slope

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinearThroughputModel(slope={self.slope}, "
            f"intercept={self.intercept})"
        )


class TableThroughputModel(ThroughputModel):
    """Piecewise-linear interpolation of a measured (sig, v) table.

    The table must be strictly increasing in both columns; values are
    clamped (flat extrapolation) outside the measured signal range.
    """

    def __init__(self, sig_points_dbm, v_points_kbps):
        sig = np.asarray(sig_points_dbm, dtype=float)
        v = np.asarray(v_points_kbps, dtype=float)
        if sig.ndim != 1 or sig.shape != v.shape or sig.size < 2:
            raise ConfigurationError("need matching 1-D tables with >= 2 points")
        if np.any(np.diff(sig) <= 0):
            raise ConfigurationError("signal points must be strictly increasing")
        if np.any(np.diff(v) <= 0):
            raise ConfigurationError("throughput points must be strictly increasing")
        if np.any(v < 0):
            raise ConfigurationError("throughput must be non-negative")
        self.sig_points = sig
        self.v_points = v

    def v(self, sig_dbm, out=None):
        vals = np.interp(
            np.asarray(sig_dbm, dtype=float), self.sig_points, self.v_points
        )
        if out is None:
            return vals
        np.copyto(out, vals)
        return out

    def signal_for(self, v_kbps):
        return np.interp(np.asarray(v_kbps, dtype=float), self.v_points, self.sig_points)

    @property
    def v_max(self) -> float:
        return float(self.v_points[-1])
