"""Named radio parameter bundles.

A :class:`RadioProfile` groups the three model pieces a simulation
needs — throughput fit, power fit, RRC parameters — under a name.
Profiles provided:

``umts-3g`` (default)
    The paper's evaluation configuration: EnVi Eq. (24) fits plus the
    PerES 3G RRC parameters (Pd=732.83 mW, Pf=388.88 mW, T1=3.29 s,
    T2=4.02 s).
``lte``
    An LTE-flavoured profile following Huang et al. [11]: a single
    RRC_CONNECTED tail (~11.6 s at ~1060 mW) and no intermediate
    FACH-like state, with a proportionally faster throughput fit.
``3g-fast-dormancy``
    The 3G profile with aggressively shortened timers (0.5 s / 0.5 s),
    modelling fast-dormancy deployments (RadioJockey [21] territory);
    used by the ablation benches to show how tail length drives the
    scheduler trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.radio.power import EnviPowerModel, PowerModel
from repro.radio.rrc import RRCParams
from repro.radio.throughput import LinearThroughputModel, ThroughputModel

__all__ = ["RadioProfile", "get_profile", "list_profiles", "register_profile"]


@dataclass(frozen=True)
class RadioProfile:
    """A named (throughput, power, RRC) parameter bundle."""

    name: str
    throughput: ThroughputModel
    power: PowerModel
    rrc: RRCParams
    description: str = ""


def _make_umts() -> RadioProfile:
    throughput = LinearThroughputModel()
    return RadioProfile(
        name="umts-3g",
        throughput=throughput,
        power=EnviPowerModel(throughput=throughput),
        rrc=RRCParams(),
        description="Paper defaults: EnVi fits + PerES 3G RRC timers.",
    )


def _make_lte() -> RadioProfile:
    # LTE reaches roughly 2-3x the 3G throughput at comparable RSSI
    # (Huang et al. [11]); keep the same linear form, scaled.
    throughput = LinearThroughputModel(slope=131.6, intercept=15134.0)
    return RadioProfile(
        name="lte",
        throughput=throughput,
        power=EnviPowerModel(scale=2250.0, throughput=throughput),
        rrc=RRCParams(pd_mw=1060.0, pf_mw=0.0, t1_s=11.576, t2_s=0.0),
        description="LTE: single RRC_CONNECTED tail (~11.6 s @ 1060 mW).",
    )


def _make_fast_dormancy() -> RadioProfile:
    throughput = LinearThroughputModel()
    return RadioProfile(
        name="3g-fast-dormancy",
        throughput=throughput,
        power=EnviPowerModel(throughput=throughput),
        rrc=RRCParams(t1_s=0.5, t2_s=0.5),
        description="3G with fast dormancy: timers cut to 0.5 s each.",
    )


_REGISTRY: dict[str, RadioProfile] = {}


def register_profile(profile: RadioProfile, overwrite: bool = False) -> None:
    """Add a custom profile to the registry (for experiments)."""
    if not overwrite and profile.name in _REGISTRY:
        raise ConfigurationError(f"profile {profile.name!r} already registered")
    _REGISTRY[profile.name] = profile


for _factory in (_make_umts, _make_lte, _make_fast_dormancy):
    register_profile(_factory())


def get_profile(name: str = "umts-3g") -> RadioProfile:
    """Look up a registered profile by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown radio profile {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_profiles() -> list[str]:
    """Names of all registered profiles."""
    return sorted(_REGISTRY)
