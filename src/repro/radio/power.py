"""Per-byte transmission-energy models (paper Definition 4, Eq. 24).

The paper's fit (from EnVi [28]) expresses the energy cost of receiving
one KB at signal strength ``sig`` as

    ``P(sig) = -0.167 + 1560 / v(sig)   (mJ/KB)``

so the *instantaneous radio power* while receiving at full rate is

    ``P(sig) * v(sig) = -0.167 * v(sig) + 1560   (mW)``

— weaker signal means lower throughput and *higher* power per byte.
:class:`EnviPowerModel` implements the fit; :class:`TablePowerModel`
supports measured tables.  Both are vectorised.
"""

from __future__ import annotations

import abc

import numpy as np

from repro import constants
from repro.errors import ConfigurationError
from repro.radio.throughput import LinearThroughputModel, ThroughputModel

__all__ = ["PowerModel", "EnviPowerModel", "TablePowerModel"]


class PowerModel(abc.ABC):
    """Maps signal strength (dBm) to per-KB reception energy (mJ/KB)."""

    @abc.abstractmethod
    def p(self, sig_dbm, out=None, scratch=None):
        """Energy per KB (mJ/KB) at signal ``sig_dbm`` (scalar or array).

        With ``out`` (and, for models that need it, a float ``scratch``
        of the same shape) the result is written in place — the
        allocation-free path used by the engine's slot arena.
        """

    def transmission_energy_mj(self, sig_dbm, data_kb):
        """Eq. (3): ``E_trans = P(sig) * data`` for ``data`` in KB."""
        data = np.asarray(data_kb, dtype=float)
        if np.any(data < 0):
            raise ConfigurationError("data_kb must be non-negative")
        return np.asarray(self.p(sig_dbm)) * data


class EnviPowerModel(PowerModel):
    """The paper's hyperbolic fit ``P(sig) = c0 + c1 / v(sig)``.

    Parameters
    ----------
    offset, scale:
        The fit constants ``c0`` (mJ/KB) and ``c1`` (mW).
    throughput:
        Throughput model supplying ``v(sig)``; defaults to the paper's
        linear fit so the two halves of Eq. (24) stay consistent.
    p_floor:
        Lower clamp on the per-KB energy.  The raw fit turns negative
        above ``v = c1/|c0| ~= 9341 KB/s``, beyond the paper's signal
        range; the clamp keeps the model physical for extended ranges.
    """

    def __init__(
        self,
        offset: float = constants.POWER_OFFSET_MJ_PER_KB,
        scale: float = constants.POWER_SCALE_MW,
        throughput: ThroughputModel | None = None,
        p_floor: float = 1e-3,
    ):
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        if p_floor < 0:
            raise ConfigurationError("p_floor must be non-negative")
        self.offset = float(offset)
        self.scale = float(scale)
        self.throughput = throughput if throughput is not None else LinearThroughputModel()
        self.p_floor = float(p_floor)

    def p(self, sig_dbm, out=None, scratch=None):
        if out is None:
            v = np.asarray(self.throughput.v(sig_dbm), dtype=float)
            with np.errstate(divide="ignore"):
                raw = self.offset + self.scale / v
            # Zero throughput -> infinite energy per byte: transmitting
            # there is never selected by any scheduler, and the +inf
            # propagates correctly through cost comparisons.
            raw = np.where(v > 0, raw, np.inf)
            return np.maximum(raw, self.p_floor)
        # In-place variant: v >= 0 by model contract, and at v == 0 the
        # division already yields scale/0 = +inf (offset + inf = inf),
        # so the explicit where(v > 0, ..., inf) is redundant here.
        v = self.throughput.v(sig_dbm, out=scratch)
        with np.errstate(divide="ignore"):
            np.divide(self.scale, v, out=out)
        np.add(out, self.offset, out=out)
        np.maximum(out, self.p_floor, out=out)
        return out

    def radio_power_mw(self, sig_dbm):
        """Instantaneous power ``P(sig) * v(sig)`` when receiving at
        the full achievable rate (mW)."""
        v = np.asarray(self.throughput.v(sig_dbm), dtype=float)
        return np.asarray(self.p(sig_dbm)) * v

    def signal_for_radio_power(self, power_mw: float) -> float:
        """Invert ``P(sig)*v(sig) = power_mw`` for the RTMA Eq. (12)
        threshold.

        With the un-clamped fit, ``P(sig)*v(sig) = c0*v + c1`` which is
        *decreasing* in ``v`` for ``c0 < 0``: a lower power budget
        requires a *stronger* signal.  Raises if the budget is
        unattainable within the throughput model's range.
        """
        if self.offset == 0:
            raise ConfigurationError(
                "radio power is constant (offset=0); threshold undefined"
            )
        v_target = (float(power_mw) - self.scale) / self.offset
        if v_target <= 0:
            raise ConfigurationError(
                f"power budget {power_mw} mW unattainable: requires "
                f"non-positive throughput {v_target} KB/s"
            )
        return float(self.throughput.signal_for(v_target))


class TablePowerModel(PowerModel):
    """Piecewise-linear interpolation of a measured (sig, P) table.

    Energy per byte must be non-increasing in signal strength (stronger
    signal never costs more per byte).
    """

    def __init__(self, sig_points_dbm, p_points_mj_per_kb):
        sig = np.asarray(sig_points_dbm, dtype=float)
        p = np.asarray(p_points_mj_per_kb, dtype=float)
        if sig.ndim != 1 or sig.shape != p.shape or sig.size < 2:
            raise ConfigurationError("need matching 1-D tables with >= 2 points")
        if np.any(np.diff(sig) <= 0):
            raise ConfigurationError("signal points must be strictly increasing")
        if np.any(np.diff(p) > 0):
            raise ConfigurationError("per-KB energy must be non-increasing in signal")
        if np.any(p <= 0):
            raise ConfigurationError("per-KB energy must be positive")
        self.sig_points = sig
        self.p_points = p

    def p(self, sig_dbm, out=None, scratch=None):
        vals = np.interp(
            np.asarray(sig_dbm, dtype=float), self.sig_points, self.p_points
        )
        if out is None:
            return vals
        np.copyto(out, vals)
        return out
