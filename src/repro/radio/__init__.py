"""Radio substrate: signal traces, throughput/power fits, RRC machine.

This subpackage models everything below the scheduler:

* :mod:`repro.radio.signal` — per-user RSSI trace generators
  (the paper's phase-shifted sinusoid + white noise, plus Markov,
  Gauss-Markov random walk, constant and file-backed traces);
* :mod:`repro.radio.throughput` — throughput-vs-signal fits
  (Definition 3 / Eq. 24);
* :mod:`repro.radio.power` — per-byte energy fits
  (Definition 4 / Eq. 24);
* :mod:`repro.radio.tail` — closed-form tail energy (Eq. 4);
* :mod:`repro.radio.rrc` — explicit RRC state machine whose
  per-slot accounting matches Eq. (4) exactly;
* :mod:`repro.radio.profiles` — named parameter bundles (3G UMTS
  defaults from the paper, an LTE profile, and a fast-dormancy variant).
"""

from repro.radio.signal import (
    ConstantSignalModel,
    MarkovSignalModel,
    RandomWalkSignalModel,
    SignalModel,
    SinusoidSignalModel,
    TraceSignalModel,
)
from repro.radio.throughput import LinearThroughputModel, TableThroughputModel, ThroughputModel
from repro.radio.power import EnviPowerModel, PowerModel, TablePowerModel
from repro.radio.tail import tail_energy_mj, tail_energy_rate_mw
from repro.radio.rrc import RRCParams, RRCState, RRCStateMachine, RRCFleet
from repro.radio.profiles import RadioProfile, get_profile, list_profiles

__all__ = [
    "SignalModel",
    "SinusoidSignalModel",
    "MarkovSignalModel",
    "RandomWalkSignalModel",
    "ConstantSignalModel",
    "TraceSignalModel",
    "ThroughputModel",
    "LinearThroughputModel",
    "TableThroughputModel",
    "PowerModel",
    "EnviPowerModel",
    "TablePowerModel",
    "tail_energy_mj",
    "tail_energy_rate_mw",
    "RRCParams",
    "RRCState",
    "RRCStateMachine",
    "RRCFleet",
    "RadioProfile",
    "get_profile",
    "list_profiles",
]
