"""Per-user received-signal-strength (RSSI) trace generators.

The paper (Section VI) drives its evaluation with a sinusoidal RSSI
trace in ``[-110, -50] dBm`` carrying 30 dBm white Gaussian noise, with
a distinct phase shift per user so users do not experience good channel
conditions simultaneously.  :class:`SinusoidSignalModel` implements
exactly that.  Additional generators (Markov chain, Gauss-Markov random
walk, constant, and file/array-backed traces) are provided for
robustness studies and ablations.

All generators share one contract: :meth:`SignalModel.generate` returns
an ``(n_slots, n_users)`` float array of dBm values, clipped to the
model's ``[sig_min, sig_max]`` range so the downstream linear throughput
fit stays positive (the fit crosses zero near ``-115 dBm``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro import constants
from repro.errors import ConfigurationError, TraceError

__all__ = [
    "SignalModel",
    "SinusoidSignalModel",
    "MarkovSignalModel",
    "RandomWalkSignalModel",
    "ConstantSignalModel",
    "TraceSignalModel",
]


class SignalModel(abc.ABC):
    """Abstract RSSI trace generator.

    Parameters common to all concrete models:

    sig_min, sig_max:
        Inclusive clipping range in dBm.  Defaults follow the paper
        (``-110`` to ``-50``).
    """

    def __init__(
        self,
        sig_min: float = constants.SIGNAL_MIN_DBM,
        sig_max: float = constants.SIGNAL_MAX_DBM,
    ):
        if not np.isfinite(sig_min) or not np.isfinite(sig_max):
            raise ConfigurationError("signal range must be finite")
        if sig_min >= sig_max:
            raise ConfigurationError(
                f"sig_min ({sig_min}) must be below sig_max ({sig_max})"
            )
        self.sig_min = float(sig_min)
        self.sig_max = float(sig_max)

    @abc.abstractmethod
    def _raw(self, n_slots: int, n_users: int, rng: np.random.Generator) -> np.ndarray:
        """Produce the unclipped ``(n_slots, n_users)`` trace."""

    def generate(
        self, n_slots: int, n_users: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Generate a clipped ``(n_slots, n_users)`` dBm trace.

        ``rng`` may be a :class:`numpy.random.Generator`, a seed, or
        ``None`` (fresh entropy).
        """
        if n_slots <= 0 or n_users <= 0:
            raise ConfigurationError("n_slots and n_users must be positive")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        trace = self._raw(int(n_slots), int(n_users), rng)
        if trace.shape != (n_slots, n_users):
            raise TraceError(
                f"generator produced shape {trace.shape}, "
                f"expected {(n_slots, n_users)}"
            )
        return np.clip(trace, self.sig_min, self.sig_max)

    @property
    def midpoint(self) -> float:
        """Centre of the signal range in dBm."""
        return 0.5 * (self.sig_min + self.sig_max)

    @property
    def amplitude(self) -> float:
        """Half-width of the signal range in dBm."""
        return 0.5 * (self.sig_max - self.sig_min)


class SinusoidSignalModel(SignalModel):
    """The paper's trace: per-user phase-shifted sinusoid plus noise.

    ``sig_u(n) = mid + A * sin(2*pi*n/period + phase_u) + N(0, noise_std)``

    Parameters
    ----------
    period_slots:
        Full sine period in slots.  The paper does not state one; the
        default (600 slots = 10 minutes at tau = 1 s) gives several
        good/bad channel episodes per video session.
    noise_std_dbm:
        Standard deviation of the additive white Gaussian noise
        (paper: 30 dBm).
    phases:
        Explicit per-user phase offsets in radians.  When ``None``,
        users are spread evenly over ``[0, 2*pi)`` — the paper only
        says "different phase shifts for the N sine functions".
    """

    def __init__(
        self,
        period_slots: float = 600.0,
        noise_std_dbm: float = constants.SIGNAL_NOISE_STD_DBM,
        phases: np.ndarray | None = None,
        sig_min: float = constants.SIGNAL_MIN_DBM,
        sig_max: float = constants.SIGNAL_MAX_DBM,
    ):
        super().__init__(sig_min, sig_max)
        if period_slots <= 0:
            raise ConfigurationError("period_slots must be positive")
        if noise_std_dbm < 0:
            raise ConfigurationError("noise_std_dbm must be non-negative")
        self.period_slots = float(period_slots)
        self.noise_std_dbm = float(noise_std_dbm)
        self.phases = None if phases is None else np.asarray(phases, dtype=float)

    def _raw(self, n_slots: int, n_users: int, rng: np.random.Generator) -> np.ndarray:
        if self.phases is not None:
            if self.phases.shape != (n_users,):
                raise ConfigurationError(
                    f"phases must have shape ({n_users},), got {self.phases.shape}"
                )
            phases = self.phases
        else:
            phases = np.arange(n_users) * (2.0 * np.pi / n_users)
        n = np.arange(n_slots, dtype=float)[:, None]
        carrier = self.midpoint + self.amplitude * np.sin(
            2.0 * np.pi * n / self.period_slots + phases[None, :]
        )
        if self.noise_std_dbm > 0:
            carrier = carrier + rng.normal(0.0, self.noise_std_dbm, size=carrier.shape)
        return carrier


class MarkovSignalModel(SignalModel):
    """Discrete-state Markov RSSI model (cf. Dutta et al. [22]).

    The signal range is divided into ``n_states`` evenly spaced levels;
    each slot the chain stays with probability ``p_stay`` or moves to an
    adjacent level (half probability each side; reflecting boundaries).
    Users evolve independently from uniformly random initial states.
    """

    def __init__(
        self,
        n_states: int = 7,
        p_stay: float = 0.6,
        sig_min: float = constants.SIGNAL_MIN_DBM,
        sig_max: float = constants.SIGNAL_MAX_DBM,
    ):
        super().__init__(sig_min, sig_max)
        if n_states < 2:
            raise ConfigurationError("n_states must be >= 2")
        if not 0.0 <= p_stay <= 1.0:
            raise ConfigurationError("p_stay must be in [0, 1]")
        self.n_states = int(n_states)
        self.p_stay = float(p_stay)

    def _raw(self, n_slots: int, n_users: int, rng: np.random.Generator) -> np.ndarray:
        levels = np.linspace(self.sig_min, self.sig_max, self.n_states)
        state = rng.integers(0, self.n_states, size=n_users)
        out = np.empty((n_slots, n_users), dtype=float)
        p_move = 1.0 - self.p_stay
        for n in range(n_slots):
            out[n] = levels[state]
            u = rng.random(n_users)
            step = np.zeros(n_users, dtype=np.int64)
            step[u < 0.5 * p_move] = -1
            step[(u >= 0.5 * p_move) & (u < p_move)] = 1
            state = np.clip(state + step, 0, self.n_states - 1)
        return out


class RandomWalkSignalModel(SignalModel):
    """Gauss-Markov (AR(1)) random-walk RSSI model.

    ``sig(n+1) = mid + alpha * (sig(n) - mid) + sigma * N(0, 1)``

    ``alpha`` near 1 yields slowly drifting channels; ``alpha = 0``
    degenerates to i.i.d. noise around the midpoint.
    """

    def __init__(
        self,
        alpha: float = 0.98,
        sigma_dbm: float = 3.0,
        sig_min: float = constants.SIGNAL_MIN_DBM,
        sig_max: float = constants.SIGNAL_MAX_DBM,
    ):
        super().__init__(sig_min, sig_max)
        if not 0.0 <= alpha <= 1.0:
            raise ConfigurationError("alpha must be in [0, 1]")
        if sigma_dbm < 0:
            raise ConfigurationError("sigma_dbm must be non-negative")
        self.alpha = float(alpha)
        self.sigma_dbm = float(sigma_dbm)

    def _raw(self, n_slots: int, n_users: int, rng: np.random.Generator) -> np.ndarray:
        out = np.empty((n_slots, n_users), dtype=float)
        dev = rng.uniform(-self.amplitude, self.amplitude, size=n_users)
        noise = rng.normal(0.0, self.sigma_dbm, size=(n_slots, n_users))
        for n in range(n_slots):
            out[n] = self.midpoint + dev
            dev = self.alpha * dev + noise[n]
        return out


class ConstantSignalModel(SignalModel):
    """Every user sees a fixed RSSI — useful for analytic unit tests."""

    def __init__(
        self,
        level_dbm: float = -80.0,
        sig_min: float = constants.SIGNAL_MIN_DBM,
        sig_max: float = constants.SIGNAL_MAX_DBM,
    ):
        super().__init__(sig_min, sig_max)
        if not sig_min <= level_dbm <= sig_max:
            raise ConfigurationError(
                f"level_dbm {level_dbm} outside [{sig_min}, {sig_max}]"
            )
        self.level_dbm = float(level_dbm)

    def _raw(self, n_slots: int, n_users: int, rng: np.random.Generator) -> np.ndarray:
        return np.full((n_slots, n_users), self.level_dbm, dtype=float)


@dataclass
class TraceSignalModel(SignalModel):
    """Replay a recorded ``(n_slots, n_users)`` trace (tiling as needed).

    The trace is validated for NaNs at construction.  If the requested
    horizon exceeds the trace length, the trace wraps around; if fewer
    users are requested than columns exist, the leading columns are
    used; requesting more users than columns is an error.
    """

    trace: np.ndarray = field(repr=False)

    def __init__(
        self,
        trace: np.ndarray,
        sig_min: float = constants.SIGNAL_MIN_DBM,
        sig_max: float = constants.SIGNAL_MAX_DBM,
    ):
        super().__init__(sig_min, sig_max)
        trace = np.asarray(trace, dtype=float)
        if trace.ndim != 2 or trace.size == 0:
            raise TraceError("trace must be a non-empty 2-D array (slots x users)")
        if not np.all(np.isfinite(trace)):
            raise TraceError("trace contains NaN or infinite values")
        self.trace = trace

    def _raw(self, n_slots: int, n_users: int, rng: np.random.Generator) -> np.ndarray:
        slots_avail, users_avail = self.trace.shape
        if n_users > users_avail:
            raise TraceError(
                f"trace has {users_avail} users, {n_users} requested"
            )
        idx = np.arange(n_slots) % slots_avail
        return self.trace[idx][:, :n_users]
