"""Radio Resource Control (RRC) state machine and per-slot tail accounting.

The paper models 3G RRC with three states — CELL_DCH (high power),
CELL_FACH (medium power), CELL_IDLE — and two demotion timers ``T1``
(DCH -> FACH) and ``T2`` (FACH -> IDLE).  LTE collapses to two states
(RRC_CONNECTED / RRC_IDLE), which this machine expresses as ``T2 = 0``
or ``Pf = 0`` parameterisations (see :mod:`repro.radio.profiles`).

Per the paper's Eq. (5), a slot's energy is *either* transmission
energy (when data units are allocated) *or* tail energy (when idle);
:class:`RRCStateMachine` tracks the idle age between transmissions and
emits the per-slot *incremental* tail energy, whose cumulative sum over
any idle gap matches the closed form of Eq. (4) exactly
(property-tested in ``tests/radio/test_rrc.py``).

:class:`RRCFleet` is the vectorised multi-user variant used by the
simulation engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.errors import ConfigurationError
from repro.kernels import registry as kernel_registry
from repro.radio.tail import max_tail_energy_mj, tail_energy_mj

__all__ = [
    "RRCState",
    "RRCParams",
    "RRCStateMachine",
    "RRCFleet",
    "fleet_occupancy_from_tx",
    "fleet_state_grid_from_tx",
    "tail_split_from_tx",
]


class RRCState(enum.Enum):
    """Radio states, mapped onto 3G names (LTE uses DCH/IDLE only)."""

    DCH = "CELL_DCH"
    FACH = "CELL_FACH"
    IDLE = "CELL_IDLE"


@dataclass(frozen=True)
class RRCParams:
    """RRC power/timer parameters.

    Attributes
    ----------
    pd_mw, pf_mw:
        Instantaneous power in the high (DCH / RRC_CONNECTED) and
        medium (FACH) states, mW.
    t1_s, t2_s:
        Demotion timers: high -> medium after ``t1_s`` idle seconds,
        medium -> idle after a further ``t2_s``.
    """

    pd_mw: float = constants.POWER_DCH_MW
    pf_mw: float = constants.POWER_FACH_MW
    t1_s: float = constants.TIMER_T1_S
    t2_s: float = constants.TIMER_T2_S

    def __post_init__(self) -> None:
        if self.pd_mw < 0 or self.pf_mw < 0:
            raise ConfigurationError("state powers must be non-negative")
        if self.t1_s < 0 or self.t2_s < 0:
            raise ConfigurationError("timers must be non-negative")

    @property
    def max_tail_mj(self) -> float:
        """Full cost of one complete tail, ``Pd*T1 + Pf*T2``."""
        return max_tail_energy_mj(self.pd_mw, self.pf_mw, self.t1_s, self.t2_s)

    def tail_energy_mj(self, gap_s):
        """Closed-form Eq. (4) with these parameters."""
        return tail_energy_mj(gap_s, self.pd_mw, self.pf_mw, self.t1_s, self.t2_s)


class RRCStateMachine:
    """Single-device RRC machine with incremental tail-energy accounting.

    Usage: call :meth:`step` once per slot with whether the device
    received data during that slot; the return value is the tail energy
    accrued *during that slot* (zero for transmitting slots — their
    energy is the separately-computed transmission energy, Eq. 5).

    A freshly-created machine is IDLE with no pending tail.
    """

    def __init__(self, params: RRCParams | None = None):
        self.params = params if params is not None else RRCParams()
        self.idle_age_s: float = self.params.t1_s + self.params.t2_s
        self._ever_transmitted = False

    @property
    def state(self) -> RRCState:
        """Current radio state derived from the idle age."""
        if self.idle_age_s <= 0.0:
            return RRCState.DCH
        if not self._ever_transmitted:
            return RRCState.IDLE
        if self.idle_age_s < self.params.t1_s:
            return RRCState.DCH
        if self.idle_age_s < self.params.t1_s + self.params.t2_s:
            return RRCState.FACH
        return RRCState.IDLE

    def step(self, transmitting: bool, dt_s: float) -> float:
        """Advance one slot; return the slot's tail energy in mJ."""
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        if transmitting:
            self.idle_age_s = 0.0
            self._ever_transmitted = True
            return 0.0
        if not self._ever_transmitted:
            # Never promoted: no tail to pay.
            return 0.0
        before = self.params.tail_energy_mj(self.idle_age_s)
        self.idle_age_s += dt_s
        after = self.params.tail_energy_mj(self.idle_age_s)
        return float(after - before)

    def expected_idle_cost_mj(self, dt_s: float) -> float:
        """Tail energy this device *would* pay if idle for the next slot.

        Used by energy-aware schedulers (EMA) to price the
        ``phi_i(n) = 0`` branch of Eq. (5) without mutating state.
        """
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        if not self._ever_transmitted:
            return 0.0
        return float(
            self.params.tail_energy_mj(self.idle_age_s + dt_s)
            - self.params.tail_energy_mj(self.idle_age_s)
        )


class RRCFleet:
    """Vectorised RRC machines for ``n_users`` devices.

    Semantically identical to ``n_users`` independent
    :class:`RRCStateMachine` instances (property-tested), but steps the
    whole fleet with a handful of NumPy operations per slot.
    """

    def __init__(self, n_users: int, params: RRCParams | None = None):
        if n_users <= 0:
            raise ConfigurationError("n_users must be positive")
        self.n_users = int(n_users)
        self.params = params if params is not None else RRCParams()
        full = self.params.t1_s + self.params.t2_s
        self.idle_age_s = np.full(self.n_users, full, dtype=float)
        self.ever_transmitted = np.zeros(self.n_users, dtype=bool)
        # Double buffers for the slot kernel: it reads the current
        # bindings and writes the alternates; bindings swap on return.
        n = self.n_users
        self._age_alt = np.empty(n, dtype=float)
        self._ever_alt = np.empty(n, dtype=bool)
        self._tail = np.empty(n, dtype=float)
        self._fscratch = np.empty(2 * n, dtype=float)
        self._bscratch = np.empty(n, dtype=bool)
        self._step_kernel = None
        self._idle_kernel = None

    def grow(self, new_n_users: int) -> None:
        """Resize to ``new_n_users`` devices, preserving existing state.

        Existing devices keep their idle age and promotion flag
        bit-for-bit; new devices come up IDLE with no pending tail —
        exactly like a freshly-created machine.
        """
        old = self.n_users
        if new_n_users <= old:
            raise ConfigurationError("grow requires new_n_users > current n_users")
        full = self.params.t1_s + self.params.t2_s
        age = np.full(new_n_users, full, dtype=float)
        age[:old] = self.idle_age_s
        ever = np.zeros(new_n_users, dtype=bool)
        ever[:old] = self.ever_transmitted
        self.idle_age_s = age
        self.ever_transmitted = ever
        self._age_alt = np.empty(new_n_users, dtype=float)
        self._ever_alt = np.empty(new_n_users, dtype=bool)
        self._tail = np.empty(new_n_users, dtype=float)
        self._fscratch = np.empty(2 * new_n_users, dtype=float)
        self._bscratch = np.empty(new_n_users, dtype=bool)
        self.n_users = int(new_n_users)

    def reset_rows(self, rows) -> None:
        """Return devices to the fresh IDLE state (session departed).

        Clearing ``ever_transmitted`` ends any pending tail: a vacated
        row accrues no further tail energy until its next occupant
        transmits.
        """
        full = self.params.t1_s + self.params.t2_s
        self.idle_age_s[rows] = full
        self.ever_transmitted[rows] = False

    def step(
        self,
        transmitting: np.ndarray,
        dt_s: float,
        instrumentation=None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Advance all devices one slot.

        Parameters
        ----------
        transmitting:
            Boolean mask, shape ``(n_users,)``.
        dt_s:
            Slot length in seconds.
        instrumentation:
            Optional :class:`~repro.obs.instrument.Instrumentation`;
            when given, the per-state occupancy (user-slots in
            DCH/FACH/IDLE after this step) and the slot's aggregate
            tail accrual are added to its metrics registry.

        Returns
        -------
        Tail energy accrued this slot per device, mJ (zero where
        transmitting) — a fresh array, or ``out`` filled in place.
        """
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        tx = np.asarray(transmitting, dtype=bool)
        if tx.shape != (self.n_users,):
            raise ConfigurationError(
                f"transmitting mask must have shape ({self.n_users},), got {tx.shape}"
            )
        if self._step_kernel is None:
            self._step_kernel = kernel_registry.resolve("rrc_step")
        tail = out if out is not None else self._tail
        p = self.params
        self._step_kernel(
            dt_s,
            p.pd_mw,
            p.pf_mw,
            p.t1_s,
            p.t2_s,
            tx,
            self.idle_age_s,
            self.ever_transmitted,
            self._age_alt,
            self._ever_alt,
            tail,
            self._fscratch,
            self._bscratch,
        )
        self.idle_age_s, self._age_alt = self._age_alt, self.idle_age_s
        self.ever_transmitted, self._ever_alt = self._ever_alt, self.ever_transmitted
        if instrumentation is not None:
            metrics = instrumentation.metrics
            counts = self.state_counts()
            metrics.counter("rrc.occupancy.dch").inc(counts["dch"])
            metrics.counter("rrc.occupancy.fach").inc(counts["fach"])
            metrics.counter("rrc.occupancy.idle").inc(counts["idle"])
            metrics.counter("rrc.tail_mj").inc(float(tail.sum()))
        if out is not None:
            return out
        return tail.copy()

    def state_counts(self) -> dict[str, int]:
        """Vectorised per-state device counts ``{"dch", "fach", "idle"}``.

        Matches :meth:`states` element-for-element (tested) but runs in
        a handful of NumPy ops — cheap enough to call every slot from
        the instrumented engine.
        """
        t1, t2 = self.params.t1_s, self.params.t2_s
        age = self.idle_age_s
        dch = (age <= 0.0) | (self.ever_transmitted & (age < t1))
        fach = ~dch & self.ever_transmitted & (age < t1 + t2)
        n_dch = int(dch.sum())
        n_fach = int(fach.sum())
        return {"dch": n_dch, "fach": n_fach, "idle": self.n_users - n_dch - n_fach}

    def expected_idle_cost_mj(
        self, dt_s: float, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Vectorised :meth:`RRCStateMachine.expected_idle_cost_mj`."""
        if dt_s <= 0:
            raise ConfigurationError("dt_s must be positive")
        if self._idle_kernel is None:
            self._idle_kernel = kernel_registry.resolve("rrc_idle_cost")
        cost = out if out is not None else self._tail
        p = self.params
        self._idle_kernel(
            dt_s,
            p.pd_mw,
            p.pf_mw,
            p.t1_s,
            p.t2_s,
            self.idle_age_s,
            self.ever_transmitted,
            cost,
            self._fscratch,
            self._bscratch,
        )
        if out is not None:
            return out
        return cost.copy()

    def occupancy_from_tx(self, tx: np.ndarray, dt_s: float) -> dict[str, int]:
        """Batch :meth:`state_counts` totals for a whole run, see
        :func:`fleet_occupancy_from_tx`."""
        return fleet_occupancy_from_tx(tx, dt_s, self.params)

    def states(self) -> list[RRCState]:
        """Current per-device states (for inspection/plotting)."""
        out: list[RRCState] = []
        t1, t2 = self.params.t1_s, self.params.t2_s
        for age, ever in zip(self.idle_age_s, self.ever_transmitted):
            if age <= 0.0:
                out.append(RRCState.DCH)
            elif not ever:
                out.append(RRCState.IDLE)
            elif age < t1:
                out.append(RRCState.DCH)
            elif age < t1 + t2:
                out.append(RRCState.FACH)
            else:
                out.append(RRCState.IDLE)
        return out


def fleet_occupancy_from_tx(
    tx: np.ndarray, dt_s: float, params: RRCParams | None = None
) -> dict[str, int]:
    """Total user-slots spent in each RRC state over a whole run.

    ``tx`` is the ``(n_slots, n_users)`` boolean transmission history of
    a *freshly created* :class:`RRCFleet` stepped once per row.  The
    returned ``{"dch", "fach", "idle"}`` totals equal the sum of
    :meth:`RRCFleet.state_counts` taken after every step (tested) — but
    computed in one vectorised pass, which is how the instrumented
    engine accounts occupancy without paying per-slot numpy dispatch in
    the hot loop.
    """
    if dt_s <= 0:
        raise ConfigurationError("dt_s must be positive")
    params = params if params is not None else RRCParams()
    tx = np.asarray(tx, dtype=bool)
    if tx.ndim != 2:
        raise ConfigurationError("tx history must be 2-D (n_slots, n_users)")
    if tx.size == 0:
        return {"dch": 0, "fach": 0, "idle": 0}
    n_slots = tx.shape[0]
    slots = np.arange(n_slots)[:, None]
    # Slot index of each device's most recent transmission (-1: never).
    last = np.maximum.accumulate(np.where(tx, slots, -1), axis=0)
    ever = last >= 0
    age_s = (slots - last) * dt_s
    dch = ever & ((age_s <= 0.0) | (age_s < params.t1_s))
    fach = ever & ~dch & (age_s < params.t1_s + params.t2_s)
    n_dch = int(np.count_nonzero(dch))
    n_fach = int(np.count_nonzero(fach))
    return {"dch": n_dch, "fach": n_fach, "idle": int(tx.size) - n_dch - n_fach}


def fleet_state_grid_from_tx(
    tx: np.ndarray, dt_s: float, params: RRCParams | None = None
) -> np.ndarray:
    """Per-(slot, user) RRC state codes reconstructed from a tx history.

    ``tx`` is the ``(n_slots, n_users)`` boolean transmission history of
    a freshly-created :class:`RRCFleet` stepped once per row.  Returns
    an ``int8`` grid with ``0 = DCH``, ``1 = FACH``, ``2 = IDLE`` —
    the state *after* each slot's step, matching
    :meth:`RRCFleet.state_counts` taken after every step.  Summing the
    grid's state counts reproduces :func:`fleet_occupancy_from_tx`
    (tested), but the grid keeps the per-user residency that trace
    analysis and run reports need.
    """
    if dt_s <= 0:
        raise ConfigurationError("dt_s must be positive")
    params = params if params is not None else RRCParams()
    tx = np.asarray(tx, dtype=bool)
    if tx.ndim != 2:
        raise ConfigurationError("tx history must be 2-D (n_slots, n_users)")
    if tx.size == 0:
        return np.zeros(tx.shape, dtype=np.int8)
    n_slots = tx.shape[0]
    slots = np.arange(n_slots)[:, None]
    last = np.maximum.accumulate(np.where(tx, slots, -1), axis=0)
    ever = last >= 0
    age_s = (slots - last) * dt_s
    dch = ever & ((age_s <= 0.0) | (age_s < params.t1_s))
    fach = ever & ~dch & (age_s < params.t1_s + params.t2_s)
    grid = np.full(tx.shape, 2, dtype=np.int8)
    grid[fach] = 1
    grid[dch] = 0
    return grid


def tail_split_from_tx(
    tx: np.ndarray, dt_s: float, params: RRCParams | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Split per-slot tail energy into its DCH and FACH components.

    Returns ``(dch_mj, fach_mj)`` grids of shape ``(n_slots, n_users)``
    whose sum equals the engine's recorded incremental tail energy
    exactly (tested): a non-transmitting slot at idle age ``a`` accrues
    ``Pd * |[a, a+dt] ∩ [0, T1]| + Pf * |[a, a+dt] ∩ [T1, T1+T2]|``,
    which is the increment of the Eq. (4) closed form.  Transmitting
    slots and never-promoted devices accrue nothing in either bucket.
    """
    if dt_s <= 0:
        raise ConfigurationError("dt_s must be positive")
    params = params if params is not None else RRCParams()
    tx = np.asarray(tx, dtype=bool)
    if tx.ndim != 2:
        raise ConfigurationError("tx history must be 2-D (n_slots, n_users)")
    zeros = np.zeros(tx.shape, dtype=float)
    if tx.size == 0:
        return zeros, zeros.copy()
    n_slots = tx.shape[0]
    slots = np.arange(n_slots)[:, None]
    last = np.maximum.accumulate(np.where(tx, slots, -1), axis=0)
    accruing = ~tx & (last >= 0)
    # Idle age spanned during slot s: [a0, a1] with a1 = (s - last) * dt
    # (the fleet resets the age to 0 on a transmitting slot, so the
    # first idle slot after a transmission spans [0, dt]).
    a1 = (slots - last) * dt_s
    a0 = a1 - dt_s
    t1, t2 = params.t1_s, params.t2_s
    dch = params.pd_mw * (np.minimum(a1, t1) - np.minimum(a0, t1))
    fach = params.pf_mw * (np.clip(a1 - t1, 0.0, t2) - np.clip(a0 - t1, 0.0, t2))
    return np.where(accruing, dch, 0.0), np.where(accruing, fach, 0.0)
