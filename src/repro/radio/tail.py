"""Closed-form tail energy, paper Eq. (4).

After a transmission the radio lingers in high-power states until the
RRC inactivity timers expire.  For an idle gap of ``t`` seconds the
cumulative *tail energy* is

    ``E_tail(t) = Pd*t``                          for ``0 <= t < T1``
    ``E_tail(t) = Pd*T1 + Pf*(t - T1)``           for ``T1 <= t < T1+T2``
    ``E_tail(t) = Pd*T1 + Pf*T2``                 for ``t >= T1+T2``

These helpers are the analytic ground truth against which the stateful
:class:`repro.radio.rrc.RRCStateMachine` is property-tested.
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["tail_energy_mj", "tail_energy_rate_mw", "max_tail_energy_mj"]


def _validate(pd_mw: float, pf_mw: float, t1_s: float, t2_s: float) -> None:
    if pd_mw < 0 or pf_mw < 0:
        raise ConfigurationError("state powers must be non-negative")
    if t1_s < 0 or t2_s < 0:
        raise ConfigurationError("timers must be non-negative")


def tail_energy_mj(
    t_s,
    pd_mw: float = constants.POWER_DCH_MW,
    pf_mw: float = constants.POWER_FACH_MW,
    t1_s: float = constants.TIMER_T1_S,
    t2_s: float = constants.TIMER_T2_S,
):
    """Cumulative tail energy (mJ) for idle gap(s) ``t_s`` seconds.

    Vectorised: ``t_s`` may be a scalar or array.  Negative gaps raise.
    """
    _validate(pd_mw, pf_mw, t1_s, t2_s)
    t = np.asarray(t_s, dtype=float)
    if np.any(t < 0):
        raise ConfigurationError("idle gap must be non-negative")
    dch_part = pd_mw * np.minimum(t, t1_s)
    fach_part = pf_mw * np.clip(t - t1_s, 0.0, t2_s)
    out = dch_part + fach_part
    return out if out.ndim else float(out)


def tail_energy_rate_mw(
    t_s,
    pd_mw: float = constants.POWER_DCH_MW,
    pf_mw: float = constants.POWER_FACH_MW,
    t1_s: float = constants.TIMER_T1_S,
    t2_s: float = constants.TIMER_T2_S,
):
    """Instantaneous tail power (mW) at idle age ``t_s``.

    ``Pd`` while the T1 timer runs, ``Pf`` while T2 runs, 0 once idle.
    (Right-continuous: the rate at exactly ``t = T1`` is ``Pf``.)
    """
    _validate(pd_mw, pf_mw, t1_s, t2_s)
    t = np.asarray(t_s, dtype=float)
    if np.any(t < 0):
        raise ConfigurationError("idle age must be non-negative")
    out = np.where(t < t1_s, pd_mw, np.where(t < t1_s + t2_s, pf_mw, 0.0))
    return out if out.ndim else float(out)


def max_tail_energy_mj(
    pd_mw: float = constants.POWER_DCH_MW,
    pf_mw: float = constants.POWER_FACH_MW,
    t1_s: float = constants.TIMER_T1_S,
    t2_s: float = constants.TIMER_T2_S,
) -> float:
    """The saturation value ``Pd*T1 + Pf*T2`` — the full cost of one tail."""
    _validate(pd_mw, pf_mw, t1_s, t2_s)
    return pd_mw * t1_s + pf_mw * t2_s
