"""Paper-wide constants and unit conventions.

Unit conventions used consistently across the library
-----------------------------------------------------

==============  ===========================================
Quantity        Unit
==============  ===========================================
time            seconds (``s``)
data            kilobytes (``KB``; the paper's fits use KB)
rate            kilobytes per second (``KB/s``)
energy          millijoules (``mJ``)
power           milliwatts (``mW`` = ``mJ/s``)
signal          dBm (negative values, e.g. ``-80.0``)
==============  ===========================================

The numeric values below are the paper's evaluation defaults
(Section VI) and the fitted model constants of Eq. (24), which
originate from the EnVi measurements [28] and the PerES 3G RRC
parameters [29].
"""

from __future__ import annotations

# --- Slotting (paper Section VI) -------------------------------------
#: Default slot length tau, seconds.
DEFAULT_TAU_S: float = 1.0
#: Default number of scheduling slots Gamma in the paper's runs.
DEFAULT_N_SLOTS: int = 10_000

# --- Throughput fit v(sig) = A * sig + B, KB/s  (Eq. 24) --------------
THROUGHPUT_SLOPE_KBPS_PER_DBM: float = 65.8
THROUGHPUT_INTERCEPT_KBPS: float = 7567.0

# --- Power fit P(sig) = C0 + C1 / v(sig), mJ/KB  (Eq. 24) -------------
POWER_OFFSET_MJ_PER_KB: float = -0.167
POWER_SCALE_MW: float = 1560.0

# --- 3G RRC parameters (PerES [29], paper Section VI) -----------------
#: CELL_DCH instantaneous power, mW.
POWER_DCH_MW: float = 732.83
#: CELL_FACH instantaneous power, mW.
POWER_FACH_MW: float = 388.88
#: DCH -> FACH demotion timer T1, seconds.
TIMER_T1_S: float = 3.29
#: FACH -> IDLE demotion timer T2, seconds.
TIMER_T2_S: float = 4.02

# --- Signal trace (paper Section VI) ----------------------------------
SIGNAL_MAX_DBM: float = -50.0
SIGNAL_MIN_DBM: float = -110.0
#: White Gaussian noise intensity added to the sinusoidal trace, dBm.
SIGNAL_NOISE_STD_DBM: float = 30.0

# --- Workload (paper Section VI) --------------------------------------
#: Video length range, KB (250 MB .. 500 MB; 1 MB = 1024 KB).
VIDEO_SIZE_MIN_KB: float = 250.0 * 1024.0
VIDEO_SIZE_MAX_KB: float = 500.0 * 1024.0
#: Required data rate range, KB/s.
DATA_RATE_MIN_KBPS: float = 300.0
DATA_RATE_MAX_KBPS: float = 600.0
#: Base-station serving capacity S, KB/s (20 MB/s).
BS_CAPACITY_KBPS: float = 20.0 * 1024.0
#: Default evaluation user count.
DEFAULT_N_USERS: int = 40

# --- Discretisation ----------------------------------------------------
#: Default physical-layer frame (data unit) size delta, KB.  The paper
#: leaves delta implicit; 40 KB yields floor(tau*S/delta) = 512 units
#: per slot at the default capacity, which keeps the EMA dynamic
#: program exact yet tractable (see DESIGN.md, ablation bench).
DEFAULT_DELTA_KB: float = 40.0

#: Signal strength below which the linear throughput fit reaches zero;
#: v(sig) = 0 at sig = -B/A ~= -115.0 dBm.
SIGNAL_CUTOFF_DBM: float = -THROUGHPUT_INTERCEPT_KBPS / THROUGHPUT_SLOPE_KBPS_PER_DBM
