"""Deterministic, seeded fault injection across the radio/net/executor
layers.

The paper's Section VI evaluation assumes an always-healthy cell:
continuous RSSI traces, constant BS capacity, every slot delivered.
Real cellular gateways see deep fades, capacity outages, and stalled
flows — and related schedulers (Shuman et al.'s underflow-constrained
transmission, Abou-zeid et al.'s predictive video transmission) are
designed explicitly around such outage periods.  This module provides
the chaos layer that turns the simulator into a testbed for those
degraded-network scenarios:

* :class:`SignalBlackout` — a deep-fade window forcing selected users'
  RSSI to a fixed level (default: the trace floor, where the linear
  throughput fit yields zero link units);
* :class:`CapacityFault` — a BS capacity outage (``factor=0``) or
  degradation (``0 < factor < 1``) window, applied through
  :class:`repro.net.basestation.FaultyCapacity`;
* :class:`FlowStall` — a delivery-path stall: the gateway's Data
  Transmitter ships nothing to the affected users for the window
  (flow control, not loss — queued bytes stay buffered);
* :class:`WorkerFault` — an executor-level fault (worker crash, task
  exception, or delay) used to exercise :class:`repro.sim.executor.
  RunExecutor`'s retry/timeout/serial-fallback machinery;
* :class:`FaultPlan` — the composable, picklable bundle of the above
  that rides :class:`repro.sim.config.SimConfig` (``cfg.faults``) or is
  installed ambiently with :func:`use_fault_plan`
  (``repro-experiments --faults``).

Determinism contract
--------------------
``FaultPlan.random`` draws its windows from an **own** RNG stream
(``numpy.random.default_rng(seed)``), never from the workload RNG, and
the engine applies signal faults to a *copy* of the generated trace —
so ``faults=None`` stays bit-identical to the seed behaviour, and a
given plan injects the same windows on every replay.  Injection itself
is deterministic: the same plan over the same workload produces
byte-identical result grids run over run.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro import constants
from repro.errors import ConfigurationError

__all__ = [
    "SignalBlackout",
    "CapacityFault",
    "FlowStall",
    "WorkerFault",
    "FaultPlan",
    "use_fault_plan",
    "current_fault_plan",
]

#: Kinds a :class:`WorkerFault` can inject in a pool worker.
WORKER_FAULT_KINDS = ("crash", "raise", "delay")


def _window_fields(start_slot: int, n_slots: int) -> None:
    if int(start_slot) < 0:
        raise ConfigurationError("fault start_slot must be >= 0")
    if int(n_slots) <= 0:
        raise ConfigurationError("fault n_slots must be positive")


@dataclass(frozen=True)
class SignalBlackout:
    """A deep-fade window: affected users' RSSI pinned to ``level_dbm``.

    ``users=None`` blacks out the whole cell.  The default level is the
    paper's trace floor (-110 dBm), where the EnVi throughput fit
    yields zero link units — a true radio outage under constraint (1).
    """

    start_slot: int
    n_slots: int
    users: tuple[int, ...] | None = None
    level_dbm: float = constants.SIGNAL_MIN_DBM

    def __post_init__(self) -> None:
        _window_fields(self.start_slot, self.n_slots)
        if self.users is not None:
            object.__setattr__(self, "users", tuple(int(u) for u in self.users))
            if any(u < 0 for u in self.users):
                raise ConfigurationError("blackout users must be >= 0")


@dataclass(frozen=True)
class CapacityFault:
    """A BS capacity window: ``factor=0`` is a full outage, ``0 <
    factor < 1`` a degradation.  Overlapping windows compose by taking
    the minimum factor."""

    start_slot: int
    n_slots: int
    factor: float = 0.0

    def __post_init__(self) -> None:
        _window_fields(self.start_slot, self.n_slots)
        if not 0.0 <= float(self.factor) < 1.0:
            raise ConfigurationError("capacity fault factor must be in [0, 1)")


@dataclass(frozen=True)
class FlowStall:
    """A per-flow delivery stall: the gateway transmits nothing to the
    listed users for the window (their queued bytes stay buffered)."""

    start_slot: int
    n_slots: int
    users: tuple[int, ...]

    def __post_init__(self) -> None:
        _window_fields(self.start_slot, self.n_slots)
        object.__setattr__(self, "users", tuple(int(u) for u in self.users))
        if not self.users:
            raise ConfigurationError("flow stall needs at least one user")
        if any(u < 0 for u in self.users):
            raise ConfigurationError("stall users must be >= 0")


@dataclass(frozen=True)
class WorkerFault:
    """An executor-level fault, triggered in the pool worker that picks
    up task ``task_index``.

    kind:
        ``"crash"`` hard-kills the worker process (``os._exit``) —
        breaks the pool, exercising partial-result recovery and the
        serial fallback; ``"raise"`` raises a ``RuntimeError`` from the
        task — exercises the bounded in-pool retry; ``"delay"`` sleeps
        ``delay_s`` before running — exercises the per-task timeout.
    times:
        How many attempts of the task trigger the fault.  The executor
        threads a parent-tracked attempt number through every submit,
        so the fault fires while ``attempt < times`` and disarms after
        that *regardless of which worker process picks the retry up* —
        ``times=1`` means "first attempt fails, in-pool retry
        succeeds", deterministically.
    """

    kind: str
    task_index: int
    delay_s: float = 0.0
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ConfigurationError(
                f"worker fault kind must be one of {WORKER_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if int(self.task_index) < 0:
            raise ConfigurationError("worker fault task_index must be >= 0")
        if float(self.delay_s) < 0:
            raise ConfigurationError("worker fault delay_s must be >= 0")
        if int(self.times) <= 0:
            raise ConfigurationError("worker fault times must be positive")


@dataclass(frozen=True)
class FaultPlan:
    """Composable fault windows for one run (picklable, hashable into
    :func:`repro.obs.provenance.config_hash` like any config field)."""

    signal: tuple[SignalBlackout, ...] = ()
    capacity: tuple[CapacityFault, ...] = ()
    stalls: tuple[FlowStall, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "signal", tuple(self.signal))
        object.__setattr__(self, "capacity", tuple(self.capacity))
        object.__setattr__(self, "stalls", tuple(self.stalls))

    # -- construction --------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        n_slots: int,
        n_users: int,
        n_signal: int = 1,
        n_capacity: int = 1,
        n_stalls: int = 1,
        max_window_slots: int | None = None,
    ) -> "FaultPlan":
        """Draw a plan from an own RNG stream (never the workload's)."""
        if n_slots <= 0 or n_users <= 0:
            raise ConfigurationError("n_slots and n_users must be positive")
        rng = np.random.default_rng(seed)
        max_len = max_window_slots if max_window_slots is not None else max(
            n_slots // 10, 1
        )

        def window() -> tuple[int, int]:
            length = int(rng.integers(1, max_len + 1))
            start = int(rng.integers(0, max(n_slots - length, 0) + 1))
            return start, length

        signal = []
        for _ in range(n_signal):
            start, length = window()
            k = int(rng.integers(1, n_users + 1))
            users = tuple(
                int(u) for u in np.sort(rng.choice(n_users, size=k, replace=False))
            )
            signal.append(SignalBlackout(start, length, users=users))
        capacity = []
        for _ in range(n_capacity):
            start, length = window()
            factor = float(rng.choice([0.0, 0.25, 0.5]))
            capacity.append(CapacityFault(start, length, factor=factor))
        stalls = []
        for _ in range(n_stalls):
            start, length = window()
            k = int(rng.integers(1, n_users + 1))
            users = tuple(
                int(u) for u in np.sort(rng.choice(n_users, size=k, replace=False))
            )
            stalls.append(FlowStall(start, length, users=users))
        return cls(signal=tuple(signal), capacity=tuple(capacity), stalls=tuple(stalls))

    def spec(self) -> dict[str, Any]:
        """JSON-able round-trippable representation (trace payloads,
        ``--faults`` files, worker shipping)."""
        return {
            "signal": [
                {
                    "start_slot": w.start_slot,
                    "n_slots": w.n_slots,
                    "users": list(w.users) if w.users is not None else None,
                    "level_dbm": w.level_dbm,
                }
                for w in self.signal
            ],
            "capacity": [
                {"start_slot": w.start_slot, "n_slots": w.n_slots, "factor": w.factor}
                for w in self.capacity
            ],
            "stalls": [
                {
                    "start_slot": w.start_slot,
                    "n_slots": w.n_slots,
                    "users": list(w.users),
                }
                for w in self.stalls
            ],
        }

    @classmethod
    def from_spec(cls, spec: dict[str, Any]) -> "FaultPlan":
        unknown = set(spec) - {"signal", "capacity", "stalls"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan spec keys: {sorted(unknown)}"
            )
        signal = tuple(
            SignalBlackout(
                start_slot=int(w["start_slot"]),
                n_slots=int(w["n_slots"]),
                users=(
                    tuple(int(u) for u in w["users"])
                    if w.get("users") is not None
                    else None
                ),
                level_dbm=float(w.get("level_dbm", constants.SIGNAL_MIN_DBM)),
            )
            for w in spec.get("signal", ())
        )
        capacity = tuple(
            CapacityFault(
                start_slot=int(w["start_slot"]),
                n_slots=int(w["n_slots"]),
                factor=float(w.get("factor", 0.0)),
            )
            for w in spec.get("capacity", ())
        )
        stalls = tuple(
            FlowStall(
                start_slot=int(w["start_slot"]),
                n_slots=int(w["n_slots"]),
                users=tuple(int(u) for u in w["users"]),
            )
            for w in spec.get("stalls", ())
        )
        return cls(signal=signal, capacity=capacity, stalls=stalls)

    # -- introspection -------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not (self.signal or self.capacity or self.stalls)

    def validate_for(self, n_users: int) -> None:
        """Raise if any window names a user index outside the run."""
        for w in self.signal:
            if w.users is not None and any(u >= n_users for u in w.users):
                raise ConfigurationError(
                    f"signal blackout names user >= n_users ({n_users})"
                )
        for w in self.stalls:
            if any(u >= n_users for u in w.users):
                raise ConfigurationError(
                    f"flow stall names user >= n_users ({n_users})"
                )

    # -- injection helpers (engine-facing) -----------------------------

    def apply_signal(self, signal_dbm: np.ndarray) -> np.ndarray:
        """The trace with blackout windows applied (copy; input untouched).

        Returns the input array itself when the plan carries no signal
        faults, so the no-fault path costs nothing.
        """
        if not self.signal:
            return signal_dbm
        out = np.array(signal_dbm, dtype=float, copy=True)
        n_slots = out.shape[0]
        for w in self.signal:
            lo = min(w.start_slot, n_slots)
            hi = min(w.start_slot + w.n_slots, n_slots)
            if lo >= hi:
                continue
            if w.users is None:
                out[lo:hi, :] = w.level_dbm
            else:
                out[lo:hi, list(w.users)] = w.level_dbm
        return out

    def capacity_factors(self, n_slots: int) -> np.ndarray:
        """Per-slot capacity multipliers (1.0 outside fault windows;
        overlaps take the minimum factor)."""
        factors = np.ones(n_slots, dtype=float)
        for w in self.capacity:
            lo = min(w.start_slot, n_slots)
            hi = min(w.start_slot + w.n_slots, n_slots)
            if lo < hi:
                factors[lo:hi] = np.minimum(factors[lo:hi], w.factor)
        return factors

    def stall_grid(self, n_slots: int, n_users: int) -> np.ndarray | None:
        """``(n_slots, n_users)`` bool grid of stalled deliveries, or
        ``None`` when the plan carries no stalls."""
        if not self.stalls:
            return None
        grid = np.zeros((n_slots, n_users), dtype=bool)
        for w in self.stalls:
            lo = min(w.start_slot, n_slots)
            hi = min(w.start_slot + w.n_slots, n_slots)
            if lo < hi:
                grid[lo:hi, list(w.users)] = True
        return grid

    def _mask(self, windows, n_slots: int) -> np.ndarray:
        mask = np.zeros(n_slots, dtype=bool)
        for w in windows:
            lo = min(w.start_slot, n_slots)
            hi = min(w.start_slot + w.n_slots, n_slots)
            mask[lo:hi] = True
        return mask

    def signal_slot_mask(self, n_slots: int) -> np.ndarray:
        return self._mask(self.signal, n_slots)

    def capacity_slot_mask(self, n_slots: int) -> np.ndarray:
        return self._mask(self.capacity, n_slots)

    def stall_slot_mask(self, n_slots: int) -> np.ndarray:
        return self._mask(self.stalls, n_slots)

    def outage_slot_mask(self, n_slots: int) -> np.ndarray:
        """Slots with *any* fault window active (the ``outage_slots``
        live channel and ``fault.outage_slots`` counter)."""
        return (
            self.signal_slot_mask(n_slots)
            | self.capacity_slot_mask(n_slots)
            | self.stall_slot_mask(n_slots)
        )


# -- ambient plan (``repro-experiments --faults``) ---------------------

_AMBIENT: list[FaultPlan] = []


def current_fault_plan() -> FaultPlan | None:
    """The innermost ambient plan, or ``None`` when none is active."""
    return _AMBIENT[-1] if _AMBIENT else None


@contextmanager
def use_fault_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Make ``plan`` ambient: every simulation whose config carries no
    explicit ``faults`` runs under it for the dynamic extent of the
    block.  The run executor ships the ambient plan's spec to pool
    workers, so ``--jobs N`` injects identically to ``--jobs 1``."""
    _AMBIENT.append(plan)
    try:
        yield plan
    finally:
        _AMBIENT.pop()
