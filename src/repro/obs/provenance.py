"""Run provenance: config hashing and the run manifest.

A :class:`RunManifest` pins down everything needed to reproduce a
traced run — the configuration hash, seed, package version, git
revision, Python/NumPy versions, and wall time — and serialises to
``manifest.json`` next to the trace.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # import would cycle (sim.engine -> obs) at runtime
    from repro.sim.config import SimConfig

__all__ = ["config_hash", "git_revision", "RunManifest", "build_manifest"]


def _canonical(value: Any) -> Any:
    """Deterministic, JSON-friendly view of a config field."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return repr(value)  # keeps inf/nan and full precision stable
    # Model objects (signal models, radio profiles) hash by repr.
    return repr(value)


def config_hash(config: SimConfig) -> str:
    """Stable SHA-256 over the config's canonical field values.

    Two configs hash equal iff every field (including nested dataclass
    fields such as the radio profile) compares equal canonically.
    """
    payload = json.dumps(_canonical(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def git_revision(repo_dir: str | Path | None = None) -> str | None:
    """The current git commit hash, or ``None`` outside a checkout."""
    if repo_dir is None:
        repo_dir = Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_dir),
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


@dataclass
class RunManifest:
    """Reproducibility record of one traced run."""

    #: SHA-256 of the canonical config (see :func:`config_hash`).
    config_hash: str
    seed: int
    n_users: int
    n_slots: int
    package_version: str
    git_rev: str | None
    python_version: str
    numpy_version: str
    platform: str
    #: Unix timestamp at manifest creation.
    created_at: float
    #: Wall-clock duration of the run, seconds (None until recorded).
    wall_time_s: float | None = None
    #: Kernel dispatch backend the run resolved to
    #: (``numpy``/``numba``/``python``; see :mod:`repro.kernels`).
    kernel_backend: str | None = None
    #: Numba version when importable (backends other than numba still
    #: record it — it documents what *could* have run).
    numba_version: str | None = None
    #: Per-kernel JIT compile times, seconds (empty off the numba
    #: backend or before any kernel was compiled).
    kernel_compile_times_s: dict[str, float] = field(default_factory=dict)
    #: SLO rules a live telemetry plane guarded the run with, and what
    #: a firing rule did (``warn``/``abort``) — empty/None when no live
    #: plane with a watchdog was ambient.  Knowing which online
    #: constraints a result was produced under is provenance: an
    #: ``action="abort"`` run that completed *proves* the rules held.
    live_slo_rules: tuple[str, ...] = ()
    live_slo_action: str | None = None
    #: Free-form extras (experiment id, scale, trace event count, ...).
    extra: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path


def build_manifest(config: SimConfig, **extra: Any) -> RunManifest:
    """Assemble a :class:`RunManifest` for ``config``.

    Keyword arguments land in :attr:`RunManifest.extra` verbatim.  The
    kernel-backend fields are captured automatically from the ambient
    :func:`repro.kernels.backend_info`, and the SLO rules of an
    ambient live telemetry plane (if one is installed via
    :func:`~repro.obs.instrument.use_instrumentation`) are recorded the
    same way, so every manifest documents both which compiled path and
    which online constraints produced the run.
    """
    from repro import __version__
    from repro.kernels import backend_info, use_backend
    from repro.obs.instrument import current_instrumentation

    slo_rules: tuple[str, ...] = ()
    slo_action = None
    ambient = current_instrumentation()
    live = ambient.live if ambient is not None else None
    if live is not None and live.watchdog is not None:
        watchdog_spec = live.watchdog.spec()
        slo_rules = tuple(watchdog_spec["rules"])
        slo_action = watchdog_spec["action"]

    if config.kernel_backend is not None:
        # Resolve under the config's backend (handles the numba-missing
        # fallback) rather than trusting the requested name.
        with use_backend(config.kernel_backend):
            kinfo = backend_info()
    else:
        kinfo = backend_info()
    return RunManifest(
        config_hash=config_hash(config),
        seed=config.seed,
        n_users=config.n_users,
        n_slots=config.n_slots,
        package_version=__version__,
        git_rev=git_revision(),
        python_version=sys.version.split()[0],
        numpy_version=np.__version__,
        platform=platform.platform(),
        created_at=time.time(),
        kernel_backend=kinfo["resolved"],
        numba_version=kinfo["numba_version"],
        kernel_compile_times_s=dict(kinfo["compile_times_s"]),
        live_slo_rules=slo_rules,
        live_slo_action=slo_action,
        extra=dict(extra),
    )
