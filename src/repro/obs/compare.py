"""Tolerance-aware comparison of runs and benchmark timings.

Two complementary gates:

* **Run comparison** — diff two runs' ``metrics.json`` snapshots (or
  any flat/nested summary dicts).  Every numeric leaf is compared
  under an absolute + relative tolerance, and each metric carries a
  *direction*: energy/rebuffering/time metrics regress when they go
  **up**, fairness/completion/delivery metrics regress when they go
  **down**, and everything else is held to bit-for-bit determinism
  (any drift beyond tolerance is a regression — the simulator is
  seeded, so "same config, same numbers" is an invariant, not a
  hope).  Timing histograms (``*.seconds``) are excluded by default:
  wall-clock noise would fail the "same run twice" identity gate.

* **Bench regression** — compare a fresh ``BENCH_kernels.json``
  against the committed ``benchmarks/baseline_kernels.json``: any
  kernel whose p50 slowed by more than the threshold (default 25%)
  fails.  Speedups and new kernels never fail; kernels missing from
  the candidate are reported but only fail under ``--strict-missing``.

``repro-compare A B`` exits 1 when any regression is found, 0
otherwise — CI wires this behind ``repro-trace`` for the identity
gate and behind the kernel bench for the performance gate.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigurationError

__all__ = [
    "Tolerance",
    "MetricDelta",
    "ComparisonReport",
    "direction_for",
    "flatten_metrics",
    "compare_metrics",
    "compare_runs",
    "compare_bench",
    "load_metrics",
    "main",
]

#: Substrings marking metrics where *smaller* is better.
LOWER_IS_BETTER = (
    "energy",
    "rebuffer",
    "tail_mj",
    "trans_mj",
    "pe_",
    "pc_",
    "stall",
    "truncated",
    "near_miss",
    ".seconds",
    "wall_time",
)
#: Substrings marking metrics where *larger* is better.
HIGHER_IS_BETTER = (
    "fairness",
    "completion",
    "delivered",
    "throughput",
    "frac_slots_fair",
)


def direction_for(name: str) -> str:
    """``"lower"`` / ``"higher"`` / ``"equal"`` (exact match expected)."""
    lowered = name.lower()
    if any(tag in lowered for tag in LOWER_IS_BETTER):
        return "lower"
    if any(tag in lowered for tag in HIGHER_IS_BETTER):
        return "higher"
    return "equal"


@dataclass(frozen=True)
class Tolerance:
    """A delta is significant when it exceeds *both* gates combined:
    ``|delta| > max(abs_tol, rel_tol * max(|a|, |b|))``."""

    abs_tol: float = 1e-9
    rel_tol: float = 1e-6

    def exceeded(self, baseline: float, candidate: float) -> bool:
        delta = abs(candidate - baseline)
        scale = max(abs(baseline), abs(candidate))
        return delta > max(self.abs_tol, self.rel_tol * scale)


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric and its verdict."""

    name: str
    baseline: float | str | None
    candidate: float | str | None
    direction: str
    #: ``ok`` | ``improved`` | ``regressed`` | ``changed`` | ``added`` | ``removed``
    status: str

    @property
    def is_failure(self) -> bool:
        return self.status in ("regressed", "changed")

    def __str__(self) -> str:
        def fmt(v):
            return f"{v:.6g}" if isinstance(v, float) else repr(v)

        arrow = {"lower": "v better", "higher": "^ better", "equal": "="}[self.direction]
        return (
            f"{self.status:>9}  {self.name}  "
            f"{fmt(self.baseline)} -> {fmt(self.candidate)}  [{arrow}]"
        )


@dataclass
class ComparisonReport:
    """All deltas from one comparison; ``ok`` iff nothing regressed."""

    deltas: list[MetricDelta] = field(default_factory=list)
    #: Context lines (skipped metrics, missing benches under lenient mode).
    notes: list[str] = field(default_factory=list)

    @property
    def failures(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.is_failure]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status == "improved"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self, show_ok: bool = False) -> str:
        shown = [d for d in self.deltas if show_ok or d.status != "ok"]
        lines = [str(d) for d in shown]
        lines.extend(f"     note  {n}" for n in self.notes)
        n_ok = sum(1 for d in self.deltas if d.status == "ok")
        lines.append(
            f"compared {len(self.deltas)} metric(s): "
            f"{n_ok} ok, {len(self.improvements)} improved, "
            f"{len(self.failures)} regressed/changed"
        )
        return "\n".join(lines)


def flatten_metrics(
    obj: Any, prefix: str = "", skip_timings: bool = True
) -> dict[str, float | str]:
    """Flatten a metrics snapshot / summary dict to dotted numeric leaves.

    Lists become indexed entries (``gauges.ema.virtual_queues[3]``);
    booleans and ``None`` are dropped; strings are kept (they compare
    under the ``equal`` direction).  With ``skip_timings``, any branch
    whose dotted name contains ``.seconds`` or ``wall_time`` is
    dropped — wall-clock measurements are not reproducible — and so is
    the ``kernels.*`` namespace (backend name, numba version, compile
    times, fallback counters): it describes the execution environment,
    not the run's results, and legitimately differs between two
    otherwise bit-identical runs on different kernel backends.
    """
    out: dict[str, float | str] = {}

    def walk(node: Any, name: str) -> None:
        if skip_timings and name and (
            ".seconds" in name or "wall_time" in name or "kernels." in name
        ):
            return
        if isinstance(node, Mapping):
            for key in node:
                walk(node[key], f"{name}.{key}" if name else str(key))
        elif isinstance(node, (list, tuple)):
            for i, item in enumerate(node):
                walk(item, f"{name}[{i}]")
        elif isinstance(node, bool) or node is None:
            return
        elif isinstance(node, (int, float)):
            out[name] = float(node)
        elif isinstance(node, str):
            out[name] = node

    walk(obj, prefix)
    return out


def compare_metrics(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    tolerance: Tolerance | None = None,
    skip_timings: bool = True,
) -> ComparisonReport:
    """Direction-aware diff of two (possibly nested) metric dicts."""
    tol = tolerance or Tolerance()
    flat_a = flatten_metrics(baseline, skip_timings=skip_timings)
    flat_b = flatten_metrics(candidate, skip_timings=skip_timings)
    report = ComparisonReport()
    for name in sorted(flat_a.keys() | flat_b.keys()):
        a, b = flat_a.get(name), flat_b.get(name)
        direction = direction_for(name)
        if a is None:
            report.deltas.append(MetricDelta(name, None, b, direction, "added"))
            continue
        if b is None:
            report.deltas.append(MetricDelta(name, a, None, direction, "removed"))
            continue
        if isinstance(a, str) or isinstance(b, str):
            status = "ok" if a == b else "changed"
            report.deltas.append(MetricDelta(name, a, b, "equal", status))
            continue
        if not tol.exceeded(a, b):
            status = "ok"
        elif direction == "lower":
            status = "regressed" if b > a else "improved"
        elif direction == "higher":
            status = "regressed" if b < a else "improved"
        else:
            status = "changed"
        report.deltas.append(MetricDelta(name, a, b, direction, status))
    return report


def load_metrics(target: str | Path) -> dict[str, Any]:
    """Load a metrics/summary JSON; a directory means its ``metrics.json``."""
    path = Path(target)
    if path.is_dir():
        path = path / "metrics.json"
    if not path.exists():
        raise ConfigurationError(f"no metrics file at {path}")
    return json.loads(path.read_text(encoding="utf-8"))


def compare_runs(
    baseline: str | Path,
    candidate: str | Path,
    tolerance: Tolerance | None = None,
) -> ComparisonReport:
    """Compare two run directories (or metrics JSON files) by metrics."""
    return compare_metrics(load_metrics(baseline), load_metrics(candidate), tolerance)


def _bench_p50s(snapshot: Mapping[str, Any]) -> dict[str, float]:
    out = {}
    for name, summary in (snapshot.get("histograms") or {}).items():
        if isinstance(summary, Mapping) and "p50" in summary:
            out[name] = float(summary["p50"])
    return out


def compare_bench(
    baseline: str | Path,
    candidate: str | Path,
    threshold: float = 0.25,
    strict_missing: bool = False,
) -> ComparisonReport:
    """Gate a kernel-bench snapshot against the committed baseline.

    A kernel regresses when ``candidate_p50 > baseline_p50 * (1 +
    threshold)``.  New kernels are reported as ``added``; kernels
    absent from the candidate fail only under ``strict_missing``.
    """
    if threshold <= 0:
        raise ConfigurationError("bench threshold must be positive")
    base = _bench_p50s(load_metrics(baseline))
    cand = _bench_p50s(load_metrics(candidate))
    report = ComparisonReport()
    for name in sorted(base.keys() | cand.keys()):
        a, b = base.get(name), cand.get(name)
        if a is None:
            report.deltas.append(MetricDelta(name, None, b, "lower", "added"))
            continue
        if b is None:
            if strict_missing:
                report.deltas.append(MetricDelta(name, a, None, "lower", "regressed"))
            else:
                report.notes.append(f"{name}: missing from candidate (not run?)")
            continue
        if b > a * (1.0 + threshold):
            status = "regressed"
        elif b < a / (1.0 + threshold):
            status = "improved"
        else:
            status = "ok"
        report.deltas.append(MetricDelta(f"{name}.p50", a, b, "lower", status))
    return report


def main(argv: list[str] | None = None) -> int:
    from repro.obs.cli import add_version_argument

    parser = argparse.ArgumentParser(
        prog="repro-compare",
        description="Diff two runs' metrics (or two kernel-bench snapshots) "
        "under direction-aware tolerances; exit 1 on regression.",
    )
    add_version_argument(parser)
    parser.add_argument("baseline", help="run dir or metrics/bench JSON (reference)")
    parser.add_argument("candidate", help="run dir or metrics/bench JSON (under test)")
    parser.add_argument("--abs-tol", type=float, default=1e-9)
    parser.add_argument("--rel-tol", type=float, default=1e-6)
    parser.add_argument(
        "--bench", action="store_true",
        help="bench-regression mode: compare per-kernel p50 timings",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="bench mode: allowed p50 slowdown fraction (default 0.25)",
    )
    parser.add_argument(
        "--strict-missing", action="store_true",
        help="bench mode: kernels missing from the candidate fail the gate",
    )
    parser.add_argument(
        "--show-ok", action="store_true", help="also print unchanged metrics"
    )
    args = parser.parse_args(argv)

    if args.bench:
        report = compare_bench(
            args.baseline, args.candidate,
            threshold=args.threshold, strict_missing=args.strict_missing,
        )
    else:
        report = compare_runs(
            args.baseline, args.candidate,
            Tolerance(abs_tol=args.abs_tol, rel_tol=args.rel_tol),
        )
    print(report.render(show_ok=args.show_ok))
    if report.ok:
        print("PASS")
        return 0
    print("FAIL")
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
