"""``repro-trace`` — run an experiment with full observability.

Runs either a named experiment from the registry or the built-in
``quickstart`` scenario with a :class:`~repro.obs.instrument.Instrumentation`
bundle attached, then writes three artifacts into the output directory:

* ``trace.jsonl`` — one structured JSON event per line (>= 1 per
  simulated slot, plus calibration/sweep/EMA-queue events);
* ``manifest.json`` — provenance: config hash, seed, package version,
  git revision, wall time, event count;
* ``metrics.json`` — the final counters/gauges/histograms snapshot;
* ``spans.json`` / ``spans.collapsed.txt`` / ``spans.speedscope.json``
  — the hierarchical span tree (run → slot-block → phase → kernel; see
  :mod:`repro.obs.spans`), as raw state, collapsed-stack text, and a
  speedscope profile (``--no-spans`` disables);

and prints the per-phase wall-clock timing table.

This module also hosts :func:`add_version_argument`, the shared
``--version`` helper every ``repro-*`` console script installs.  An existing trace
in the output directory is never silently overwritten — pass
``--force``.  ``--gzip`` writes ``trace.jsonl.gz`` instead (the
analysis tools read both), and ``--report`` additionally renders the
self-contained ``report.html`` (see :mod:`repro.obs.report`).

Examples::

    repro-trace quickstart --report             # small contended cell
    repro-trace fig05 --scale bench --seed 1    # a registry experiment
    repro-trace fig02 --out /tmp/fig02-trace --gzip --force
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from pathlib import Path

from repro.analysis.tables import summary_table
from repro.obs.instrument import Instrumentation, use_instrumentation
from repro.obs.provenance import build_manifest
from repro.obs.spans import SpanRecorder
from repro.obs.tracer import JsonlTraceWriter

__all__ = ["main", "QUICKSTART", "add_version_argument"]

log = logging.getLogger("repro.obs.cli")


def add_version_argument(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Install the standard ``--version`` flag on a ``repro-*`` parser.

    Prints ``<prog> <version>`` sourced from package metadata and
    exits — one helper so every console script reports identically.
    """
    from repro import __version__

    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    return parser

#: The built-in smoke scenario: a small contended cell that finishes in
#: seconds (used by CI to validate the tracing pipeline end to end).
QUICKSTART = "quickstart"


def _quickstart_config():
    from repro.sim.config import SimConfig

    return SimConfig(
        n_users=8,
        n_slots=300,
        capacity_kbps=4 * 1024.0,
        video_size_range_kb=(20_000.0, 40_000.0),
        vbr_segments=30,
        buffer_capacity_s=60.0,
        seed=7,
    )


def _run_quickstart(instr: Instrumentation, seed: int) -> tuple[object, str]:
    from repro.baselines.default import DefaultScheduler
    from repro.core.ema import EMAScheduler
    from repro.core.rtma import RTMAScheduler
    from repro.sim.runner import compare_schedulers

    cfg = _quickstart_config().with_(seed=seed)
    with use_instrumentation(instr):
        results = compare_schedulers(
            cfg,
            {
                "default": DefaultScheduler(),
                "rtma": RTMAScheduler(),
                "ema": EMAScheduler(cfg.n_users, v_param=0.5, tau_s=cfg.tau_s),
            },
        )
    table = summary_table(
        results, title=f"quickstart: {cfg.n_users} users, {cfg.n_slots} slots"
    )
    return cfg, table.render()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Run an experiment with slot-level tracing, metrics, "
        "and phase profiling enabled.",
    )
    parser.add_argument(
        "target",
        help=f"experiment id from the registry (e.g. fig05) or {QUICKSTART!r}",
    )
    parser.add_argument("--scale", default="bench", help="experiment scale")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        default=None,
        help="output directory (default: trace_<target>/)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing trace in the output directory",
    )
    parser.add_argument(
        "--gzip",
        action="store_true",
        help="write trace.jsonl.gz (repro-analyze/-report read both)",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="also render report.html into the output directory",
    )
    parser.add_argument(
        "--no-spans",
        action="store_true",
        help="skip hierarchical span profiling (no spans.* artifacts)",
    )
    add_version_argument(parser)
    args = parser.parse_args(argv)

    out_dir = Path(args.out if args.out is not None else f"trace_{args.target}")
    out_dir.mkdir(parents=True, exist_ok=True)
    existing = [
        p for p in (out_dir / "trace.jsonl", out_dir / "trace.jsonl.gz") if p.exists()
    ]
    if existing and not args.force:
        log.warning("refusing to overwrite %s (run with --force)", existing[0])
        print(
            f"error: {existing[0]} already exists; pass --force to overwrite",
            file=sys.stderr,
        )
        return 2
    for stale in existing:
        log.warning("overwriting existing trace %s (--force)", stale)
        stale.unlink()
    trace_name = "trace.jsonl.gz" if args.gzip else "trace.jsonl"
    tracer = JsonlTraceWriter(out_dir / trace_name)
    spans = None if args.no_spans else SpanRecorder()
    instr = Instrumentation(tracer=tracer, spans=spans)

    started = time.perf_counter()
    if args.target == QUICKSTART:
        config, rendering = _run_quickstart(instr, args.seed)
        manifest_extra = {"target": QUICKSTART}
    else:
        from repro.experiments.common import paper_config
        from repro.experiments.registry import run_experiment

        result = run_experiment(
            args.target, scale=args.scale, seed=args.seed, instrumentation=instr
        )
        rendering = result.render()
        # Experiments derive every inner run from the scale's base
        # config; its hash pins the whole family.
        config = paper_config(args.scale, args.seed)
        manifest_extra = {"target": args.target, "scale": args.scale}
    wall_time = time.perf_counter() - started
    tracer.close()

    manifest = build_manifest(
        config,
        n_trace_events=tracer.n_events,
        **manifest_extra,
    )
    manifest.wall_time_s = wall_time
    manifest_path = manifest.write_json(out_dir / "manifest.json")
    metrics_path = instr.metrics.write_json(out_dir / "metrics.json")
    span_paths = spans.write_artifacts(out_dir) if spans is not None else []
    report_path = None
    if args.report:
        from repro.obs.report import write_report

        report_path = write_report(out_dir, title=f"{args.target} (seed {args.seed})")

    print(rendering)
    print()
    print(instr.profiler.render_table())
    if spans is not None:
        print()
        print(spans.render_table())
    print()
    print(f"trace:    {tracer.path} ({tracer.n_events} events)")
    print(f"manifest: {manifest_path}")
    print(f"metrics:  {metrics_path}")
    for span_path in span_paths:
        print(f"spans:    {span_path}")
    backend_line = f"backend:  {manifest.kernel_backend}"
    if manifest.numba_version is not None:
        backend_line += f" (numba {manifest.numba_version})"
    if manifest.kernel_compile_times_s:
        total_compile = sum(manifest.kernel_compile_times_s.values())
        backend_line += f", jit compile {total_compile:.2f}s"
    print(backend_line)
    if report_path is not None:
        print(f"report:   {report_path}")
    print(f"wall time: {wall_time:.1f}s", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
