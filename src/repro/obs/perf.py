"""Benchmark history ledger with noise-aware regression detection.

``BENCH_kernels.json`` / ``BENCH_scaling.json`` are one-shot snapshots
— each bench session overwrites the last, so the performance
*trajectory* across commits was invisible and the ``--check`` gates
compared against hand-pinned baseline files.  This module gives the
benches longitudinal memory:

* :func:`record_snapshot` appends one :class:`BenchRecord` per bench
  run to ``benchmarks/history.jsonl`` — every per-kernel p50/p95 and
  slots/sec gauge, stamped with the git revision, kernel backend,
  numba version, and a machine fingerprint so entries are only ever
  compared like-for-like;
* :func:`check_against_history` replaces fixed p50 floors with a
  **bootstrap change-point test**: the candidate p50 is judged against
  a confidence interval of the trailing window's median, resampled
  with a seeded RNG, plus a minimum-effect floor so microsecond jitter
  can never fire the gate;
* :func:`trend_html` renders the ledger as a self-contained dashboard
  (per-kernel sparklines, latest verdicts) in the same zero-external-
  assets style as ``repro-report``.

A gate that cannot run — no ledger, or no comparable entries for this
backend + machine — must not pass *silently*: :func:`warn_gate_skipped`
logs one WARN line and ticks a ``perf.gate_skipped`` counter on the
ambient instrumentation bundle (when one is active) so the skip is
visible in metrics exports.  The ``repro-bench`` CLI
(:mod:`repro.obs.bench_cli`) fronts all of this.
"""

from __future__ import annotations

import hashlib
import html
import json
import logging
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "machine_fingerprint",
    "BenchRecord",
    "bench_entries",
    "record_snapshot",
    "load_ledger",
    "ChangePoint",
    "bootstrap_median_ci",
    "classify_change",
    "check_against_history",
    "HistoryCheck",
    "trend_html",
    "warn_gate_skipped",
    "DEFAULT_LEDGER",
]

log = logging.getLogger("repro.obs.perf")

#: Repo-relative default ledger location (resolved against cwd by the
#: CLI; tests and CI pass explicit paths).
DEFAULT_LEDGER = Path("benchmarks") / "history.jsonl"

#: Trailing-window and bootstrap defaults for the change-point test.
DEFAULT_WINDOW = 8
DEFAULT_BOOTSTRAP = 2000
#: Minimum relative effect a verdict needs — deltas inside ±5% of the
#: baseline median never regress/improve regardless of CI tightness.
DEFAULT_MIN_EFFECT = 0.05

#: Backend tokens recognised inside "[...]" bench-name suffixes when a
#: snapshot carries no explicit ``*.backend`` info entry.
KERNEL_BACKENDS = frozenset({"numpy", "numba", "python"})


def machine_fingerprint() -> dict[str, Any]:
    """A stable description of the benching host.

    The ``id`` is a short hash over the fields that move timings
    (machine/processor/python/numpy) — ledger comparisons only ever
    pool entries with equal ids, so laptop numbers never gate a CI
    runner or vice versa.
    """
    info = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count() or 1,
    }
    digest = hashlib.sha256(
        json.dumps(info, sort_keys=True).encode("utf-8")
    ).hexdigest()
    info["id"] = digest[:12]
    return info


def bench_entries(snapshot: Mapping[str, Any]) -> dict[str, dict[str, float]]:
    """Flatten a ``BENCH_*.json`` metrics snapshot to ledger entries.

    Timing histograms keep their p50/p95/mean/count; numeric gauges
    (``scaling.*.slots_per_sec``, phase totals) become single-value
    entries under ``{"value": ...}``.
    """
    out: dict[str, dict[str, float]] = {}
    for name, summary in (snapshot.get("histograms") or {}).items():
        if not isinstance(summary, Mapping) or not summary.get("count"):
            continue
        out[name] = {
            key: float(summary[key])
            for key in ("count", "mean", "p50", "p95", "min", "max")
            if key in summary
        }
    for name, value in (snapshot.get("gauges") or {}).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[name] = {"value": float(value)}
    return out


@dataclass
class BenchRecord:
    """One bench session appended to the history ledger."""

    recorded_at: float
    source: str
    git_rev: str | None
    backend: str
    numba_version: str | None
    machine: dict[str, Any]
    entries: dict[str, dict[str, float]]
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def machine_id(self) -> str:
        return str(self.machine.get("id", "unknown"))

    def as_dict(self) -> dict[str, Any]:
        return {
            "recorded_at": self.recorded_at,
            "source": self.source,
            "git_rev": self.git_rev,
            "backend": self.backend,
            "numba_version": self.numba_version,
            "machine": self.machine,
            "entries": self.entries,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BenchRecord":
        return cls(
            recorded_at=float(payload.get("recorded_at", 0.0)),
            source=str(payload.get("source", "unknown")),
            git_rev=payload.get("git_rev"),
            backend=str(payload.get("backend", "unknown")),
            numba_version=payload.get("numba_version"),
            machine=dict(payload.get("machine") or {}),
            entries={
                str(k): dict(v) for k, v in (payload.get("entries") or {}).items()
            },
            extra=dict(payload.get("extra") or {}),
        )


def _snapshot_backend(snapshot: Mapping[str, Any]) -> str | None:
    """The backend a snapshot was produced under, when it recorded one."""
    for section in ("info", "gauges"):
        for key, value in (snapshot.get(section) or {}).items():
            if key.endswith(".backend") or key == "scaling.backend":
                if isinstance(value, str):
                    return value
    # bench_kernels embeds the kernel_backend fixture param in every
    # histogram name — "bench.test_x[numpy].seconds" or
    # "bench.test_y[numpy-ema].seconds" — so scan bracket groups for a
    # known backend token.
    for name in (snapshot.get("histograms") or {}):
        start = name.find("[")
        while start != -1:
            end = name.find("]", start)
            if end == -1:
                break
            for token in name[start + 1 : end].split("-"):
                if token in KERNEL_BACKENDS:
                    return token
            start = name.find("[", end)
    return None


def record_snapshot(
    snapshot_path: str | Path,
    ledger_path: str | Path = DEFAULT_LEDGER,
    source: str | None = None,
    backend: str | None = None,
    extra: Mapping[str, Any] | None = None,
) -> BenchRecord:
    """Append one bench snapshot to the JSONL ledger; returns the record."""
    snapshot_path = Path(snapshot_path)
    if not snapshot_path.exists():
        raise ConfigurationError(f"no bench snapshot at {snapshot_path}")
    snapshot = json.loads(snapshot_path.read_text(encoding="utf-8"))
    entries = bench_entries(snapshot)
    if not entries:
        raise ConfigurationError(f"{snapshot_path} holds no bench timings")
    if source is None:
        stem = snapshot_path.stem.lower()
        source = "scaling" if "scaling" in stem else (
            "kernels" if "kernel" in stem else stem
        )
    if backend is None:
        backend = _snapshot_backend(snapshot) or "unknown"
    from repro.kernels import numba_version
    from repro.obs.provenance import git_revision

    record = BenchRecord(
        recorded_at=time.time(),
        source=source,
        git_rev=git_revision(),
        backend=backend,
        numba_version=numba_version(),
        machine=machine_fingerprint(),
        entries=entries,
        extra=dict(extra or {}),
    )
    ledger_path = Path(ledger_path)
    ledger_path.parent.mkdir(parents=True, exist_ok=True)
    with ledger_path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
    return record


def load_ledger(ledger_path: str | Path) -> list[BenchRecord]:
    """All ledger records, oldest first (malformed lines are skipped)."""
    ledger_path = Path(ledger_path)
    if not ledger_path.exists():
        return []
    records: list[BenchRecord] = []
    for line in ledger_path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(BenchRecord.from_dict(json.loads(line)))
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            log.warning("skipping malformed ledger line: %s", exc)
    records.sort(key=lambda r: r.recorded_at)
    return records


# -- change-point detection --------------------------------------------------


@dataclass(frozen=True)
class ChangePoint:
    """Verdict for one metric against its trailing window."""

    name: str
    #: ``regressed`` | ``improved`` | ``ok`` | ``insufficient``
    verdict: str
    candidate: float
    baseline_median: float | None
    ci_lo: float | None
    ci_hi: float | None
    window: int
    #: Relative delta of candidate vs the window median (NaN when
    #: there is no usable window).
    rel_delta: float

    @property
    def is_failure(self) -> bool:
        return self.verdict == "regressed"

    def __str__(self) -> str:
        if self.verdict == "insufficient":
            return (
                f"{self.verdict:>12}  {self.name}  "
                f"({self.window} prior run(s), need >= 3)"
            )
        sign = "+" if self.rel_delta >= 0 else ""
        return (
            f"{self.verdict:>12}  {self.name}  "
            f"{self.baseline_median:.6g} -> {self.candidate:.6g} "
            f"({sign}{self.rel_delta * 100.0:.1f}%, "
            f"CI [{self.ci_lo:.6g}, {self.ci_hi:.6g}], n={self.window})"
        )


def bootstrap_median_ci(
    values: Iterable[float],
    n_boot: int = DEFAULT_BOOTSTRAP,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float, float]:
    """``(median, ci_lo, ci_hi)`` of the sample median via the bootstrap.

    Deterministic for a given ``seed`` — the gate's verdict must be a
    function of the ledger, not of the RNG draw.
    """
    sample = np.asarray(list(values), dtype=float)
    if sample.size == 0:
        raise ConfigurationError("bootstrap needs at least one value")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must lie in (0, 1)")
    median = float(np.median(sample))
    if sample.size == 1:
        return median, median, median
    rng = np.random.default_rng(seed)
    draws = rng.integers(0, sample.size, size=(int(n_boot), sample.size))
    medians = np.median(sample[draws], axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo = float(np.quantile(medians, alpha))
    hi = float(np.quantile(medians, 1.0 - alpha))
    return median, lo, hi


def _metric_seed(name: str) -> int:
    """Stable per-metric bootstrap seed (metric name hash)."""
    return int.from_bytes(
        hashlib.sha256(name.encode("utf-8")).digest()[:4], "little"
    )


def classify_change(
    name: str,
    window_values: list[float],
    candidate: float,
    min_effect: float = DEFAULT_MIN_EFFECT,
    n_boot: int = DEFAULT_BOOTSTRAP,
    lower_is_better: bool = True,
) -> ChangePoint:
    """Noise-aware verdict of ``candidate`` against its trailing window.

    A candidate **regresses** only when it falls outside the bootstrap
    CI of the window median *and* beyond the minimum relative effect —
    both guards must trip, so neither a noisy window (wide CI) nor a
    tight-but-tiny shift (sub-``min_effect``) can fail the gate.
    Windows of fewer than 3 runs return ``insufficient``.
    """
    window = [float(v) for v in window_values]
    if len(window) < 3:
        return ChangePoint(
            name, "insufficient", float(candidate), None, None, None,
            len(window), float("nan"),
        )
    median, ci_lo, ci_hi = bootstrap_median_ci(
        window, n_boot=n_boot, seed=_metric_seed(name)
    )
    scale = abs(median) if median != 0.0 else 1.0
    rel_delta = (float(candidate) - median) / scale
    worse = candidate > ci_hi if lower_is_better else candidate < ci_lo
    better = candidate < ci_lo if lower_is_better else candidate > ci_hi
    effect = abs(rel_delta) > float(min_effect)
    if worse and effect:
        verdict = "regressed"
    elif better and effect:
        verdict = "improved"
    else:
        verdict = "ok"
    return ChangePoint(
        name, verdict, float(candidate), median, ci_lo, ci_hi,
        len(window), rel_delta,
    )


def _entry_value(entry: Mapping[str, float]) -> float | None:
    """The comparable scalar of a ledger entry: p50, else the gauge value."""
    if "p50" in entry:
        return float(entry["p50"])
    if "value" in entry:
        return float(entry["value"])
    return None


def _direction(name: str) -> bool:
    """True when lower is better (timings); slots/sec gauges invert."""
    return "slots_per_sec" not in name and "speedup" not in name


@dataclass
class HistoryCheck:
    """All change-point verdicts of one candidate vs the ledger."""

    points: list[ChangePoint] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Metrics with no usable trailing window (gate skipped for them).
    skipped: int = 0

    @property
    def failures(self) -> list[ChangePoint]:
        return [p for p in self.points if p.is_failure]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def compared(self) -> int:
        return sum(1 for p in self.points if p.verdict != "insufficient")

    def render(self) -> str:
        lines = [str(p) for p in self.points if p.verdict != "ok"]
        lines.extend(f"        note  {n}" for n in self.notes)
        n_ok = sum(1 for p in self.points if p.verdict == "ok")
        n_imp = sum(1 for p in self.points if p.verdict == "improved")
        lines.append(
            f"checked {self.compared} metric(s) against the ledger: "
            f"{n_ok} ok, {n_imp} improved, {len(self.failures)} regressed, "
            f"{self.skipped} without history"
        )
        return "\n".join(lines)


def check_against_history(
    ledger: list[BenchRecord] | str | Path,
    candidate: BenchRecord,
    window: int = DEFAULT_WINDOW,
    min_effect: float = DEFAULT_MIN_EFFECT,
    n_boot: int = DEFAULT_BOOTSTRAP,
    match_machine: bool = True,
) -> HistoryCheck:
    """Change-point-check every candidate entry against the ledger.

    Only prior records with the same ``source``, ``backend`` and
    (by default) machine fingerprint feed a metric's trailing window —
    cross-environment timings are never comparable.
    """
    if not isinstance(ledger, list):
        ledger = load_ledger(ledger)
    prior = [
        r
        for r in ledger
        if r.source == candidate.source
        and r.backend == candidate.backend
        and (not match_machine or r.machine_id == candidate.machine_id)
        and r is not candidate
        # A freshly-appended candidate re-read from disk is a distinct
        # object — exclude it (and anything newer) by timestamp too.
        and r.recorded_at < candidate.recorded_at
    ]
    check = HistoryCheck()
    if not prior:
        check.notes.append(
            f"no ledger history for source={candidate.source!r} "
            f"backend={candidate.backend!r} machine={candidate.machine_id}"
        )
    for name in sorted(candidate.entries):
        cand_value = _entry_value(candidate.entries[name])
        if cand_value is None:
            continue
        window_values = [
            value
            for r in prior[-window:]
            if name in r.entries
            and (value := _entry_value(r.entries[name])) is not None
        ]
        point = classify_change(
            name,
            window_values,
            cand_value,
            min_effect=min_effect,
            n_boot=n_boot,
            lower_is_better=_direction(name),
        )
        check.points.append(point)
        if point.verdict == "insufficient":
            check.skipped += 1
    return check


def warn_gate_skipped(reason: str, metrics=None) -> None:
    """One visible WARN (plus a ``perf.gate_skipped`` counter) for a
    perf gate that passed only because it had nothing to compare.

    ``metrics`` is any :class:`~repro.obs.metrics.MetricsRegistry`;
    ``None`` falls back to the ambient instrumentation bundle's.
    """
    log.warning("perf gate skipped: %s", reason)
    print(f"WARN: perf gate skipped: {reason}")
    if metrics is None:
        from repro.obs.instrument import current_instrumentation

        instr = current_instrumentation()
        metrics = instr.metrics if instr is not None else None
    if metrics is not None:
        metrics.counter("perf.gate_skipped").inc()


# -- trend dashboard ---------------------------------------------------------

_TREND_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 70em; color: #1a1a2e; }
h1 { font-size: 1.4em; border-bottom: 2px solid #16324f; padding-bottom: .2em; }
table { border-collapse: collapse; font-size: .85em; }
th, td { border: 1px solid #c8d0d8; padding: .25em .55em; text-align: right; }
th { background: #eef2f6; }
td.label { text-align: left; font-family: ui-monospace, monospace; }
.ok { color: #176e2c; } .bad { color: #a61b1b; font-weight: 600; }
.improved { color: #1b6e4f; } .skip { color: #6a737d; }
.meta { color: #555; font-size: .85em; }
"""


def _trend_sparkline(values: list[float], width: int = 160, height: int = 34) -> str:
    from repro.obs.report import svg_sparkline

    return svg_sparkline(values, width=width, height=height)


def trend_html(
    ledger: list[BenchRecord] | str | Path,
    backend: str | None = None,
    machine_id: str | None = None,
    window: int = DEFAULT_WINDOW,
    min_effect: float = DEFAULT_MIN_EFFECT,
    title: str = "Benchmark trend",
) -> str:
    """Self-contained HTML dashboard over the ledger.

    One row per metric: sparkline of its whole recorded history,
    latest value, delta vs the trailing window, and the change-point
    verdict — grouped by (source, backend).
    """
    if not isinstance(ledger, list):
        ledger = load_ledger(ledger)
    if backend is not None:
        ledger = [r for r in ledger if r.backend == backend]
    if machine_id is not None:
        ledger = [r for r in ledger if r.machine_id == machine_id]
    groups: dict[tuple[str, str, str], list[BenchRecord]] = {}
    for record in ledger:
        groups.setdefault(
            (record.source, record.backend, record.machine_id), []
        ).append(record)

    sections: list[str] = []
    for (source, rec_backend, rec_machine), records in sorted(groups.items()):
        latest = records[-1]
        check = check_against_history(
            records[:-1], latest, window=window, min_effect=min_effect
        ) if len(records) > 1 else HistoryCheck()
        verdicts = {p.name: p for p in check.points}
        names = sorted({n for r in records for n in r.entries})
        rows: list[str] = []
        for name in names:
            series = [
                value
                for r in records
                if name in r.entries
                and (value := _entry_value(r.entries[name])) is not None
            ]
            if not series:
                continue
            point = verdicts.get(name)
            if point is None or point.verdict == "insufficient":
                verdict_cell = "<td class='skip'>no history</td>"
                delta_cell = "<td class='skip'>—</td>"
            else:
                css = {
                    "regressed": "bad", "improved": "improved", "ok": "ok",
                }[point.verdict]
                verdict_cell = f"<td class='{css}'>{point.verdict}</td>"
                sign = "+" if point.rel_delta >= 0 else ""
                delta_cell = (
                    f"<td class='{css}'>{sign}{point.rel_delta * 100.0:.1f}%</td>"
                )
            rows.append(
                f"<tr><td class='label'>{html.escape(name)}</td>"
                f"<td>{_trend_sparkline(series)}</td>"
                f"<td>{series[-1]:.6g}</td>{delta_cell}{verdict_cell}"
                f"<td>{len(series)}</td></tr>"
            )
        stamp = time.strftime(
            "%Y-%m-%d %H:%M", time.localtime(latest.recorded_at)
        )
        rev = (latest.git_rev or "unknown")[:12]
        sections.append(
            f"<h2>{html.escape(source)} · backend <code>"
            f"{html.escape(rec_backend)}</code> · machine <code>"
            f"{html.escape(rec_machine)}</code></h2>"
            f"<p class='meta'>{len(records)} run(s), latest {stamp} @ "
            f"<code>{html.escape(rev)}</code></p>"
            "<table><tr><th>metric</th><th>history</th><th>latest</th>"
            "<th>Δ vs window</th><th>verdict</th><th>runs</th></tr>"
            + "".join(rows)
            + "</table>"
        )
    body = "".join(sections) if sections else "<p>ledger is empty</p>"
    page_title = html.escape(title)
    return (
        "<!DOCTYPE html><html lang='en'><head><meta charset='utf-8'>"
        f"<title>{page_title}</title><style>{_TREND_CSS}</style></head>"
        f"<body><h1>{page_title}</h1>{body}</body></html>\n"
    )
