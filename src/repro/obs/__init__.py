"""Observability substrate: tracing, metrics, profiling, provenance.

The simulation pipeline is instrumented end-to-end through a single
optional :class:`~repro.obs.instrument.Instrumentation` bundle:

* :mod:`repro.obs.tracer` — structured per-slot event tracing
  (:class:`NullTracer` default, :class:`JsonlTraceWriter` for files);
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry;
* :mod:`repro.obs.profiler` — per-phase wall-clock timing with
  p50/p95/max summaries;
* :mod:`repro.obs.spans` — hierarchical span profiling (run →
  slot-block → phase → kernel) with collapsed-stack / speedscope /
  flame-graph export;
* :mod:`repro.obs.provenance` — run manifests (config hash, seed, git
  revision, package version);
* :mod:`repro.obs.cli` — the ``repro-trace`` console entry point.

On top of the emission side sits the analysis/verification backend:

* :mod:`repro.obs.analyze` — trace -> per-user timelines + invariant
  checking (``repro-analyze``);
* :mod:`repro.obs.compare` — tolerance-aware run diffing and the
  kernel-bench regression gate (``repro-compare``);
* :mod:`repro.obs.report` — self-contained HTML run reports
  (``repro-report``);
* :mod:`repro.obs.perf` — the benchmark history ledger and noise-aware
  change-point detection behind ``repro-bench``.

And beside both, the **live telemetry plane** (:mod:`repro.obs.live`):
streaming aggregators (EWMA / Welford / P² quantile sketches), an
online SLO watchdog, executor heartbeats with stall detection, and a
Prometheus/JSON exporter with the ``repro-watch`` dashboard — the same
signals, observed *while* the run executes.

Quick taste::

    from repro.obs import Instrumentation, RecordingTracer, use_instrumentation

    instr = Instrumentation(tracer=RecordingTracer())
    res = run_scheduler(cfg, EMAScheduler(cfg.n_users), instrumentation=instr)
    print(instr.profiler.render_table())
    print(instr.metrics.snapshot()["counters"]["rrc.occupancy.idle"])
"""

from repro.obs.analyze import (
    InvariantReport,
    RunTimeline,
    Violation,
    check_invariants,
    check_trace,
    timeline_from_result,
    timelines_from_trace,
)
from repro.obs.compare import (
    ComparisonReport,
    Tolerance,
    compare_bench,
    compare_metrics,
    compare_runs,
)
from repro.obs.instrument import (
    Instrumentation,
    current_instrumentation,
    use_instrumentation,
)
from repro.obs.live import (
    LiveTelemetry,
    MetricsServer,
    SloWatchdog,
    SnapshotExporter,
    logging_setup,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.perf import (
    BenchRecord,
    check_against_history,
    load_ledger,
    machine_fingerprint,
    record_snapshot,
    trend_html,
)
from repro.obs.profiler import PhaseProfiler, PhaseTimer, null_phase
from repro.obs.provenance import RunManifest, build_manifest, config_hash, git_revision
from repro.obs.report import render_report, write_report
from repro.obs.spans import (
    NULL_SPAN,
    NullSpan,
    SpanRecorder,
    activate_spans,
    current_spans,
    flamegraph_svg,
)
from repro.obs.tracer import JsonlTraceWriter, NullTracer, RecordingTracer, Tracer

__all__ = [
    "RunTimeline",
    "Violation",
    "InvariantReport",
    "check_invariants",
    "check_trace",
    "timeline_from_result",
    "timelines_from_trace",
    "Tolerance",
    "ComparisonReport",
    "compare_metrics",
    "compare_runs",
    "compare_bench",
    "render_report",
    "write_report",
    "Instrumentation",
    "use_instrumentation",
    "current_instrumentation",
    "LiveTelemetry",
    "SloWatchdog",
    "SnapshotExporter",
    "MetricsServer",
    "logging_setup",
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "JsonlTraceWriter",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseProfiler",
    "PhaseTimer",
    "null_phase",
    "SpanRecorder",
    "NullSpan",
    "NULL_SPAN",
    "activate_spans",
    "current_spans",
    "flamegraph_svg",
    "BenchRecord",
    "machine_fingerprint",
    "record_snapshot",
    "load_ledger",
    "check_against_history",
    "trend_html",
    "RunManifest",
    "build_manifest",
    "config_hash",
    "git_revision",
]
