"""Structured per-slot event tracing.

A *tracer* receives a stream of structured events — one dict per call —
from the instrumented simulation pipeline: per-slot engine summaries,
EMA virtual-queue snapshots, calibration grid points, sweep progress.
Three implementations cover the useful design space:

* :class:`NullTracer` — the default everywhere; every method is a
  no-op so the hot loop pays only a dispatch per event site;
* :class:`RecordingTracer` — keeps events in memory (tests, notebooks);
* :class:`JsonlTraceWriter` — streams events to a JSON-lines file, one
  event per line, with NumPy arrays/scalars converted to plain JSON.

Events are free-form: a ``kind`` string plus arbitrary keyword fields.
The engine guarantees at least one ``"slot"`` event per simulated slot
when tracing is enabled (see :meth:`repro.sim.engine.Simulation.run`).
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Tracer", "NullTracer", "RecordingTracer", "JsonlTraceWriter"]


class Tracer:
    """Base tracer interface.

    Subclasses override :meth:`emit`; ``enabled`` lets instrumented
    code skip expensive event *construction* (not just emission) when
    the tracer is a no-op.
    """

    #: Whether events should be constructed and emitted at all.
    enabled: bool = True

    def emit(self, kind: str, /, **fields: Any) -> None:
        """Record one structured event."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any underlying resources (default no-op)."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullTracer(Tracer):
    """Zero-overhead tracer: drops every event.

    This is the default tracer of an :class:`~repro.obs.instrument.Instrumentation`
    bundle, so attaching instrumentation for metrics/profiling alone
    costs nothing on the tracing side.
    """

    enabled = False

    def emit(self, kind: str, /, **fields: Any) -> None:
        pass


class RecordingTracer(Tracer):
    """In-memory tracer; ``events`` is a list of plain dicts.

    Each event dict carries its ``kind`` under the ``"kind"`` key plus
    the emitted fields, in emission order.
    """

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def emit(self, kind: str, /, **fields: Any) -> None:
        self.events.append({"kind": kind, **fields})

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        """All recorded events of one kind, in order."""
        return [e for e in self.events if e["kind"] == kind]


def _jsonify(value: Any) -> Any:
    """Convert NumPy containers/scalars to JSON-serialisable types."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


def _sanitize(value: Any) -> Any:
    """Replace non-finite floats with their ``repr`` strings, recursively.

    ``json.dumps`` serialises floats natively — the ``default`` hook is
    never consulted for them — so without this pass ``inf``/``nan``
    would land in the file as the bare ``Infinity``/``NaN`` tokens,
    which are not valid JSON.
    """
    if isinstance(value, float):  # np.float64 is a float subclass
        v = float(value)
        return v if np.isfinite(v) else repr(v)
    if isinstance(value, np.ndarray):
        return _sanitize(value.tolist())
    if isinstance(value, np.generic):
        return _sanitize(value.item())
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    return value


class JsonlTraceWriter(Tracer):
    """Streams events to a JSON-lines file (one JSON object per line).

    Parameters
    ----------
    path_or_file:
        A filesystem path (opened for writing, parent directories
        created) or an already-open text file object (not closed by
        :meth:`close` unless this writer opened it).  A path ending in
        ``.gz`` is written gzip-compressed — long sweeps shrink by
        ~20x and :mod:`repro.obs.analyze` reads both forms
        transparently.
    """

    def __init__(self, path_or_file: str | Path | io.TextIOBase):
        if isinstance(path_or_file, (str, Path)):
            path = Path(path_or_file)
            path.parent.mkdir(parents=True, exist_ok=True)
            if path.suffix == ".gz":
                self._file = gzip.open(path, "wt", encoding="utf-8")
            else:
                self._file = path.open("w", encoding="utf-8")
            self._owns_file = True
            self.path: Path | None = path
        else:
            if not hasattr(path_or_file, "write"):
                raise ConfigurationError("need a path or a writable file object")
            self._file = path_or_file
            self._owns_file = False
            self.path = None
        self.n_events = 0

    def emit(self, kind: str, /, **fields: Any) -> None:
        record = {"kind": kind, **fields}
        try:
            line = json.dumps(record, default=_jsonify, allow_nan=False)
        except ValueError:
            # A non-finite float somewhere in the record: take the slow
            # path so 'inf'/'-inf'/'nan' survive as strings and the file
            # stays strict JSON.
            line = json.dumps(_sanitize(record), allow_nan=False)
        self._file.write(line + "\n")
        self.n_events += 1

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()
        elif not self._file.closed:
            self._file.flush()
