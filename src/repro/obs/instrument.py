"""The :class:`Instrumentation` bundle and the ambient-instrumentation context.

One object carries the observability facets through the pipeline:

* ``tracer`` — structured events (:mod:`repro.obs.tracer`);
* ``metrics`` — counters/gauges/histograms (:mod:`repro.obs.metrics`);
* ``profiler`` — per-phase wall-clock timing (:mod:`repro.obs.profiler`);
* ``live`` — the optional live telemetry plane
  (:mod:`repro.obs.live`): streaming aggregators, the SLO watchdog,
  heartbeats, and snapshot export, fed once per engine slot.  ``None``
  (the default) costs the hot loop a single attribute test.
* ``spans`` — the optional hierarchical span profiler
  (:mod:`repro.obs.spans`): run → slot-block → phase → kernel timing
  attribution with flame-graph export.  ``None`` (the default) keeps
  the engine on the NullSpan fast path.

Passing the bundle explicitly (``Simulation(cfg, sched,
instrumentation=instr)`` or ``run_scheduler(..., instrumentation=instr)``)
instruments one run.  The *ambient* context::

    with use_instrumentation(instr):
        run_experiment("fig05")

instruments every simulation constructed inside the ``with`` block —
this is how ``repro-trace`` observes the dozens of inner calibration
runs an experiment performs without every experiment module having to
thread the object through its call tree.

Instrumentation is strictly observational: an instrumented run is
bit-identical to an un-instrumented one (enforced by
``tests/integration/test_determinism.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import PhaseProfiler
from repro.obs.tracer import NullTracer, Tracer

__all__ = ["Instrumentation", "use_instrumentation", "current_instrumentation"]


class Instrumentation:
    """Tracer + metrics registry + phase profiler, travelling together.

    Any facet may be omitted: the tracer defaults to
    :class:`~repro.obs.tracer.NullTracer` (drop everything) and the
    other two to fresh empty instances, so
    ``Instrumentation()`` already collects metrics and phase timings
    without writing a trace anywhere.
    """

    __slots__ = ("tracer", "metrics", "profiler", "live", "spans")

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        profiler: PhaseProfiler | None = None,
        live=None,
        spans=None,
    ):
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = profiler if profiler is not None else PhaseProfiler()
        #: Optional :class:`repro.obs.live.LiveTelemetry`; bound to the
        #: sibling facets so its watchdog/exporter see this bundle's
        #: metrics and tracer.
        self.live = live
        if live is not None:
            live.bind(self.metrics, self.tracer)
        #: Optional :class:`repro.obs.spans.SpanRecorder`; the engine
        #: activates it around the slot loop so registry-resolved
        #: kernels self-report backend-tagged spans.
        self.spans = spans

    def close(self) -> None:
        """Close the tracer (flushes file-backed writers) and the live plane."""
        if self.live is not None:
            self.live.close()
        self.tracer.close()

    def __enter__(self) -> "Instrumentation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Instrumentation tracer={type(self.tracer).__name__} "
            f"metrics={len(self.metrics)} phases={len(self.profiler.phases)}"
            f"{' spans' if self.spans is not None else ''}>"
        )


_AMBIENT: list[Instrumentation] = []


def current_instrumentation() -> Instrumentation | None:
    """The innermost ambient bundle, or ``None`` when none is active."""
    return _AMBIENT[-1] if _AMBIENT else None


@contextmanager
def use_instrumentation(instr: Instrumentation) -> Iterator[Instrumentation]:
    """Make ``instr`` the ambient bundle for the dynamic extent of the block.

    Nesting is allowed; the innermost bundle wins.  Simulations that
    received an explicit ``instrumentation=`` argument keep it — the
    ambient bundle only fills the default.
    """
    _AMBIENT.append(instr)
    try:
        yield instr
    finally:
        _AMBIENT.pop()
