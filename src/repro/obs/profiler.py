"""Per-phase wall-clock profiling of the simulation pipeline.

The engine wraps each of its six slot phases (playback, observe,
schedule, transmit, rrc, feedback) in a :class:`PhaseTimer` drawn from
a :class:`PhaseProfiler`; the profiler accumulates per-phase samples
and summarises them as count/total/p50/p95/max.  Timers for the same
phase may be re-entered thousands of times (once per slot) — entering
one costs two ``perf_counter`` calls and a list append.

``null_phase`` is the no-op stand-in used when no instrumentation is
attached, so un-instrumented hot loops keep an identical shape at
negligible cost.
"""

from __future__ import annotations

import time

from repro.analysis.tables import Table
from repro.obs.metrics import percentile

__all__ = ["PhaseTimer", "PhaseProfiler", "null_phase"]


class _NullTimer:
    """Shared no-op context manager for un-instrumented runs."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NULL_TIMER = _NullTimer()


def null_phase(name: str) -> _NullTimer:
    """Drop-in for :meth:`PhaseProfiler.phase` that times nothing."""
    return _NULL_TIMER


class PhaseTimer:
    """Context manager appending one elapsed-seconds sample per entry."""

    __slots__ = ("_samples", "_start")

    def __init__(self, samples: list[float]):
        self._samples = samples
        self._start = 0.0

    def __enter__(self) -> "PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._samples.append(time.perf_counter() - self._start)
        return False


class PhaseProfiler:
    """Accumulates wall-clock samples per named phase.

    Phase order is first-use order, which for an engine run matches the
    pipeline order — the rendered table reads top-to-bottom like a slot.
    """

    def __init__(self) -> None:
        self._samples: dict[str, list[float]] = {}
        self._timers: dict[str, PhaseTimer] = {}

    def phase(self, name: str) -> PhaseTimer:
        """A (cached, re-enterable) timer for ``name``."""
        timer = self._timers.get(name)
        if timer is None:
            samples = self._samples.setdefault(name, [])
            timer = PhaseTimer(samples)
            self._timers[name] = timer
        return timer

    def samples(self, name: str) -> list[float]:
        """The mutable sample list for ``name``.

        Hot loops (the engine, the gateway) append
        ``perf_counter`` deltas directly to this list instead of
        entering a context manager per phase per slot — the ``with``
        protocol alone costs as much as the measurement.  Creating the
        list registers the phase, so request lists in pipeline order.
        """
        return self._samples.setdefault(name, [])

    def record(self, name: str, elapsed_s: float) -> None:
        """Append an externally-measured sample (used by the runner)."""
        self._samples.setdefault(name, []).append(float(elapsed_s))

    @property
    def phases(self) -> list[str]:
        return list(self._samples)

    def raw_samples(self) -> dict[str, list[float]]:
        """Copy of every phase's raw sample list (for worker shipping)."""
        return {name: list(samples) for name, samples in self._samples.items()}

    def merge_samples(self, mapping: dict[str, list[float]]) -> None:
        """Extend this profiler with samples recorded elsewhere.

        Used by the run executor to fold worker-process profilers into
        the parent; merging in task order reproduces the sample lists a
        serial execution would have appended.
        """
        for name, samples in mapping.items():
            self._samples.setdefault(name, []).extend(samples)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-phase aggregates: count, total_s, mean_s, p50_s, p95_s, max_s."""
        out: dict[str, dict[str, float]] = {}
        for name, samples in self._samples.items():
            if not samples:
                continue
            ordered = sorted(samples)
            total = float(sum(ordered))
            out[name] = {
                "count": len(ordered),
                "total_s": total,
                "mean_s": total / len(ordered),
                "p50_s": percentile(ordered, 50.0),
                "p95_s": percentile(ordered, 95.0),
                "max_s": ordered[-1],
            }
        return out

    def render_table(self, title: str = "Phase timings") -> str:
        """Human-readable summary table (microsecond resolution)."""
        table = Table(
            ["phase", "calls", "total (s)", "p50 (us)", "p95 (us)", "max (us)"],
            formats=[None, "d", ".3f", ".1f", ".1f", ".1f"],
            title=title,
        )
        for name, stats in self.summary().items():
            table.add_row(
                [
                    name,
                    int(stats["count"]),
                    stats["total_s"],
                    stats["p50_s"] * 1e6,
                    stats["p95_s"] * 1e6,
                    stats["max_s"] * 1e6,
                ]
            )
        return table.render()

    def reset(self) -> None:
        self._samples.clear()
        self._timers.clear()
