"""Hierarchical span profiling: run → slot-block → phase → kernel.

The six-phase :class:`~repro.obs.profiler.PhaseProfiler` answers "how
long does each pipeline phase take?"; this module answers "where does
a slot's time go *below* the phases?" — which kernel, on which
backend, under which phase — and renders the answer as a flame graph.

Design constraints (the engine records spans inside its hot loop):

* **O(1) per span.**  Every distinct call path — ``run > slots >
  schedule > kernel:ema_dp[numba]`` — is interned once into an integer
  node id; recording a span is two ``perf_counter`` reads plus one
  add into plain-list ``count``/``total`` accumulators (lists, not
  numpy arrays: scalar ``lst[i] += x`` is an order of magnitude
  cheaper than a numpy scalar in-place add, and lists grow in place
  so adder closures bound before a growth stay valid).  An optional
  ring buffer keeps the most recent raw spans for inspection without
  unbounded memory.
* **Null fast path.**  When no recorder is attached the call sites
  cost a single ``is None`` test (the engine) or nothing at all (the
  kernel registry only wraps kernels while a recorder is *active*);
  :data:`NULL_SPAN` is the no-op context manager for coarse scopes.
  The ``"spans"`` mode of ``benchmarks/bench_kernels.py`` gates the
  *recording* overhead under the same 2% budget as the null tracer.
* **Worker merge.**  :meth:`SpanRecorder.state` /
  :meth:`SpanRecorder.merge_state` ship span trees across process
  boundaries keyed by path (not by node id), so the run executor can
  fold pooled workers back in task order: the merged tree's paths and
  per-path counts are identical to a serial execution's (totals are
  wall clock — summed exactly, but wall clock itself is not
  reproducible between executions).

Exports: collapsed-stack text (``to_collapsed`` — one ``a;b;c 123``
line per path, self-time in integer microseconds, the format every
flame-graph tool ingests), speedscope JSON (``to_speedscope`` — open
at https://speedscope.app), and a self-contained inline-SVG flame
graph (:func:`flamegraph_svg`) embedded by ``repro-report``.
"""

from __future__ import annotations

import html as _html
import json
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter
from typing import Any, Iterator

import numpy as np

from repro.analysis.tables import Table
from repro.errors import ConfigurationError

__all__ = [
    "SpanRecorder",
    "NullSpan",
    "NULL_SPAN",
    "current_spans",
    "activate_spans",
    "flamegraph_svg",
    "tee",
]


def tee(first, second):
    """Compose two single-argument recorders into one call.

    A generic helper for feeding one measured ``dt`` to two sinks
    (e.g. a :class:`~repro.obs.profiler.PhaseProfiler` sample list and
    a span adder).  The engine itself no longer tees per slot — phase
    spans are derived from the profiler's sample lists after the run
    via :meth:`SpanRecorder.add_bulk`, which is cheaper and equally
    exact.
    """

    def _rec(value):
        first(value)
        second(value)

    return _rec

#: Sentinel parent id of the tree root ("run" is its only child in
#: engine-produced trees, but recorders are generic).
ROOT = -1

#: The canonical prefix every engine slot phase lives under; the
#: gateway and the kernel registry intern their spans below it via
#: :meth:`SpanRecorder.slot_phase_id` without knowing the tree layout.
SLOT_PREFIX = ("run", "slots")


class NullSpan:
    """Shared no-op context manager for un-recorded scopes."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = NullSpan()


class SpanRecorder:
    """Accumulates a tree of named wall-clock spans.

    Parameters
    ----------
    capacity:
        Initial number of preallocated tree nodes (doubled on demand;
        an engine run produces a few dozen distinct paths).
    ring:
        Keep the most recent ``ring`` raw spans ``(node_id, start_s,
        duration_s)`` in a circular buffer (0 disables — the default;
        aggregation never needs them).
    """

    def __init__(self, capacity: int = 64, ring: int = 0):
        if capacity < 1:
            raise ConfigurationError("capacity must be positive")
        self._names: list[str] = []
        self._parents: list[int] = []
        #: (parent_id, name) -> node id — the intern table.
        self._children: dict[tuple[int, str], int] = {}
        self._counts: list[int] = [0] * capacity
        self._totals: list[float] = [0.0] * capacity
        #: Explicit span stack for the context-manager API.
        self._stack: list[tuple[int, float]] = []
        self._ring_n = int(ring)
        if self._ring_n > 0:
            self._ring_node = np.full(self._ring_n, -1, dtype=np.int64)
            self._ring_start = np.zeros(self._ring_n, dtype=float)
            self._ring_dur = np.zeros(self._ring_n, dtype=float)
        self._ring_pos = 0
        self._ring_seen = 0

    # -- tree construction ---------------------------------------------------

    def node(self, parent: int, name: str) -> int:
        """Intern (and return the id of) ``parent``'s child ``name``."""
        key = (parent, name)
        node_id = self._children.get(key)
        if node_id is None:
            if parent != ROOT and not 0 <= parent < len(self._names):
                raise ConfigurationError(f"unknown parent node {parent}")
            node_id = len(self._names)
            self._names.append(name)
            self._parents.append(parent)
            self._children[key] = node_id
            if node_id >= len(self._counts):
                # Extend in place so adders bound earlier stay live.
                grow = len(self._counts)
                self._counts.extend([0] * grow)
                self._totals.extend([0.0] * grow)
        return node_id

    def path_node(self, path: tuple[str, ...] | list[str]) -> int:
        """Intern a whole path from the root; returns the leaf id."""
        node_id = ROOT
        for name in path:
            node_id = self.node(node_id, name)
        return node_id

    def slot_phase_id(self, phase: str) -> int:
        """The node id of engine phase ``phase`` under ``run > slots``.

        The engine, the gateway, and the kernel registry all hang
        their spans off these canonical nodes, so independently
        instrumented layers land in one coherent tree.
        """
        return self.path_node(SLOT_PREFIX + (phase,))

    # -- recording -----------------------------------------------------------

    def add(self, node_id: int, duration_s: float, start_s: float = 0.0) -> None:
        """Record one completed span of ``node_id`` (O(1))."""
        self._counts[node_id] += 1
        self._totals[node_id] += duration_s
        if self._ring_n > 0:
            pos = self._ring_pos
            self._ring_node[pos] = node_id
            self._ring_start[pos] = start_s
            self._ring_dur[pos] = duration_s
            self._ring_pos = (pos + 1) % self._ring_n
            self._ring_seen += 1

    def add_bulk(self, node_id: int, count: int, total_s: float) -> None:
        """Fold ``count`` pre-aggregated spans totalling ``total_s``
        seconds into ``node_id`` in one O(1) update.

        The engine uses this to derive the six phase spans from the
        profiler's per-phase sample lists *after* the slot loop — the
        totals are sums of the exact floats the profiler holds, at
        zero per-slot cost.  Bulk entries never touch the ring buffer
        (they are aggregates, not individually observed spans).
        """
        self._counts[node_id] += int(count)
        self._totals[node_id] += float(total_s)

    def adder(self, node_id: int):
        """A bound single-argument recorder for hot loops.

        ``rec = spans.adder(nid)`` then ``rec(dt)`` per measurement —
        mirrors how the engine binds ``profiler.samples(...).append``.
        """
        counts, totals = self._counts, self._totals

        def _add(duration_s: float, _n=node_id, _c=counts, _t=totals) -> None:
            _c[_n] += 1
            _t[_n] += duration_s

        if self._ring_n > 0:  # ring bookkeeping needs the full path
            return lambda duration_s: self.add(node_id, duration_s)
        return _add

    @contextmanager
    def span(self, name: str, parent: int | None = None) -> Iterator[int]:
        """Context-managed span; nests under the innermost open span.

        Intended for coarse scopes (a whole run, a calibration grid) —
        hot loops precompute node ids and call :meth:`add` directly.
        """
        parent_id = parent if parent is not None else (
            self._stack[-1][0] if self._stack else ROOT
        )
        node_id = self.node(parent_id, name)
        start = perf_counter()
        self._stack.append((node_id, start))
        try:
            yield node_id
        finally:
            self._stack.pop()
            self.add(node_id, perf_counter() - start, start)

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._names)

    def paths(self) -> list[tuple[str, ...]]:
        """Every interned path, in creation order."""
        out: list[tuple[str, ...]] = []
        for node_id in range(len(self._names)):
            out.append(self._path_of(node_id))
        return out

    def _path_of(self, node_id: int) -> tuple[str, ...]:
        parts: list[str] = []
        while node_id != ROOT:
            parts.append(self._names[node_id])
            node_id = self._parents[node_id]
        return tuple(reversed(parts))

    def total_s(self, path: tuple[str, ...] | list[str]) -> float:
        """Accumulated seconds of ``path`` (0.0 when never recorded)."""
        node_id = self._children.get
        current = ROOT
        for name in path:
            nxt = node_id((current, name))
            if nxt is None:
                return 0.0
            current = nxt
        return float(self._totals[current])

    def count(self, path: tuple[str, ...] | list[str]) -> int:
        """Recorded span count of ``path`` (0 when never recorded)."""
        current = ROOT
        for name in path:
            nxt = self._children.get((current, name))
            if nxt is None:
                return 0
            current = nxt
        return int(self._counts[current])

    def children_of(self, node_id: int) -> list[int]:
        return [
            child for (parent, _name), child in self._children.items()
            if parent == node_id
        ]

    def self_total_s(self, node_id: int) -> float:
        """Node total minus the sum of its children's totals (>= 0)."""
        child_sum = float(
            sum(self._totals[c] for c in self.children_of(node_id))
        )
        return max(float(self._totals[node_id]) - child_sum, 0.0)

    def recent(self) -> list[tuple[tuple[str, ...], float, float]]:
        """The ring buffer's raw spans, oldest first (empty when off)."""
        if self._ring_n == 0 or self._ring_seen == 0:
            return []
        n = min(self._ring_seen, self._ring_n)
        order = [(self._ring_pos + i) % self._ring_n for i in range(self._ring_n)]
        order = order[-n:] if self._ring_seen >= self._ring_n else list(range(n))
        return [
            (
                self._path_of(int(self._ring_node[i])),
                float(self._ring_start[i]),
                float(self._ring_dur[i]),
            )
            for i in order
            if self._ring_node[i] >= 0
        ]

    # -- merge (executor workers) --------------------------------------------

    def state(self) -> dict[str, list[float]]:
        """Picklable tree state: ``";"``-joined path -> [count, total_s].

        Path names never contain ``";"`` in this codebase (phase and
        kernel identifiers); the joined form doubles as the
        collapsed-stack key.
        """
        out: dict[str, list[float]] = {}
        for node_id in range(len(self._names)):
            if self._counts[node_id] == 0 and not self.children_of(node_id):
                continue
            out[";".join(self._path_of(node_id))] = [
                int(self._counts[node_id]),
                float(self._totals[node_id]),
            ]
        return out

    def merge_state(self, state: dict[str, list[float]]) -> None:
        """Fold a worker's :meth:`state` into this tree.

        Counts and totals add; unseen paths are interned in the
        state's iteration order, so merging worker states in task
        order reproduces the node ordering a serial execution builds.
        """
        for joined, (count, total) in state.items():
            node_id = self.path_node(tuple(joined.split(";")))
            self._counts[node_id] += int(count)
            self._totals[node_id] += float(total)

    def reset(self) -> None:
        self._names.clear()
        self._parents.clear()
        self._children.clear()
        self._counts[:] = [0] * len(self._counts)
        self._totals[:] = [0.0] * len(self._totals)
        self._stack.clear()
        self._ring_pos = 0
        self._ring_seen = 0

    # -- export --------------------------------------------------------------

    def to_collapsed(self) -> str:
        """Collapsed-stack text: ``run;slots;schedule 12345`` per path.

        Weights are *self* time in integer microseconds — feed to any
        flamegraph.pl-compatible tool.  Zero-weight pure-container
        nodes are omitted (their time lives in their children).
        """
        lines = []
        for node_id in range(len(self._names)):
            weight = int(round(self.self_total_s(node_id) * 1e6))
            if self._counts[node_id] == 0 and weight == 0:
                continue
            lines.append(f"{';'.join(self._path_of(node_id))} {weight}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_speedscope(self, name: str = "repro spans") -> dict[str, Any]:
        """A speedscope ``sampled`` profile of the span tree.

        One sample per interned path, weighted by self time (seconds)
        — drop the JSON on https://speedscope.app (or the CLI) for an
        interactive flame/sandwich view.
        """
        frames = [{"name": n} for n in self._names]
        samples: list[list[int]] = []
        weights: list[float] = []
        for node_id in range(len(self._names)):
            weight = self.self_total_s(node_id)
            if weight <= 0.0 and self._counts[node_id] == 0:
                continue
            stack: list[int] = []
            cur = node_id
            while cur != ROOT:
                stack.append(cur)
                cur = self._parents[cur]
            samples.append(list(reversed(stack)))
            weights.append(weight)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": float(sum(weights)),
                    "samples": samples,
                    "weights": weights,
                }
            ],
            "name": name,
            "activeProfileIndex": 0,
            "exporter": "repro.obs.spans",
        }

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-path aggregates keyed by joined path."""
        out: dict[str, dict[str, float]] = {}
        for node_id in range(len(self._names)):
            count = int(self._counts[node_id])
            if count == 0:
                continue
            total = float(self._totals[node_id])
            out[";".join(self._path_of(node_id))] = {
                "count": count,
                "total_s": total,
                "mean_s": total / count,
                "self_s": self.self_total_s(node_id),
            }
        return out

    def render_table(self, title: str = "Span tree") -> str:
        """Depth-indented human-readable tree."""
        table = Table(
            ["span", "calls", "total (s)", "self (s)"],
            formats=[None, "d", ".3f", ".3f"],
            title=title,
        )

        def walk(node_id: int, depth: int) -> None:
            table.add_row(
                [
                    "  " * depth + self._names[node_id],
                    int(self._counts[node_id]),
                    float(self._totals[node_id]),
                    self.self_total_s(node_id),
                ]
            )
            for child in sorted(
                self.children_of(node_id),
                key=lambda c: -float(self._totals[c]),
            ):
                walk(child, depth + 1)

        for root in sorted(
            (n for n in range(len(self._names)) if self._parents[n] == ROOT),
            key=lambda c: -float(self._totals[c]),
        ):
            walk(root, 0)
        return table.render()

    def write_artifacts(self, out_dir: str | Path, stem: str = "spans") -> list[Path]:
        """Write ``spans.json`` (state) + collapsed text + speedscope JSON."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        state_path = out_dir / f"{stem}.json"
        state_path.write_text(
            json.dumps(self.state(), indent=2) + "\n", encoding="utf-8"
        )
        collapsed_path = out_dir / f"{stem}.collapsed.txt"
        collapsed_path.write_text(self.to_collapsed(), encoding="utf-8")
        speedscope_path = out_dir / f"{stem}.speedscope.json"
        speedscope_path.write_text(
            json.dumps(self.to_speedscope()) + "\n", encoding="utf-8"
        )
        return [state_path, collapsed_path, speedscope_path]


# -- ambient recorder (how the kernel registry finds the active tree) --------

_ACTIVE: list[SpanRecorder] = []


def current_spans() -> SpanRecorder | None:
    """The innermost active recorder, or ``None``.

    The engine activates its bundle's recorder for the extent of one
    ``run()`` — kernel resolutions performed inside the run (schedulers
    re-resolve after ``reset()``, fleets at construction) are wrapped
    with span recording; resolutions outside any active recorder get
    the raw kernel, so un-instrumented runs pay nothing.
    """
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def activate_spans(recorder: SpanRecorder) -> Iterator[SpanRecorder]:
    """Make ``recorder`` the ambient span sink for the block's extent."""
    _ACTIVE.append(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE.pop()


# -- flame graph SVG ---------------------------------------------------------

#: Depth-cycled fill palette (warm flame-graph convention).
_FLAME_COLORS = ("#c8442c", "#d96b34", "#e3923f", "#e8b04c", "#d9a43f")


def flamegraph_svg(
    state: dict[str, list[float]] | SpanRecorder,
    width: int = 920,
    row_h: int = 22,
    title: str | None = None,
) -> str:
    """Render a span tree (recorder or its :meth:`~SpanRecorder.state`
    dict) as a self-contained inline-SVG flame graph.

    Frame widths are proportional to *total* time; children sit above
    their parent covering its non-self portion, in insertion order.
    Pure-SVG (``<title>`` hover tooltips, no scripts) so the output
    embeds directly into ``repro-report``'s no-external-assets HTML.
    """
    if isinstance(state, SpanRecorder):
        state = state.state()
    if not state:
        return "<svg width='10' height='10'></svg>"
    totals = {tuple(k.split(";")): float(v[1]) for k, v in state.items()}
    counts = {tuple(k.split(";")): int(v[0]) for k, v in state.items()}
    # Ensure every ancestor exists; an absent parent inherits the sum
    # of its children (merged states always carry parents, this guards
    # hand-built dicts).
    for path in list(totals):
        for i in range(1, len(path)):
            prefix = path[:i]
            if prefix not in totals:
                totals[prefix] = 0.0
                counts[prefix] = 0
    children: dict[tuple[str, ...], list[tuple[str, ...]]] = {}
    for path in totals:
        if len(path) > 1:
            children.setdefault(path[:-1], []).append(path)
    for kids in children.values():
        kids.sort(key=lambda p: -totals[p])
    roots = sorted((p for p in totals if len(p) == 1), key=lambda p: -totals[p])
    for path in totals:  # container nodes: total >= sum(children)
        kid_sum = sum(totals[k] for k in children.get(path, ()))
        if totals[path] < kid_sum:
            totals[path] = kid_sum
    grand_total = sum(totals[r] for r in roots)
    if grand_total <= 0.0:
        return "<svg width='10' height='10'></svg>"
    max_depth = max(len(p) for p in totals)
    height = (max_depth + 1) * row_h + (18 if title else 0)
    px_per_s = (width - 2.0) / grand_total

    rects: list[str] = []

    def emit(path: tuple[str, ...], x: float, depth: int) -> None:
        w = totals[path] * px_per_s
        if w < 0.4:  # sub-half-pixel frames are invisible anyway
            return
        y = height - (depth + 1) * row_h
        color = _FLAME_COLORS[(depth - 1) % len(_FLAME_COLORS)]
        label = path[-1]
        pct = 100.0 * totals[path] / grand_total
        tip = (
            f"{';'.join(path)} — {totals[path] * 1e3:.2f} ms "
            f"({pct:.1f}%), {counts[path]} span(s)"
        )
        text = ""
        if w > 7 * min(len(label), 3) + 8:
            shown = label if w > 7 * len(label) + 8 else label[: max(int(w / 7) - 1, 1)] + "…"
            text = (
                f"<text x='{x + 3:.1f}' y='{y + row_h - 7:.1f}' "
                f"font-size='11' fill='#1a1a2e'>{_html.escape(shown)}</text>"
            )
        rects.append(
            f"<g><title>{_html.escape(tip)}</title>"
            f"<rect x='{x:.1f}' y='{y}' width='{max(w - 0.6, 0.4):.1f}' "
            f"height='{row_h - 1}' rx='2' fill='{color}' "
            f"fill-opacity='0.88'/>{text}</g>"
        )
        cx = x
        for kid in children.get(path, ()):
            emit(kid, cx, depth + 1)
            cx += totals[kid] * px_per_s

    x = 1.0
    for root in roots:
        emit(root, x, 1)
        x += totals[root] * px_per_s

    caption = (
        f"<text x='1' y='12' font-size='12' fill='#444'>"
        f"{_html.escape(title)} — {grand_total * 1e3:.1f} ms total</text>"
        if title
        else ""
    )
    return (
        f"<svg width='{width}' height='{height}' viewBox='0 0 {width} {height}' "
        f"role='img' font-family='ui-monospace, monospace'>"
        f"<rect width='100%' height='100%' fill='#fafbfc'/>{caption}"
        f"{''.join(rects)}</svg>"
    )
