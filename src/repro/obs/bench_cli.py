"""``repro-bench`` — the benchmark history ledger front end.

Three subcommands over :mod:`repro.obs.perf`:

* ``record`` — append one or more ``BENCH_*.json`` snapshots (as
  written by ``benchmarks/bench_kernels.py`` / ``bench_scaling.py``)
  to ``benchmarks/history.jsonl``, stamped with git SHA, backend,
  numba version, and the machine fingerprint;
* ``trend`` — render the ledger as a self-contained HTML dashboard
  (per-metric sparklines + change-point verdicts);
* ``check`` — noise-aware regression gate: the latest record per
  (source, backend, machine) group is judged against the bootstrap CI
  of its trailing window.  Exits 3 on a regression verdict; a gate
  with nothing to compare WARNs (and ticks ``perf.gate_skipped``)
  instead of passing silently.

Examples::

    repro-bench record benchmarks/BENCH_kernels.json
    repro-bench trend --out benchmarks/trend.html
    repro-bench check --window 8 --min-effect 0.05
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path

from repro.obs.perf import (
    DEFAULT_BOOTSTRAP,
    DEFAULT_LEDGER,
    DEFAULT_MIN_EFFECT,
    DEFAULT_WINDOW,
    check_against_history,
    load_ledger,
    machine_fingerprint,
    record_snapshot,
    trend_html,
    warn_gate_skipped,
)

__all__ = ["main"]

log = logging.getLogger("repro.obs.bench_cli")


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError

    status = 0
    for snapshot in args.snapshots:
        try:
            record = record_snapshot(
                snapshot,
                ledger_path=args.ledger,
                backend=args.backend,
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 2
            continue
        rev = (record.git_rev or "unknown")[:12]
        print(
            f"recorded {record.source} ({len(record.entries)} metric(s), "
            f"backend {record.backend}, machine {record.machine_id}, "
            f"rev {rev}) -> {args.ledger}"
        )
    return status


def _cmd_trend(args: argparse.Namespace) -> int:
    records = load_ledger(args.ledger)
    if not records:
        print(f"error: ledger {args.ledger} is empty", file=sys.stderr)
        return 2
    html = trend_html(
        records,
        backend=args.backend,
        window=args.window,
        min_effect=args.min_effect,
        title=f"Benchmark trend ({len(records)} run(s))",
    )
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(html, encoding="utf-8")
    print(f"trend dashboard: {out} ({len(records)} ledger record(s))")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    records = load_ledger(args.ledger)
    if args.backend is not None:
        records = [r for r in records if r.backend == args.backend]
    if args.this_machine:
        local = machine_fingerprint()["id"]
        records = [r for r in records if r.machine_id == local]
    if not records:
        warn_gate_skipped(
            f"ledger {args.ledger} has no records"
            + (f" for backend {args.backend!r}" if args.backend else "")
            + (" on this machine" if args.this_machine else "")
        )
        return 0
    groups: dict[tuple[str, str, str], list] = {}
    for record in records:
        groups.setdefault(
            (record.source, record.backend, record.machine_id), []
        ).append(record)
    failed = False
    for (source, backend, machine), group in sorted(groups.items()):
        latest = group[-1]
        check = check_against_history(
            group[:-1],
            latest,
            window=args.window,
            min_effect=args.min_effect,
            n_boot=DEFAULT_BOOTSTRAP,
        )
        header = f"[{source} · {backend} · {machine}]"
        if check.compared == 0:
            warn_gate_skipped(
                f"{header} no comparable history "
                f"({len(group) - 1} prior record(s), need >= 3 per metric)"
            )
            continue
        print(header)
        print(check.render())
        if not check.ok:
            failed = True
    if failed:
        print("repro-bench check: REGRESSED", file=sys.stderr)
        return 3
    print("repro-bench check: ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    from repro.obs.cli import add_version_argument

    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Record, trend, and regression-check benchmark history.",
    )
    add_version_argument(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    def _common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--ledger",
            default=str(DEFAULT_LEDGER),
            help=f"history ledger path (default: {DEFAULT_LEDGER})",
        )
        p.add_argument(
            "--backend",
            default=None,
            help="restrict to one kernel backend (default: all / autodetect)",
        )

    p_record = sub.add_parser(
        "record", help="append BENCH_*.json snapshots to the ledger"
    )
    _common(p_record)
    p_record.add_argument(
        "snapshots",
        nargs="+",
        help="bench snapshot files (benchmarks/BENCH_kernels.json, ...)",
    )
    p_record.set_defaults(func=_cmd_record)

    p_trend = sub.add_parser("trend", help="render the HTML trend dashboard")
    _common(p_trend)
    p_trend.add_argument(
        "--out",
        default="benchmarks/trend.html",
        help="output HTML path (default: benchmarks/trend.html)",
    )
    p_trend.add_argument("--window", type=int, default=DEFAULT_WINDOW)
    p_trend.add_argument("--min-effect", type=float, default=DEFAULT_MIN_EFFECT)
    p_trend.set_defaults(func=_cmd_trend)

    p_check = sub.add_parser(
        "check", help="change-point check the latest record per group"
    )
    _common(p_check)
    p_check.add_argument(
        "--window",
        type=int,
        default=DEFAULT_WINDOW,
        help=f"trailing-window size (default: {DEFAULT_WINDOW})",
    )
    p_check.add_argument(
        "--min-effect",
        type=float,
        default=DEFAULT_MIN_EFFECT,
        help="minimum relative delta a verdict needs "
        f"(default: {DEFAULT_MIN_EFFECT})",
    )
    p_check.add_argument(
        "--this-machine",
        action="store_true",
        help="only consider ledger records from this machine's fingerprint",
    )
    p_check.set_defaults(func=_cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
