"""Counters, gauges, and histograms for the simulation pipeline.

A :class:`MetricsRegistry` is a flat namespace of named metrics with
get-or-create semantics — instrumented code asks for
``registry.counter("scheduler.invocations")`` once before a hot loop
and increments the returned handle directly.

The instrumented pipeline populates (at least) these names:

========================================  =========  =========================================
name                                      type       meaning
========================================  =========  =========================================
``engine.slots``                          counter    simulated slots
``scheduler.invocations``                 counter    ``Scheduler.allocate`` calls
``allocation.near_miss``                  counter    slots where the allocation used > 90%
                                                     of the capacity budget (constraint 2)
``allocation.truncated_kb``               counter    allocated KB the clients could not accept
``rrc.occupancy.dch|fach|idle``           counter    user-slots spent in each RRC state
``rrc.tail_mj``                           counter    cumulative tail-energy accrual
``energy.trans_mj``                       counter    cumulative transmission energy
``ema.virtual_queues``                    gauge      EMA's PC_i(n) vector, updated per slot
``calibration.grid_evaluations``          counter    inner simulations run by the calibrators
========================================  =========  =========================================
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
    "is_numeric_value",
]


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list (q in [0, 100])."""
    if not sorted_values:
        return float("nan")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError("percentile q must lie in [0, 100]")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return float(sorted_values[rank - 1])


class Counter:
    """Monotonically increasing accumulator."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount


class Gauge:
    """Last-write-wins value; scalars or small vectors (NumPy arrays).

    A gauge may also hold a non-numeric value (the backend name in
    ``kernels.backend``, for instance); snapshots partition those into
    an ``info`` section so numeric consumers — the Prometheus exporter,
    the comparison gates — never meet a string where they expect a
    number (see :func:`is_numeric_value`).
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Any = None

    def set(self, value: Any) -> None:
        self.value = value

    @property
    def is_numeric(self) -> bool:
        return is_numeric_value(self.value)


def is_numeric_value(value: Any) -> bool:
    """True for numbers and (nested) numeric sequences/arrays.

    Booleans and ``None`` are *not* numeric (a bool gauge is a flag, an
    unset gauge is information-free); NumPy scalars and arrays of any
    numeric dtype are.
    """
    if isinstance(value, bool) or value is None:
        return False
    if isinstance(value, (int, float)):
        return True
    if isinstance(value, np.generic):
        return bool(np.issubdtype(value.dtype, np.number)) and not isinstance(
            value, np.bool_
        )
    if isinstance(value, np.ndarray):
        return bool(np.issubdtype(value.dtype, np.number))
    if isinstance(value, (list, tuple)):
        return all(is_numeric_value(v) for v in value) and len(value) > 0
    return False


class Histogram:
    """Streaming sample collector with quantile summaries.

    Samples are kept verbatim (the pipeline's cardinalities — slots,
    grid points, bench rounds — are small); ``summary()`` reports
    count/total/mean/min/p50/p95/max.
    """

    __slots__ = ("name", "samples")

    def __init__(self, name: str):
        self.name = name
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    def summary(self) -> dict[str, float]:
        if not self.samples:
            return {"count": 0}
        ordered = sorted(self.samples)
        total = float(sum(ordered))
        return {
            "count": len(ordered),
            "total": total,
            "mean": total / len(ordered),
            "min": ordered[0],
            "p50": percentile(ordered, 50.0),
            "p95": percentile(ordered, 95.0),
            "max": ordered[-1],
        }


class MetricsRegistry:
    """Flat get-or-create namespace of counters, gauges, and histograms.

    A name is bound to one metric type for the registry's lifetime;
    asking for the same name as a different type raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Plain-dict view, gauges type-partitioned.

        Returns ``{"counters": {...}, "gauges": {...}, "info": {...},
        "histograms": {...}}``: numeric gauges (scalars and numeric
        vectors) land in ``gauges``; everything else (backend names,
        version strings, flags) lands in ``info``.  Purely numeric
        consumers — the Prometheus exporter, the bench gates — read
        ``gauges`` and treat ``info`` as labels.
        """
        out: dict[str, dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "info": {},
            "histograms": {},
        }
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                value = metric.value
                numeric = metric.is_numeric
                if isinstance(value, np.ndarray):
                    value = value.tolist()
                elif isinstance(value, np.generic):
                    value = value.item()
                out["gauges" if numeric else "info"][name] = value
            else:
                out["histograms"][name] = metric.summary()
        return out

    def state(self) -> dict[str, dict[str, Any]]:
        """Mergeable raw state: counter values, gauge values, histogram samples.

        Unlike :meth:`snapshot` this keeps histogram samples verbatim
        (not summarised) and gauge values unconverted, so a registry
        populated in a worker process can be shipped back and folded
        into the parent with :meth:`merge_state` without losing
        information.  Gauges are partitioned exactly as in
        :meth:`snapshot` (numeric ``gauges`` vs. ``info``).
        """
        out: dict[str, dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "info": {},
            "histograms": {},
        }
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges" if metric.is_numeric else "info"][name] = metric.value
            else:
                out["histograms"][name] = list(metric.samples)
        return out

    def merge_state(self, state: dict[str, dict[str, Any]]) -> None:
        """Fold a :meth:`state` dict into this registry.

        Counters add, gauges last-write-win (both the numeric
        ``gauges`` and the ``info`` sections — older states without the
        partition merge unchanged), histogram samples extend — merging
        worker states in task order reproduces exactly the registry a
        serial execution would have built (each engine counter receives
        one increment per run).
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, value in state.get("info", {}).items():
            self.gauge(name).set(value)
        for name, samples in state.get("histograms", {}).items():
            self.histogram(name).samples.extend(samples)

    def write_json(self, path: str | Path) -> Path:
        """Serialise :meth:`snapshot` to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=2) + "\n", encoding="utf-8")
        return path
