"""Trace analysis: timeline reconstruction and invariant checking.

The instrumented engine writes one ``slot`` event per simulated slot
(with per-user vectors), plus ``run.start`` / ``run.end`` boundaries
and ``ema.queues`` virtual-queue snapshots.  This module turns that
stream back into structured :class:`RunTimeline` objects — per-user
buffer/energy/allocation grids, rebuffer events, RRC state residency,
the DCH/FACH/tail energy split — and runs a pluggable **invariant
checker** over each run:

* ``buffer.non_negative`` — buffer occupancy and rebuffering never go
  negative (Eq. 7/8);
* ``allocation.capacity`` — allocations respect the per-link cap
  (Eq. 1), the BS unit budget (Eq. 2), and deliveries never exceed
  allocations;
* ``rtma.energy_budget`` — RTMA never schedules a user below its
  Eq. (12) signal threshold, and (when a numeric ``Phi`` was
  configured) per-user-slot energy stays within the Eq. (10)/(12)
  envelope ``2 * Phi``;
* ``ema.virtual_queues`` — EMA's traced ``PC_i(n)`` snapshots are
  consistent with the Eq. (16) update recomputed from deliveries, the
  queues never grow faster than real time, and the per-slot Lyapunov
  drift respects the Eq. (18) bound ``B`` behind Theorem 1.

Every violation carries the slot/user coordinates plus the expected
and actual values, so a corrupted or regressed run is localisable
without rerunning it.  Traces are read *streaming* (JSON-lines, plain
or gzip) — memory scales with one run's grids, not the file.

``repro-analyze <run_dir>`` is the CLI: prints each run's summary and
invariant results, exit status 1 when any invariant is violated.
"""

from __future__ import annotations

import argparse
import gzip
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.radio.rrc import RRCParams, fleet_state_grid_from_tx, tail_split_from_tx

__all__ = [
    "open_trace",
    "iter_trace_events",
    "RunTimeline",
    "RebufferEvent",
    "timelines_from_events",
    "timelines_from_trace",
    "timeline_from_result",
    "Violation",
    "InvariantChecker",
    "NonNegativeBufferChecker",
    "CapacityChecker",
    "RTMAEnergyBudgetChecker",
    "EMAQueueChecker",
    "SessionConservationChecker",
    "FaultInjectionChecker",
    "DEFAULT_CHECKERS",
    "InvariantReport",
    "check_invariants",
    "check_trace",
    "resolve_trace_path",
    "main",
]

_NONFINITE = {"inf": float("inf"), "-inf": float("-inf"), "nan": float("nan")}


def _definitize(value: Any) -> Any:
    """Undo the writer's non-finite sanitisation (``'inf'`` -> ``inf``)."""
    if isinstance(value, str):
        return _NONFINITE.get(value, value)
    return value


def _row(values: Iterable[Any], dtype) -> np.ndarray:
    values = list(values)
    if any(isinstance(v, str) for v in values):
        values = [_definitize(v) for v in values]
    return np.asarray(values, dtype=dtype)


def open_trace(path: str | Path):
    """Open a trace for reading, transparently handling gzip.

    Compression is detected by the ``.gz`` suffix or the gzip magic
    bytes, so renamed files still open correctly.
    """
    path = Path(path)
    if path.suffix != ".gz":
        with path.open("rb") as f:
            if f.read(2) != b"\x1f\x8b":
                return path.open("r", encoding="utf-8")
    return gzip.open(path, "rt", encoding="utf-8")


def iter_trace_events(path: str | Path) -> Iterator[dict[str, Any]]:
    """Stream the trace's events as dicts, one per line."""
    with open_trace(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{lineno}: invalid trace line ({exc})"
                ) from None


def resolve_trace_path(target: str | Path) -> Path:
    """``target`` may be a trace file or a run directory containing one."""
    target = Path(target)
    if target.is_dir():
        for name in ("trace.jsonl", "trace.jsonl.gz"):
            candidate = target / name
            if candidate.exists():
                return candidate
        raise ConfigurationError(f"no trace.jsonl[.gz] in {target}")
    if not target.exists():
        raise ConfigurationError(f"no such trace: {target}")
    return target


@dataclass(frozen=True)
class RebufferEvent:
    """One contiguous stall: ``total_s`` seconds over ``[start, end]``."""

    user: int
    start_slot: int
    end_slot: int
    total_s: float


@dataclass
class RunTimeline:
    """One simulation run reconstructed from its trace events.

    ``grids`` holds the per-``(slot, user)`` arrays keyed like the
    ``slot`` event's ``users`` payload (``phi``, ``delivered_kb``,
    ``buffer_s``, ``rebuffering_s``, ``energy_trans_mj``,
    ``energy_tail_mj``, ``link_units``, ``sig_dbm``, ``rate_kbps``,
    ``active``); it is empty for pre-per-user traces, in which case
    only the aggregate ``totals`` series are available and grid-based
    invariants report themselves as skipped.
    """

    scheduler: str | None = None
    n_users: int = 0
    n_slots: int = 0
    tau_s: float = 1.0
    delta_kb: float = float("nan")
    seed: int | None = None
    params: dict[str, Any] = field(default_factory=dict)
    rrc: RRCParams | None = None
    #: Per-slot aggregate series (``unit_budget``, ``delivered_kb``,
    #: ``energy_trans_mj``, ``energy_tail_mj``, ``rebuffering_s``,
    #: ``mean_buffer_s``, ``allocated_units``).
    totals: dict[str, np.ndarray] = field(default_factory=dict)
    grids: dict[str, np.ndarray] = field(default_factory=dict)
    #: Slots at which ``ema.queues`` snapshots were taken, and the
    #: snapshots themselves, shape ``(len(slots), n_users)``.
    ema_queue_slots: np.ndarray | None = None
    ema_queues: np.ndarray | None = None
    #: Session lifecycle events (``session.start`` / ``session.reject``
    #: / ``session.end``) in trace order; empty for fixed-population
    #: runs, which emit none.
    sessions: list[dict[str, Any]] = field(default_factory=list)
    #: The ``run.start`` event's ``faults`` spec (a
    #: :meth:`repro.faults.FaultPlan.spec` dict) when the run injected
    #: faults, else ``None``.
    faults: dict[str, Any] | None = None
    #: ``fault.window`` events in trace order (one per injected window).
    fault_windows: list[dict[str, Any]] = field(default_factory=list)
    #: The ``run.end`` event's summary fields, when present.
    end_summary: dict[str, Any] = field(default_factory=dict)

    @property
    def has_user_grids(self) -> bool:
        return bool(self.grids)

    @property
    def energy_mj(self) -> np.ndarray | None:
        """Per-(slot, user) total energy, Eq. (5)."""
        if "energy_trans_mj" not in self.grids:
            return None
        return self.grids["energy_trans_mj"] + self.grids["energy_tail_mj"]

    @property
    def tx_mask(self) -> np.ndarray | None:
        if "delivered_kb" not in self.grids:
            return None
        return self.grids["delivered_kb"] > 0.0

    def rebuffer_events(self, min_s: float = 0.0) -> list[RebufferEvent]:
        """Contiguous per-user stall periods, longest first."""
        rebuf = self.grids.get("rebuffering_s")
        if rebuf is None:
            return []
        events: list[RebufferEvent] = []
        for user in range(rebuf.shape[1]):
            stalled = rebuf[:, user] > 0.0
            if not stalled.any():
                continue
            edges = np.flatnonzero(np.diff(np.concatenate(([0], stalled.view(np.int8), [0]))))
            for start, stop in zip(edges[::2], edges[1::2]):
                total = float(rebuf[start:stop, user].sum())
                if total > min_s:
                    events.append(RebufferEvent(user, int(start), int(stop - 1), total))
        events.sort(key=lambda e: -e.total_s)
        return events

    def rrc_state_grid(self) -> np.ndarray | None:
        """Per-(slot, user) RRC codes (0=DCH, 1=FACH, 2=IDLE) from tx history."""
        tx = self.tx_mask
        if tx is None:
            return None
        return fleet_state_grid_from_tx(tx, self.tau_s, self.rrc)

    def rrc_residency(self) -> dict[str, np.ndarray] | None:
        """Per-user slot counts in each RRC state."""
        grid = self.rrc_state_grid()
        if grid is None:
            return None
        return {
            "dch": (grid == 0).sum(axis=0),
            "fach": (grid == 1).sum(axis=0),
            "idle": (grid == 2).sum(axis=0),
        }

    def energy_split_mj(self) -> dict[str, float] | None:
        """Run-total energy split: transmission vs DCH-tail vs FACH-tail.

        ``None`` on dynamic runs: the split is reconstructed from the
        transmission history assuming every user rides its tail to the
        end, but retirement cuts tails short, so the reconstruction
        over-counts.
        """
        tx = self.tx_mask
        if tx is None or "energy_trans_mj" not in self.grids or self.sessions:
            return None
        dch, fach = tail_split_from_tx(tx, self.tau_s, self.rrc)
        return {
            "trans_mj": float(self.grids["energy_trans_mj"].sum()),
            "tail_dch_mj": float(dch.sum()),
            "tail_fach_mj": float(fach.sum()),
        }

    def session_rows(self) -> list[dict[str, Any]]:
        """Per-session lifecycle table reconstructed from the events.

        One dict per session that produced any lifecycle event, sorted
        by arrival, with ``user``, ``start_slot``/``end_slot`` (``None``
        while unresolved), and ``outcome`` (``completed`` / ``active`` /
        ``rejected``).
        """
        by_user: dict[int, dict[str, Any]] = {}
        for ev in self.sessions:
            user = int(ev.get("user", -1))
            row = by_user.setdefault(
                user, {"user": user, "start_slot": None, "end_slot": None,
                       "outcome": None}
            )
            kind = ev.get("kind")
            if kind == "session.start":
                row["start_slot"] = int(ev["slot"])
                row["outcome"] = "active"
            elif kind == "session.end":
                row["end_slot"] = int(ev["slot"])
                row["outcome"] = "completed"
            elif kind == "session.reject":
                row["start_slot"] = int(ev["slot"])
                row["outcome"] = "rejected"
        return sorted(
            by_user.values(),
            key=lambda r: (r["start_slot"] if r["start_slot"] is not None else -1,
                           r["user"]),
        )

    def summary(self) -> dict[str, Any]:
        """Flat per-run aggregates (for tables and the HTML report)."""
        out: dict[str, Any] = {
            "scheduler": self.scheduler,
            "n_users": self.n_users,
            "n_slots": self.n_slots,
        }
        for key in ("delivered_kb", "energy_trans_mj", "energy_tail_mj", "rebuffering_s"):
            series = self.totals.get(key)
            if series is not None:
                out[f"total_{key}"] = float(series.sum())
        if self.has_user_grids:
            out["rebuffer_events"] = len(self.rebuffer_events())
            split = self.energy_split_mj()
            if split:
                out.update(split)
        out.update({f"end_{k}": v for k, v in self.end_summary.items()})
        return out


_TOTAL_KEYS = (
    "unit_budget",
    "allocated_units",
    "delivered_kb",
    "rebuffering_s",
    "energy_trans_mj",
    "energy_tail_mj",
    "mean_buffer_s",
)
_GRID_DTYPES = {
    "phi": np.int64,
    "link_units": np.int64,
    "active": bool,
}


class _RunBuilder:
    """Accumulates one run's events and finalises into a RunTimeline."""

    def __init__(self, start_event: dict[str, Any] | None = None):
        self.timeline = RunTimeline()
        self.slot_rows: list[dict[str, Any]] = []
        self.user_rows: list[dict[str, Any]] = []
        self.queue_rows: list[tuple[int, list[float]]] = []
        self.session_rows: list[dict[str, Any]] = []
        if start_event is not None:
            tl = self.timeline
            tl.scheduler = start_event.get("scheduler")
            tl.n_users = int(start_event.get("n_users", 0))
            tl.n_slots = int(start_event.get("n_slots", 0))
            tl.tau_s = float(_definitize(start_event.get("tau_s", 1.0)))
            tl.delta_kb = float(_definitize(start_event.get("delta_kb", float("nan"))))
            tl.seed = start_event.get("seed")
            tl.params = {
                k: _definitize(v) for k, v in (start_event.get("params") or {}).items()
            }
            rrc = start_event.get("rrc")
            if rrc:
                tl.rrc = RRCParams(**{k: float(v) for k, v in rrc.items()})
            tl.faults = start_event.get("faults")

    @property
    def last_slot(self) -> int:
        return self.slot_rows[-1]["slot"] if self.slot_rows else -1

    def add_slot(self, event: dict[str, Any]) -> None:
        self.slot_rows.append(event)
        users = event.get("users")
        if users is not None:
            self.user_rows.append(users)

    def finalize(self) -> RunTimeline | None:
        if not self.slot_rows and self.timeline.scheduler is None:
            return None
        tl = self.timeline
        tl.n_slots = max(tl.n_slots, len(self.slot_rows))
        for key in _TOTAL_KEYS:
            if self.slot_rows and key in self.slot_rows[0]:
                tl.totals[key] = _row((e.get(key, 0) for e in self.slot_rows), float)
        if self.user_rows and len(self.user_rows) == len(self.slot_rows):
            for key in self.user_rows[0]:
                dtype = _GRID_DTYPES.get(key, float)
                tl.grids[key] = np.stack(
                    [_row(users[key], dtype) for users in self.user_rows]
                )
            tl.n_users = tl.grids[next(iter(tl.grids))].shape[1]
        if self.queue_rows:
            # Dynamic runs snapshot EMA queues in row space, whose
            # capacity grows mid-run — ragged rows cannot stack (and
            # would not align with session-keyed grids anyway).
            widths = {len(pc) for _, pc in self.queue_rows}
            if len(widths) == 1:
                tl.ema_queue_slots = np.array(
                    [s for s, _ in self.queue_rows], dtype=np.int64
                )
                tl.ema_queues = np.stack(
                    [_row(pc, float) for _, pc in self.queue_rows]
                )
        tl.sessions = self.session_rows
        return tl


def timelines_from_events(events: Iterable[dict[str, Any]]) -> list[RunTimeline]:
    """Segment an event stream into runs and reconstruct each timeline.

    Runs are delimited by ``run.start`` events; traces recorded before
    those existed are segmented by the slot counter resetting.
    """
    timelines: list[RunTimeline] = []
    builder: _RunBuilder | None = None

    def flush():
        nonlocal builder
        if builder is not None:
            tl = builder.finalize()
            if tl is not None:
                timelines.append(tl)
        builder = None

    for event in events:
        kind = event.get("kind")
        if kind == "run.start":
            flush()
            builder = _RunBuilder(event)
        elif kind == "slot":
            if builder is None or event["slot"] <= builder.last_slot:
                flush()
                builder = builder if builder is not None else _RunBuilder()
            if builder is None:
                builder = _RunBuilder()
            builder.add_slot(event)
        elif kind == "ema.queues":
            if builder is not None:
                builder.queue_rows.append((int(event["slot"]), event["pc_s"]))
        elif kind in ("session.start", "session.reject", "session.end"):
            if builder is not None:
                builder.session_rows.append(event)
        elif kind == "fault.window":
            if builder is not None:
                builder.timeline.fault_windows.append(event)
        elif kind == "run.end":
            if builder is not None:
                builder.timeline.end_summary = {
                    k: _definitize(v)
                    for k, v in event.items()
                    if k not in ("kind", "scheduler", "n_slots")
                }
                flush()
    flush()
    return timelines


def timelines_from_trace(path: str | Path) -> list[RunTimeline]:
    """Read a ``trace.jsonl`` / ``trace.jsonl.gz`` into timelines."""
    return timelines_from_events(iter_trace_events(resolve_trace_path(path)))


def timeline_from_result(result, params: dict[str, Any] | None = None) -> RunTimeline:
    """Build a timeline from an in-memory :class:`~repro.sim.results.SimulationResult`.

    The result record does not retain the per-slot link caps, unit
    budgets, or signal rows, so the capacity and RTMA-threshold
    invariants report themselves skipped; buffer and EMA-consistency
    checks run as on a trace.  ``params`` plays the role of the
    ``run.start`` scheduler parameters.
    """
    cfg = result.config
    tl = RunTimeline(
        scheduler=result.scheduler_name,
        n_users=int(result.allocation_units.shape[1]),
        n_slots=int(result.allocation_units.shape[0]),
        tau_s=cfg.tau_s,
        delta_kb=cfg.delta_kb,
        seed=cfg.seed,
        params=dict(params or {}),
        rrc=cfg.radio.rrc,
        grids=result.per_user_grids(),
    )
    tl.totals = {
        "delivered_kb": result.delivered_kb.sum(axis=1),
        "rebuffering_s": result.rebuffering_s.sum(axis=1),
        "energy_trans_mj": result.energy_trans_mj.sum(axis=1),
        "energy_tail_mj": result.energy_tail_mj.sum(axis=1),
        "mean_buffer_s": result.buffer_s.mean(axis=1),
        "allocated_units": result.allocation_units.sum(axis=1),
    }
    return tl


# -- invariant checking ----------------------------------------------------


@dataclass(frozen=True)
class Violation:
    """One invariant violation, localised to slot/user coordinates."""

    invariant: str
    slot: int | None
    user: int | None
    expected: float | None
    actual: float | None
    message: str

    def __str__(self) -> str:
        where = f"slot {self.slot}" if self.slot is not None else "run"
        if self.user is not None:
            where += f", user {self.user}"
        detail = ""
        if self.expected is not None or self.actual is not None:
            detail = f" (expected {self.expected!r}, actual {self.actual!r})"
        return f"[{self.invariant}] {where}: {self.message}{detail}"


class InvariantChecker:
    """Base class: subclasses define ``name``, ``skip_reason``, ``check``."""

    name = "invariant"

    def skip_reason(self, tl: RunTimeline) -> str | None:
        """Non-``None`` explains why this checker cannot run on ``tl``."""
        return None

    def check(self, tl: RunTimeline) -> list[Violation]:
        raise NotImplementedError

    def _violation(
        self,
        slot: int | None,
        user: int | None,
        expected: float | None,
        actual: float | None,
        message: str,
    ) -> Violation:
        return Violation(self.name, slot, user, expected, actual, message)


def _coords(mask: np.ndarray) -> list[tuple[int, int]]:
    return [(int(s), int(u)) for s, u in np.argwhere(mask)]


class NonNegativeBufferChecker(InvariantChecker):
    """Eq. (7)/(8): buffer occupancy and rebuffering are non-negative."""

    name = "buffer.non_negative"

    def __init__(self, tol: float = 1e-9):
        self.tol = tol

    def skip_reason(self, tl: RunTimeline) -> str | None:
        if "buffer_s" not in tl.grids:
            return "trace has no per-user buffer grid"
        return None

    def check(self, tl: RunTimeline) -> list[Violation]:
        out = []
        for key, label in (("buffer_s", "buffer occupancy"), ("rebuffering_s", "rebuffering")):
            grid = tl.grids.get(key)
            if grid is None:
                continue
            for slot, user in _coords(grid < -self.tol):
                out.append(
                    self._violation(
                        slot, user, 0.0, float(grid[slot, user]),
                        f"negative {label} (Eq. 7)",
                    )
                )
        return out


class CapacityChecker(InvariantChecker):
    """Eqs. (1)-(2): link caps, BS budget, deliveries within allocations."""

    name = "allocation.capacity"

    def __init__(self, tol_kb: float = 1e-6):
        self.tol_kb = tol_kb

    def skip_reason(self, tl: RunTimeline) -> str | None:
        if "phi" not in tl.grids:
            return "trace has no per-user allocation grid"
        return None

    def check(self, tl: RunTimeline) -> list[Violation]:
        out = []
        phi = tl.grids["phi"]
        for slot, user in _coords(phi < 0):
            out.append(
                self._violation(slot, user, 0.0, float(phi[slot, user]),
                                "negative allocation")
            )
        link = tl.grids.get("link_units")
        if link is not None:
            for slot, user in _coords(phi > link):
                out.append(
                    self._violation(
                        slot, user, float(link[slot, user]), float(phi[slot, user]),
                        "allocation exceeds per-link cap (Eq. 1)",
                    )
                )
        budget = tl.totals.get("unit_budget")
        if budget is not None and len(budget) == phi.shape[0]:
            used = phi.sum(axis=1)
            for slot in np.flatnonzero(used > budget):
                out.append(
                    self._violation(
                        int(slot), None, float(budget[slot]), float(used[slot]),
                        "total allocation exceeds BS unit budget (Eq. 2)",
                    )
                )
        delivered = tl.grids.get("delivered_kb")
        if delivered is not None and np.isfinite(tl.delta_kb):
            over = delivered > phi * tl.delta_kb + self.tol_kb
            for slot, user in _coords(over):
                out.append(
                    self._violation(
                        slot, user, float(phi[slot, user] * tl.delta_kb),
                        float(delivered[slot, user]),
                        "delivered more than allocated",
                    )
                )
        return out


class RTMAEnergyBudgetChecker(InvariantChecker):
    """RTMA's Eq. (10)/(12) energy discipline.

    Two conditions, each only when its parameter was traced:

    * a user below the signal threshold ``phi_sig`` is never scheduled
      (the enforceable form of Eq. 12);
    * with a numeric budget ``Phi``, no user-slot's energy exceeds
      ``2 * Phi``: Eq. (12) sets ``Phi`` as the *mean* of the
      full-rate transmission branch at threshold signal and the slot
      tail branch, and radio power decreases with signal strength, so
      each branch — hence any compliant slot — is bounded by the sum
      ``2 * Phi``.
    """

    name = "rtma.energy_budget"

    def __init__(self, tol: float = 1e-9):
        self.tol = tol

    def skip_reason(self, tl: RunTimeline) -> str | None:
        params = tl.params
        if "sig_threshold_dbm" not in params and "energy_budget_mj_per_slot" not in params:
            return "run does not declare an RTMA threshold or energy budget"
        if "phi" not in tl.grids:
            return "trace has no per-user allocation grid"
        return None

    def check(self, tl: RunTimeline) -> list[Violation]:
        out = []
        phi = tl.grids["phi"]
        threshold = tl.params.get("sig_threshold_dbm")
        sig = tl.grids.get("sig_dbm")
        if threshold is not None and np.isfinite(threshold) and sig is not None:
            below = (phi > 0) & (sig < threshold - self.tol)
            for slot, user in _coords(below):
                out.append(
                    self._violation(
                        slot, user, float(threshold), float(sig[slot, user]),
                        "scheduled below the Eq. (12) signal threshold",
                    )
                )
        budget = tl.params.get("energy_budget_mj_per_slot")
        energy = tl.energy_mj
        if budget is not None and np.isfinite(budget) and energy is not None:
            cap = 2.0 * float(budget)
            for slot, user in _coords(energy > cap + self.tol):
                out.append(
                    self._violation(
                        slot, user, cap, float(energy[slot, user]),
                        "user-slot energy exceeds the Eq. (10) budget envelope",
                    )
                )
        return out


class EMAQueueChecker(InvariantChecker):
    """EMA's Eq. (16) queues and the Theorem 1 drift bound.

    Recomputes ``PC_i(n+1) = PC_i(n) + tau - t_i(n)`` from the traced
    deliveries and required rates and compares against the snapshot the
    scheduler emitted, checks that no established queue grows faster
    than real time (``tau`` per slot), and that each slot's Lyapunov
    drift term ``0.5 * sum_i dPC_i^2`` stays within the Eq. (18)
    constant ``B = 0.5 * sum_i (tau^2 + t_max^2)`` that Theorem 1's
    ``B/V`` trade-off rests on.  Queue-seeding slots (each user's first
    active slot, where EMA applies its place-holder backlog) are
    excluded — the seed is a policy choice, not an Eq. (16) step.
    """

    name = "ema.virtual_queues"

    def __init__(self, tol: float = 1e-6):
        self.tol = tol

    def skip_reason(self, tl: RunTimeline) -> str | None:
        if tl.sessions:
            return (
                "dynamic run: EMA queues are snapshotted in row space and "
                "do not align with the session-keyed grids"
            )
        if tl.ema_queues is None:
            return "run has no ema.queues snapshots"
        if not {"delivered_kb", "rate_kbps", "active"} <= tl.grids.keys():
            return "trace has no per-user delivery/rate grids"
        return None

    def check(self, tl: RunTimeline) -> list[Violation]:
        out = []
        pc = tl.ema_queues
        slots = tl.ema_queue_slots
        delivered = tl.grids["delivered_kb"]
        rate = tl.grids["rate_kbps"]
        active = tl.grids["active"]
        tau = tl.tau_s
        floor = tl.params.get("queue_floor_s")
        n_slots = delivered.shape[0]

        # Each user's first active slot: the EMA seeding step happens
        # there, so Eq. (16) consistency is only checkable afterwards.
        ever_active = active.cumsum(axis=0) > 0
        established = np.zeros_like(active)
        established[1:] = ever_active[:-1]

        with np.errstate(divide="ignore", invalid="ignore"):
            t_grid = np.where(rate > 0, delivered / rate, 0.0)
        t_max = float(t_grid.max(initial=0.0))
        b_const = 0.5 * pc.shape[1] * (tau**2 + t_max**2)

        for j in range(1, pc.shape[0]):
            slot = int(slots[j])
            if slots[j] != slots[j - 1] + 1 or slot >= n_slots:
                continue  # non-contiguous snapshots: nothing to recompute
            est = established[slot]
            expected = np.where(active[slot], pc[j - 1] + tau - t_grid[slot], pc[j - 1])
            if floor is not None:
                expected = np.maximum(expected, floor)
            err = np.abs(pc[j] - expected)
            bad = est & (err > self.tol * np.maximum(1.0, np.abs(expected)))
            for user in np.flatnonzero(bad):
                out.append(
                    self._violation(
                        slot, int(user), float(expected[user]), float(pc[j, user]),
                        "virtual queue inconsistent with Eq. (16) update",
                    )
                )
            delta = pc[j] - pc[j - 1]
            too_fast = est & (delta > tau + self.tol)
            for user in np.flatnonzero(too_fast & ~bad):
                out.append(
                    self._violation(
                        slot, int(user), tau, float(delta[user]),
                        "virtual queue grew faster than real time (Eq. 16)",
                    )
                )
            drift_term = 0.5 * float((delta[est] ** 2).sum())
            if drift_term > b_const * (1 + self.tol) + self.tol:
                out.append(
                    self._violation(
                        slot, None, b_const, drift_term,
                        "Lyapunov drift exceeds the Eq. (18) bound B (Theorem 1)",
                    )
                )
        return out


class SessionConservationChecker(InvariantChecker):
    """Dynamic-run session conservation.

    Three families of checks, all driven by the ``session.start`` /
    ``session.reject`` / ``session.end`` lifecycle events:

    * event sanity — no duplicate lifecycle events per session, no
      session both admitted and rejected, every end paired with (and
      not preceding) its start;
    * conservation — the ``run.end`` event's ``sessions`` counters
      agree with the event counts, and ``admitted == completed +
      still-active`` at the end of the run;
    * residency — no data unit is allocated (and no media delivered)
      to a session outside its ``[start, end]`` residency window, nor
      ever to a session that was rejected or never arrived.
    """

    name = "session.conservation"

    def skip_reason(self, tl: RunTimeline) -> str | None:
        if not tl.sessions:
            return "run has no session lifecycle events"
        return None

    def check(self, tl: RunTimeline) -> list[Violation]:
        out: list[Violation] = []
        started: dict[int, int] = {}
        rejected: dict[int, int] = {}
        ended: dict[int, int] = {}
        buckets = {
            "session.start": started,
            "session.reject": rejected,
            "session.end": ended,
        }
        for ev in tl.sessions:
            bucket = buckets.get(ev.get("kind"))
            if bucket is None:
                continue
            user = int(ev.get("user", -1))
            slot = int(ev.get("slot", -1))
            if user in bucket:
                out.append(
                    self._violation(
                        slot, user, None, None, f"duplicate {ev['kind']} event"
                    )
                )
            bucket[user] = slot
        for user in sorted(started.keys() & rejected.keys()):
            out.append(
                self._violation(
                    rejected[user], user, None, None,
                    "session both admitted and rejected",
                )
            )
        for user, slot in sorted(ended.items()):
            if user not in started:
                out.append(
                    self._violation(
                        slot, user, None, None, "session ended without a start"
                    )
                )
            elif slot < started[user]:
                out.append(
                    self._violation(
                        slot, user, float(started[user]), float(slot),
                        "session ended before it started",
                    )
                )

        counts = tl.end_summary.get("sessions") or {}
        for key, actual in (
            ("admitted", len(started)),
            ("rejected", len(rejected)),
            ("completed", len(ended)),
        ):
            expected = counts.get(key)
            if expected is not None and int(expected) != actual:
                out.append(
                    self._violation(
                        None, None, float(expected), float(actual),
                        f"run.end sessions.{key} disagrees with the "
                        f"session event count",
                    )
                )
        admitted = counts.get("admitted")
        completed = counts.get("completed")
        active = counts.get("active")
        if None not in (admitted, completed, active):
            if int(admitted) != int(completed) + int(active):
                out.append(
                    self._violation(
                        None, None, float(admitted),
                        float(int(completed) + int(active)),
                        "admitted != completed + still-active at run.end",
                    )
                )

        phi = tl.grids.get("phi")
        if phi is not None:
            n_slots, n_users = phi.shape
            resident = np.zeros((n_slots, n_users), dtype=bool)
            for user, slot in started.items():
                if 0 <= user < n_users and slot < n_slots:
                    end = ended.get(user, n_slots - 1)
                    resident[max(slot, 0) : end + 1, user] = True
            activity = phi != 0
            delivered = tl.grids.get("delivered_kb")
            if delivered is not None and delivered.shape == phi.shape:
                activity = activity | (delivered != 0.0)
            for slot, user in _coords(activity & ~resident):
                out.append(
                    self._violation(
                        slot, user, 0.0, float(phi[slot, user]),
                        "data allocated outside the session's residency window",
                    )
                )
        return out


class FaultInjectionChecker(InvariantChecker):
    """Injected faults actually bit: the traced grids reflect the plan.

    The ``run.start`` event of a faulted run carries the
    :meth:`repro.faults.FaultPlan.spec` dict, which this checker
    replays against the recorded grids:

    * signal blackouts — every affected (slot, user) cell of the traced
      ``sig_dbm`` grid equals the blackout level;
    * capacity outages (``factor == 0``) — the traced ``unit_budget``
      is zero across the window, so no allocation (and hence no
      delivery) can clear Eq. (2) there; degradation windows
      (``0 < factor < 1``) must not exceed ``factor`` times the
      largest un-faulted slot budget;
    * flow stalls — the traced ``delivered_kb`` is zero for every
      stalled (slot, user) cell;
    * the ``fault.window`` event count matches the plan.

    Note the Eq. (1)-(2) :class:`CapacityChecker` needs no fault
    awareness: it compares allocations against the *traced* per-slot
    budgets and link caps, which already reflect the injected outages.
    This checker closes the other direction — that the injection was
    not silently dropped.
    """

    name = "fault.injection"

    def __init__(self, tol: float = 1e-9):
        self.tol = tol

    def skip_reason(self, tl: RunTimeline) -> str | None:
        if tl.faults is None:
            return "run declares no fault plan"
        if tl.sessions:
            return (
                "dynamic run: grids are row-keyed while fault windows "
                "name sessions"
            )
        if not tl.has_user_grids:
            return "trace has no per-user grids"
        return None

    def check(self, tl: RunTimeline) -> list[Violation]:
        from repro.faults import FaultPlan

        out: list[Violation] = []
        plan = FaultPlan.from_spec(tl.faults)
        n_slots = tl.n_slots

        sig = tl.grids.get("sig_dbm")
        if sig is not None:
            for w in plan.signal:
                lo = min(w.start_slot, n_slots)
                hi = min(w.start_slot + w.n_slots, n_slots)
                users = (
                    range(sig.shape[1]) if w.users is None else w.users
                )
                for user in users:
                    if user >= sig.shape[1]:
                        continue
                    col = sig[lo:hi, user]
                    bad = np.flatnonzero(np.abs(col - w.level_dbm) > 1e-6)
                    for off in bad:
                        out.append(
                            self._violation(
                                lo + int(off), int(user), float(w.level_dbm),
                                float(col[off]),
                                "signal inside a blackout window is not at "
                                "the blackout level",
                            )
                        )

        budget = tl.totals.get("unit_budget")
        if budget is not None and plan.capacity:
            healthy = ~plan.capacity_slot_mask(len(budget))
            ceiling = float(budget[healthy].max()) if healthy.any() else None
            for w in plan.capacity:
                lo = min(w.start_slot, len(budget))
                hi = min(w.start_slot + w.n_slots, len(budget))
                window = budget[lo:hi]
                if w.factor == 0.0:
                    for off in np.flatnonzero(window > self.tol):
                        out.append(
                            self._violation(
                                lo + int(off), None, 0.0, float(window[off]),
                                "non-zero unit budget inside a capacity "
                                "outage window",
                            )
                        )
                elif ceiling is not None:
                    cap = w.factor * ceiling + 1.0  # integer budget rounding
                    for off in np.flatnonzero(window > cap):
                        out.append(
                            self._violation(
                                lo + int(off), None, cap, float(window[off]),
                                "unit budget inside a degradation window "
                                "exceeds the degraded capacity",
                            )
                        )

        delivered = tl.grids.get("delivered_kb")
        if delivered is not None:
            for w in plan.stalls:
                lo = min(w.start_slot, n_slots)
                hi = min(w.start_slot + w.n_slots, n_slots)
                for user in w.users:
                    if user >= delivered.shape[1]:
                        continue
                    col = delivered[lo:hi, user]
                    for off in np.flatnonzero(col > self.tol):
                        out.append(
                            self._violation(
                                lo + int(off), int(user), 0.0, float(col[off]),
                                "media delivered to a stalled flow",
                            )
                        )

        if tl.fault_windows:
            expected = len(plan.signal) + len(plan.capacity) + len(plan.stalls)
            if len(tl.fault_windows) != expected:
                out.append(
                    self._violation(
                        None, None, float(expected),
                        float(len(tl.fault_windows)),
                        "fault.window event count disagrees with the "
                        "run.start fault plan",
                    )
                )
        return out


DEFAULT_CHECKERS: tuple[InvariantChecker, ...] = (
    NonNegativeBufferChecker(),
    CapacityChecker(),
    RTMAEnergyBudgetChecker(),
    EMAQueueChecker(),
    SessionConservationChecker(),
    FaultInjectionChecker(),
)


@dataclass
class InvariantReport:
    """Outcome of running the checkers over one timeline."""

    scheduler: str | None
    checked: list[str]
    skipped: dict[str, str]
    violations: list[Violation]

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self, max_violations: int = 20) -> str:
        lines = [
            f"invariants [{self.scheduler or 'unknown'}]: "
            f"{len(self.checked)} checked, {len(self.skipped)} skipped, "
            f"{len(self.violations)} violation(s)"
        ]
        for name, reason in sorted(self.skipped.items()):
            lines.append(f"  skip {name}: {reason}")
        for violation in self.violations[:max_violations]:
            lines.append(f"  {violation}")
        if len(self.violations) > max_violations:
            lines.append(f"  ... and {len(self.violations) - max_violations} more")
        return "\n".join(lines)


def check_invariants(
    tl: RunTimeline, checkers: Iterable[InvariantChecker] | None = None
) -> InvariantReport:
    """Run the (default or given) invariant checkers over one timeline."""
    checkers = tuple(checkers) if checkers is not None else DEFAULT_CHECKERS
    checked: list[str] = []
    skipped: dict[str, str] = {}
    violations: list[Violation] = []
    for checker in checkers:
        reason = checker.skip_reason(tl)
        if reason is not None:
            skipped[checker.name] = reason
            continue
        checked.append(checker.name)
        violations.extend(checker.check(tl))
    return InvariantReport(tl.scheduler, checked, skipped, violations)


def check_trace(
    path: str | Path, checkers: Iterable[InvariantChecker] | None = None
) -> list[tuple[RunTimeline, InvariantReport]]:
    """Timelines + invariant reports for every run in a trace."""
    return [
        (tl, check_invariants(tl, checkers)) for tl in timelines_from_trace(path)
    ]


def main(argv: list[str] | None = None) -> int:
    from repro.obs.cli import add_version_argument

    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Reconstruct per-run timelines from a trace and check "
        "the paper's invariants (Eqs. 1-2, 7, 10/12, 16/18).",
    )
    add_version_argument(parser)
    parser.add_argument("target", help="run directory or trace.jsonl[.gz] path")
    parser.add_argument(
        "--max-violations", type=int, default=20,
        help="cap on violations printed per run (default 20)",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=24,
        help="cap on per-session lifecycle rows printed per run (default 24)",
    )
    args = parser.parse_args(argv)

    reports = check_trace(args.target)
    if not reports:
        print("no runs found in trace")
        return 1
    any_violation = False
    for tl, report in reports:
        summary = tl.summary()
        print(
            f"run: {tl.scheduler or 'unknown'}  "
            f"({tl.n_users} users x {tl.n_slots} slots)"
        )
        for key in sorted(k for k in summary if k.startswith("total_")):
            print(f"  {key}: {summary[key]:.3f}")
        split = tl.energy_split_mj()
        if split:
            print(
                "  energy split: trans {trans_mj:.1f} mJ, "
                "tail DCH {tail_dch_mj:.1f} mJ, tail FACH {tail_fach_mj:.1f} mJ".format(
                    **split
                )
            )
        stalls = tl.rebuffer_events()
        if stalls:
            worst = stalls[0]
            print(
                f"  rebuffer events: {len(stalls)} "
                f"(worst: user {worst.user}, slots {worst.start_slot}-"
                f"{worst.end_slot}, {worst.total_s:.2f}s)"
            )
        counts = tl.end_summary.get("sessions")
        if counts:
            print(
                "  sessions: offered {offered}, admitted {admitted}, "
                "rejected {rejected}, completed {completed}, "
                "active at end {active}".format(**counts)
            )
        rows = tl.session_rows()
        for row in rows[: args.max_sessions]:
            start = "-" if row["start_slot"] is None else row["start_slot"]
            end = "-" if row["end_slot"] is None else row["end_slot"]
            print(
                f"    session {row['user']}: slots {start}..{end} "
                f"[{row['outcome'] or 'unknown'}]"
            )
        if len(rows) > args.max_sessions:
            print(f"    ... and {len(rows) - args.max_sessions} more sessions")
        print(report.render(args.max_violations))
        print()
        any_violation = any_violation or not report.ok
    return 1 if any_violation else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
