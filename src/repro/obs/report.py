"""Self-contained HTML run reports.

``repro-report <run_dir>`` turns one traced run directory into a
single HTML file with **zero external assets** — styling is an inline
``<style>`` block and every chart is inline SVG generated here, so
the file can be attached to a CI job, mailed, or archived and will
render identically forever.  No third-party libraries are involved.

Per run (a trace holds one run per scheduler) the report shows:

* the headline totals table (delivered media, transmission/tail
  energy, rebuffering, stall count);
* sparklines of the per-slot aggregate series — mean client buffer,
  energy, delivered KB — the shapes that make scheduler behaviour
  legible at a glance (EMA's batching, RTMA's threshold gating);
* the CDF of per-user total rebuffering (the paper's Fig. 3 axis);
* the DCH / FACH / tail energy split and RRC residency bar;
* the invariant-check results from :mod:`repro.obs.analyze`;
* when the run directory carries ``spans.json`` (written by
  ``repro-trace``), the hierarchical span profile as an inline-SVG
  flame graph — run → slot-block → phase → kernel wall-clock
  attribution (see :mod:`repro.obs.spans`).

The provenance header is read from the run's ``manifest.json`` when
present, so a report is traceable back to config hash + git revision.
"""

from __future__ import annotations

import argparse
import html
import json
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.obs.analyze import (
    InvariantReport,
    RunTimeline,
    check_invariants,
    resolve_trace_path,
    timelines_from_trace,
)

__all__ = ["svg_sparkline", "svg_cdf", "render_report", "write_report", "main"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 62em; color: #1a1a2e; }
h1 { font-size: 1.5em; border-bottom: 2px solid #16324f; padding-bottom: .2em; }
h2 { font-size: 1.15em; margin-top: 1.6em; color: #16324f; }
table { border-collapse: collapse; margin: .8em 0; font-size: .92em; }
th, td { border: 1px solid #c8d0d8; padding: .3em .6em; text-align: right; }
th { background: #eef2f6; text-align: center; }
td.label { text-align: left; font-weight: 600; }
.ok { color: #176e2c; font-weight: 600; }
.bad { color: #a61b1b; font-weight: 600; }
.skip { color: #6a737d; }
.charts { display: flex; flex-wrap: wrap; gap: 1.2em; }
figure { margin: 0; }
figcaption { font-size: .8em; color: #444; text-align: center; }
.meta { color: #555; font-size: .85em; }
code { background: #f2f4f6; padding: 0 .25em; }
ul.violations li { font-family: ui-monospace, monospace; font-size: .85em; }
"""


def _scale(values: np.ndarray, lo: float, hi: float, size: float, flip: bool) -> np.ndarray:
    span = hi - lo
    unit = (values - lo) / span if span > 0 else np.full_like(values, 0.5, dtype=float)
    return (1.0 - unit) * size if flip else unit * size


def svg_sparkline(
    values: Sequence[float],
    width: int = 300,
    height: int = 64,
    color: str = "#16324f",
    caption: str | None = None,
) -> str:
    """A minimal inline-SVG line chart of one series (index on x)."""
    ys = np.asarray(list(values), dtype=float)
    ys = ys[np.isfinite(ys)]
    if ys.size < 2:
        return "<figure><em>no data</em></figure>"
    pad = 4.0
    xs = _scale(np.arange(ys.size, dtype=float), 0, ys.size - 1, width - 2 * pad, False)
    lo, hi = float(ys.min()), float(ys.max())
    yy = _scale(ys, lo, hi, height - 2 * pad, True)
    points = " ".join(f"{x + pad:.1f},{y + pad:.1f}" for x, y in zip(xs, yy))
    label = (
        f"<figcaption>{html.escape(caption)} "
        f"<span class='meta'>(min {lo:.3g}, max {hi:.3g})</span></figcaption>"
        if caption
        else ""
    )
    return (
        f"<figure><svg width='{width}' height='{height}' viewBox='0 0 {width} {height}' "
        f"role='img'><rect width='100%' height='100%' fill='#fafbfc'/>"
        f"<polyline fill='none' stroke='{color}' stroke-width='1.5' "
        f"points='{points}'/></svg>{label}</figure>"
    )


def svg_cdf(
    values: Sequence[float],
    width: int = 300,
    height: int = 64,
    color: str = "#8c2d19",
    caption: str | None = None,
) -> str:
    """Inline-SVG empirical CDF (step plot) of a sample set."""
    xs = np.sort(np.asarray(list(values), dtype=float))
    xs = xs[np.isfinite(xs)]
    if xs.size == 0:
        return "<figure><em>no data</em></figure>"
    probs = np.arange(1, xs.size + 1, dtype=float) / xs.size
    pad = 4.0
    px = _scale(xs, float(xs.min()), float(xs.max()), width - 2 * pad, False)
    py = _scale(probs, 0.0, 1.0, height - 2 * pad, True)
    # Step plot: horizontal then vertical segments.
    points = [f"{pad:.1f},{py[0] + pad:.1f}"]
    for i in range(xs.size):
        points.append(f"{px[i] + pad:.1f},{py[i] + pad:.1f}")
        if i + 1 < xs.size:
            points.append(f"{px[i + 1] + pad:.1f},{py[i] + pad:.1f}")
    label = (
        f"<figcaption>{html.escape(caption)} "
        f"<span class='meta'>(n={xs.size}, max {float(xs.max()):.3g})</span></figcaption>"
        if caption
        else ""
    )
    return (
        f"<figure><svg width='{width}' height='{height}' viewBox='0 0 {width} {height}' "
        f"role='img'><rect width='100%' height='100%' fill='#fafbfc'/>"
        f"<polyline fill='none' stroke='{color}' stroke-width='1.5' "
        f"points='{' '.join(points)}'/></svg>{label}</figure>"
    )


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    return html.escape(str(value))


def _summary_table(timelines: list[RunTimeline]) -> str:
    rows = [tl.summary() for tl in timelines]
    keys: list[str] = []
    for row in rows:
        for key in row:
            if key not in keys and not key.startswith("end_"):
                keys.append(key)
    head = "".join(f"<th>{html.escape(k)}</th>" for k in keys)
    body = "".join(
        "<tr>" + "".join(f"<td>{_fmt(row.get(k, ''))}</td>" for k in keys) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def _invariant_section(report: InvariantReport) -> str:
    if report.ok:
        status = (
            f"<p class='ok'>OK — {len(report.checked)} invariant(s) checked, "
            f"0 violations.</p>"
        )
    else:
        status = f"<p class='bad'>{len(report.violations)} violation(s) found.</p>"
    parts = [status]
    if report.skipped:
        skipped = ", ".join(
            f"<code>{html.escape(name)}</code> ({html.escape(reason)})"
            for name, reason in sorted(report.skipped.items())
        )
        parts.append(f"<p class='skip'>Skipped: {skipped}</p>")
    if report.violations:
        items = "".join(
            f"<li>{html.escape(str(v))}</li>" for v in report.violations[:50]
        )
        more = (
            f"<li>... and {len(report.violations) - 50} more</li>"
            if len(report.violations) > 50
            else ""
        )
        parts.append(f"<ul class='violations'>{items}{more}</ul>")
    return "".join(parts)


def _run_section(tl: RunTimeline, report: InvariantReport) -> str:
    name = html.escape(tl.scheduler or "unknown")
    parts = [f"<h2>Run: <code>{name}</code> — {tl.n_users} users × {tl.n_slots} slots</h2>"]

    charts = []
    mean_buffer = tl.totals.get("mean_buffer_s")
    if mean_buffer is None and "buffer_s" in tl.grids:
        mean_buffer = tl.grids["buffer_s"].mean(axis=1)
    if mean_buffer is not None:
        charts.append(svg_sparkline(mean_buffer, caption="mean client buffer (s)"))
    energy = None
    if "energy_trans_mj" in tl.totals:
        energy = tl.totals["energy_trans_mj"] + tl.totals.get("energy_tail_mj", 0.0)
    elif tl.energy_mj is not None:
        energy = tl.energy_mj.sum(axis=1)
    if energy is not None:
        charts.append(svg_sparkline(energy, color="#1b6e4f", caption="energy per slot (mJ)"))
    delivered = tl.totals.get("delivered_kb")
    if delivered is not None:
        charts.append(svg_sparkline(delivered, color="#6b3fa0", caption="delivered per slot (KB)"))
    if "rebuffering_s" in tl.grids:
        per_user = tl.grids["rebuffering_s"].sum(axis=0)
        charts.append(svg_cdf(per_user, caption="CDF of per-user total rebuffering (s)"))
    if charts:
        parts.append(f"<div class='charts'>{''.join(charts)}</div>")

    split = tl.energy_split_mj()
    residency = tl.rrc_residency()
    if split:
        parts.append(
            "<p class='meta'>Energy split: "
            f"transmission {split['trans_mj']:,.1f} mJ · "
            f"DCH tail {split['tail_dch_mj']:,.1f} mJ · "
            f"FACH tail {split['tail_fach_mj']:,.1f} mJ</p>"
        )
    if residency is not None:
        totals = {k: int(v.sum()) for k, v in residency.items()}
        parts.append(
            "<p class='meta'>RRC residency (user-slots): "
            f"DCH {totals['dch']} · FACH {totals['fach']} · IDLE {totals['idle']}</p>"
        )
    stalls = tl.rebuffer_events()
    if stalls:
        worst = stalls[0]
        parts.append(
            f"<p class='meta'>{len(stalls)} stall(s); worst: user {worst.user}, "
            f"slots {worst.start_slot}–{worst.end_slot} ({worst.total_s:.2f} s)</p>"
        )
    parts.append(_invariant_section(report))
    return "".join(parts)


def _spans_section(run_dir: Path) -> str:
    """Flame graph + top-span table from the run's ``spans.json``."""
    spans_path = run_dir / "spans.json"
    if not spans_path.exists():
        return ""
    try:
        state = json.loads(spans_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return ""
    if not isinstance(state, dict) or not state:
        return ""
    from repro.obs.spans import flamegraph_svg

    parts = ["<h2>Where the time went</h2>", flamegraph_svg(state)]
    rows = sorted(
        (
            (path, values)
            for path, values in state.items()
            if isinstance(values, list) and len(values) == 2
        ),
        key=lambda item: -float(item[1][1]),
    )[:12]
    body = "".join(
        f"<tr><td class='label'><code>{html.escape(path)}</code></td>"
        f"<td>{int(count)}</td><td>{float(total):.4f}</td></tr>"
        for path, (count, total) in rows
    )
    parts.append(
        "<table><tr><th>span</th><th>calls</th><th>total (s)</th></tr>"
        + body
        + "</table>"
        "<p class='meta'>Full profile: <code>spans.collapsed.txt</code> "
        "(collapsed stacks) · <code>spans.speedscope.json</code> "
        "(load at speedscope.app).</p>"
    )
    return "".join(parts)


def _provenance(run_dir: Path) -> str:
    manifest_path = run_dir / "manifest.json"
    if not manifest_path.exists():
        return ""
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return ""
    fields = []
    for key in (
        "config_hash",
        "git_revision",
        "package_version",
        "created_at",
        "seed",
        "kernel_backend",
        "numba_version",
    ):
        value = manifest.get(key)
        if value is None and isinstance(manifest.get("extra"), dict):
            value = manifest["extra"].get(key)
        if value is not None:
            fields.append(f"{html.escape(key)}=<code>{html.escape(str(value))}</code>")
    return f"<p class='meta'>{' · '.join(fields)}</p>" if fields else ""


def render_report(target: str | Path, title: str | None = None) -> str:
    """Render one run directory (or trace file) to an HTML string."""
    trace_path = resolve_trace_path(target)
    run_dir = trace_path.parent
    timelines = timelines_from_trace(trace_path)
    sections = [
        _run_section(tl, check_invariants(tl)) for tl in timelines
    ]
    page_title = html.escape(title or f"Run report: {run_dir.name}")
    body = (
        f"<h1>{page_title}</h1>"
        + _provenance(run_dir)
        + (f"<h2>Summary</h2>{_summary_table(timelines)}" if timelines else
           "<p class='bad'>No runs found in trace.</p>")
        + "".join(sections)
        + _spans_section(run_dir)
    )
    return (
        "<!DOCTYPE html><html lang='en'><head><meta charset='utf-8'>"
        f"<title>{page_title}</title><style>{_CSS}</style></head>"
        f"<body>{body}</body></html>\n"
    )


def write_report(
    target: str | Path, out: str | Path | None = None, title: str | None = None
) -> Path:
    """Write the HTML report; default location is ``<run_dir>/report.html``."""
    trace_path = resolve_trace_path(target)
    out_path = Path(out) if out is not None else trace_path.parent / "report.html"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(render_report(target, title=title), encoding="utf-8")
    return out_path


def main(argv: list[str] | None = None) -> int:
    from repro.obs.cli import add_version_argument

    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Render a traced run directory to a single self-contained "
        "HTML report (inline SVG, no external assets).",
    )
    add_version_argument(parser)
    parser.add_argument("target", help="run directory or trace.jsonl[.gz] path")
    parser.add_argument("--out", default=None, help="output path (default: <run_dir>/report.html)")
    parser.add_argument("--title", default=None, help="report title")
    args = parser.parse_args(argv)
    path = write_report(args.target, out=args.out, title=args.title)
    print(f"report: {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
